// The project-manager view: two chips sharing designers and a compute farm.
//
// Shows the benefits the paper attributes to integrating schedule management
// into the flow manager:
//   - chip A's measured run times feed chip B's plan ("previous schedule
//     data can be used to predict the duration of future projects"),
//   - resources shared between the two plans are leveled so the same person
//     is never double-booked ("optimize the resources associated with
//     future projects"),
//   - the plan-evolution metadata shows how chip B's plan was refined.

#include <iostream>

#include "gantt/gantt.hpp"
#include "hercules/workflow_manager.hpp"
#include "query/query.hpp"

using namespace herc;

namespace {

constexpr const char* kSchema = R"(
schema chipflow {
  data spec, rtl_model, gate_model, layout, signoff;
  tool modeler, synthesizer, layouter, checker;
  rule Model:   rtl_model  <- modeler(spec);
  rule Synth:   gate_model <- synthesizer(rtl_model);
  rule Layout:  layout     <- layouter(gate_model);
  rule Signoff: signoff    <- checker(layout, rtl_model);
}
)";

void setup_task(hercules::WorkflowManager& m, const std::string& task,
                const std::string& chip) {
  m.extract_task(task, "signoff").expect("extract " + task);
  m.bind(task, "spec", chip + ".spec").expect("bind");
  m.bind(task, "modeler", "vhdlgen").expect("bind");
  m.bind(task, "synthesizer", "dc-3.2").expect("bind");
  m.bind(task, "layouter", "cellens").expect("bind");
  m.bind(task, "checker", "dracula").expect("bind");
}

}  // namespace

int main() {
  cal::WorkCalendar::Config cal_cfg;
  cal_cfg.epoch = cal::Date(1995, 3, 6);
  auto m = hercules::WorkflowManager::create(kSchema, cal_cfg, /*tool_seed=*/7).take();

  m->register_tool({.instance_name = "vhdlgen", .tool_type = "modeler",
                    .nominal = cal::WorkDuration::hours(20), .noise_frac = 0.2})
      .expect("tool");
  m->register_tool({.instance_name = "dc-3.2", .tool_type = "synthesizer",
                    .nominal = cal::WorkDuration::hours(9), .noise_frac = 0.2})
      .expect("tool");
  m->register_tool({.instance_name = "cellens", .tool_type = "layouter",
                    .nominal = cal::WorkDuration::hours(14), .noise_frac = 0.2})
      .expect("tool");
  m->register_tool({.instance_name = "dracula", .tool_type = "checker",
                    .nominal = cal::WorkDuration::hours(6), .noise_frac = 0.2})
      .expect("tool");

  auto dana = m->add_resource("dana");
  auto erin = m->add_resource("erin");
  m->add_resource("compute-farm", "machine", 1);

  // ---- Chip A: plan from intuition, execute, link --------------------------
  setup_task(*m, "chipA", "alpha");
  for (auto [a, h] : {std::pair{"Model", 24}, {"Synth", 8}, {"Layout", 12},
                      {"Signoff", 8}})
    m->estimator().set_intuition(a, cal::WorkDuration::hours(h));

  sched::PlanRequest plan_a;
  plan_a.anchor = m->clock().now();
  plan_a.assignments["Model"] = {dana};
  plan_a.assignments["Synth"] = {dana};
  plan_a.assignments["Layout"] = {erin};
  plan_a.assignments["Signoff"] = {erin};
  m->plan_task("chipA", plan_a).value();

  m->execute_task("chipA", "dana").value();
  m->run_activity("chipA", "Layout", "erin").value();  // one layout respin
  for (const char* a : {"Model", "Synth", "Layout", "Signoff"})
    m->link_completion("chipA", a).expect("link");

  std::cout << "=== Chip A complete ===\n"
            << m->gantt("chipA").value() << "\n"
            << m->status_report("chipA").value() << "\n";

  // ---- Chip B: plan from chip A's measured history --------------------------
  setup_task(*m, "chipB", "beta");
  sched::PlanRequest plan_b;
  plan_b.anchor = m->clock().now();
  plan_b.strategy = sched::EstimateStrategy::kMean;  // measured, not intuition
  plan_b.assignments = plan_a.assignments;           // same people
  plan_b.level_resources = true;
  auto b1 = m->plan_task("chipB", plan_b).value();

  std::cout << "=== Chip B planned from measured history ===\n";
  const auto& space = m->schedule_space();
  for (auto nid : space.plan(b1).nodes) {
    const auto& n = space.node(nid);
    std::cout << "  " << n.activity << ": intuition said "
              << m->estimator()
                     .estimate(m->db(), n.activity, sched::EstimateStrategy::kIntuition)
                     .str(480)
              << ", history says " << n.est_duration.str(480) << "\n";
  }
  std::cout << "\n" << m->gantt("chipB").value() << "\n";

  // Management pushes the start out a week; the refined plan derives from b1.
  sched::PlanRequest plan_b2 = plan_b;
  plan_b2.anchor = m->clock().now() + cal::WorkDuration::hours(40);
  auto b2 = m->replan_task("chipB", plan_b2).value();

  std::cout << "=== Portfolio: both chips on one time axis ===\n"
            << gantt::render_portfolio_gantt(
                   m->schedule_space(), m->calendar(),
                   {m->plan_of("chipA").value(), b2}, m->clock().now())
                   .value()
            << "\n";

  std::cout << "=== Plan evolution of chip B (schedule metadata query) ===\n";
  query::QueryEngine engine(m->db(), m->schedule_space());
  std::cout << engine.plan_lineage(b2).render(&m->calendar()) << "\n";

  std::cout << "=== All plans in the database ===\n"
            << m->query("select plans order by id").value() << "\n";

  std::cout << "=== Portfolio: schedule instances of every generation ===\n"
            << m->browser().list() << "\n";
  return 0;
}
