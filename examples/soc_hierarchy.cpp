// Schedule management over the architectural decomposition — the paper's
// Sec. V future-work extension, demonstrated on an SoC:
//
//   soc
//   ├── digital
//   │   ├── cpu      (full RTL-to-layout task)
//   │   └── dsp      (full RTL-to-layout task)
//   └── analog
//       └── pll      (shorter custom task)
//
// Each block's task is planned/executed in the ordinary schedule space; the
// roll-up gives block-, subsystem- and chip-level dates, completion and the
// architectural critical chain.  What-if analysis answers the manager's
// deadline questions at chip level.

#include <iostream>

#include "arch/rollup.hpp"
#include "core/whatif.hpp"
#include "hercules/workflow_manager.hpp"

using namespace herc;

namespace {

constexpr const char* kSchema = R"(
schema blockflow {
  data spec, rtl, gates, layout;
  tool coder, synthesizer, layouter;
  rule Code:   rtl    <- coder(spec);
  rule Synth:  gates  <- synthesizer(rtl);
  rule Layout: layout <- layouter(gates);
}
)";

void setup_block_task(hercules::WorkflowManager& m, const std::string& task,
                      const std::string& block) {
  m.extract_task(task, "layout").expect("extract");
  m.bind(task, "spec", block + ".spec").expect("bind");
  m.bind(task, "coder", "emacs").expect("bind");
  m.bind(task, "synthesizer", "dc").expect("bind");
  m.bind(task, "layouter", "cellens").expect("bind");
}

}  // namespace

int main() {
  cal::WorkCalendar::Config cal_cfg;
  cal_cfg.epoch = cal::Date(1995, 9, 4);
  auto m = hercules::WorkflowManager::create(kSchema, cal_cfg, /*tool_seed=*/11).take();
  m->register_tool({.instance_name = "emacs", .tool_type = "coder",
                    .nominal = cal::WorkDuration::hours(30), .noise_frac = 0.25})
      .expect("tool");
  m->register_tool({.instance_name = "dc", .tool_type = "synthesizer",
                    .nominal = cal::WorkDuration::hours(8), .noise_frac = 0.25})
      .expect("tool");
  m->register_tool({.instance_name = "cellens", .tool_type = "layouter",
                    .nominal = cal::WorkDuration::hours(14), .noise_frac = 0.25})
      .expect("tool");
  m->estimator().set_intuition("Code", cal::WorkDuration::hours(32));
  m->estimator().set_intuition("Synth", cal::WorkDuration::hours(8));
  m->estimator().set_intuition("Layout", cal::WorkDuration::hours(16));

  // One workflow task per leaf block.
  setup_block_task(*m, "cpu_task", "cpu");
  setup_block_task(*m, "dsp_task", "dsp");
  setup_block_task(*m, "pll_task", "pll");

  // The architectural decomposition.
  arch::DesignHierarchy soc("soc");
  auto digital = soc.add_component(soc.root(), "digital").value();
  auto analog = soc.add_component(soc.root(), "analog").value();
  auto cpu = soc.add_component(digital, "cpu").value();
  auto dsp = soc.add_component(digital, "dsp").value();
  auto pll = soc.add_component(analog, "pll").value();
  (void)cpu; (void)dsp;
  soc.assign_task(soc.find("cpu").value(), "cpu_task").expect("assign");
  soc.assign_task(soc.find("dsp").value(), "dsp_task").expect("assign");
  soc.assign_task(pll, "pll_task").expect("assign");

  for (const char* task : {"cpu_task", "dsp_task", "pll_task"})
    m->plan_task(task, {.anchor = m->clock().now()}).value();

  std::cout << "=== baseline roll-up ===\n"
            << arch::ArchSchedule::compute(soc, *m).take().render(m->calendar())
            << "\n";

  // Work happens: pll and dsp progress on schedule; cpu's coding drags.
  m->execute_task("pll_task", "ana").value();
  for (const char* a : {"Code", "Synth", "Layout"})
    m->link_completion("pll_task", a).expect("link");

  // NOTE: tasks share activity names across blocks (same schema), so each
  // task's plan tracks its own nodes via its own plan — runs are attributed
  // through the watched plan of the task we execute.
  m->run_activity("dsp_task", "Code", "dan").value();
  m->link_completion("dsp_task", "Code").expect("link");

  m->clock().advance(cal::WorkDuration::hours(24));  // cpu coder is stuck
  m->run_activity("cpu_task", "Code", "cam").value();
  m->link_completion("cpu_task", "Code").expect("link");

  auto rollup = arch::ArchSchedule::compute(soc, *m).take();
  std::cout << "=== mid-project roll-up (cpu slipping) ===\n"
            << rollup.render(m->calendar()) << "\n";

  std::cout << "chip completion: "
            << m->calendar().format_date(
                   rollup.row_of(soc.root()).projected_finish)
            << "  (baseline "
            << m->calendar().format_date(rollup.row_of(soc.root()).baseline_finish)
            << ", slip "
            << rollup.row_of(soc.root()).slip.str(m->calendar().minutes_per_day())
            << ")\n\n";

  // Chip-level what-if on the critical block's plan.
  auto cpu_plan = m->plan_of("cpu_task").value();
  auto impact = sched::simulate_delay(m->schedule_space(), cpu_plan, "Synth",
                                      cal::WorkDuration::hours(8))
                    .take();
  std::cout << "what-if: cpu Synth slips 1d -> cpu block finishes "
            << m->calendar().format_date(impact.new_finish)
            << (impact.absorbed ? " (absorbed)" : "") << "\n";

  auto deadline = m->clock().now() + cal::WorkDuration::hours(30);
  auto crash = sched::crash_to_deadline(m->schedule_space(), cpu_plan, deadline).take();
  std::cout << "to finish cpu by " << m->calendar().format_date(deadline) << ":";
  if (crash.steps.empty()) {
    std::cout << " already on track\n";
  } else {
    std::cout << (crash.feasible ? "" : " IMPOSSIBLE; best effort:") << "\n";
    for (const auto& step : crash.steps)
      std::cout << "  shorten " << step.activity << " by "
                << step.reduction.str(m->calendar().minutes_per_day()) << "\n";
  }

  std::cout << "\ncritical chain:";
  for (auto id : rollup.critical_chain()) std::cout << " " << soc.name(id);
  std::cout << "\n";
  return 0;
}
