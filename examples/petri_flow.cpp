// Generality demo: the same design flow driven through the three adapter
// representations the paper surveys — Hilda's Petri nets, VOV's traces, and
// the Philips/ELSIS data-flow roadmap — all mapping onto the identical
// four-level core that hosts the schedule model.

#include <iostream>

#include "adapters/four_level.hpp"
#include "adapters/petri.hpp"
#include "adapters/roadmap.hpp"
#include "adapters/trace.hpp"
#include "hercules/workflow_manager.hpp"

using namespace herc;

namespace {

constexpr const char* kSchema = R"(
schema filterchip {
  data coeffs, stimuli, netlist, layout, waveforms;
  tool filter_compiler, layout_tool, simulator;
  rule Compile:  netlist   <- filter_compiler(coeffs);
  rule Layout:   layout    <- layout_tool(netlist);
  rule Simulate: waveforms <- simulator(layout, stimuli);
}
)";

}  // namespace

int main() {
  auto m = hercules::WorkflowManager::create(kSchema, {}, /*tool_seed=*/3).take();
  m->register_tool({.instance_name = "fircomp", .tool_type = "filter_compiler",
                    .nominal = cal::WorkDuration::hours(3)})
      .expect("tool");
  m->register_tool({.instance_name = "lager", .tool_type = "layout_tool",
                    .nominal = cal::WorkDuration::hours(7)})
      .expect("tool");
  m->register_tool({.instance_name = "spice3", .tool_type = "simulator",
                    .nominal = cal::WorkDuration::hours(5)})
      .expect("tool");

  m->extract_task("filter", "waveforms").expect("extract");
  m->bind("filter", "coeffs", "fir.coeffs").expect("bind");
  m->bind("filter", "stimuli", "fir.stim").expect("bind");
  m->bind("filter", "filter_compiler", "fircomp").expect("bind");
  m->bind("filter", "layout_tool", "lager").expect("bind");
  m->bind("filter", "simulator", "spice3").expect("bind");
  const auto& tree = *m->task("filter").value();

  // ---- 1. Hilda: Petri-net view --------------------------------------------
  std::cout << "=== Hilda adapter: task tree as a Petri net ===\n";
  auto conv = adapters::petri_from_task_tree(tree).take();
  std::cout << conv.net.describe() << "\n";
  auto firing = conv.net.run_to_quiescence();
  std::cout << "firing sequence:";
  for (auto t : firing) std::cout << " " << conv.activity_of_transition[t];
  std::cout << "\ntarget place marked: "
            << (conv.net.marking(conv.target_place) == 1 ? "yes" : "no") << "\n\n";

  // ---- native execution (builds the metadata VOV will trace) ---------------
  m->plan_task("filter", {.anchor = m->clock().now()}).value();
  m->execute_task("filter", "pat").value();
  m->run_activity("filter", "Simulate", "pat").value();  // one respin
  for (const char* a : {"Compile", "Layout", "Simulate"})
    m->link_completion("filter", a).expect("link");

  // ---- 2. VOV: trace view ---------------------------------------------------
  std::cout << "=== VOV adapter: execution captured as a trace ===\n";
  auto trace = adapters::TraceGraph::capture(m->db());
  std::cout << trace.describe() << "\n";
  auto coeffs = m->db().latest_in_container("coeffs").value();
  std::cout << "if fir.coeffs changes, re-run:";
  for (auto rid : trace.affected_by(coeffs))
    std::cout << " " << m->db().run(rid).activity;
  std::cout << "\n\nflow derived from the trace (a-posteriori planning):\n";
  for (const auto& a : trace.derive_flow()) {
    std::cout << "  " << a.activity << " (" << a.observed_runs << " runs) after:";
    if (a.predecessors.empty()) std::cout << " (nothing)";
    for (const auto& p : a.predecessors) std::cout << " " << p;
    std::cout << "\n";
  }
  std::cout << "\n";

  // ---- 3. Roadmap/ELSIS: data-flow view --------------------------------------
  std::cout << "=== Roadmap adapter: schema as typed flow network ===\n";
  auto roadmap = adapters::RoadmapModel::from_schema(m->schema());
  roadmap.instantiate(tree).expect("instantiate");
  std::cout << roadmap.describe();
  std::cout << roadmap.verify_against(tree).value() << "\n\n";

  // ---- all of them share the four levels --------------------------------------
  std::cout << adapters::render_four_level_report(m->schema(), m->db(),
                                                  m->schedule_space(), m->store());
  std::cout << "\n"
            << "Because every representation above fits these four levels, the\n"
            << "Level-3 schedule objects (plans, schedule instances, links) apply\n"
            << "to each of them unchanged -- the paper's generality claim.\n";
  return 0;
}
