// A realistic ASIC implementation flow under schedule management.
//
// Demonstrates the paper's project-manager story at scale: a ten-activity
// RTL-to-signoff flow is planned by simulated execution, executed with
// iterations (timing doesn't close the first time), slips when the designer
// is pulled away for three days, and the plan updates automatically; the
// Gantt chart and status report show planned vs. accomplished throughout.

#include <iostream>

#include "core/risk.hpp"
#include "hercules/workflow_manager.hpp"
#include "track/utilization.hpp"

using namespace herc;

namespace {

constexpr const char* kAsicSchema = R"(
schema asic {
  data rtl, sdc, testbench;
  data gates, floorplan_db, placed_db, cts_db, routed_db, parasitics,
       timing_report, verification_report, gdsii;
  tool synthesizer, floorplanner, placer, cts_tool, router, extractor,
       sta_tool, drc_tool, stream_tool;

  rule Synthesize:  gates               <- synthesizer(rtl, sdc);
  rule Floorplan:   floorplan_db        <- floorplanner(gates);
  rule Place:       placed_db           <- placer(floorplan_db, sdc);
  rule CTS:         cts_db              <- cts_tool(placed_db);
  rule Route:       routed_db           <- router(cts_db);
  rule Extract:     parasitics          <- extractor(routed_db);
  rule STA:         timing_report       <- sta_tool(parasitics, sdc);
  rule Verify:      verification_report <- drc_tool(routed_db, testbench);
  rule StreamOut:   gdsii               <- stream_tool(routed_db, timing_report,
                                                       verification_report);
}
)";

struct ToolDef {
  const char* instance;
  const char* type;
  int hours;
};

}  // namespace

int main() {
  cal::WorkCalendar::Config cal_cfg;
  cal_cfg.epoch = cal::Date(1995, 1, 2);  // first Monday of 1995
  auto m = hercules::WorkflowManager::create(kAsicSchema, cal_cfg,
                                             /*tool_seed=*/42)
               .take();
  m->calendar().add_holiday(cal::Date(1995, 1, 16));  // a long weekend mid-project

  const ToolDef tools[] = {
      {"dc-3.2@sun4", "synthesizer", 9},   {"fp-1.1@sun4", "floorplanner", 5},
      {"qplace@hp735", "placer", 11},      {"ctgen@hp735", "cts_tool", 6},
      {"wroute@hp735", "router", 16},      {"hyperx@sun4", "extractor", 4},
      {"ptime@sun4", "sta_tool", 3},       {"dracula@sun4", "drc_tool", 8},
      {"gds2@sun4", "stream_tool", 2},
  };
  for (const auto& t : tools) {
    m->register_tool({.instance_name = t.instance,
                      .tool_type = t.type,
                      .nominal = cal::WorkDuration::hours(t.hours),
                      .noise_frac = 0.15})
        .expect("register tool");
  }

  m->add_resource("dana", "person");
  m->add_resource("erin", "person");
  m->add_resource("compute-farm", "machine", 2);

  // Extract and bind the signoff task.
  m->extract_task("tapeout", "gdsii").expect("extract");
  m->extract_task("timing", "timing_report", {"routed_db"}).expect("extract timing");
  m->bind("tapeout", "rtl", "soc.rtl").expect("bind");
  m->bind("tapeout", "sdc", "soc.sdc").expect("bind");
  m->bind("tapeout", "testbench", "soc.tb").expect("bind");
  for (const auto& t : tools) m->bind("tapeout", t.type, t.instance).expect("bind");

  // Designer intuition for the first plan (no history yet).
  const std::pair<const char*, int> estimates[] = {
      {"Synthesize", 12}, {"Floorplan", 6}, {"Place", 12}, {"CTS", 8},
      {"Route", 16},      {"Extract", 4},   {"STA", 4},    {"Verify", 8},
      {"StreamOut", 2},
  };
  for (auto [activity, hours] : estimates)
    m->estimator().set_intuition(activity, cal::WorkDuration::hours(hours));

  std::cout << "Task tree:\n" << m->task("tapeout").value()->render() << "\n";

  auto dana = m->db().find_resource("dana").value();
  auto erin = m->db().find_resource("erin").value();
  sched::PlanRequest request;
  request.anchor = m->clock().now();
  for (const char* a : {"Synthesize", "Floorplan", "Place", "CTS", "Route"})
    request.assignments[a] = {dana};
  for (const char* a : {"Extract", "STA", "Verify", "StreamOut"})
    request.assignments[a] = {erin};
  auto plan = m->plan_task("tapeout", request).value();
  std::cout << "--- baseline plan ---\n" << m->gantt("tapeout").value() << "\n";

  std::cout << "--- schedule risk at kickoff ---\n"
            << sched::analyze_risk(m->schedule_space(), m->db(), plan)
                   .take()
                   .render(m->calendar())
            << "\n";

  // Execute the front half of the flow.
  for (const char* a : {"Synthesize", "Floorplan", "Place", "CTS"}) {
    m->run_activity("tapeout", a, "dana").value();
    m->link_completion("tapeout", a).expect("link");
  }
  std::cout << "--- mid-project, front half linked ---\n"
            << m->status_report("tapeout").value() << "\n";

  // Dana is pulled onto an emergency for three workdays: a slip.
  m->clock().advance(cal::WorkDuration::hours(24));

  // Route takes two iterations before timing closes.
  m->run_activity("tapeout", "Route", "dana").value();
  m->run_activity("tapeout", "Extract", "erin").value();
  m->run_activity("tapeout", "STA", "erin").value();
  // STA says no; reroute and redo the timing chain.
  m->run_activity("tapeout", "Route", "dana").value();
  m->run_activity("tapeout", "Extract", "erin").value();
  m->run_activity("tapeout", "STA", "erin").value();
  for (const char* a : {"Route", "Extract", "STA"})
    m->link_completion("tapeout", a).expect("link");

  m->run_activity("tapeout", "Verify", "erin").value();
  m->link_completion("tapeout", "Verify").expect("link");
  m->run_activity("tapeout", "StreamOut", "dana").value();
  m->link_completion("tapeout", "StreamOut").expect("link");

  std::cout << "--- project complete: slip visible against baseline ---\n"
            << m->gantt("tapeout").value() << "\n"
            << m->status_report("tapeout").value() << "\n";

  std::cout << "--- who was loaded how much ---\n"
            << track::utilization(m->schedule_space(), m->db(), plan)
                   .take()
                   .render(m->calendar())
            << "\n";

  // The paper's motivation for integration: next project's plan uses the
  // measured metadata instead of intuition.
  auto next = m->plan_task("timing", {.anchor = m->clock().now(),
                                      .strategy = sched::EstimateStrategy::kMean});
  std::cout << "--- next task planned from measured history (mean strategy) ---\n";
  const auto& space = m->schedule_space();
  for (auto nid : space.plan(next.value()).nodes) {
    const auto& n = space.node(nid);
    std::cout << "  " << n.activity << ": est "
              << n.est_duration.str(m->calendar().minutes_per_day())
              << " (from " << m->db().runs_of_activity(n.activity).size()
              << " measured runs)\n";
  }

  std::cout << "\nIterations per activity (query):\n"
            << m->query("select runs where activity = \"Route\"").value() << "\n";
  return 0;
}
