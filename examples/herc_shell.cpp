// Interactive shell over the workflow manager — the scriptable stand-in for
// the paper's Fig. 8 GUI.  Reads commands from stdin (one per line; try
// `help`), so it works both interactively and piped:
//
//   echo 'help' | ./build/examples/herc_shell
//   ./build/examples/herc_shell < session_script.txt

#include <iostream>
#include <string>

#include "cli/cli.hpp"

int main() {
  herc::cli::CliSession session;
  std::cout << "hercsched shell — 'help' lists commands, 'quit' exits\n";
  std::string line;
  while (!session.quit_requested()) {
    std::cout << "herc> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    auto result = session.execute_line(line);
    if (result.ok()) {
      std::cout << result.value();
    } else {
      std::cout << "error: " << result.error().str() << "\n";
    }
  }
  std::cout << "\n";
  return 0;
}
