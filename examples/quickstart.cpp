// Quickstart: the paper's circuit design example, end to end.
//
// Walks the exact procedure of Sec. IV.A:
//   1. define the task schema of Fig. 4  (netlist <- editor();
//      performance <- simulator(netlist, stimuli))
//   2. initialize the task database
//   3. extract a task tree and bind tools/data to its leaves
//   4. *plan* the schedule by simulating the execution (Fig. 5)
//   5. execute the flow, iterating Simulate (Fig. 6)
//   6. link final design data to schedule instances (Fig. 7)
//   7. examine status: Gantt chart, queries, browser (Fig. 8 features)

//   8. observe: the whole session is captured on the manager's event bus —
//      a Chrome/Perfetto trace lands in trace.json (or argv[1]) and the
//      counter/latency summary is printed at the end.

#include <iostream>

#include "hercules/workflow_manager.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"

using namespace herc;

namespace {

constexpr const char* kCircuitSchema = R"(
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

}  // namespace

int main(int argc, char** argv) {
  // --- 1-2: schema + database -------------------------------------------------
  cal::WorkCalendar::Config cal_cfg;
  cal_cfg.epoch = cal::Date(1995, 6, 12);  // the week of DAC'95
  auto created = hercules::WorkflowManager::create(kCircuitSchema, cal_cfg);
  if (!created.ok()) {
    std::cerr << created.error().str() << "\n";
    return 1;
  }
  auto manager = std::move(created).take();

  // --- 8 (running throughout): observability ----------------------------------
  obs::ChromeTraceExporter trace;
  obs::MetricsRegistry metrics;
  trace.attach(manager->bus());
  metrics.attach(manager->bus());
  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";

  std::cout << manager->schema().describe() << "\n";

  manager->register_tool({.instance_name = "ned-2.1",
                          .tool_type = "netlist_editor",
                          .nominal = cal::WorkDuration::hours(14)})
      .expect("register editor");
  manager->register_tool({.instance_name = "spice3f5@server1",
                          .tool_type = "simulator",
                          .nominal = cal::WorkDuration::hours(6)})
      .expect("register simulator");
  manager->add_resource("alice");
  manager->add_resource("bob");

  // --- 3: extract + bind --------------------------------------------------------
  manager->extract_task("adder", "performance").expect("extract");
  manager->bind("adder", "stimuli", "adder.stimuli").expect("bind stimuli");
  manager->bind("adder", "netlist_editor", "ned-2.1").expect("bind editor");
  manager->bind("adder", "simulator", "spice3f5@server1").expect("bind simulator");

  std::cout << "Task tree 'adder':\n"
            << manager->task("adder").value()->render() << "\n";

  // --- 4: plan = simulate the execution ---------------------------------------
  manager->estimator().set_intuition("Create", cal::WorkDuration::hours(16));  // 2 days
  manager->estimator().set_intuition("Simulate", cal::WorkDuration::hours(8));

  sched::PlanRequest request;
  request.anchor = manager->clock().now();
  auto plan = manager->plan_task("adder", request);
  if (!plan.ok()) {
    std::cerr << plan.error().str() << "\n";
    return 1;
  }
  std::cout << "--- after planning (cf. paper Fig. 5) ---\n"
            << manager->dump_database() << "\n"
            << manager->gantt("adder").value() << "\n";

  // --- 5: execute, with an iteration of Simulate (Fig. 6) ----------------------
  auto execution = manager->execute_task("adder", "alice");
  execution.value();  // throws with a readable message on failure

  // First simulation shows the goals are not met; bob reruns it.
  manager->run_activity("adder", "Simulate", "bob").value();

  std::cout << "--- after execution, 1 iteration of Simulate (cf. Fig. 6) ---\n"
            << manager->dump_database() << "\n";

  // --- 6: link final data to schedule instances (Fig. 7) ------------------------
  manager->link_completion("adder", "Create").expect("link Create");
  manager->link_completion("adder", "Simulate").expect("link Simulate");

  std::cout << "--- at completion (cf. Fig. 7) ---\n"
            << manager->dump_database() << "\n";

  // --- 7: status ---------------------------------------------------------------
  std::cout << manager->gantt("adder").value() << "\n"
            << manager->status_report("adder").value() << "\n";

  std::cout << "Query: duration of the last Simulate run\n"
            << manager
                   ->query("select runs where activity = \"Simulate\" "
                           "order by finished desc limit 1")
                   .value()
            << "\n";

  std::cout << "Browser:\n" << manager->browser().list() << "\n";

  // --- 8: observability --------------------------------------------------------
  trace.detach();
  trace.write_file(trace_path).expect("write trace");
  std::cout << "Wrote " << trace.event_count() << " events to " << trace_path
            << " (open in chrome://tracing or ui.perfetto.dev)\n\n"
            << "Session metrics:\n"
            << metrics.text();
  return 0;
}
