// Unit tests for the Level-3 schedule space (plans, nodes, deps, links).

#include <gtest/gtest.h>

#include "core/schedule_space.hpp"
#include "metadata/database.hpp"

namespace herc::sched {
namespace {

schema::TaskSchema circuit_schema() {
  return schema::parse_schema(R"(
    schema circuit {
      data netlist, stimuli, performance;
      tool netlist_editor, simulator;
      rule Create:   netlist     <- netlist_editor();
      rule Simulate: performance <- simulator(netlist, stimuli);
    }
  )").take();
}

class ScheduleSpaceTest : public ::testing::Test {
 protected:
  ScheduleSpaceTest() : schema_(circuit_schema()), db_(schema_) {}

  ScheduleRunId make_plan(const std::string& name = "p",
                          ScheduleRunId from = ScheduleRunId::invalid()) {
    return space_.create_plan(name, cal::WorkInstant(0), from);
  }

  schema::TaskSchema schema_;
  meta::Database db_;
  ScheduleSpace space_;
};

TEST_F(ScheduleSpaceTest, PlanCreationAndLookup) {
  auto p = make_plan("adder");
  EXPECT_EQ(space_.plan(p).name, "adder");
  EXPECT_EQ(space_.plan(p).status, PlanStatus::kActive);
  EXPECT_EQ(space_.active_plan().value(), p);
  EXPECT_THROW(space_.plan(ScheduleRunId{99}), std::out_of_range);
}

TEST_F(ScheduleSpaceTest, DerivedPlanSupersedesPrevious) {
  auto p1 = make_plan("v1");
  auto p2 = make_plan("v2", p1);
  EXPECT_EQ(space_.plan(p1).status, PlanStatus::kSuperseded);
  EXPECT_EQ(space_.plan(p2).status, PlanStatus::kActive);
  EXPECT_EQ(space_.plan(p2).derived_from, p1);
  EXPECT_EQ(space_.active_plan().value(), p2);
}

TEST_F(ScheduleSpaceTest, LineageWalksAncestry) {
  auto p1 = make_plan("v1");
  auto p2 = make_plan("v2", p1);
  auto p3 = make_plan("v3", p2);
  auto lineage = space_.lineage(p3);
  ASSERT_EQ(lineage.size(), 3u);
  EXPECT_EQ(lineage[0], p3);
  EXPECT_EQ(lineage[1], p2);
  EXPECT_EQ(lineage[2], p1);
  EXPECT_EQ(space_.lineage(p1).size(), 1u);
}

TEST_F(ScheduleSpaceTest, NodeVersionsCountPerActivityAcrossPlans) {
  auto p1 = make_plan();
  auto rule = schema_.find_rule_by_activity("Create").value();
  auto n1 = space_.create_node(p1, "Create", rule);
  auto p2 = make_plan("p2", p1);
  auto n2 = space_.create_node(p2, "Create", rule);
  EXPECT_EQ(space_.node(n1).version, 1);  // SC1
  EXPECT_EQ(space_.node(n2).version, 2);  // SC2, as in paper Fig. 5
  auto container = space_.container("Create");
  ASSERT_EQ(container.size(), 2u);
  EXPECT_EQ(container[0], n1);
  EXPECT_EQ(container[1], n2);
  EXPECT_TRUE(space_.container("Simulate").empty());
}

TEST_F(ScheduleSpaceTest, NodeInPlanFindsByActivity) {
  auto p = make_plan();
  auto rule = schema_.find_rule_by_activity("Create").value();
  auto n = space_.create_node(p, "Create", rule);
  EXPECT_EQ(space_.node_in_plan(p, "Create").value(), n);
  EXPECT_FALSE(space_.node_in_plan(p, "Simulate").has_value());
}

TEST_F(ScheduleSpaceTest, DepsWithinOnePlanOnly) {
  auto p1 = make_plan();
  auto p2 = make_plan("other");
  auto rule = schema_.find_rule_by_activity("Create").value();
  auto a = space_.create_node(p1, "Create", rule);
  auto b = space_.create_node(p2, "Create", rule);
  EXPECT_THROW(space_.add_dep(p1, a, b), std::logic_error);
  auto c = space_.create_node(p1, "Simulate",
                              schema_.find_rule_by_activity("Simulate").value());
  space_.add_dep(p1, a, c);
  ASSERT_EQ(space_.plan(p1).deps.size(), 1u);
  EXPECT_EQ(space_.plan(p1).deps[0].from, a);
}

TEST_F(ScheduleSpaceTest, LinksAreUniquePerNode) {
  auto p = make_plan();
  auto n = space_.create_node(p, "Create",
                              schema_.find_rule_by_activity("Create").value());
  auto inst = db_.create_instance("netlist", "x", meta::RunId::invalid(),
                                  util::DataObjectId{}, cal::WorkInstant(0))
                  .value();
  auto l = space_.add_link(n, inst, cal::WorkInstant(10));
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(space_.link_of(n).value(), l.value());
  // Double-link rejected.
  EXPECT_FALSE(space_.add_link(n, inst, cal::WorkInstant(11)).ok());
  // Bad arguments rejected.
  EXPECT_FALSE(space_.add_link(ScheduleNodeId{77}, inst, cal::WorkInstant(0)).ok());
  EXPECT_FALSE(space_.add_link(n, meta::EntityInstanceId{}, cal::WorkInstant(0)).ok());
}

TEST_F(ScheduleSpaceTest, DumpShowsInstancesAndLinks) {
  auto p = make_plan("adder");
  auto n = space_.create_node(p, "Create",
                              schema_.find_rule_by_activity("Create").value());
  auto inst = db_.create_instance("netlist", "x", meta::RunId::invalid(),
                                  util::DataObjectId{}, cal::WorkInstant(0))
                  .value();
  space_.add_link(n, inst, cal::WorkInstant(5)).value();
  std::string d = space_.dump_containers(db_);
  EXPECT_NE(d.find("SC1 [Create]"), std::string::npos);
  EXPECT_NE(d.find("linked to"), std::string::npos);
  EXPECT_NE(d.find("[Simulate] (empty)"), std::string::npos);
}

TEST_F(ScheduleSpaceTest, NodeStrShowsVersionAndCompletion) {
  auto p = make_plan();
  auto n = space_.create_node(p, "Create",
                              schema_.find_rule_by_activity("Create").value());
  EXPECT_EQ(space_.node(n).str().substr(0, 3), "SC1");
  space_.node_mut(n).completed = true;
  EXPECT_NE(space_.node(n).str().find("(done)"), std::string::npos);
}

}  // namespace
}  // namespace herc::sched
