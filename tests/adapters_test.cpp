// Unit tests for the generality adapters: Petri (Hilda), trace (VOV),
// roadmap (ELSIS/Philips), and the Table I report.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "adapters/four_level.hpp"
#include "adapters/history.hpp"
#include "adapters/petri.hpp"
#include "adapters/roadmap.hpp"
#include "adapters/trace.hpp"
#include "common.hpp"

namespace herc::adapters {
namespace {

// --- PetriNet core semantics -----------------------------------------------

TEST(PetriNet, EnableAndFire) {
  PetriNet net;
  auto p1 = net.add_place("in", 1);
  auto p2 = net.add_place("out");
  auto t = net.add_transition("go");
  net.add_input_arc(p1, t);
  net.add_output_arc(t, p2);
  EXPECT_TRUE(net.enabled(t));
  EXPECT_TRUE(net.fire(t).ok());
  EXPECT_EQ(net.marking(p1), 0);
  EXPECT_EQ(net.marking(p2), 1);
  EXPECT_FALSE(net.enabled(t));
  EXPECT_FALSE(net.fire(t).ok());  // kConflict
}

TEST(PetriNet, MultipleArcsNeedMultipleTokens) {
  PetriNet net;
  auto p = net.add_place("p", 1);
  auto t = net.add_transition("t");
  net.add_input_arc(p, t);
  net.add_input_arc(p, t);  // needs 2 tokens
  EXPECT_FALSE(net.enabled(t));
}

TEST(PetriNet, FireUnknownTransitionFails) {
  PetriNet net;
  EXPECT_FALSE(net.fire(3).ok());
}

TEST(PetriNet, RunToQuiescenceChainsFirings) {
  PetriNet net;
  auto a = net.add_place("a", 1);
  auto b = net.add_place("b");
  auto c = net.add_place("c");
  auto t1 = net.add_transition("t1");
  auto t2 = net.add_transition("t2");
  net.add_input_arc(a, t1);
  net.add_output_arc(t1, b);
  net.add_input_arc(b, t2);
  net.add_output_arc(t2, c);
  auto seq = net.run_to_quiescence();
  EXPECT_EQ(seq, (std::vector<PetriNet::TransitionId>{t1, t2}));
  EXPECT_EQ(net.marking(c), 1);
  EXPECT_TRUE(net.quiescent());
}

TEST(PetriNet, DescribeShowsMarking) {
  PetriNet net;
  net.add_place("p", 2);
  std::string d = net.describe();
  EXPECT_NE(d.find("p [**]"), std::string::npos);
}

// --- timed Petri semantics ----------------------------------------------------

TEST(TimedPetri, ReadArcGatesButDoesNotConsume) {
  // Two readers of one data token both fire; the token survives.  Each
  // reader gets a one-shot ready place (the conversion idiom) so a pure
  // reader doesn't stay enabled forever.
  PetriNet net;
  auto data = net.add_place("data", 1);
  auto go1 = net.add_place("go1", 1);
  auto go2 = net.add_place("go2", 1);
  auto o1 = net.add_place("o1");
  auto o2 = net.add_place("o2");
  auto r1 = net.add_transition("r1");
  auto r2 = net.add_transition("r2");
  net.add_read_arc(data, r1);
  net.add_input_arc(go1, r1);
  net.add_read_arc(data, r2);
  net.add_input_arc(go2, r2);
  net.add_output_arc(r1, o1);
  net.add_output_arc(r2, o2);
  auto log = net.run_timed_to_quiescence();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(net.marking(data), 1);
  EXPECT_EQ(net.marking(o1), 1);
  EXPECT_EQ(net.marking(o2), 1);
}

TEST(TimedPetri, ReadersAreNeverSerialized) {
  // Both readers start when the token is available — not one after another.
  PetriNet net;
  auto data = net.add_place("data", 1);
  auto go1 = net.add_place("go1", 1);
  auto go2 = net.add_place("go2", 1);
  auto o1 = net.add_place("o1");
  auto o2 = net.add_place("o2");
  auto r1 = net.add_transition("r1");
  auto r2 = net.add_transition("r2");
  net.add_read_arc(data, r1);
  net.add_input_arc(go1, r1);
  net.add_read_arc(data, r2);
  net.add_input_arc(go2, r2);
  net.add_output_arc(r1, o1);
  net.add_output_arc(r2, o2);
  net.set_duration(r1, 10);
  net.set_duration(r2, 10);
  auto log = net.run_timed_to_quiescence();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].start, 0);
  EXPECT_EQ(log[1].start, 0);  // overlaps r1 instead of waiting for it
  EXPECT_EQ(log[1].finish, 10);
}

TEST(TimedPetri, OutputTokensAreStampedStartPlusDuration) {
  PetriNet net;
  auto a = net.add_place("a", 1);
  auto b = net.add_place("b");
  auto c = net.add_place("c");
  auto t1 = net.add_transition("t1");
  auto t2 = net.add_transition("t2");
  net.add_input_arc(a, t1);
  net.add_output_arc(t1, b);
  net.add_input_arc(b, t2);
  net.add_output_arc(t2, c);
  net.set_duration(t1, 30);
  net.set_duration(t2, 12);
  EXPECT_EQ(net.duration(t1), 30);
  auto log = net.run_timed_to_quiescence();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].start, 0);
  EXPECT_EQ(log[0].finish, 30);
  EXPECT_EQ(log[1].start, 30);  // waits for t1's output token
  EXPECT_EQ(log[1].finish, 42);
}

TEST(TimedPetri, ConflictResolvesToEarliestStart) {
  // Two transitions compete for one shared token; the one whose other input
  // is available sooner wins, and the loser is left disabled.
  PetriNet net;
  auto shared = net.add_place("shared", 1);
  auto late = net.add_place("late");
  auto soon = net.add_place("soon");
  auto oa = net.add_place("oa");
  auto ob = net.add_place("ob");
  auto ta = net.add_transition("ta");
  auto tb = net.add_transition("tb");
  net.add_input_arc(shared, ta);
  net.add_input_arc(late, ta);
  net.add_input_arc(shared, tb);
  net.add_input_arc(soon, tb);
  net.add_output_arc(ta, oa);
  net.add_output_arc(tb, ob);
  // Feed `late` a token at t=20 and `soon` one at t=5 via two producers.
  auto src_late = net.add_place("src_late", 1);
  auto src_soon = net.add_place("src_soon", 1);
  auto mk_late = net.add_transition("mk_late");
  auto mk_soon = net.add_transition("mk_soon");
  net.add_input_arc(src_late, mk_late);
  net.add_output_arc(mk_late, late);
  net.set_duration(mk_late, 20);
  net.add_input_arc(src_soon, mk_soon);
  net.add_output_arc(mk_soon, soon);
  net.set_duration(mk_soon, 5);
  auto log = net.run_timed_to_quiescence();
  std::vector<PetriNet::TransitionId> fired;
  for (const auto& f : log) fired.push_back(f.transition);
  // tb (earliest start 5) takes the shared token; ta never fires.
  EXPECT_NE(std::find(fired.begin(), fired.end(), tb), fired.end());
  EXPECT_EQ(std::find(fired.begin(), fired.end(), ta), fired.end());
  EXPECT_EQ(net.marking(ob), 1);
  EXPECT_EQ(net.marking(oa), 0);
}

TEST(TimedPetri, ConflictTieBreaksToLowestId) {
  PetriNet net;
  auto p = net.add_place("p", 1);
  auto o1 = net.add_place("o1");
  auto o2 = net.add_place("o2");
  auto t1 = net.add_transition("t1");
  auto t2 = net.add_transition("t2");
  net.add_input_arc(p, t1);
  net.add_output_arc(t1, o1);
  net.add_input_arc(p, t2);
  net.add_output_arc(t2, o2);
  auto log = net.run_timed_to_quiescence();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].transition, t1);
}

TEST(TimedPetri, ConsumesEarliestAvailableTokens) {
  PetriNet net;
  auto src = net.add_place("src", 1);
  auto p = net.add_place("p", 1);  // one token at 0 ...
  auto mk = net.add_transition("mk");
  net.add_input_arc(src, mk);
  net.add_output_arc(mk, p);  // ... and one at 40
  net.set_duration(mk, 40);
  auto sink = net.add_place("sink");
  auto eat = net.add_transition("eat");
  net.add_input_arc(p, eat);
  net.add_output_arc(eat, sink);
  auto log = net.run_timed_to_quiescence();
  // eat fires twice: first on the t=0 token, then on the t=40 one.
  ASSERT_EQ(log.size(), 3u);
  std::vector<std::int64_t> eat_starts;
  for (const auto& f : log)
    if (f.transition == eat) eat_starts.push_back(f.start);
  EXPECT_EQ(eat_starts, (std::vector<std::int64_t>{0, 40}));
  EXPECT_EQ(net.marking(sink), 2);
}

TEST(TimedPetri, HandVerifiedDiamondMakespan) {
  // A(5) feeds B(3) and C(7); D(2) needs both: makespan 5+7+2 = 14.
  PetriNet net;
  auto in = net.add_place("in", 1);
  auto a_out = net.add_place("a_out");
  auto b_out = net.add_place("b_out");
  auto c_out = net.add_place("c_out");
  auto d_out = net.add_place("d_out");
  auto A = net.add_transition("A");
  auto B = net.add_transition("B");
  auto C = net.add_transition("C");
  auto D = net.add_transition("D");
  auto go_b = net.add_place("go_b", 1);  // one-shot ready places for readers
  auto go_c = net.add_place("go_c", 1);
  net.add_input_arc(in, A);
  net.add_output_arc(A, a_out);
  net.add_read_arc(a_out, B);  // B and C read A's output concurrently
  net.add_input_arc(go_b, B);
  net.add_output_arc(B, b_out);
  net.add_read_arc(a_out, C);
  net.add_input_arc(go_c, C);
  net.add_output_arc(C, c_out);
  net.add_input_arc(b_out, D);
  net.add_input_arc(c_out, D);
  net.add_output_arc(D, d_out);
  net.set_duration(A, 5);
  net.set_duration(B, 3);
  net.set_duration(C, 7);
  net.set_duration(D, 2);
  auto log = net.run_timed_to_quiescence();
  ASSERT_EQ(log.size(), 4u);
  std::int64_t makespan = 0;
  for (const auto& f : log) makespan = std::max(makespan, f.finish);
  EXPECT_EQ(makespan, 14);
  // B overlaps C: both start at 5.
  EXPECT_EQ(log[1].start, 5);
  EXPECT_EQ(log[2].start, 5);
  EXPECT_EQ(log[3].start, 12);  // D waits for C (the slower branch)
}

TEST(TimedPetri, UntimedFireIgnoresDurations) {
  PetriNet net;
  auto a = net.add_place("a", 1);
  auto b = net.add_place("b");
  auto t = net.add_transition("t");
  net.add_input_arc(a, t);
  net.add_output_arc(t, b);
  net.set_duration(t, 500);
  EXPECT_TRUE(net.fire(t).ok());
  EXPECT_EQ(net.marking(b), 1);
}

// --- task tree -> Petri net conversion ----------------------------------------

TEST(PetriConversion, FiringReachesTargetExactlyLikeNativeExecution) {
  auto m = test::make_asic_manager();
  const auto& tree = *m->task("chip").value();
  auto conv = petri_from_task_tree(tree).take();

  // Places: 6 tree data nodes (rtl, constraints x2, gates, placed, routed)
  // + 3 tool places.  Transitions: 3 activities.
  EXPECT_EQ(conv.net.transition_count(), 3u);

  auto firing = conv.net.run_to_quiescence();
  ASSERT_EQ(firing.size(), 3u);
  EXPECT_EQ(conv.net.marking(conv.target_place), 1);

  // The firing order is exactly the native execution (post) order.
  std::vector<std::string> fired;
  for (auto t : firing) fired.push_back(conv.activity_of_transition[t]);
  std::vector<std::string> native;
  for (auto id : tree.activities_post_order()) native.push_back(tree.activity_name(id));
  EXPECT_EQ(fired, native);
}

TEST(PetriConversion, ToolsAreReusableResources) {
  // Two activities sharing one tool type must both fire (the tool token is
  // returned after each use).
  auto m = hercules::WorkflowManager::create(R"(
    schema shared {
      data a, b;
      tool t;
      rule MakeA: a <- t();
      rule MakeB: b <- t(a);
    }
  )").take();
  m->extract_task("x", "b").expect("extract");
  m->bind("x", "t", "tool1").expect("bind");
  auto conv = petri_from_task_tree(*m->task("x").value()).take();
  auto firing = conv.net.run_to_quiescence();
  EXPECT_EQ(firing.size(), 2u);
  EXPECT_EQ(conv.net.marking(conv.target_place), 1);
}

TEST(PetriConversion, UnboundInputsBlockFiring) {
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  m->extract_task("adder", "performance").expect("extract");
  // stimuli unbound: no token -> Simulate can never fire; Create can.
  auto conv = petri_from_task_tree(*m->task("adder").value()).take();
  auto firing = conv.net.run_to_quiescence();
  ASSERT_EQ(firing.size(), 1u);
  EXPECT_EQ(conv.activity_of_transition[firing[0]], "Create");
  EXPECT_EQ(conv.net.marking(conv.target_place), 0);
}

TEST(PetriConversion, TimedRunMatchesHandComputedChainMakespan) {
  // asic flow is a chain (Synthesize -> Place -> Route) once each rule has an
  // unshared tool; the timed makespan is just the sum of the durations.
  auto m = test::make_asic_manager();
  std::unordered_map<std::string, std::int64_t> durations{
      {"Synthesize", 720}, {"Place", 960}, {"Route", 1440}};
  auto conv = petri_from_task_tree(*m->task("chip").value(),
                                   {.shared_tools = false, .durations = &durations})
                  .take();
  auto log = conv.net.run_timed_to_quiescence();
  ASSERT_EQ(log.size(), 3u);
  std::int64_t makespan = 0;
  for (const auto& f : log) makespan = std::max(makespan, f.finish);
  EXPECT_EQ(makespan, 720 + 960 + 1440);
  EXPECT_EQ(conv.activity_of_transition[log[0].transition], "Synthesize");
  EXPECT_EQ(conv.activity_of_transition[log[2].transition], "Route");
  EXPECT_EQ(log[1].start, 720);  // Place waits for Synthesize's gates token
}

TEST(PetriConversion, TimedRunPreservesMarkingInvariants) {
  auto m = test::make_asic_manager();
  auto conv = petri_from_task_tree(*m->task("chip").value()).take();
  auto log = conv.net.run_timed_to_quiescence();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(conv.net.quiescent());
  // Each activity fired exactly once: ready places drained ...
  for (auto p : conv.ready_places) EXPECT_EQ(conv.net.marking(p), 0);
  // ... tools returned after use (reusable resources) ...
  for (auto p : conv.tool_places) EXPECT_EQ(conv.net.marking(p), 1);
  // ... and the target was produced.
  EXPECT_GE(conv.net.marking(conv.target_place), 1);
}

// --- trace (VOV) -----------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : m_(test::make_circuit_manager()) {
    m_->execute_task("adder", "alice").value();
    m_->run_activity("adder", "Simulate", "bob").value();
  }
  std::unique_ptr<hercules::WorkflowManager> m_;
};

TEST_F(TraceTest, CaptureCountsCompletedRuns) {
  auto trace = TraceGraph::capture(m_->db());
  EXPECT_EQ(trace.transaction_count(), 3u);  // Create + 2x Simulate
  EXPECT_EQ(trace.object_count(), 4u);       // stimuli, netlist, perf v1, perf v2
}

TEST_F(TraceTest, AffectedByPropagatesDownstream) {
  auto trace = TraceGraph::capture(m_->db());
  // Changing the netlist re-runs both Simulate transactions.
  auto netlist = m_->db().latest_in_container("netlist").value();
  auto affected = trace.affected_by(netlist);
  ASSERT_EQ(affected.size(), 2u);
  for (auto rid : affected) EXPECT_EQ(m_->db().run(rid).activity, "Simulate");
  // Changing a leaf output affects nothing.
  auto perf = m_->db().latest_in_container("performance").value();
  EXPECT_TRUE(trace.affected_by(perf).empty());
}

TEST_F(TraceTest, InvalidatedInstancesAreOutputsOfAffectedRuns) {
  auto trace = TraceGraph::capture(m_->db());
  auto stimuli = m_->db().latest_in_container("stimuli").value();
  auto invalidated = trace.invalidated_by(stimuli);
  EXPECT_EQ(invalidated.size(), 2u);  // both performance versions
}

TEST_F(TraceTest, DeriveFlowRecoversActivityStructure) {
  auto trace = TraceGraph::capture(m_->db());
  auto flow = trace.derive_flow();
  ASSERT_EQ(flow.size(), 2u);
  EXPECT_EQ(flow[0].activity, "Create");
  EXPECT_TRUE(flow[0].predecessors.empty());
  EXPECT_EQ(flow[0].observed_runs, 1);
  EXPECT_EQ(flow[1].activity, "Simulate");
  EXPECT_EQ(flow[1].predecessors, (std::vector<std::string>{"Create"}));
  EXPECT_EQ(flow[1].observed_runs, 2);
}

TEST_F(TraceTest, RetraceCollapsesAffectedRunsToActivities) {
  auto trace = TraceGraph::capture(m_->db());
  // A new netlist re-runs both Simulate transactions -> one retrace entry.
  auto netlist = m_->db().latest_in_container("netlist").value();
  EXPECT_EQ(trace.retrace_activities({netlist}),
            (std::vector<std::string>{"Simulate"}));
  // A new stimuli version retraces Simulate too (read by both runs).
  auto stimuli = m_->db().latest_in_container("stimuli").value();
  EXPECT_EQ(trace.retrace_activities({stimuli}),
            (std::vector<std::string>{"Simulate"}));
  // Nothing changed -> nothing to retrace.
  EXPECT_TRUE(trace.retrace_activities({}).empty());
}

TEST_F(TraceTest, ReplayOrderListsEveryTransactionInExecutionOrder) {
  auto trace = TraceGraph::capture(m_->db());
  EXPECT_EQ(trace.replay_order(),
            (std::vector<std::string>{"Create", "Simulate", "Simulate"}));
}

TEST_F(TraceTest, ReplayOrderReproducesTheTraceOnAFreshManager) {
  auto trace = TraceGraph::capture(m_->db());
  auto fresh = test::make_circuit_manager();
  for (const auto& activity : trace.replay_order())
    fresh->run_activity("adder", activity, "carol").value();
  auto replayed = TraceGraph::capture(fresh->db());
  EXPECT_EQ(replayed.transaction_count(), trace.transaction_count());
  EXPECT_EQ(replayed.object_count(), trace.object_count());
  EXPECT_EQ(replayed.replay_order(), trace.replay_order());
}

TEST_F(TraceTest, DescribeListsTransactions) {
  auto trace = TraceGraph::capture(m_->db());
  std::string d = trace.describe();
  EXPECT_NE(d.find("txn"), std::string::npos);
  EXPECT_NE(d.find("Create"), std::string::npos);
}

TEST(Trace, FailedRunsExcluded) {
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  m->register_tool({.instance_name = "ed", .tool_type = "netlist_editor",
                    .fail_rate = 1.0})
      .expect("tool");
  m->register_tool({.instance_name = "sim", .tool_type = "simulator"}).expect("tool");
  m->extract_task("adder", "performance").expect("extract");
  m->bind("adder", "stimuli", "s").expect("b");
  m->bind("adder", "netlist_editor", "ed").expect("b");
  m->bind("adder", "simulator", "sim").expect("b");
  m->execute_task("adder", "alice").value();  // Create fails
  auto trace = TraceGraph::capture(m->db());
  EXPECT_EQ(trace.transaction_count(), 0u);
}

// --- roadmap (ELSIS / Philips) ---------------------------------------------------

TEST(Roadmap, FlowTypesMirrorConstructionRules) {
  auto m = test::make_asic_manager();
  auto model = RoadmapModel::from_schema(m->schema());
  ASSERT_EQ(model.flow_types().size(), 3u);
  auto synth = model.flow_types()[*model.find_flow_type("Synthesize")];
  ASSERT_EQ(synth.pins.size(), 3u);  // rtl, constraints, out
  EXPECT_EQ(synth.pins[0].data_type, "rtl");
  EXPECT_TRUE(synth.pins[0].is_input);
  EXPECT_EQ(synth.output().data_type, "gates");
  EXPECT_FALSE(synth.output().is_input);
  EXPECT_EQ(synth.tool_type, "synthesizer");
}

TEST(Roadmap, InstantiationIsomorphicToTaskTree) {
  auto m = test::make_asic_manager();
  auto model = RoadmapModel::from_schema(m->schema());
  const auto& tree = *m->task("chip").value();
  ASSERT_TRUE(model.instantiate(tree).ok());
  EXPECT_EQ(model.instances().size(), 3u);
  EXPECT_EQ(model.channels().size(), 2u);  // Synthesize->Place, Place->Route
  auto report = model.verify_against(tree);
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_NE(report.value().find("isomorphic"), std::string::npos);
}

TEST(Roadmap, RejectsForeignSchema) {
  auto m1 = test::make_asic_manager();
  auto m2 = test::make_circuit_manager();
  auto model = RoadmapModel::from_schema(m1->schema());
  EXPECT_FALSE(model.instantiate(*m2->task("adder").value()).ok());
}

TEST(Roadmap, DescribeShowsNetwork) {
  auto m = test::make_asic_manager();
  auto model = RoadmapModel::from_schema(m->schema());
  model.instantiate(*m->task("chip").value()).expect("instantiate");
  std::string d = model.describe();
  EXPECT_NE(d.find("flowtype Synthesize"), std::string::npos);
  EXPECT_NE(d.find("==>"), std::string::npos);
}

// --- history model (Chiueh & Katz) --------------------------------------------

class HistoryTest : public ::testing::Test {
 protected:
  HistoryTest() : m_(test::make_circuit_manager()) {
    m_->execute_task("adder", "alice").value();          // import + 2 derives + 2 runs
    m_->clock().advance(cal::WorkDuration::hours(4));
    m_->run_activity("adder", "Simulate", "bob").value();  // 1 derive + 1 run
  }
  std::unique_ptr<hercules::WorkflowManager> m_;
};

TEST_F(HistoryTest, CaptureOrdersEventsByTime) {
  auto h = HistoryModel::capture(m_->db());
  // 4 instances (stimuli import, netlist, perf v1, perf v2) + 3 runs.
  ASSERT_EQ(h.events().size(), 7u);
  for (std::size_t i = 1; i < h.events().size(); ++i)
    EXPECT_LE(h.events()[i - 1].at, h.events()[i].at);
  // The import of stimuli happens lazily when Simulate first needs it, so
  // the first event is the netlist derivation; an import exists somewhere.
  EXPECT_EQ(h.events().front().kind, HistoryEvent::Kind::kDerive);
  int imports = 0;
  for (const auto& e : h.events())
    if (e.kind == HistoryEvent::Kind::kImport) ++imports;
  EXPECT_EQ(imports, 1);
}

TEST_F(HistoryTest, StateAtReconstructsThePast) {
  auto h = HistoryModel::capture(m_->db());
  // Before anything ran.
  auto t0 = h.state_at(cal::WorkInstant(-1));
  EXPECT_EQ(t0.instances, 0u);
  EXPECT_EQ(t0.runs, 0u);
  // After Create finished (14h) but before the first Simulate (20h):
  auto mid = h.state_at(cal::WorkInstant(15 * 60));
  EXPECT_EQ(mid.runs, 1u);
  EXPECT_EQ(mid.instances, 2u);  // stimuli import + netlist
  // Container view as of mid: performance still empty.
  for (const auto& [type, ids] : mid.containers) {
    if (type == "performance") { EXPECT_TRUE(ids.empty()); }
    if (type == "netlist") { EXPECT_EQ(ids.size(), 1u); }
  }
  // At the very end everything is present.
  auto now = h.state_at(m_->clock().now());
  EXPECT_EQ(now.instances, 4u);
  EXPECT_EQ(now.runs, 3u);
}

TEST_F(HistoryTest, VersionChainTracksDerivations) {
  auto h = HistoryModel::capture(m_->db());
  auto chain = h.version_chain("performance", "performance");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_TRUE(chain[0].produced_by.valid());
  EXPECT_LT(chain[0].at, chain[1].at);
  EXPECT_TRUE(h.version_chain("performance", "nope").empty());
  // Imports have no producing run.
  auto stim = h.version_chain("stimuli", "adder.stimuli");
  ASSERT_EQ(stim.size(), 1u);
  EXPECT_FALSE(stim[0].produced_by.valid());
}

TEST_F(HistoryTest, DescribeRendersTimeline) {
  auto h = HistoryModel::capture(m_->db());
  std::string d = h.describe(m_->calendar());
  EXPECT_NE(d.find("import"), std::string::npos);
  EXPECT_NE(d.find("derive"), std::string::npos);
  EXPECT_NE(d.find("run"), std::string::npos);
}

// --- Table I / four-level report ---------------------------------------------------

TEST(Table1, HasAllSixSystemsPlusExtension) {
  auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 7u);
  std::vector<std::string> names;
  for (const auto& r : rows) names.push_back(r.system);
  for (const char* expected :
       {"RoadMap Model", "ELSIS", "Hercules", "History Model", "Hilda", "VOV"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  // The schedule extension adds Level-3 objects and changes nothing else.
  EXPECT_NE(rows.back().levels[2].find("ScheduleRun"), std::string::npos);
  EXPECT_EQ(rows.back().levels[0], "(unchanged)");
}

TEST(Table1, RenderIsATable) {
  std::string t = render_table1();
  EXPECT_NE(t.find("TABLE I"), std::string::npos);
  EXPECT_NE(t.find("Level 1"), std::string::npos);
  EXPECT_NE(t.find("Hilda"), std::string::npos);
}

TEST(FourLevelReport, CountsLiveObjects) {
  auto m = test::make_circuit_manager();
  m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "alice").value();
  m->link_completion("adder", "Create").expect("link");
  std::string report = render_four_level_report(m->schema(), m->db(),
                                                m->schedule_space(), m->store());
  EXPECT_NE(report.find("3 data types"), std::string::npos);
  EXPECT_NE(report.find("2 tool types"), std::string::npos);
  EXPECT_NE(report.find("3 entity instances"), std::string::npos);
  EXPECT_NE(report.find("1 plans"), std::string::npos);
  EXPECT_NE(report.find("1 completion links"), std::string::npos);
  EXPECT_NE(report.find("3 data objects"), std::string::npos);
}

}  // namespace
}  // namespace herc::adapters
