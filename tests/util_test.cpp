// Unit tests for herc::util: ids, Result/Status, strings, topo, rng.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/fsio.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/topo.hpp"

namespace herc::util {
namespace {

// --- ids ----------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  RunId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, RunId::invalid());
  EXPECT_EQ(id.str(), "#-");
}

TEST(Ids, AllocatorIsDenseFromOne) {
  IdAllocator<RunTag> alloc;
  EXPECT_EQ(alloc.next().value(), 1u);
  EXPECT_EQ(alloc.next().value(), 2u);
  EXPECT_EQ(alloc.next().value(), 3u);
}

TEST(Ids, ReserveAtLeastSkipsPastLoadedIds) {
  IdAllocator<RunTag> alloc;
  alloc.reserve_at_least(RunId{10});
  EXPECT_EQ(alloc.next().value(), 11u);
  alloc.reserve_at_least(RunId{5});  // lower than current: no effect
  EXPECT_EQ(alloc.next().value(), 12u);
}

TEST(Ids, DistinctTagsDistinctTypes) {
  static_assert(!std::is_same_v<RunId, ScheduleRunId>);
  RunId a{7};
  EXPECT_EQ(a.str(), "#7");
  EXPECT_LT(RunId{3}, RunId{4});
}

TEST(Ids, HashUsableInUnorderedContainers) {
  std::hash<RunId> h;
  EXPECT_NE(h(RunId{1}), h(RunId{2}));
}

// --- Result / Status -------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = not_found("no such thing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kNotFound);
  EXPECT_NE(r.error().str().find("no such thing"), std::string::npos);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r = invalid("nope");
  EXPECT_THROW((void)r.value(), std::runtime_error);
}

TEST(Result, ErrorOnValueThrows) {
  Result<int> r = 1;
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_NO_THROW(s.expect("fine"));
}

TEST(Status, ErrorStatusThrowsOnExpect) {
  Status s = conflict("busy");
  EXPECT_FALSE(s.ok());
  EXPECT_THROW(s.expect("ctx"), std::runtime_error);
}

TEST(Status, ErrorCodeNamesAreDistinct) {
  std::set<std::string> names;
  for (auto c : {Error::Code::kParse, Error::Code::kNotFound, Error::Code::kInvalid,
                 Error::Code::kUnbound, Error::Code::kConflict,
                 Error::Code::kUnsupported})
    names.insert(Error::code_name(c));
  EXPECT_EQ(names.size(), 6u);
}

// --- strings -----------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitTrailingSeparator) {
  auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWsDropsEmpties) {
  auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc_123"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcdef", 4), "abcdef");  // never truncates
}

TEST(Strings, JsonQuoteEscapes) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
}

TEST(Strings, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

// --- topo ---------------------------------------------------------------------

TEST(Topo, EmptyGraph) {
  Digraph g(0);
  auto order = topo_sort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(Topo, ChainOrders) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto order = topo_sort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Topo, DeterministicAmongReady) {
  // 2 and 0 both ready; smallest index first.
  Digraph g(3);
  g.add_edge(2, 1);
  g.add_edge(0, 1);
  auto order = topo_sort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(Topo, CycleDetected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(topo_sort(g).has_value());
  auto cycle = find_cycle(g);
  EXPECT_EQ(cycle.size(), 3u);
}

TEST(Topo, SelfLoopIsACycle) {
  Digraph g(2);
  g.add_edge(1, 1);
  EXPECT_FALSE(topo_sort(g).has_value());
  auto cycle = find_cycle(g);
  ASSERT_EQ(cycle.size(), 1u);
  EXPECT_EQ(cycle[0], 1u);
}

TEST(Topo, FindCycleOnDagIsEmpty) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_TRUE(find_cycle(g).empty());
}

TEST(Topo, LongestPath) {
  Digraph g(4);  // diamond
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  auto dist = longest_path_to(g);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 2u);
}

TEST(Topo, LongestPathThrowsOnCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(longest_path_to(g), std::logic_error);
}

/// Property: for random DAGs (edges only forward), topo order respects all
/// edges and is a permutation.
class TopoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopoProperty, RandomDagOrderRespectsEdges) {
  Rng rng(GetParam());
  const std::size_t n = 30;
  Digraph g(n);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.chance(0.15)) {
        g.add_edge(i, j);
        edges.emplace_back(i, j);
      }
  auto order = topo_sort(g);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), n);
  std::vector<std::size_t> pos(n);
  std::set<std::size_t> seen(order->begin(), order->end());
  EXPECT_EQ(seen.size(), n);  // permutation
  for (std::size_t i = 0; i < n; ++i) pos[(*order)[i]] = i;
  for (auto [a, b] : edges) EXPECT_LT(pos[a], pos[b]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoProperty, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// --- rng ------------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalRoughlyCentred) {
  Rng rng(11);
  double sum = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- fsio ----------------------------------------------------------------

TEST(Fsio, ReadWriteRoundTrip) {
  const std::string path = "/tmp/herc_fsio_rw.txt";
  ASSERT_TRUE(write_file(path, "hello\nworld\n").ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(Fsio, ReadMissingFileIsNotFound) {
  auto r = read_file("/tmp/herc_fsio_no_such_file");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kNotFound);
}

TEST(Fsio, AtomicWriteReplacesAndCleansUpTemp) {
  const std::string path = "/tmp/herc_fsio_atomic.txt";
  ASSERT_TRUE(write_file(path, "old").ok());
  ASSERT_TRUE(write_file_atomic(path, "new contents").ok());
  EXPECT_EQ(read_file(path).value(), "new contents");
  EXPECT_FALSE(read_file(path + ".tmp").ok());  // no temp left behind
  std::remove(path.c_str());
}

TEST(Fsio, AtomicWriteToBadDirectoryFailsCleanly) {
  EXPECT_FALSE(write_file_atomic("/no/such/dir/f.txt", "x").ok());
  EXPECT_FALSE(write_file("/no/such/dir/f.txt", "x").ok());
}

}  // namespace
}  // namespace herc::util
