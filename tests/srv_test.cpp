// Server front-end tests: lifecycle over unix and tcp listeners, the
// server-level ops, multi-client concurrency against distinct and shared
// projects, pipelining, protocol-error isolation, the gen request-stream
// driver, and the group-commit flush accounting the load driver reports.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gen/gen.hpp"
#include "srv/client.hpp"
#include "srv/load.hpp"
#include "srv/server.hpp"

namespace herc::srv {
namespace {

using util::Json;
using util::JsonObject;

/// Fresh scratch directory + unix socket path per test, removed on teardown.
struct TempServerDir {
  explicit TempServerDir(const std::string& tag)
      : dir(std::filesystem::temp_directory_path() /
            ("herc_srv_test_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempServerDir() { std::filesystem::remove_all(dir); }

  [[nodiscard]] std::string sock() const { return (dir / "srv.sock").string(); }
  [[nodiscard]] std::string path() const { return dir.string(); }

  std::filesystem::path dir;
};

ServerConfig base_config(const TempServerDir& tmp) {
  ServerConfig config;
  config.unix_path = tmp.sock();
  config.shard.dir = tmp.path();
  config.workers = 4;
  return config;
}

JsonObject open_args(const std::string& name, std::uint64_t seed) {
  JsonObject args;
  args.set("name", name);
  args.set("scenario_seed", Json(static_cast<std::int64_t>(seed)));
  args.set("shape", "layered");
  args.set("size", Json(2));
  return args;
}

TEST(Server, StartStopUnixAndTcp) {
  TempServerDir tmp("startstop");
  ServerConfig config = base_config(tmp);
  config.tcp_port = 0;  // kernel-assigned
  auto server = Server::start(std::move(config));
  ASSERT_TRUE(server.ok()) << server.error().str();
  EXPECT_GT(server.value()->tcp_port(), 0);

  // Both listeners answer ping.
  for (const std::string& addr :
       {server.value()->unix_address(), server.value()->tcp_address()}) {
    auto client = Client::connect(addr);
    ASSERT_TRUE(client.ok()) << addr << ": " << client.error().str();
    auto pong = client.value()->invoke("", "ping");
    ASSERT_TRUE(pong.ok()) << pong.error().str();
    EXPECT_TRUE(pong.value().as_object().at("pong").as_bool());
  }

  server.value()->stop();
  // Idempotent; the socket file is gone.
  server.value()->stop();
  EXPECT_FALSE(std::filesystem::exists(tmp.sock()));
}

TEST(Server, RequiresAListener) {
  ServerConfig config;  // neither unix nor tcp
  auto server = Server::start(std::move(config));
  EXPECT_FALSE(server.ok());
}

TEST(Server, OpenExecuteStatsClose) {
  TempServerDir tmp("basic");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok()) << server.error().str();
  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());

  auto opened = client.value()->invoke("", "open", open_args("chip", 7));
  ASSERT_TRUE(opened.ok()) << opened.error().str();
  EXPECT_TRUE(std::filesystem::exists(
      opened.value().as_object().at("snapshot").as_string()));

  // Re-opening the same name conflicts.
  auto dup = client.value()->call("", "open", open_args("chip", 7));
  ASSERT_TRUE(dup.ok());
  ASSERT_FALSE(dup.value().ok);
  EXPECT_EQ(dup.value().error.code, util::Error::Code::kConflict);

  JsonObject exec_args;
  exec_args.set("designer", "pat");
  auto executed = client.value()->invoke("chip", "execute", std::move(exec_args));
  ASSERT_TRUE(executed.ok()) << executed.error().str();
  const std::int64_t runs = executed.value().as_object().at("runs").as_int();
  EXPECT_GT(runs, 0);

  // Reads work (status needs a plan first) and stats reflects the executes.
  ASSERT_TRUE(client.value()->invoke("chip", "plan").ok());
  auto status = client.value()->invoke("chip", "status");
  ASSERT_TRUE(status.ok()) << status.error().str();
  auto stats = client.value()->invoke("", "stats");
  ASSERT_TRUE(stats.ok());
  const JsonObject& doc = stats.value().as_object();
  EXPECT_EQ(doc.at("totals").as_object().at("shards").as_int(), 1);
  const JsonObject& shard = doc.at("shards").as_array().at(0).as_object();
  EXPECT_EQ(shard.at("project").as_string(), "chip");
  EXPECT_EQ(shard.at("runs_executed").as_int(), runs);
  EXPECT_GE(shard.at("srv_requests").as_int(), 2);

  auto closed = client.value()->invoke("", "close", open_args("chip", 7));
  ASSERT_TRUE(closed.ok()) << closed.error().str();
  auto gone = client.value()->call("chip", "status");
  ASSERT_TRUE(gone.ok());
  ASSERT_FALSE(gone.value().ok);
  EXPECT_EQ(gone.value().error.code, util::Error::Code::kNotFound);
  server.value()->stop();
}

TEST(Server, UnknownOpsAndProjectsGetErrorResponses) {
  TempServerDir tmp("errors");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());
  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());

  auto response = client.value()->call("nosuch", "status");
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().error.code, util::Error::Code::kNotFound);

  response = client.value()->call("", "frobnicate");
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().ok);

  // The connection survived both errors.
  auto pong = client.value()->invoke("", "ping");
  EXPECT_TRUE(pong.ok());
  server.value()->stop();
}

TEST(Server, PipelinedResponsesMatchById) {
  TempServerDir tmp("pipeline");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());
  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->invoke("", "open", open_args("p", 3)).ok());

  // Queue several requests, then collect in reverse id order.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    JsonObject args;
    args.set("designer", "d" + std::to_string(i));
    auto id = client.value()->send("p", "execute", std::move(args));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    auto response = client.value()->recv(*it);
    ASSERT_TRUE(response.ok()) << response.error().str();
    EXPECT_EQ(response.value().id, *it);
    EXPECT_TRUE(response.value().ok);
  }
  server.value()->stop();
}

TEST(Server, MalformedFrameDropsOnlyThatConnection) {
  TempServerDir tmp("malformed");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());

  {
    auto bad = net::connect_to(
        net::parse_address(server.value()->unix_address()).value());
    ASSERT_TRUE(bad.ok());
    ASSERT_TRUE(net::send_all(bad.value(), "this is not a frame\n").ok());
    // The server closes the connection: read sees EOF.
    std::string sink;
    auto n = net::recv_some(bad.value(), sink);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0u);
    ::close(bad.value());
  }

  // A well-framed but non-JSON payload gets an error response, connection kept.
  {
    auto odd = net::connect_to(
        net::parse_address(server.value()->unix_address()).value());
    ASSERT_TRUE(odd.ok());
    ASSERT_TRUE(net::send_all(odd.value(), wire::encode_frame("{broken")).ok());
    wire::FrameReader reader;
    std::string chunk;
    std::optional<std::string> payload;
    while (!payload) {
      chunk.clear();
      auto n = net::recv_some(odd.value(), chunk);
      ASSERT_TRUE(n.ok());
      ASSERT_GT(n.value(), 0u);
      reader.feed(chunk);
      payload = reader.poll();
    }
    auto response = wire::Response::parse(*payload);
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.value().ok);
    ::close(odd.value());
  }

  // Fresh clients still work.
  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->invoke("", "ping").ok());
  server.value()->stop();
}

TEST(Server, ConcurrentClientsDistinctProjects) {
  TempServerDir tmp("distinct");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::connect(server.value()->unix_address());
      if (!client.ok()) {
        failures[c] = 100;
        return;
      }
      std::string project = "proj" + std::to_string(c);
      if (!client.value()
               ->invoke("", "open", open_args(project, 10 + c))
               .ok()) {
        failures[c] = 101;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        JsonObject args;
        args.set("designer", "d" + std::to_string(c));
        if (!client.value()->invoke(project, "execute", std::move(args)).ok()) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << "client " << c;

  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());
  auto stats = client.value()->invoke("", "stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(
      stats.value().as_object().at("totals").as_object().at("shards").as_int(),
      kClients);
  server.value()->stop();
}

TEST(Server, ConcurrentClientsSharedProject) {
  TempServerDir tmp("shared");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());
  {
    auto client = Client::connect(server.value()->unix_address());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()->invoke("", "open", open_args("shared", 5)).ok());
  }

  constexpr int kClients = 4;
  constexpr int kRequests = 6;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> runs(kClients, 0);
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::connect(server.value()->unix_address());
      if (!client.ok()) {
        failures[c] = 100;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        JsonObject args;
        args.set("designer", "d" + std::to_string(c));
        auto result = client.value()->invoke("shared", "execute", std::move(args));
        if (!result.ok()) {
          ++failures[c];
        } else {
          runs[c] += result.value().as_object().at("runs").as_int();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::int64_t total_runs = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
    total_runs += runs[c];
  }

  // The shard serialized everything: its counters equal the sum of what the
  // clients were told (the stats op is the cross-check the load driver uses).
  ProjectShard* shard = server.value()->find_shard("shared");
  ASSERT_NE(shard, nullptr);
  const Json stats_doc = shard->stats_json();
  const JsonObject& stats = stats_doc.as_object();
  EXPECT_EQ(stats.at("runs_executed").as_int(), total_runs);
  EXPECT_EQ(stats.at("run_count").as_int(), total_runs);
  EXPECT_EQ(stats.at("journal_lines").as_int(), total_runs);
  // Group commit batched: strictly fewer physical flushes than lines.
  ASSERT_TRUE(stats.contains("group_commit"));
  const JsonObject& gc = stats.at("group_commit").as_object();
  EXPECT_EQ(gc.at("lines").as_int(), total_runs);
  EXPECT_LT(gc.at("srv_group_commits").as_int(), total_runs);
  EXPECT_GE(gc.at("srv_commit_batch_max").as_int(), 1);
  server.value()->stop();
}

TEST(Server, GenRequestStreamDrivesAProject) {
  TempServerDir tmp("stream");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());
  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->invoke("", "open", open_args("gen", 11)).ok());

  gen::RequestStreamSpec spec;
  spec.seed = 42;
  spec.count = 60;
  spec.designers = 3;
  auto stream = gen::request_stream(spec);
  ASSERT_EQ(stream.size(), spec.count);

  // Determinism: the same spec yields the same ops.
  auto again = gen::request_stream(spec);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].op, again[i].op) << i;
  }

  // Streams open with a plan so the status reads are valid.
  EXPECT_EQ(stream.front().op, "plan");

  int executes = 0, reads = 0, advances = 0, plans = 0;
  for (auto& request : stream) {
    if (request.op == "execute") ++executes;
    if (request.op == "status" || request.op == "stats") ++reads;
    if (request.op == "advance") ++advances;
    if (request.op == "plan") ++plans;
    auto response = client.value()->invoke("gen", request.op, request.args);
    ASSERT_TRUE(response.ok())
        << request.op << ": " << response.error().str();
  }
  EXPECT_GT(executes, 0);
  EXPECT_GT(reads, 0);
  EXPECT_EQ(executes + reads + advances + plans, static_cast<int>(spec.count));
  server.value()->stop();
}

TEST(Server, ShutdownOpRequestsStop) {
  TempServerDir tmp("shutdown");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());
  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());
  auto response = client.value()->invoke("", "shutdown");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(server.value()->stop_requested());
  // The fd handed to pollers is readable now.
  EXPECT_GE(server.value()->stop_event_fd(), 0);
  server.value()->stop();
}

TEST(Server, LoadDriverClosedLoop) {
  TempServerDir tmp("load");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());

  LoadOptions options;
  options.address = server.value()->unix_address();
  options.projects = 2;
  options.designers = 2;
  options.duration = std::chrono::milliseconds(300);
  options.read_every = 4;
  auto report = run_load(options);
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_EQ(report.value().errors, 0u);
  EXPECT_GT(report.value().requests, 0u);
  EXPECT_GT(report.value().runs, 0u);
  EXPECT_GT(report.value().runs_per_sec, 0.0);
  EXPECT_GT(report.value().p99_us, 0);
  EXPECT_GE(report.value().p99_us, report.value().p50_us);
  // Flush accounting came from the stats op and shows batching.
  EXPECT_GT(report.value().journal_lines, 0);
  EXPECT_GT(report.value().group_commits, 0);
  EXPECT_LT(report.value().group_commits, report.value().journal_lines);

  // Cross-check the driver's counters against the server's own.
  std::int64_t stats_runs = 0;
  auto stats = server.value()->stats_json();
  for (const auto& shard : stats.as_object().at("shards").as_array()) {
    stats_runs += shard.as_object().at("runs_executed").as_int();
  }
  EXPECT_EQ(stats_runs, static_cast<std::int64_t>(report.value().runs));
  server.value()->stop();
}

TEST(Server, ReadMixLaneCountersMatchDriver) {
  TempServerDir tmp("readmix");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());

  LoadOptions options;
  options.address = server.value()->unix_address();
  options.projects = 1;
  options.designers = 4;  // 3 dedicated readers + 1 paced writer
  options.read_mix = 90;
  options.rate_per_designer = 20.0;
  options.duration = std::chrono::milliseconds(400);
  auto report = run_load(options);
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_EQ(report.value().errors, 0u);
  EXPECT_GT(report.value().reads, 0u);
  EXPECT_GT(report.value().writes, 0u);

  // The shard's lane counters partition srv_requests exactly, and the read
  // lane must have carried at least the driver's reads (the driver's setup
  // requests — open/plan/warmup/stats — all ride the write lane).
  auto stats = server.value()->stats_json();
  const auto& shard =
      stats.as_object().at("shards").as_array().at(0).as_object();
  const util::JsonObject& sn = shard.at("snapshots").as_object();
  EXPECT_TRUE(sn.at("enabled").as_bool());
  const std::int64_t read_lane = sn.at("read_lane_requests").as_int();
  const std::int64_t write_lane = sn.at("write_lane_requests").as_int();
  EXPECT_EQ(read_lane + write_lane, shard.at("srv_requests").as_int());
  EXPECT_GE(read_lane, static_cast<std::int64_t>(report.value().reads));
  EXPECT_GE(write_lane, static_cast<std::int64_t>(report.value().writes));

  // Snapshot health: epochs were published (one per mutation), and with no
  // reader in flight anymore nothing stays pinned beyond the newest view.
  EXPECT_GT(sn.at("epoch").as_int(), 1);
  EXPECT_GE(sn.at("published").as_int(), sn.at("epoch").as_int());
  EXPECT_EQ(sn.at("live").as_int(), 1);
  EXPECT_EQ(sn.at("retired_unreclaimed").as_int(), 0);
  server.value()->stop();
}

TEST(Server, OverloadSheddingBoundsTheQueue) {
  TempServerDir tmp("shed");
  ServerConfig config = base_config(tmp);
  config.workers = 1;
  config.max_queue_depth = 1;  // in-flight + 1 queued; everything else sheds
  auto server = Server::start(std::move(config));
  ASSERT_TRUE(server.ok()) << server.error().str();

  auto client = Client::connect(server.value()->unix_address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->invoke("", "open", open_args("chip", 3)).ok());

  // Pipeline a burst far past the queue bound: the reader answers the
  // overflow with a retryable `overloaded` error, the worker pool never
  // sees it, and every request still gets exactly one response.
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    JsonObject args;
    args.set("designer", "pat");
    ASSERT_TRUE(client.value()->send("chip", "execute", std::move(args)).ok());
  }
  int succeeded = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto response = client.value()->recv_any();
    ASSERT_TRUE(response.ok()) << response.error().str();
    if (response.value().ok) {
      ++succeeded;
    } else {
      EXPECT_EQ(response.value().error.code, util::Error::Code::kOverloaded);
      EXPECT_TRUE(response.value().error.retryable());
      ++shed;
    }
  }
  EXPECT_EQ(succeeded + shed, kBurst);
  EXPECT_GT(succeeded, 0);
  ASSERT_GT(shed, 0) << "burst never outran a depth-1 queue";

  // A shed request retried after the storm goes through.
  JsonObject args;
  args.set("designer", "pat");
  EXPECT_TRUE(client.value()->invoke("chip", "execute", std::move(args)).ok());

  // The stats op reports the shed count and the configured bound.
  auto stats = server.value()->stats_json();
  const JsonObject& srv = stats.as_object().at("server").as_object();
  EXPECT_EQ(srv.at("srv_requests_shed").as_int(), shed);
  EXPECT_EQ(srv.at("srv_queue_limit").as_int(), 1);
  EXPECT_EQ(stats.as_object().at("totals").as_object().at("shards_read_only").as_int(), 0);
  server.value()->stop();
}

TEST(Server, OpenArrivalLoadDriver) {
  TempServerDir tmp("openload");
  auto server = Server::start(base_config(tmp));
  ASSERT_TRUE(server.ok());

  LoadOptions options;
  options.address = server.value()->unix_address();
  options.projects = 1;
  options.designers = 2;
  options.duration = std::chrono::milliseconds(300);
  options.arrival = LoadOptions::Arrival::kOpen;
  options.rate_per_designer = 50.0;
  auto report = run_load(options);
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_EQ(report.value().errors, 0u);
  EXPECT_GT(report.value().requests, 0u);
  // ~50/s * 2 designers * 0.3s ≈ 30 arrivals; the schedule caps the offered
  // load well below what a closed loop would issue.
  EXPECT_LT(report.value().requests, 60u);
  server.value()->stop();
}

}  // namespace
}  // namespace herc::srv
