// Unit + property tests for serial resource leveling.

#include <gtest/gtest.h>

#include <map>

#include "core/resources.hpp"
#include "util/rng.hpp"

namespace herc::sched {
namespace {

TEST(Leveling, NoResourcesEqualsCpm) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}},
                   {.duration = 20, .preds = {0}},
                   {.duration = 5, .preds = {0}}};
  in.requirements = {{}, {}, {}};
  auto r = level_serial(in).take();
  auto cpm = compute_cpm(in.activities).take();
  EXPECT_EQ(r.start[0], cpm.early_start[0]);
  EXPECT_EQ(r.start[1], cpm.early_start[1]);
  EXPECT_EQ(r.start[2], cpm.early_start[2]);
  EXPECT_EQ(r.makespan, cpm.makespan);
}

TEST(Leveling, SingleResourceSerializesParallelWork) {
  // Two independent activities competing for one unit-capacity person.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 20, .preds = {}}};
  in.requirements = {{0}, {0}};
  in.capacities = {1};
  auto r = level_serial(in).take();
  // They cannot overlap.
  bool overlap = r.start[0] < r.finish[1] && r.start[1] < r.finish[0];
  EXPECT_FALSE(overlap);
  EXPECT_EQ(r.makespan, 30);
}

TEST(Leveling, CapacityTwoAllowsOverlap) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 20, .preds = {}}};
  in.requirements = {{0}, {0}};
  in.capacities = {2};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.makespan, 20);  // both start at 0
  EXPECT_EQ(r.start[0], 0);
  EXPECT_EQ(r.start[1], 0);
}

TEST(Leveling, PriorityFollowsEarlyStartThenIndex) {
  // Three unit jobs on one resource: tie on ES -> index order.
  LevelingInput in;
  in.activities = {{.duration = 5, .preds = {}},
                   {.duration = 5, .preds = {}},
                   {.duration = 5, .preds = {}}};
  in.requirements = {{0}, {0}, {0}};
  in.capacities = {1};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 0);
  EXPECT_EQ(r.start[1], 5);
  EXPECT_EQ(r.start[2], 10);
}

TEST(Leveling, PrecedenceStillRespectedUnderContention) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}},
                   {.duration = 10, .preds = {0}},
                   {.duration = 25, .preds = {}}};
  in.requirements = {{0}, {0}, {0}};
  in.capacities = {1};
  auto r = level_serial(in).take();
  EXPECT_GE(r.start[1], r.finish[0]);
  // No overlap anywhere on the single resource.
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  for (std::size_t i = 0; i < 3; ++i) spans.emplace_back(r.start[i], r.finish[i]);
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].first, spans[i - 1].second);
}

TEST(Leveling, MultiResourceActivityNeedsAll) {
  // Activity 1 needs both resources; 0 and 2 hold one each.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}},
                   {.duration = 10, .preds = {}},
                   {.duration = 10, .preds = {}}};
  in.requirements = {{0}, {0, 1}, {1}};
  in.capacities = {1, 1};
  auto r = level_serial(in).take();
  // 0 and 2 run in parallel at t=0 (different resources); 1 must wait for both.
  EXPECT_EQ(r.start[0], 0);
  EXPECT_EQ(r.start[2], 0);
  EXPECT_GE(r.start[1], 10);
}

TEST(Leveling, ReleaseTimesHonoured) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}, .release = 42}};
  in.requirements = {{}};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 42);
}

TEST(Leveling, BlockedWindowsDelayWork) {
  // One job on one resource that is away for [5, 25).
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}};
  in.requirements = {{0}};
  in.capacities = {1};
  in.blocked = {{{5, 25}}};
  auto r = level_serial(in).take();
  // Cannot start at 0 (would span the window) nor inside it: starts at 25.
  EXPECT_EQ(r.start[0], 25);
}

TEST(Leveling, WorkFitsBeforeBlockedWindow) {
  LevelingInput in;
  in.activities = {{.duration = 5, .preds = {}}};
  in.requirements = {{0}};
  in.capacities = {1};
  in.blocked = {{{5, 25}}};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 0);  // finishes exactly as the vacation begins
}

TEST(Leveling, BlockedSaturatesAllCapacity) {
  // Capacity 2: a vacation must still block both units.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 10, .preds = {}}};
  in.requirements = {{0}, {0}};
  in.capacities = {2};
  in.blocked = {{{0, 20}}};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 20);
  EXPECT_EQ(r.start[1], 20);  // both units free again at 20
}

TEST(Leveling, BlockedValidation) {
  LevelingInput wrong_size;
  wrong_size.activities = {{.duration = 1, .preds = {}}};
  wrong_size.requirements = {{}};
  wrong_size.capacities = {1, 1};
  wrong_size.blocked = {{{0, 5}}};  // 1 entry for 2 resources
  EXPECT_FALSE(level_serial(wrong_size).ok());

  LevelingInput empty_window;
  empty_window.activities = {{.duration = 1, .preds = {}}};
  empty_window.requirements = {{0}};
  empty_window.capacities = {1};
  empty_window.blocked = {{{5, 5}}};
  EXPECT_FALSE(level_serial(empty_window).ok());
}

TEST(Leveling, ValidationErrors) {
  LevelingInput bad_req;
  bad_req.activities = {{.duration = 1, .preds = {}}};
  bad_req.requirements = {{5}};
  bad_req.capacities = {1};
  EXPECT_FALSE(level_serial(bad_req).ok());

  LevelingInput bad_cap;
  bad_cap.activities = {{.duration = 1, .preds = {}}};
  bad_cap.requirements = {{0}};
  bad_cap.capacities = {0};
  EXPECT_FALSE(level_serial(bad_cap).ok());

  LevelingInput mismatch;
  mismatch.activities = {{.duration = 1, .preds = {}}};
  EXPECT_FALSE(level_serial(mismatch).ok());

  LevelingInput cycle;
  cycle.activities = {{.duration = 1, .preds = {1}}, {.duration = 1, .preds = {0}}};
  cycle.requirements = {{}, {}};
  EXPECT_FALSE(level_serial(cycle).ok());
}

// --- property: random contention never violates capacity or precedence -------

class LevelingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevelingProperty, CapacityAndPrecedenceInvariants) {
  util::Rng rng(GetParam());
  const std::size_t n = 40;
  LevelingInput in;
  in.activities.resize(n);
  in.requirements.resize(n);
  in.capacities = {1, 2, 3};
  for (std::size_t i = 0; i < n; ++i) {
    in.activities[i].duration = rng.uniform_int(1, 60);
    for (std::size_t j = 0; j < i; ++j)
      if (rng.chance(0.06)) in.activities[i].preds.push_back(j);
    for (std::size_t r = 0; r < in.capacities.size(); ++r)
      if (rng.chance(0.4)) in.requirements[i].push_back(r);
  }
  auto result = level_serial(in).take();
  auto cpm = compute_cpm(in.activities).take();

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(result.finish[i], result.start[i] + in.activities[i].duration);
    EXPECT_GE(result.start[i], cpm.early_start[i]);  // leveling only delays
    for (std::size_t p : in.activities[i].preds)
      EXPECT_GE(result.start[i], result.finish[p]);
  }
  EXPECT_GE(result.makespan, cpm.makespan);

  // Capacity check at every activity start instant.
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t t = result.start[i];
    std::map<std::size_t, int> usage;
    for (std::size_t j = 0; j < n; ++j) {
      if (result.start[j] <= t && t < result.finish[j])
        for (std::size_t r : in.requirements[j]) ++usage[r];
    }
    for (const auto& [r, u] : usage) EXPECT_LE(u, in.capacities[r]) << "resource " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelingProperty,
                         ::testing::Values(1, 2, 3, 7, 11, 13, 17, 19));

// --- priority-rule SGS -------------------------------------------------------

TEST(Sgs, NoResourcesEqualsCpm) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}},
                   {.duration = 20, .preds = {0}},
                   {.duration = 5, .preds = {0}}};
  in.requirements = {{}, {}, {}};
  for (auto rule : {PriorityRule::kLst, PriorityRule::kLft, PriorityRule::kMinSlack}) {
    auto r = sgs_schedule(in, {.rule = rule}).take();
    auto cpm = compute_cpm(in.activities).take();
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(r.start[i], cpm.early_start[i]);
    EXPECT_EQ(r.makespan, cpm.makespan);
  }
}

TEST(Sgs, SingleResourceSerializesAndPrefersCritical) {
  // Two independent jobs on one unit pool.  Both late-finish at the
  // makespan, so kLft ties and falls back to index order; kLst and
  // kMinSlack both rank the longer (critical) job first.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 20, .preds = {}}};
  in.requirements = {{0}, {0}};
  in.capacities = {1};
  auto lft = sgs_schedule(in, {.rule = PriorityRule::kLft}).take();
  EXPECT_EQ(lft.start[0], 0);
  EXPECT_EQ(lft.start[1], 10);
  EXPECT_EQ(lft.makespan, 30);
  for (auto rule : {PriorityRule::kLst, PriorityRule::kMinSlack}) {
    auto r = sgs_schedule(in, {.rule = rule}).take();
    EXPECT_EQ(r.start[1], 0);
    EXPECT_EQ(r.start[0], 20);
    EXPECT_EQ(r.makespan, 30);
  }
}

TEST(Sgs, RepeatedRequirementConsumesMultipleUnits) {
  // Activity 0 takes both units of the pool; 1 must wait even though one
  // requirement entry would have fit.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 10, .preds = {}}};
  in.requirements = {{0, 0}, {0}};
  in.capacities = {2};
  auto r = sgs_schedule(in).take();
  bool overlap = r.start[0] < r.finish[1] && r.start[1] < r.finish[0];
  EXPECT_FALSE(overlap);
}

TEST(Sgs, RejectsDemandAboveCapacity) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}};
  in.requirements = {{0, 0, 0}};
  in.capacities = {2};
  auto r = sgs_schedule(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("capacity"), std::string::npos);
}

TEST(Sgs, BlockedWindowsDelayWork) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}};
  in.requirements = {{0}};
  in.capacities = {1};
  in.blocked = {{{5, 25}}};
  auto r = sgs_schedule(in).take();
  EXPECT_EQ(r.start[0], 25);
}

TEST(Sgs, WorkFitsBeforeBlockedWindow) {
  LevelingInput in;
  in.activities = {{.duration = 5, .preds = {}}};
  in.requirements = {{0}};
  in.capacities = {1};
  in.blocked = {{{5, 25}}};
  auto r = sgs_schedule(in).take();
  EXPECT_EQ(r.start[0], 0);
}

TEST(Sgs, ValidationMatchesLevelSerial) {
  LevelingInput bad_req;
  bad_req.activities = {{.duration = 1, .preds = {}}};
  bad_req.requirements = {{5}};
  bad_req.capacities = {1};
  EXPECT_FALSE(sgs_schedule(bad_req).ok());

  LevelingInput cycle;
  cycle.activities = {{.duration = 1, .preds = {1}}, {.duration = 1, .preds = {0}}};
  cycle.requirements = {{}, {}};
  EXPECT_FALSE(sgs_schedule(cycle).ok());

  LevelingInput empty_window;
  empty_window.activities = {{.duration = 1, .preds = {}}};
  empty_window.requirements = {{0}};
  empty_window.capacities = {1};
  empty_window.blocked = {{{5, 5}}};
  EXPECT_FALSE(sgs_schedule(empty_window).ok());
}

// Property: every rule yields a feasible schedule — precedence, releases,
// capacity at *every* instant usage changes (not just starts), makespan at
// or above the unconstrained CPM bound — and is deterministic.
class SgsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SgsProperty, FeasibilityInvariantsUnderEveryRule) {
  util::Rng rng(GetParam() * 131 + 5);
  const std::size_t n = 60;
  LevelingInput in;
  in.activities.resize(n);
  in.requirements.resize(n);
  in.capacities = {1, 2, 3};
  in.blocked = {{}, {{40, 90}}, {}};
  for (std::size_t i = 0; i < n; ++i) {
    in.activities[i].duration = rng.uniform_int(0, 60);
    if (rng.chance(0.2)) in.activities[i].release = rng.uniform_int(0, 100);
    for (std::size_t j = 0; j < i; ++j)
      if (rng.chance(0.05)) in.activities[i].preds.push_back(j);
    for (std::size_t r = 0; r < in.capacities.size(); ++r)
      if (rng.chance(0.35)) in.requirements[i].push_back(r);
    // Occasionally demand two units of the wide pool.
    if (rng.chance(0.1)) in.requirements[i].push_back(2), in.requirements[i].push_back(2);
  }
  auto cpm = compute_cpm(in.activities).take();

  for (auto rule : {PriorityRule::kLst, PriorityRule::kLft, PriorityRule::kMinSlack}) {
    auto result = sgs_schedule(in, {.rule = rule}).take();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(result.finish[i], result.start[i] + in.activities[i].duration);
      EXPECT_GE(result.start[i], in.activities[i].release);
      EXPECT_GE(result.start[i], cpm.early_start[i]);
      for (std::size_t p : in.activities[i].preds)
        EXPECT_GE(result.start[i], result.finish[p]);
    }
    EXPECT_GE(result.makespan, cpm.makespan);

    // Usage only changes at starts and blocked-window starts; check
    // capacity at every such instant, counting repeated requirements and
    // saturated vacation windows.
    std::vector<std::int64_t> instants;
    for (std::size_t i = 0; i < n; ++i) instants.push_back(result.start[i]);
    for (std::size_t r = 0; r < in.blocked.size(); ++r)
      for (auto [s, e] : in.blocked[r]) instants.push_back(s);
    for (std::int64_t t : instants) {
      std::map<std::size_t, int> usage;
      for (std::size_t j = 0; j < n; ++j)
        if (result.start[j] <= t && t < result.finish[j])
          for (std::size_t r : in.requirements[j]) ++usage[r];
      for (std::size_t r = 0; r < in.blocked.size(); ++r)
        for (auto [s, e] : in.blocked[r])
          if (s <= t && t < e) usage[r] += in.capacities[r];
      for (const auto& [r, u] : usage)
        EXPECT_LE(u, in.capacities[r])
            << "rule " << priority_rule_name(rule) << " resource " << r
            << " at t=" << t;
    }

    // Determinism: a second run reproduces the schedule exactly.
    auto again = sgs_schedule(in, {.rule = rule}).take();
    EXPECT_EQ(again.start, result.start);
    EXPECT_EQ(again.makespan, result.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgsProperty,
                         ::testing::Values(1, 2, 3, 7, 11, 13, 17, 19));

}  // namespace
}  // namespace herc::sched
