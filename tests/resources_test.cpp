// Unit + property tests for serial resource leveling.

#include <gtest/gtest.h>

#include <map>

#include "core/resources.hpp"
#include "util/rng.hpp"

namespace herc::sched {
namespace {

TEST(Leveling, NoResourcesEqualsCpm) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}},
                   {.duration = 20, .preds = {0}},
                   {.duration = 5, .preds = {0}}};
  in.requirements = {{}, {}, {}};
  auto r = level_serial(in).take();
  auto cpm = compute_cpm(in.activities).take();
  EXPECT_EQ(r.start[0], cpm.early_start[0]);
  EXPECT_EQ(r.start[1], cpm.early_start[1]);
  EXPECT_EQ(r.start[2], cpm.early_start[2]);
  EXPECT_EQ(r.makespan, cpm.makespan);
}

TEST(Leveling, SingleResourceSerializesParallelWork) {
  // Two independent activities competing for one unit-capacity person.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 20, .preds = {}}};
  in.requirements = {{0}, {0}};
  in.capacities = {1};
  auto r = level_serial(in).take();
  // They cannot overlap.
  bool overlap = r.start[0] < r.finish[1] && r.start[1] < r.finish[0];
  EXPECT_FALSE(overlap);
  EXPECT_EQ(r.makespan, 30);
}

TEST(Leveling, CapacityTwoAllowsOverlap) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 20, .preds = {}}};
  in.requirements = {{0}, {0}};
  in.capacities = {2};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.makespan, 20);  // both start at 0
  EXPECT_EQ(r.start[0], 0);
  EXPECT_EQ(r.start[1], 0);
}

TEST(Leveling, PriorityFollowsEarlyStartThenIndex) {
  // Three unit jobs on one resource: tie on ES -> index order.
  LevelingInput in;
  in.activities = {{.duration = 5, .preds = {}},
                   {.duration = 5, .preds = {}},
                   {.duration = 5, .preds = {}}};
  in.requirements = {{0}, {0}, {0}};
  in.capacities = {1};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 0);
  EXPECT_EQ(r.start[1], 5);
  EXPECT_EQ(r.start[2], 10);
}

TEST(Leveling, PrecedenceStillRespectedUnderContention) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}},
                   {.duration = 10, .preds = {0}},
                   {.duration = 25, .preds = {}}};
  in.requirements = {{0}, {0}, {0}};
  in.capacities = {1};
  auto r = level_serial(in).take();
  EXPECT_GE(r.start[1], r.finish[0]);
  // No overlap anywhere on the single resource.
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  for (std::size_t i = 0; i < 3; ++i) spans.emplace_back(r.start[i], r.finish[i]);
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].first, spans[i - 1].second);
}

TEST(Leveling, MultiResourceActivityNeedsAll) {
  // Activity 1 needs both resources; 0 and 2 hold one each.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}},
                   {.duration = 10, .preds = {}},
                   {.duration = 10, .preds = {}}};
  in.requirements = {{0}, {0, 1}, {1}};
  in.capacities = {1, 1};
  auto r = level_serial(in).take();
  // 0 and 2 run in parallel at t=0 (different resources); 1 must wait for both.
  EXPECT_EQ(r.start[0], 0);
  EXPECT_EQ(r.start[2], 0);
  EXPECT_GE(r.start[1], 10);
}

TEST(Leveling, ReleaseTimesHonoured) {
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}, .release = 42}};
  in.requirements = {{}};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 42);
}

TEST(Leveling, BlockedWindowsDelayWork) {
  // One job on one resource that is away for [5, 25).
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}};
  in.requirements = {{0}};
  in.capacities = {1};
  in.blocked = {{{5, 25}}};
  auto r = level_serial(in).take();
  // Cannot start at 0 (would span the window) nor inside it: starts at 25.
  EXPECT_EQ(r.start[0], 25);
}

TEST(Leveling, WorkFitsBeforeBlockedWindow) {
  LevelingInput in;
  in.activities = {{.duration = 5, .preds = {}}};
  in.requirements = {{0}};
  in.capacities = {1};
  in.blocked = {{{5, 25}}};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 0);  // finishes exactly as the vacation begins
}

TEST(Leveling, BlockedSaturatesAllCapacity) {
  // Capacity 2: a vacation must still block both units.
  LevelingInput in;
  in.activities = {{.duration = 10, .preds = {}}, {.duration = 10, .preds = {}}};
  in.requirements = {{0}, {0}};
  in.capacities = {2};
  in.blocked = {{{0, 20}}};
  auto r = level_serial(in).take();
  EXPECT_EQ(r.start[0], 20);
  EXPECT_EQ(r.start[1], 20);  // both units free again at 20
}

TEST(Leveling, BlockedValidation) {
  LevelingInput wrong_size;
  wrong_size.activities = {{.duration = 1, .preds = {}}};
  wrong_size.requirements = {{}};
  wrong_size.capacities = {1, 1};
  wrong_size.blocked = {{{0, 5}}};  // 1 entry for 2 resources
  EXPECT_FALSE(level_serial(wrong_size).ok());

  LevelingInput empty_window;
  empty_window.activities = {{.duration = 1, .preds = {}}};
  empty_window.requirements = {{0}};
  empty_window.capacities = {1};
  empty_window.blocked = {{{5, 5}}};
  EXPECT_FALSE(level_serial(empty_window).ok());
}

TEST(Leveling, ValidationErrors) {
  LevelingInput bad_req;
  bad_req.activities = {{.duration = 1, .preds = {}}};
  bad_req.requirements = {{5}};
  bad_req.capacities = {1};
  EXPECT_FALSE(level_serial(bad_req).ok());

  LevelingInput bad_cap;
  bad_cap.activities = {{.duration = 1, .preds = {}}};
  bad_cap.requirements = {{0}};
  bad_cap.capacities = {0};
  EXPECT_FALSE(level_serial(bad_cap).ok());

  LevelingInput mismatch;
  mismatch.activities = {{.duration = 1, .preds = {}}};
  EXPECT_FALSE(level_serial(mismatch).ok());

  LevelingInput cycle;
  cycle.activities = {{.duration = 1, .preds = {1}}, {.duration = 1, .preds = {0}}};
  cycle.requirements = {{}, {}};
  EXPECT_FALSE(level_serial(cycle).ok());
}

// --- property: random contention never violates capacity or precedence -------

class LevelingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevelingProperty, CapacityAndPrecedenceInvariants) {
  util::Rng rng(GetParam());
  const std::size_t n = 40;
  LevelingInput in;
  in.activities.resize(n);
  in.requirements.resize(n);
  in.capacities = {1, 2, 3};
  for (std::size_t i = 0; i < n; ++i) {
    in.activities[i].duration = rng.uniform_int(1, 60);
    for (std::size_t j = 0; j < i; ++j)
      if (rng.chance(0.06)) in.activities[i].preds.push_back(j);
    for (std::size_t r = 0; r < in.capacities.size(); ++r)
      if (rng.chance(0.4)) in.requirements[i].push_back(r);
  }
  auto result = level_serial(in).take();
  auto cpm = compute_cpm(in.activities).take();

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(result.finish[i], result.start[i] + in.activities[i].duration);
    EXPECT_GE(result.start[i], cpm.early_start[i]);  // leveling only delays
    for (std::size_t p : in.activities[i].preds)
      EXPECT_GE(result.start[i], result.finish[p]);
  }
  EXPECT_GE(result.makespan, cpm.makespan);

  // Capacity check at every activity start instant.
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t t = result.start[i];
    std::map<std::size_t, int> usage;
    for (std::size_t j = 0; j < n; ++j) {
      if (result.start[j] <= t && t < result.finish[j])
        for (std::size_t r : in.requirements[j]) ++usage[r];
    }
    for (const auto& [r, u] : usage) EXPECT_LE(u, in.capacities[r]) << "resource " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelingProperty,
                         ::testing::Values(1, 2, 3, 7, 11, 13, 17, 19));

}  // namespace
}  // namespace herc::sched
