// Unit tests for the architectural-decomposition schedule (hierarchy +
// roll-up), the paper's Sec. V future-work extension.

#include <gtest/gtest.h>

#include "arch/rollup.hpp"
#include "common.hpp"

namespace herc::arch {
namespace {

// --- hierarchy --------------------------------------------------------------

TEST(Hierarchy, BuildAndNavigate) {
  DesignHierarchy h("soc");
  auto cpu = h.add_component(h.root(), "cpu").value();
  auto dsp = h.add_component(h.root(), "dsp").value();
  auto alu = h.add_component(cpu, "alu").value();
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.name(h.root()), "soc");
  EXPECT_EQ(h.children(h.root()).size(), 2u);
  EXPECT_EQ(h.parent(alu).value(), cpu);
  EXPECT_FALSE(h.parent(h.root()).has_value());
  EXPECT_EQ(h.find("dsp").value(), dsp);
  EXPECT_FALSE(h.find("gpu").has_value());
}

TEST(Hierarchy, PreorderIsRootFirstDepthFirst) {
  DesignHierarchy h("soc");
  auto cpu = h.add_component(h.root(), "cpu").value();
  auto dsp = h.add_component(h.root(), "dsp").value();
  auto alu = h.add_component(cpu, "alu").value();
  EXPECT_EQ(h.preorder(), (std::vector<ComponentId>{h.root(), cpu, alu, dsp}));
}

TEST(Hierarchy, Validation) {
  DesignHierarchy h("soc");
  EXPECT_FALSE(h.add_component(99, "x").ok());
  EXPECT_FALSE(h.add_component(h.root(), "").ok());
  h.add_component(h.root(), "cpu").value();
  EXPECT_FALSE(h.add_component(h.root(), "cpu").ok());  // duplicate name
}

TEST(Hierarchy, TaskBindingRules) {
  DesignHierarchy h("soc");
  auto cpu = h.add_component(h.root(), "cpu").value();
  auto alu = h.add_component(cpu, "alu").value();
  // Internal components cannot carry tasks.
  EXPECT_FALSE(h.assign_task(cpu, "t").ok());
  EXPECT_TRUE(h.assign_task(alu, "alu_task").ok());
  EXPECT_EQ(h.task(alu), "alu_task");
  // Re-binding and bad ids rejected.
  EXPECT_FALSE(h.assign_task(alu, "other").ok());
  EXPECT_FALSE(h.assign_task(99, "t").ok());
  EXPECT_FALSE(h.assign_task(cpu, "").ok());
  // A task-bound leaf cannot gain children.
  EXPECT_FALSE(h.add_component(alu, "sub").ok());
  EXPECT_EQ(h.bound_leaves(), (std::vector<ComponentId>{alu}));
}

TEST(Hierarchy, JsonRoundTripsToFixedPoint) {
  DesignHierarchy h("soc");
  auto digital = h.add_component(h.root(), "digital").value();
  auto cpu = h.add_component(digital, "cpu").value();
  h.add_component(h.root(), "analog").value();
  h.assign_task(cpu, "cpu_task").expect("assign");

  std::string once = h.to_json();
  auto loaded = DesignHierarchy::from_json(once);
  ASSERT_TRUE(loaded.ok()) << loaded.error().str();
  EXPECT_EQ(loaded.value().to_json(), once);
  EXPECT_EQ(loaded.value().size(), 4u);
  EXPECT_EQ(loaded.value().task(loaded.value().find("cpu").value()), "cpu_task");
  EXPECT_EQ(loaded.value().preorder(), h.preorder());
}

TEST(Hierarchy, JsonRejectsMalformed) {
  EXPECT_FALSE(DesignHierarchy::from_json("not json").ok());
  EXPECT_FALSE(DesignHierarchy::from_json("[]").ok());
  EXPECT_FALSE(DesignHierarchy::from_json("{}").ok());
  // Duplicate component names are structural errors too.
  EXPECT_FALSE(DesignHierarchy::from_json(
                   R"({"name": "soc", "children": [{"name": "a"}, {"name": "a"}]})")
                   .ok());
  // Task on an internal node is rejected (children win the leaf check).
  EXPECT_FALSE(DesignHierarchy::from_json(
                   R"({"name": "soc", "task": "t", "children": [{"name": "a"}]})")
                   .ok());
}

// --- roll-up ---------------------------------------------------------------

/// Two leaf blocks, each with its own task over the ASIC schema.
struct RollupFixture {
  RollupFixture() : m(test::make_asic_manager()), h("soc") {
    // second task over the same schema: front-end only (gates).
    m->extract_task("front", "gates").expect("extract");
    m->bind("front", "rtl", "f.rtl").expect("bind");
    m->bind("front", "constraints", "f.sdc").expect("bind");
    m->bind("front", "synthesizer", "dc").expect("bind");

    digital = h.add_component(h.root(), "digital").value();
    block_a = h.add_component(digital, "block_a").value();
    block_b = h.add_component(digital, "block_b").value();
    h.assign_task(block_a, "chip").expect("assign");
    h.assign_task(block_b, "front").expect("assign");
  }

  std::unique_ptr<hercules::WorkflowManager> m;
  DesignHierarchy h;
  ComponentId digital = 0, block_a = 0, block_b = 0;
};

TEST(Rollup, RequiresPlans) {
  RollupFixture f;
  // No plans yet.
  auto sched = ArchSchedule::compute(f.h, *f.m);
  ASSERT_FALSE(sched.ok());
  EXPECT_EQ(sched.error().code, util::Error::Code::kConflict);
}

TEST(Rollup, RequiresBoundLeaves) {
  auto m = test::make_asic_manager();
  DesignHierarchy empty("soc");
  EXPECT_FALSE(ArchSchedule::compute(empty, *m).ok());
}

TEST(Rollup, AggregatesDatesAndCounts) {
  RollupFixture f;
  f.m->plan_task("chip", {.anchor = f.m->clock().now()}).value();
  f.m->plan_task("front", {.anchor = f.m->clock().now()}).value();
  auto sched = ArchSchedule::compute(f.h, *f.m).take();

  const auto& chip_row = sched.row_of(f.block_a);   // 3 activities, 52h
  const auto& front_row = sched.row_of(f.block_b);  // 1 activity, 12h
  EXPECT_EQ(chip_row.total_activities, 3);
  EXPECT_EQ(front_row.total_activities, 1);
  EXPECT_EQ(chip_row.projected_finish.minutes_since_epoch(), 52 * 60);
  EXPECT_EQ(front_row.projected_finish.minutes_since_epoch(), 12 * 60);

  // digital and root aggregate: start = min, finish = max, counts sum.
  const auto& digital_row = sched.row_of(f.digital);
  EXPECT_EQ(digital_row.total_activities, 4);
  EXPECT_EQ(digital_row.projected_start.minutes_since_epoch(), 0);
  EXPECT_EQ(digital_row.projected_finish.minutes_since_epoch(), 52 * 60);
  const auto& root_row = sched.row_of(f.h.root());
  EXPECT_EQ(root_row.projected_finish, digital_row.projected_finish);
}

TEST(Rollup, CompletionFractionIsEarnedOverPlanned) {
  RollupFixture f;
  f.m->plan_task("chip", {.anchor = f.m->clock().now()}).value();
  f.m->plan_task("front", {.anchor = f.m->clock().now()}).value();
  // Complete the front task entirely (12h of 64h total planned minutes).
  f.m->execute_task("front", "carol").value();
  f.m->link_completion("front", "Synthesize").expect("link");
  auto sched = ArchSchedule::compute(f.h, *f.m).take();
  EXPECT_DOUBLE_EQ(sched.row_of(f.block_b).fraction_complete(), 1.0);
  EXPECT_DOUBLE_EQ(sched.row_of(f.block_a).fraction_complete(), 0.0);
  EXPECT_NEAR(sched.row_of(f.h.root()).fraction_complete(), 12.0 / 64.0, 1e-9);
  EXPECT_EQ(sched.row_of(f.digital).completed_activities, 1);
}

TEST(Rollup, SlipPropagatesUpTheHierarchy) {
  RollupFixture f;
  f.m->plan_task("chip", {.anchor = f.m->clock().now()}).value();
  f.m->plan_task("front", {.anchor = f.m->clock().now()}).value();
  // The chip task slips: idle two days, then synthesize.
  f.m->clock().advance(cal::WorkDuration::hours(16));
  f.m->run_activity("chip", "Synthesize", "carol").value();
  f.m->link_completion("chip", "Synthesize").expect("link");
  auto sched = ArchSchedule::compute(f.h, *f.m).take();
  EXPECT_GT(sched.row_of(f.block_a).slip.count_minutes(), 0);
  // The parent and root inherit the slip (block_a drives them).
  EXPECT_EQ(sched.row_of(f.digital).slip.count_minutes(),
            sched.row_of(f.block_a).slip.count_minutes());
  EXPECT_TRUE(sched.row_of(f.block_a).drives_parent);
  EXPECT_FALSE(sched.row_of(f.block_b).drives_parent);
}

TEST(Rollup, CriticalChainWalksDrivingComponents) {
  RollupFixture f;
  f.m->plan_task("chip", {.anchor = f.m->clock().now()}).value();
  f.m->plan_task("front", {.anchor = f.m->clock().now()}).value();
  auto sched = ArchSchedule::compute(f.h, *f.m).take();
  EXPECT_EQ(sched.critical_chain(),
            (std::vector<ComponentId>{f.h.root(), f.digital, f.block_a}));
}

TEST(Rollup, UnboundSubtreeRenderedButExcluded) {
  RollupFixture f;
  f.h.add_component(f.h.root(), "analog").value();  // nothing bound below
  f.m->plan_task("chip", {.anchor = f.m->clock().now()}).value();
  f.m->plan_task("front", {.anchor = f.m->clock().now()}).value();
  auto sched = ArchSchedule::compute(f.h, *f.m).take();
  EXPECT_FALSE(sched.row_of(f.h.find("analog").value()).bound);
  std::string render = sched.render(f.m->calendar());
  EXPECT_NE(render.find("(no plan below)"), std::string::npos);
  EXPECT_NE(render.find("critical chain: soc digital block_a"), std::string::npos);
}

TEST(Rollup, RenderIndentsByDepth) {
  RollupFixture f;
  f.m->plan_task("chip", {.anchor = f.m->clock().now()}).value();
  f.m->plan_task("front", {.anchor = f.m->clock().now()}).value();
  auto sched = ArchSchedule::compute(f.h, *f.m).take();
  std::string render = sched.render(f.m->calendar());
  EXPECT_NE(render.find("soc"), std::string::npos);
  EXPECT_NE(render.find("  digital"), std::string::npos);
  EXPECT_NE(render.find("    block_a [chip]"), std::string::npos);
}

}  // namespace
}  // namespace herc::arch
