// Unit + property tests for the JSON document model (util/json.hpp).

#include <gtest/gtest.h>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace herc::util {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntAndDoubleStayDistinct) {
  EXPECT_TRUE(Json(1).is_int());
  EXPECT_FALSE(Json(1).is_double());
  EXPECT_TRUE(Json(1.5).is_double());
  EXPECT_TRUE(Json(1).is_number());
  EXPECT_TRUE(Json(1.5).is_number());
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonObject o;
  o.set("zulu", 1);
  o.set("alpha", 2);
  Json j(std::move(o));
  auto text = j.dump(-1);
  EXPECT_LT(text.find("zulu"), text.find("alpha"));
}

TEST(Json, ObjectSetOverwritesInPlace) {
  JsonObject o;
  o.set("a", 1);
  o.set("b", 2);
  o.set("a", 3);
  EXPECT_EQ(o.size(), 2u);
  EXPECT_EQ(o.at("a").as_int(), 3);
}

TEST(Json, ObjectAtMissingThrows) {
  JsonObject o;
  EXPECT_THROW(o.at("missing"), std::out_of_range);
}

TEST(Json, CompactVsIndented) {
  JsonObject o;
  o.set("a", JsonArray{Json(1), Json(2)});
  Json j(std::move(o));
  EXPECT_EQ(j.dump(-1), "{\"a\":[1,2]}");
  EXPECT_NE(j.dump(2).find('\n'), std::string::npos);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_TRUE(Json::parse("true").value().as_bool());
  EXPECT_EQ(Json::parse("-12").value().as_int(), -12);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").value().as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").value().as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"x\\ny\"").value().as_string(), "x\ny");
}

TEST(Json, ParseNested) {
  auto j = Json::parse(R"({"a": [1, {"b": true}], "c": null})");
  ASSERT_TRUE(j.ok());
  const auto& o = j.value().as_object();
  EXPECT_EQ(o.at("a").as_array().size(), 2u);
  EXPECT_TRUE(o.at("a").as_array()[1].as_object().at("b").as_bool());
  EXPECT_TRUE(o.at("c").is_null());
}

TEST(Json, ParseUnicodeEscape) {
  auto j = Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().as_string(), "A\xc3\xa9");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("-").ok());
  EXPECT_FALSE(Json::parse("\"bad\\qescape\"").ok());
}

TEST(Json, DeepNestingRejectedNotCrashed) {
  std::string deep(100000, '[');
  auto r = Json::parse(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("nesting"), std::string::npos);
  // At or under the limit parses fine.
  std::string ok_doc = std::string(150, '[') + "1" + std::string(150, ']');
  EXPECT_TRUE(Json::parse(ok_doc).ok());
  std::string too_deep = std::string(250, '[') + "1" + std::string(250, ']');
  EXPECT_FALSE(Json::parse(too_deep).ok());
}

TEST(Json, ControlCharactersRoundTrip) {
  Json j(std::string("a\x01b"));
  auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "a\x01b");
}

/// Property: random documents survive dump -> parse -> dump byte-identically.
class JsonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Json random_value(Rng& rng, int depth) {
    if (depth <= 0 || rng.chance(0.4)) {
      switch (rng.uniform_int(0, 3)) {
        case 0: return Json(nullptr);
        case 1: return Json(rng.chance(0.5));
        case 2: return Json(rng.uniform_int(-1000000, 1000000));
        default: {
          std::string s;
          for (int i = 0; i < rng.uniform_int(0, 12); ++i)
            s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
          return Json(std::move(s));
        }
      }
    }
    if (rng.chance(0.5)) {
      JsonArray a;
      for (int i = 0; i < rng.uniform_int(0, 5); ++i)
        a.push_back(random_value(rng, depth - 1));
      return Json(std::move(a));
    }
    JsonObject o;
    for (int i = 0; i < rng.uniform_int(0, 5); ++i)
      o.set("k" + std::to_string(rng.uniform_int(0, 30)), random_value(rng, depth - 1));
    return Json(std::move(o));
  }
};

TEST_P(JsonRoundTrip, DumpParseDumpIsFixedPoint) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    Json doc = random_value(rng, 4);
    std::string once = doc.dump(2);
    auto parsed = Json::parse(once);
    ASSERT_TRUE(parsed.ok()) << parsed.error().str() << "\n" << once;
    EXPECT_EQ(parsed.value().dump(2), once);
    // Compact form round-trips too.
    auto compact = Json::parse(doc.dump(-1));
    ASSERT_TRUE(compact.ok());
    EXPECT_EQ(compact.value().dump(-1), doc.dump(-1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip,
                         ::testing::Values(1, 7, 42, 99, 1234, 777));

}  // namespace
}  // namespace herc::util
