// Tests for selective re-execution: staleness detection (VOV adapter),
// WorkflowManager::refresh_task, and critical-path drag.

#include <gtest/gtest.h>

#include "adapters/trace.hpp"
#include "common.hpp"
#include "core/cpm.hpp"
#include "core/whatif.hpp"

namespace herc {
namespace {

// --- staleness ---------------------------------------------------------------

TEST(Stale, FreshDatabaseHasNoStaleInstances) {
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();
  auto trace = adapters::TraceGraph::capture(m->db());
  EXPECT_TRUE(trace.stale_instances().empty());
}

TEST(Stale, RerunUpstreamMarksDownstreamStale) {
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();
  // New gates version: placed and routed are now stale.
  m->run_activity("chip", "Synthesize", "carol").value();
  auto trace = adapters::TraceGraph::capture(m->db());
  auto stale = trace.stale_instances();
  std::vector<std::string> types;
  for (auto id : stale) types.push_back(m->db().instance(id).type_name);
  EXPECT_EQ(types, (std::vector<std::string>{"placed"}));
  // Note: routed consumed placed v1, which is STILL the latest placed, so
  // routed only becomes stale after Place re-runs.  refresh_task handles
  // the transitive wave (tested below).
}

TEST(Stale, SupersededVersionsAreHistoryNotStale) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  m->run_activity("adder", "Simulate", "bob").value();  // perf v2 supersedes v1
  auto trace = adapters::TraceGraph::capture(m->db());
  EXPECT_TRUE(trace.stale_instances().empty());  // v1 is history, v2 is fresh
}

// --- refresh_task -----------------------------------------------------------------

TEST(Refresh, FirstRefreshExecutesEverything) {
  auto m = test::make_asic_manager();
  auto runs = m->refresh_task("chip", "carol");
  ASSERT_TRUE(runs.ok()) << runs.error().str();
  EXPECT_EQ(runs.value().size(), 3u);  // Synthesize, Place, Route
  EXPECT_EQ(m->db().run_count(), 3u);
}

TEST(Refresh, UpToDateTaskDoesNothing) {
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();
  auto runs = m->refresh_task("chip", "carol");
  ASSERT_TRUE(runs.ok());
  EXPECT_TRUE(runs.value().empty());
  EXPECT_EQ(m->db().run_count(), 3u);  // nothing new
}

TEST(Refresh, UpstreamChangePropagatesMinimally) {
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();
  m->run_activity("chip", "Synthesize", "carol").value();  // gates v2
  auto runs = m->refresh_task("chip", "carol");
  ASSERT_TRUE(runs.ok());
  // Only Place and Route re-ran (Synthesize was fresh).
  ASSERT_EQ(runs.value().size(), 2u);
  EXPECT_EQ(m->db().run(runs.value()[0].run).activity, "Place");
  EXPECT_EQ(m->db().run(runs.value()[1].run).activity, "Route");
  // And afterwards nothing is stale.
  EXPECT_TRUE(adapters::TraceGraph::capture(m->db()).stale_instances().empty());
  auto again = m->refresh_task("chip", "carol");
  EXPECT_TRUE(again.value().empty());
}

TEST(Refresh, NewPrimaryInputVersionPropagates) {
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();
  // The RTL is edited by hand: import a new version directly.
  auto data = m->store().create("chip.rtl", "rtl", "v2 content", m->clock().now());
  m->db()
      .create_instance("rtl", "chip.rtl", meta::RunId::invalid(), data,
                       m->clock().now())
      .value();
  auto runs = m->refresh_task("chip", "carol");
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(runs.value().size(), 3u);  // full re-spin from Synthesize down
}

TEST(Refresh, StopsOnFailure) {
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();
  m->register_tool({.instance_name = "pl-broken", .tool_type = "placer",
                    .fail_rate = 1.0})
      .expect("tool");
  m->task("chip").value()->bind_type("placer", "pl-broken").expect("rebind");
  m->run_activity("chip", "Synthesize", "carol").value();  // make Place stale
  auto runs = m->refresh_task("chip", "carol");
  ASSERT_TRUE(runs.ok());
  ASSERT_EQ(runs.value().size(), 1u);  // Place attempted, failed, Route skipped
  EXPECT_FALSE(runs.value()[0].success);
}

TEST(Refresh, UnknownTaskRejected) {
  auto m = test::make_asic_manager();
  EXPECT_FALSE(m->refresh_task("nope", "x").ok());
}

TEST(Refresh, TracksThePlanOfItsTask) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->refresh_task("chip", "carol").value();
  const auto& space = m->schedule_space();
  EXPECT_TRUE(space.node(space.node_in_plan(plan, "Synthesize").value())
                  .actual_start.has_value());
}

// --- drag ---------------------------------------------------------------------

TEST(Drag, ChainDragEqualsDuration) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto drags = sched::plan_drag(m->schedule_space(), plan);
  ASSERT_EQ(drags.size(), 3u);
  // On a pure chain every activity's drag is its own duration; sorted desc.
  EXPECT_EQ(drags[0].activity, "Route");
  EXPECT_EQ(drags[0].drag.count_minutes(), 24 * 60);
  EXPECT_EQ(drags[2].drag.count_minutes(), 12 * 60);  // Synthesize
}

TEST(Drag, BoundedByParallelPath) {
  auto m = hercules::WorkflowManager::create(R"(
    schema diamond {
      data seed, l, r, out;
      tool t;
      rule Left:  l   <- t(seed) [est 20h];
      rule Right: r   <- t(seed) [est 15h];
      rule Join:  out <- t(l, r) [est 5h];
    }
  )").take();
  m->extract_task("job", "out").expect("extract");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  auto drags = sched::plan_drag(m->schedule_space(), plan);
  for (const auto& d : drags) {
    if (d.activity == "Left") { EXPECT_EQ(d.drag.count_minutes(), 5 * 60); }  // r path
    if (d.activity == "Right") { EXPECT_EQ(d.drag.count_minutes(), 0); }      // slack
    if (d.activity == "Join") { EXPECT_EQ(d.drag.count_minutes(), 5 * 60); }
  }
}

TEST(Drag, CompletedActivitiesExcluded) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  auto drags = sched::plan_drag(m->schedule_space(), plan);
  EXPECT_EQ(drags.size(), 2u);
  for (const auto& d : drags) EXPECT_NE(d.activity, "Synthesize");
}

// --- CPM drag core -----------------------------------------------------------------

TEST(CpmDrag, MatchesHandComputation) {
  // 0(10) -> 1(50) -> 3(10); 0 -> 2(20) -> 3: drag of 1 bounded by slack 30.
  std::vector<sched::CpmActivity> acts{
      {.duration = 10, .preds = {}},
      {.duration = 50, .preds = {0}},
      {.duration = 20, .preds = {0}},
      {.duration = 10, .preds = {1, 2}},
  };
  auto drags = sched::compute_drag(acts).take();
  EXPECT_EQ(drags, (std::vector<std::int64_t>{10, 30, 0, 10}));
}

TEST(CpmDrag, ErrorsPropagate) {
  EXPECT_FALSE(sched::compute_drag({{.duration = -1, .preds = {}}}).ok());
}

}  // namespace
}  // namespace herc
