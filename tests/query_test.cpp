// Unit tests for the query language and engine.

#include <gtest/gtest.h>

#include "common.hpp"
#include "query/query.hpp"

namespace herc::query {
namespace {

// --- parser -----------------------------------------------------------------

TEST(QueryParser, MinimalSelect) {
  auto q = parse_query("select runs");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().target, Target::kRuns);
  EXPECT_EQ(q.value().where, nullptr);
  EXPECT_FALSE(q.value().limit.has_value());
}

TEST(QueryParser, FullStatement) {
  auto q = parse_query(
      "select runs where activity = \"Simulate\" and duration > 100 "
      "order by finished desc limit 5");
  ASSERT_TRUE(q.ok()) << q.error().str();
  const Query& query = q.value();
  ASSERT_NE(query.where, nullptr);
  ASSERT_EQ(query.where->kind, Expr::Kind::kAnd);
  ASSERT_EQ(query.where->children.size(), 2u);
  const Condition& first = query.where->children[0]->condition;
  const Condition& second = query.where->children[1]->condition;
  EXPECT_EQ(first.field, "activity");
  EXPECT_EQ(first.op, Op::kEq);
  EXPECT_EQ(std::get<std::string>(first.literal), "Simulate");
  EXPECT_EQ(second.op, Op::kGt);
  EXPECT_EQ(std::get<std::int64_t>(second.literal), 100);
  EXPECT_EQ(query.order_by.value(), "finished");
  EXPECT_TRUE(query.descending);
  EXPECT_EQ(query.limit.value(), 5);
}

TEST(QueryParser, AllOperators) {
  for (const char* op : {"=", "!=", "<", "<=", ">", ">=", "contains"}) {
    auto q = parse_query(std::string("select runs where tool ") + op + " \"x\"");
    EXPECT_TRUE(q.ok()) << op << ": " << q.error().str();
  }
}

TEST(QueryParser, BoolAndBareWordLiterals) {
  auto q = parse_query("select schedule where critical = true and activity = Create");
  ASSERT_TRUE(q.ok());
  const auto& children = q.value().where->children;
  EXPECT_TRUE(std::get<bool>(children[0]->condition.literal));
  EXPECT_EQ(std::get<std::string>(children[1]->condition.literal), "Create");
}

TEST(QueryParser, BooleanExpressionStructure) {
  auto q = parse_query(
      "select runs where designer = \"bob\" or (duration > 100 and not "
      "status = \"failed\")");
  ASSERT_TRUE(q.ok()) << q.error().str();
  const Expr& root = *q.value().where;
  ASSERT_EQ(root.kind, Expr::Kind::kOr);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->kind, Expr::Kind::kCondition);
  const Expr& right = *root.children[1];
  ASSERT_EQ(right.kind, Expr::Kind::kAnd);
  EXPECT_EQ(right.children[1]->kind, Expr::Kind::kNot);
}

TEST(QueryParser, AndBindsTighterThanOr) {
  auto q = parse_query("select runs where a = 1 and b = 2 or c = 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().where->kind, Expr::Kind::kOr);
  EXPECT_EQ(q.value().where->children[0]->kind, Expr::Kind::kAnd);
}

TEST(QueryParser, DeepNestingRejectedNotCrashed) {
  std::string deep = "select runs where " + std::string(100000, '(');
  EXPECT_FALSE(parse_query(deep).ok());
  std::string too_deep = "select runs where " + std::string(150, '(') + "a = 1" +
                         std::string(150, ')');
  auto r = parse_query(too_deep);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("nested"), std::string::npos);
  std::string fine = "select runs where " + std::string(50, '(') + "a = 1" +
                     std::string(50, ')');
  EXPECT_TRUE(parse_query(fine).ok());
}

TEST(QueryParser, BooleanExpressionErrors) {
  EXPECT_FALSE(parse_query("select runs where (a = 1").ok());
  EXPECT_FALSE(parse_query("select runs where a = 1 or").ok());
  EXPECT_FALSE(parse_query("select runs where not").ok());
  EXPECT_FALSE(parse_query("select runs where and a = 1").ok());
}

TEST(QueryParser, AllTargets) {
  EXPECT_EQ(parse_query("select runs").value().target, Target::kRuns);
  EXPECT_EQ(parse_query("select instances").value().target, Target::kInstances);
  EXPECT_EQ(parse_query("select schedule").value().target, Target::kSchedule);
  EXPECT_EQ(parse_query("select schedule_nodes").value().target, Target::kSchedule);
  EXPECT_EQ(parse_query("select plans").value().target, Target::kPlans);
  EXPECT_EQ(parse_query("select links").value().target, Target::kLinks);
}

TEST(QueryParser, Errors) {
  EXPECT_FALSE(parse_query("").ok());
  EXPECT_FALSE(parse_query("delete runs").ok());
  EXPECT_FALSE(parse_query("select nothing").ok());
  EXPECT_FALSE(parse_query("select runs where").ok());
  EXPECT_FALSE(parse_query("select runs where x").ok());
  EXPECT_FALSE(parse_query("select runs where x = ").ok());
  EXPECT_FALSE(parse_query("select runs order finished").ok());
  EXPECT_FALSE(parse_query("select runs limit").ok());
  EXPECT_FALSE(parse_query("select runs limit -1").ok());
  EXPECT_FALSE(parse_query("select runs extra").ok());
  EXPECT_FALSE(parse_query("select runs where a ! b").ok());
  EXPECT_FALSE(parse_query("select runs where a = \"unterminated").ok());
}

TEST(QueryParser, CanonicalFormRoundTrips) {
  const char* statements[] = {
      "select runs",
      "select instances where type = \"netlist\"",
      "select runs where duration >= 100 and designer != \"bob\" order by id desc",
      "select schedule where critical = true limit 3",
      "select plans order by created",
  };
  for (const char* s : statements) {
    auto q1 = parse_query(s);
    ASSERT_TRUE(q1.ok()) << s;
    std::string canon = q1.value().str();
    auto q2 = parse_query(canon);
    ASSERT_TRUE(q2.ok()) << canon;
    EXPECT_EQ(q2.value().str(), canon);
  }
}

// --- values --------------------------------------------------------------------

TEST(Values, CompareOrdering) {
  EXPECT_EQ(compare_values(Value{std::int64_t{1}}, Value{std::int64_t{2}}), -1);
  EXPECT_EQ(compare_values(Value{std::string("a")}, Value{std::string("a")}), 0);
  EXPECT_EQ(compare_values(Value{true}, Value{false}), 1);
  EXPECT_EQ(compare_values(Value{std::monostate{}}, Value{std::monostate{}}), 0);
  // null sorts before everything
  EXPECT_LT(compare_values(Value{std::monostate{}}, Value{std::int64_t{0}}), 0);
}

TEST(Values, Render) {
  EXPECT_EQ(value_str(Value{std::monostate{}}), "-");
  EXPECT_EQ(value_str(Value{std::int64_t{-3}}), "-3");
  EXPECT_EQ(value_str(Value{true}), "true");
  EXPECT_EQ(value_str(Value{std::string("x")}), "x");
}

// --- engine ------------------------------------------------------------------

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : m_(test::make_circuit_manager()) {
    m_->plan_task("adder", {.anchor = m_->clock().now()}).value();
    m_->execute_task("adder", "alice").value();
    m_->run_activity("adder", "Simulate", "bob").value();
    m_->link_completion("adder", "Create").expect("link");
    m_->link_completion("adder", "Simulate").expect("link");
  }

  QueryResult run(const std::string& text) {
    QueryEngine engine(m_->db(), m_->schedule_space());
    auto r = engine.execute(text);
    if (!r.ok()) throw std::runtime_error(r.error().str());
    return std::move(r).take();
  }

  std::unique_ptr<hercules::WorkflowManager> m_;
};

TEST_F(QueryEngineTest, SelectAllRuns) {
  auto r = run("select runs");
  EXPECT_EQ(r.rows.size(), 3u);  // Create + 2x Simulate
  EXPECT_EQ(r.columns.front(), "id");
}

TEST_F(QueryEngineTest, FilterByActivity) {
  auto r = run("select runs where activity = \"Simulate\"");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(QueryEngineTest, PaperQueryLastRunDuration) {
  // "a query to show the duration of an activity the last time it was
  //  performed" — paper Sec. IV.B.
  auto r = run("select runs where activity = \"Simulate\" order by finished desc "
               "limit 1");
  ASSERT_EQ(r.rows.size(), 1u);
  // duration column = index 7.
  EXPECT_EQ(std::get<std::int64_t>(r.rows[0][7]), 6 * 60);
}

TEST_F(QueryEngineTest, NumericComparisons) {
  EXPECT_EQ(run("select runs where duration > 500").rows.size(), 1u);   // Create 840
  EXPECT_EQ(run("select runs where duration <= 360").rows.size(), 2u);  // Simulates
  EXPECT_EQ(run("select runs where duration != 840").rows.size(), 2u);
}

TEST_F(QueryEngineTest, ContainsOperator) {
  EXPECT_EQ(run("select runs where tool contains \"spice\"").rows.size(), 2u);
  EXPECT_EQ(run("select runs where tool contains \"zzz\"").rows.size(), 0u);
}

TEST_F(QueryEngineTest, OrderAscendingAndDescending) {
  auto asc = run("select runs order by duration");
  auto desc = run("select runs order by duration desc");
  ASSERT_EQ(asc.rows.size(), 3u);
  EXPECT_LE(std::get<std::int64_t>(asc.rows[0][7]),
            std::get<std::int64_t>(asc.rows[2][7]));
  EXPECT_EQ(std::get<std::int64_t>(desc.rows[0][7]),
            std::get<std::int64_t>(asc.rows[2][7]));
}

TEST_F(QueryEngineTest, ScheduleTargetSeesCompletionAndLinks) {
  auto r = run("select schedule where completed = true");
  EXPECT_EQ(r.rows.size(), 2u);
  auto linked = run("select schedule where linked = true");
  EXPECT_EQ(linked.rows.size(), 2u);
}

TEST_F(QueryEngineTest, InstancesTargetVersions) {
  auto r = run("select instances where type = \"performance\" and version = 2");
  ASSERT_EQ(r.rows.size(), 1u);
}

TEST_F(QueryEngineTest, LinksTargetJoinsActivity) {
  auto r = run("select links where activity = \"Create\"");
  ASSERT_EQ(r.rows.size(), 1u);
}

TEST_F(QueryEngineTest, UnknownFieldRejected) {
  QueryEngine engine(m_->db(), m_->schedule_space());
  auto r = engine.execute("select runs where nope = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::Error::Code::kNotFound);
  EXPECT_FALSE(engine.execute("select runs order by nope").ok());
}

TEST_F(QueryEngineTest, PlanLineageQuery) {
  m_->replan_task("adder", {.anchor = m_->clock().now()}).value();
  auto current = m_->plan_of("adder").value();
  QueryEngine engine(m_->db(), m_->schedule_space());
  auto lineage = engine.plan_lineage(current);
  ASSERT_EQ(lineage.rows.size(), 2u);
  EXPECT_EQ(std::get<std::int64_t>(lineage.rows[0][0]), 0);  // generation
  EXPECT_EQ(std::get<std::string>(lineage.rows[0][4]), "active");
  EXPECT_EQ(std::get<std::string>(lineage.rows[1][4]), "superseded");
}

TEST_F(QueryEngineTest, RenderFormatsTable) {
  auto r = run("select runs limit 1");
  std::string plain = r.render();
  EXPECT_NE(plain.find("activity"), std::string::npos);
  EXPECT_NE(plain.find("(1 row)"), std::string::npos);
  std::string with_dates = r.render(&m_->calendar());
  EXPECT_NE(with_dates.find("1995-06-"), std::string::npos);
}

TEST_F(QueryEngineTest, OrFilterUnionsRows) {
  // Create (1 run) or designer bob (1 run) = 2 distinct rows.
  auto r = run("select runs where activity = \"Create\" or designer = \"bob\"");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(QueryEngineTest, NotFilterComplements) {
  auto all = run("select runs").rows.size();
  auto bob = run("select runs where designer = \"bob\"").rows.size();
  auto not_bob = run("select runs where not designer = \"bob\"").rows.size();
  EXPECT_EQ(bob + not_bob, all);
}

TEST_F(QueryEngineTest, ParenthesesGroup) {
  // Without parens: (Simulate and bob) or Create = 2 rows.
  auto a = run("select runs where activity = \"Simulate\" and designer = \"bob\" "
               "or activity = \"Create\"");
  EXPECT_EQ(a.rows.size(), 2u);
  // With parens: Simulate and (bob or Create) = 1 row (only bob's Simulate).
  auto b = run("select runs where activity = \"Simulate\" and "
               "(designer = \"bob\" or activity = \"Create\")");
  EXPECT_EQ(b.rows.size(), 1u);
}

TEST_F(QueryEngineTest, BooleanCanonicalFormRoundTrips) {
  for (const char* s :
       {"select runs where a = 1 or (b = 2 and not c = 3)",
        "select runs where not (a = 1 or b = 2)",
        "select count from runs where a = 1 and b = 2 or c = 3"}) {
    auto q1 = parse_query(s);
    ASSERT_TRUE(q1.ok()) << s;
    auto canon = q1.value().str();
    auto q2 = parse_query(canon);
    ASSERT_TRUE(q2.ok()) << canon;
    EXPECT_EQ(q2.value().str(), canon) << s;
  }
}

// --- aggregates ---------------------------------------------------------------

TEST_F(QueryEngineTest, ExplicitFromFormEqualsLegacy) {
  auto legacy = run("select runs where designer = \"bob\"");
  auto modern = run("select * from runs where designer = \"bob\"");
  EXPECT_EQ(legacy.rows.size(), modern.rows.size());
  EXPECT_EQ(legacy.columns, modern.columns);
}

TEST_F(QueryEngineTest, CountAggregates) {
  auto r = run("select count from runs");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"count"}));
  EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 3);
  // With a filter.
  auto filtered = run("select count from runs where activity = \"Simulate\"");
  EXPECT_EQ(std::get<std::int64_t>(filtered.rows[0][0]), 2);
  // Empty result still yields one zero row.
  auto empty = run("select count from runs where designer = \"nobody\"");
  ASSERT_EQ(empty.rows.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(empty.rows[0][0]), 0);
}

TEST_F(QueryEngineTest, NumericAggregates) {
  // Durations: Create 840, Simulate 360, 360.
  EXPECT_EQ(std::get<std::int64_t>(run("select sum(duration) from runs").rows[0][0]),
            840 + 360 + 360);
  EXPECT_EQ(std::get<std::int64_t>(run("select avg(duration) from runs").rows[0][0]),
            (840 + 360 + 360) / 3);
  EXPECT_EQ(std::get<std::int64_t>(run("select min(duration) from runs").rows[0][0]),
            360);
  EXPECT_EQ(std::get<std::int64_t>(run("select max(duration) from runs").rows[0][0]),
            840);
}

TEST_F(QueryEngineTest, GroupByProducesOneRowPerGroup) {
  auto r = run("select avg(duration) from runs group by activity");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"activity", "avg(duration)"}));
  // Groups sorted by value: Create, Simulate.
  EXPECT_EQ(std::get<std::string>(r.rows[0][0]), "Create");
  EXPECT_EQ(std::get<std::int64_t>(r.rows[0][1]), 840);
  EXPECT_EQ(std::get<std::string>(r.rows[1][0]), "Simulate");
  EXPECT_EQ(std::get<std::int64_t>(r.rows[1][1]), 360);
}

TEST_F(QueryEngineTest, CountGroupByCountsIterations) {
  auto r = run("select count from runs group by activity");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(std::get<std::int64_t>(r.rows[1][1]), 2);  // Simulate ran twice
}

TEST_F(QueryEngineTest, AggregateOverAllNullFieldIsNull) {
  // 'output' of failed runs is null; filter to none-completed is empty here,
  // so aggregate over a string field instead: avg over non-numeric = null.
  auto r = run("select avg(designer) from runs");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(r.rows[0][0]));
}

TEST_F(QueryEngineTest, AggregateErrors) {
  QueryEngine engine(m_->db(), m_->schedule_space());
  EXPECT_FALSE(engine.execute("select avg(nope) from runs").ok());
  EXPECT_FALSE(engine.execute("select count from runs group by nope").ok());
  EXPECT_FALSE(parse_query("select avg duration from runs").ok());   // missing parens
  EXPECT_FALSE(parse_query("select avg(duration from runs").ok());
  EXPECT_FALSE(parse_query("select count from runs order by id").ok());
  EXPECT_FALSE(parse_query("select runs group by activity").ok());  // no aggregate
  EXPECT_FALSE(parse_query("select * runs").ok());                  // missing from
}

TEST_F(QueryEngineTest, AggregateCanonicalFormRoundTrips) {
  for (const char* s : {"select count from runs",
                        "select avg(duration) from runs group by activity",
                        "select max(duration) from runs where designer = \"bob\"",
                        "select count from schedule group by plan limit 2"}) {
    auto q1 = parse_query(s);
    ASSERT_TRUE(q1.ok()) << s;
    auto canon = q1.value().str();
    auto q2 = parse_query(canon);
    ASSERT_TRUE(q2.ok()) << canon;
    EXPECT_EQ(q2.value().str(), canon);
  }
}

TEST_F(QueryEngineTest, PaperPredictionQueryViaAggregate) {
  // "previous schedule data can be used to predict the duration of future
  // projects": the mean measured duration per activity in one statement.
  auto r = run("select avg(duration) from runs where status = \"completed\" "
               "group by activity");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(QueryEngineTest, EngineAgreesWithHandFilter) {
  // Property-ish: engine filtering == manual filtering over db().runs().
  auto r = run("select runs where designer = \"bob\"");
  std::size_t expected = 0;
  for (const auto& run_row : m_->db().runs())
    if (run_row.designer == "bob") ++expected;
  EXPECT_EQ(r.rows.size(), expected);
}

}  // namespace
}  // namespace herc::query
