// Cross-layer property tests over RANDOM schemas: for generated acyclic
// flows of varying shape, the structural promises hold — the planner mirrors
// the executor, the Petri adapter fires in the native order, the roadmap is
// isomorphic, CPM dates respect the plan's dependencies, and dispatch never
// finishes later than serial execution... er, earlier than the critical
// chain allows.

#include <gtest/gtest.h>

#include <algorithm>

#include "adapters/petri.hpp"
#include "adapters/roadmap.hpp"
#include "common.hpp"
#include "gen/gen.hpp"
#include "util/rng.hpp"

namespace herc {
namespace {

// Random flows come from herc::gen (src/gen/gen.hpp); the draw sequence of
// gen::random_graph is byte-compatible with the schema builder that used to
// live here, so the seeds below exercise the same workloads as before.
class RandomFlow : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::unique_ptr<hercules::WorkflowManager> make(util::Rng& rng) {
    auto inputs = static_cast<std::size_t>(rng.uniform_int(1, 3));
    auto rules = static_cast<std::size_t>(rng.uniform_int(2, 12));
    gen::FlowGraph graph = gen::random_graph(rng, inputs, rules);
    auto tool = cal::WorkDuration::minutes(rng.uniform_int(30, 600));
    auto m = gen::make_bound_manager(gen::render_schema(graph), graph.target, tool);
    m->estimator().set_fallback(cal::WorkDuration::minutes(rng.uniform_int(60, 960)));
    return m;
  }
};

TEST_P(RandomFlow, PlannerMirrorsExecutor) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 5; ++iter) {
    auto m = make(rng);
    auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
    std::vector<std::string> planned;
    for (auto nid : m->schedule_space().plan(plan).nodes)
      planned.push_back(m->schedule_space().node(nid).activity);
    m->execute_task("job", "pat").value();
    std::vector<std::string> executed;
    for (const auto& run : m->db().runs()) executed.push_back(run.activity);
    EXPECT_EQ(planned, executed);
  }
}

TEST_P(RandomFlow, PlannedDatesRespectDependencies) {
  util::Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 5; ++iter) {
    auto m = make(rng);
    auto plan_id = m->plan_task("job", {.anchor = m->clock().now()}).value();
    const auto& space = m->schedule_space();
    const auto& plan = space.plan(plan_id);
    for (const auto& dep : plan.deps) {
      EXPECT_GE(space.node(dep.to).planned_start, space.node(dep.from).planned_finish);
    }
    // Makespan = max finish; at least one critical activity exists.
    bool any_critical = false;
    for (auto nid : plan.nodes) any_critical |= space.node(nid).critical;
    EXPECT_TRUE(any_critical);
  }
}

TEST_P(RandomFlow, PetriFiringMatchesNativeOrder) {
  util::Rng rng(GetParam() + 200);
  for (int iter = 0; iter < 5; ++iter) {
    auto m = make(rng);
    const auto& tree = *m->task("job").value();
    auto conv = adapters::petri_from_task_tree(tree).take();
    auto firing = conv.net.run_to_quiescence();
    std::vector<std::string> fired;
    for (auto t : firing) fired.push_back(conv.activity_of_transition[t]);
    std::vector<std::string> native;
    for (auto id : tree.activities_post_order())
      native.push_back(tree.activity_name(id));
    EXPECT_EQ(fired, native);
    EXPECT_EQ(conv.net.marking(conv.target_place), 1);
  }
}

TEST_P(RandomFlow, RoadmapIsomorphic) {
  util::Rng rng(GetParam() + 300);
  for (int iter = 0; iter < 5; ++iter) {
    auto m = make(rng);
    const auto& tree = *m->task("job").value();
    auto model = adapters::RoadmapModel::from_schema(m->schema());
    ASSERT_TRUE(model.instantiate(tree).ok());
    auto verdict = model.verify_against(tree);
    EXPECT_TRUE(verdict.ok()) << verdict.error().str();
  }
}

TEST_P(RandomFlow, DispatchNeverBeatsCriticalChainNorLosesToSerial) {
  util::Rng rng(GetParam() + 400);
  for (int iter = 0; iter < 3; ++iter) {
    // Two managers over the same seed-generated flow.
    std::uint64_t flow_seed = rng.next_u64();
    util::Rng rng_a(flow_seed), rng_b(flow_seed);
    auto serial = make(rng_a);
    auto par = make(rng_b);
    serial->execute_task("job", "solo").value();
    par->execute_task_concurrent("job", "team").value();
    // Concurrent dispatch cannot be slower than serial (no resource
    // constraints given) and cannot be faster than the longest tool chain.
    EXPECT_LE(par->clock().now(), serial->clock().now());
    EXPECT_GT(par->clock().now().minutes_since_epoch(), 0);
  }
}

TEST_P(RandomFlow, RefreshConvergesToNoStaleness) {
  util::Rng rng(GetParam() + 500);
  for (int iter = 0; iter < 3; ++iter) {
    auto m = make(rng);
    m->execute_task("job", "pat").value();
    // Poke a random upstream activity, then refresh until quiescent.
    auto activities = m->task("job").value()->activities_post_order();
    auto victim = activities[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(activities.size()) - 1))];
    m->run_activity("job", m->task("job").value()->activity_name(victim), "pat")
        .value();
    m->refresh_task("job", "pat").value();
    auto again = m->refresh_task("job", "pat").value();
    EXPECT_TRUE(again.empty());  // one refresh wave reaches fixpoint
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlow, ::testing::Values(1, 7, 42, 1995));

}  // namespace
}  // namespace herc
