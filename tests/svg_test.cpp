// Unit tests for the SVG Gantt renderer.

#include <gtest/gtest.h>

#include "common.hpp"
#include "gantt/svg.hpp"

namespace herc::gantt {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

class SvgTest : public ::testing::Test {
 protected:
  SvgTest() : m_(test::make_asic_manager()) {
    plan_ = m_->plan_task("chip", {.anchor = m_->clock().now()}).value();
  }
  std::unique_ptr<hercules::WorkflowManager> m_;
  sched::ScheduleRunId plan_;
};

TEST_F(SvgTest, WellFormedDocument) {
  auto svg = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                              m_->clock().now());
  EXPECT_EQ(svg.rfind("<svg xmlns=\"http://www.w3.org/2000/svg\"", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Every opened tag category is self-closing or closed.
  EXPECT_EQ(count_occurrences(svg, "<svg"), count_occurrences(svg, "</svg>"));
  EXPECT_EQ(count_occurrences(svg, "<text"), count_occurrences(svg, "</text>"));
  std::size_t rects = count_occurrences(svg, "<rect");
  EXPECT_EQ(count_occurrences(svg, "/>") + count_occurrences(svg, "</text>") +
                count_occurrences(svg, "</svg>"),
            rects + count_occurrences(svg, "<line") + count_occurrences(svg, "<text") +
                1);
}

TEST_F(SvgTest, OneLabelPerActivity) {
  auto svg = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                              m_->clock().now());
  for (const char* a : {"Synthesize", "Place", "Route"})
    EXPECT_EQ(count_occurrences(svg, ">" + std::string(a)), 1u) << a;
}

TEST_F(SvgTest, FreshPlanHasNoActualBars) {
  auto svg = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                              m_->clock().now());
  // Green actual fill appears only in the legend swatch.
  EXPECT_EQ(count_occurrences(svg, "#2f9e44"), 1u);
  // Blue projection bars: one per activity (+1 legend swatch).
  EXPECT_EQ(count_occurrences(svg, "#5b8ff9"), 4u);
}

TEST_F(SvgTest, ActualBarsAppearAfterExecution) {
  m_->run_activity("chip", "Synthesize", "carol").value();
  m_->link_completion("chip", "Synthesize").expect("link");
  auto svg = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                              m_->clock().now());
  EXPECT_EQ(count_occurrences(svg, "#2f9e44"), 2u);  // one bar + legend
}

TEST_F(SvgTest, CriticalBarsGetOutline) {
  auto svg = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                              m_->clock().now());
  // The chain is fully critical: 3 outlined bars (legend draws its own line).
  EXPECT_GE(count_occurrences(svg, "#d6336c"), 3u);
}

TEST_F(SvgTest, OptionsRespected) {
  SvgOptions opt;
  opt.show_legend = false;
  opt.show_grid = false;
  auto svg = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                              m_->clock().now(), opt);
  EXPECT_EQ(svg.find("legend"), std::string::npos);
  EXPECT_EQ(count_occurrences(svg, "#e9ecef"), 0u);  // no grid lines
  EXPECT_EQ(count_occurrences(svg, "baseline"), 0u);
}

TEST_F(SvgTest, DeterministicOutput) {
  auto a = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                            m_->clock().now());
  auto b = render_gantt_svg(m_->schedule_space(), m_->calendar(), plan_,
                            m_->clock().now());
  EXPECT_EQ(a, b);
}

TEST_F(SvgTest, EscapesActivityNames) {
  // Schema identifiers cannot contain '<', but plan names can come from
  // anywhere; the header text must be escaped.
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  m->extract_task("a<b", "performance").expect("extract");
  m->estimator().set_fallback(cal::WorkDuration::hours(4));
  auto plan = m->plan_task("a<b", {.anchor = m->clock().now()}).value();
  auto svg = render_gantt_svg(m->schedule_space(), m->calendar(), plan,
                              m->clock().now());
  EXPECT_NE(svg.find("a&lt;b"), std::string::npos);
  EXPECT_EQ(svg.find("Gantt: a<b"), std::string::npos);
}

}  // namespace
}  // namespace herc::gantt
