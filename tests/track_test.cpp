// Unit tests for status reporting and earned-value metrics.

#include <gtest/gtest.h>

#include "common.hpp"
#include "track/status.hpp"

namespace herc::track {
namespace {

TEST(Status, StatesFollowLifecycle) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();

  auto states_now = [&]() {
    std::vector<ActivityState> out;
    for (const auto& row :
         activity_status(m->schedule_space(), m->db(), plan, m->clock().now()))
      out.push_back(row.state);
    return out;
  };

  // Nothing ran yet.
  auto s0 = states_now();
  for (auto s : s0) EXPECT_EQ(s, ActivityState::kNotStarted);

  // Synthesize runs but is not linked -> in progress.
  m->run_activity("chip", "Synthesize", "carol").value();
  auto s1 = states_now();
  EXPECT_EQ(s1[0], ActivityState::kInProgress);
  EXPECT_EQ(s1[1], ActivityState::kNotStarted);

  // Linking completes it.
  m->link_completion("chip", "Synthesize").expect("link");
  auto s2 = states_now();
  EXPECT_EQ(s2[0], ActivityState::kComplete);
}

TEST(Status, FinishVarianceSigns) {
  auto m = test::make_asic_manager();
  // Synthesize estimated 12h, tool takes 10h -> negative (early) variance.
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  auto rows = activity_status(m->schedule_space(), m->db(), plan, m->clock().now());
  EXPECT_EQ(rows[0].finish_variance.count_minutes(), -2 * 60);
  EXPECT_EQ(rows[0].runs, 1);
}

TEST(Status, ProjectRollupCountsAndSlip) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  // Procrastinate a day to force a slip, then run Synthesize.
  m->clock().advance(cal::WorkDuration::hours(8));
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");

  auto p = project_status(m->schedule_space(), m->db(), plan, m->clock().now());
  EXPECT_EQ(p.total_activities, 3);
  EXPECT_EQ(p.completed, 1);
  EXPECT_EQ(p.not_started, 2);
  EXPECT_GT(p.schedule_variance.count_minutes(), 0);  // slipped
  EXPECT_GT(p.projected_finish, p.baseline_finish);
}

TEST(Status, EarnedValueBehindScheduleMeansSpiBelowOne) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  // Let the whole baseline window pass without doing anything.
  m->clock().advance(cal::WorkDuration::hours(60));
  m->run_activity("chip", "Synthesize", "carol").value();  // triggers re-projection
  auto p = project_status(m->schedule_space(), m->db(), plan, m->clock().now());
  EXPECT_GT(p.bcws, 0.0);
  EXPECT_LT(p.spi, 1.0);
}

TEST(Status, EarnedValueOnPlanEqualsOne) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto p0 = project_status(m->schedule_space(), m->db(), plan, m->clock().now());
  // At t=0 nothing is scheduled and nothing done: SPI defined as 1.
  EXPECT_DOUBLE_EQ(p0.spi, 1.0);
  EXPECT_DOUBLE_EQ(p0.bcws, 0.0);
}

TEST(Status, InProgressEarnsLinearly) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();  // 10h elapsed
  auto p = project_status(m->schedule_space(), m->db(), plan, m->clock().now());
  // Synthesize (est 12h = 720min) started at 0, now = 600 -> earned 600.
  EXPECT_DOUBLE_EQ(p.bcwp, 600.0);
}

TEST(Status, ReportRendersAllSections) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  std::string report = render_status_report(m->schedule_space(), m->db(),
                                            m->calendar(), plan, m->clock().now());
  for (const char* needle :
       {"Synthesize", "Place", "Route", "complete", "not-started", "baseline finish",
        "projected finish", "earned value", "SPI"})
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
}

TEST(Status, DeadlineMarginReported) {
  auto m = test::make_asic_manager();
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.deadline = cal::WorkInstant(60 * 60);  // 60h deadline vs 52h projection
  auto plan = m->plan_task("chip", req).value();
  auto p = project_status(m->schedule_space(), m->db(), plan, m->clock().now());
  ASSERT_TRUE(p.deadline.has_value());
  EXPECT_EQ(p.deadline_margin->count_minutes(), 8 * 60);
  std::string report = render_status_report(m->schedule_space(), m->db(),
                                            m->calendar(), plan, m->clock().now());
  EXPECT_NE(report.find("deadline:"), std::string::npos);
  EXPECT_NE(report.find("margin:"), std::string::npos);
}

TEST(Status, DeadlineMissReported) {
  auto m = test::make_asic_manager();
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.deadline = cal::WorkInstant(40 * 60);  // 40h deadline vs 52h projection
  auto plan = m->plan_task("chip", req).value();
  auto p = project_status(m->schedule_space(), m->db(), plan, m->clock().now());
  EXPECT_EQ(p.deadline_margin->count_minutes(), -12 * 60);
  std::string report = render_status_report(m->schedule_space(), m->db(),
                                            m->calendar(), plan, m->clock().now());
  EXPECT_NE(report.find("MISSING BY"), std::string::npos);
}

TEST(Status, NoDeadlineNoLine) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto p = project_status(m->schedule_space(), m->db(), plan, m->clock().now());
  EXPECT_FALSE(p.deadline.has_value());
  std::string report = render_status_report(m->schedule_space(), m->db(),
                                            m->calendar(), plan, m->clock().now());
  EXPECT_EQ(report.find("deadline:"), std::string::npos);
}

TEST(Status, StateNames) {
  EXPECT_STREQ(activity_state_name(ActivityState::kNotStarted), "not-started");
  EXPECT_STREQ(activity_state_name(ActivityState::kInProgress), "in-progress");
  EXPECT_STREQ(activity_state_name(ActivityState::kComplete), "complete");
}

}  // namespace
}  // namespace herc::track
