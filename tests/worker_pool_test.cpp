// Unit tests for the shared worker pool: task coverage, reuse across jobs,
// caller participation, and the single-thread inline path.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/worker_pool.hpp"

namespace herc::sched {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  // Distinct task indices write disjoint slots — the same contract the
  // level-parallel passes rely on.
  std::vector<int> hits(1000, 0);
  pool.run(1000, [&](int t) { hits[static_cast<std::size_t>(t)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  WorkerPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round)
    pool.run(17, [&](int t) { sum += t; });
  EXPECT_EQ(sum.load(), 200L * (16 * 17 / 2));
}

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  // Inline execution: tasks observe sequential order on the caller.
  std::vector<int> order;
  pool.run(5, [&](int t) { order.push_back(t); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, MoreTasksThanThreadsAndViceVersa) {
  WorkerPool pool(8);
  std::atomic<int> count{0};
  pool.run(3, [&](int) { count++; });  // fewer tasks than threads
  EXPECT_EQ(count.load(), 3);
  count = 0;
  pool.run(100, [&](int) { count++; });  // more tasks than threads
  EXPECT_EQ(count.load(), 100);
  pool.run(0, [&](int) { count++; });  // empty job is a no-op
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPool, SharedPoolIsProcessWide) {
  WorkerPool& a = WorkerPool::shared();
  WorkerPool& b = WorkerPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.threads(), 1);
  std::atomic<int> count{0};
  a.run(10, [&](int) { count++; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace herc::sched
