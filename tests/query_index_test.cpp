// Tests for the query fast path: interned metadata, maintained secondary
// indexes, the compiled-predicate access-path planner, and the
// mutation-invalidated result cache.  The load-bearing property throughout:
// the index path, the full-scan path, and cached re-execution are
// byte-identical — including after snapshot + journal crash recovery.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "metadata/database.hpp"
#include "query/query.hpp"
#include "util/fsio.hpp"

namespace herc {
namespace {

using hercules::WorkflowManager;
using query::QueryEngine;

/// Circuit manager planned and executed once (two completed runs by alice).
std::unique_ptr<WorkflowManager> executed_circuit() {
  auto m = test::make_circuit_manager();
  EXPECT_TRUE(m->plan_task("adder", {.anchor = m->clock().now()}).ok());
  auto r = m->execute_task("adder", "alice");
  EXPECT_TRUE(r.ok() && r.value().success);
  return m;
}

/// Records a failed run of `activity` by `designer` (no output instance).
void record_failed_run(WorkflowManager& m, const std::string& activity,
                       const std::string& designer) {
  meta::Run r;
  r.activity = activity;
  r.tool_binding = "spice@s1";
  r.designer = designer;
  r.status = meta::RunStatus::kFailed;
  r.started_at = m.clock().now();
  r.finished_at = m.clock().now();
  ASSERT_TRUE(m.db().record_run(std::move(r)).ok());
}

std::string bytes(util::Result<query::QueryResult> r) {
  if (!r.ok()) return "error: " + r.error().message;
  return r.value().render();
}

// --- index maintenance -------------------------------------------------------

TEST(QueryIndex, RunIndexesTrackRecordedAndFailedRuns) {
  auto m = executed_circuit();
  const meta::Database& db = m->db();

  ASSERT_EQ(db.run_count(), 2u);
  EXPECT_EQ(db.runs_of_activity("Create").size(), 1u);
  EXPECT_EQ(db.runs_of_activity("Simulate").size(), 1u);
  EXPECT_EQ(db.runs_of_designer("alice").size(), 2u);
  EXPECT_EQ(db.runs_of_tool("spice@s1").size(), 1u);
  EXPECT_EQ(db.runs_with_status(meta::RunStatus::kCompleted).size(), 2u);
  EXPECT_TRUE(db.runs_with_status(meta::RunStatus::kFailed).empty());

  record_failed_run(*m, "Simulate", "bob");
  EXPECT_EQ(db.runs_of_activity("Simulate").size(), 2u);
  EXPECT_EQ(db.runs_of_designer("bob").size(), 1u);
  EXPECT_EQ(db.runs_with_status(meta::RunStatus::kFailed).size(), 1u);

  // Unknown keys return the shared empty vector, not a throw.
  EXPECT_TRUE(db.runs_of_activity("nope").empty());
  EXPECT_TRUE(db.runs_of_designer("nobody").empty());
  EXPECT_TRUE(db.runs_of_tool("hammer").empty());

  // The satellite bugfix: runs_of_activity returns a reference into the
  // index, so repeated calls alias the same storage instead of copying.
  EXPECT_EQ(&db.runs_of_activity("Create"), &db.runs_of_activity("Create"));

  // Indexes agree with a linear scan of the run table.
  for (const auto& run : db.runs()) {
    const auto& by_act = db.runs_of_activity(run.activity);
    EXPECT_NE(std::find(by_act.begin(), by_act.end(), run.id), by_act.end());
    const auto& by_des = db.runs_of_designer(run.designer);
    EXPECT_NE(std::find(by_des.begin(), by_des.end(), run.id), by_des.end());
  }
}

TEST(QueryIndex, InstanceIndexesTrackImportsAndOutputs) {
  auto m = executed_circuit();
  meta::Database& db = m->db();

  // Executed outputs land in their containers with a producing run.
  ASSERT_EQ(db.container("netlist").size(), 1u);
  ASSERT_EQ(db.container("performance").size(), 1u);
  auto out = db.container("performance").front();
  auto producer = db.producing_run(out);
  ASSERT_TRUE(producer.has_value());
  EXPECT_EQ(db.run(*producer).output, out);

  // The bound primary input was imported: indexed by name, no producer.
  const auto& named = db.instances_named("adder.stimuli");
  ASSERT_EQ(named.size(), 1u);
  EXPECT_FALSE(db.producing_run(named.front()).has_value());

  // A fresh import shows up in both instance indexes immediately.
  auto imported = db.create_instance("stimuli", "adder.stimuli", meta::RunId{},
                                     util::DataObjectId{}, m->clock().now());
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(db.instances_named("adder.stimuli").size(), 2u);
  EXPECT_EQ(db.container("stimuli").size(), 2u);
  EXPECT_TRUE(db.instances_named("no-such-data").empty());
}

TEST(QueryIndex, InterningDeduplicatesRepeatedNames) {
  auto m = executed_circuit();
  const std::size_t before = m->db().symbols().size();
  record_failed_run(*m, "Simulate", "alice");  // every name already interned
  EXPECT_EQ(m->db().symbols().size(), before);
  record_failed_run(*m, "Simulate", "carol");  // exactly one new symbol
  EXPECT_EQ(m->db().symbols().size(), before + 1);
}

// --- recovery ----------------------------------------------------------------

TEST(QueryIndex, IndexesAndInterningRebuildThroughSnapshotJournalRecovery) {
  auto m = test::make_circuit_manager();
  ASSERT_TRUE(m->plan_task("adder", {.anchor = m->clock().now()}).ok());

  std::string snapshot = hercules::save_to_json(*m);
  std::string path = "/tmp/herc_query_index_test_" +
                     std::to_string(::getpid()) + ".journal";
  ASSERT_TRUE(m->enable_journal(path).ok());
  ASSERT_TRUE(m->execute_task("adder", "alice").ok());
  auto read = util::read_file(path);
  ASSERT_TRUE(read.ok());
  std::string journal = std::move(read).take();
  std::remove(path.c_str());

  auto recovered = hercules::recover_from_json(snapshot, journal);
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  WorkflowManager& r = *recovered.value();

  // Interning round-trip: the dumps (built from the original string fields)
  // are byte-identical.
  EXPECT_EQ(r.dump_database(), m->dump_database());

  // Replay went through record_run/create_instance, so the indexes are
  // rebuilt, not loaded: they agree with the original's.
  EXPECT_EQ(r.db().runs_of_activity("Create").size(),
            m->db().runs_of_activity("Create").size());
  EXPECT_EQ(r.db().runs_of_designer("alice").size(), 2u);
  EXPECT_EQ(r.db().container("performance").size(), 1u);
  EXPECT_GT(r.db().symbols().size(), 0u);

  // And the three execution paths stay byte-identical on the recovered state.
  QueryEngine fast(r.db(), r.schedule_space());
  QueryEngine slow(r.db(), r.schedule_space());
  slow.set_options({.use_index = false, .use_cache = false});
  for (const char* stmt :
       {"select runs where designer = \"alice\"",
        "select runs where activity = \"Simulate\" and duration >= 0",
        "select instances where type = \"netlist\"",
        "select count from runs group by activity", "select schedule",
        "select plans", "select links"}) {
    std::string reference = bytes(slow.execute(stmt));
    EXPECT_EQ(bytes(fast.execute(stmt)), reference) << stmt;
    EXPECT_EQ(bytes(fast.execute(stmt)), reference) << stmt << " (cached)";
  }
}

// --- result cache ------------------------------------------------------------

/// Warms `stmt`, then asserts a repeat execution is served by the cache.
void expect_cached(const QueryEngine& engine, const std::string& stmt) {
  ASSERT_TRUE(engine.execute(stmt).ok());  // warm: hit or miss
  auto before = engine.stats();
  ASSERT_TRUE(engine.execute(stmt).ok());
  auto after = engine.stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1) << stmt;
  EXPECT_EQ(after.cache_misses, before.cache_misses) << stmt;
}

/// Asserts the next execution of `stmt` misses (a mutation invalidated it).
void expect_invalidated(const QueryEngine& engine, const std::string& stmt,
                        const char* why) {
  auto before = engine.stats();
  ASSERT_TRUE(engine.execute(stmt).ok());
  auto after = engine.stats();
  EXPECT_EQ(after.cache_misses, before.cache_misses + 1) << why;
}

/// Asserts a previously-warmed `stmt` is STILL served from cache — the
/// preceding mutation touched tables its target does not read.
void expect_still_cached(const QueryEngine& engine, const std::string& stmt,
                         const char* why) {
  auto before = engine.stats();
  ASSERT_TRUE(engine.execute(stmt).ok());
  auto after = engine.stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1) << why;
  EXPECT_EQ(after.cache_misses, before.cache_misses) << why;
}

// Invalidation is per-target: a mutation evicts exactly the cached results
// whose target reads a table that moved, and leaves every other entry
// servable.  (The coarse predecessor evicted everything on any mutation.)
TEST(QueryCache, InvalidationIsPerTarget) {
  auto m = executed_circuit();
  const QueryEngine& engine = m->query_engine();
  const std::string runs_q = "select runs where designer = \"alice\"";
  const std::string inst_q = "select instances where type = \"stimuli\"";
  const std::string plans_q = "select plans";
  const std::string sched_q = "select schedule where critical = true";
  const std::string links_q = "select links";

  // 1. Imported instance: only the instance table moves.
  expect_cached(engine, runs_q);
  expect_cached(engine, inst_q);
  ASSERT_TRUE(m->db()
                  .create_instance("stimuli", "x.stimuli", meta::RunId{},
                                   util::DataObjectId{}, m->clock().now())
                  .ok());
  expect_invalidated(engine, inst_q, "create_instance vs instances");
  expect_still_cached(engine, runs_q, "create_instance vs runs");

  // 2. Recorded (failed, no output) run: only the run table moves — the
  // produced_by back-link patch never fires, so instances stay put.
  record_failed_run(*m, "Simulate", "bob");
  expect_invalidated(engine, runs_q, "record_run vs runs");
  expect_still_cached(engine, inst_q, "record_run (no output) vs instances");

  // 3. Resource mutations touch no query target at all.
  auto rid = m->db().add_resource("carol");
  auto from = m->clock().now();
  ASSERT_TRUE(m->db().add_time_off(rid, from, from + cal::WorkDuration::hours(8)).ok());
  expect_still_cached(engine, runs_q, "add_resource/add_time_off vs runs");
  expect_still_cached(engine, inst_q, "add_resource/add_time_off vs instances");

  // 4. Replanning creates a plan + nodes: schedule-space targets go stale,
  // the metadata-space targets survive.
  expect_cached(engine, plans_q);
  expect_cached(engine, sched_q);
  ASSERT_TRUE(m->replan_task("adder", {.anchor = m->clock().now()}).ok());
  expect_invalidated(engine, plans_q, "replan vs plans");
  expect_invalidated(engine, sched_q, "replan vs schedule");
  expect_still_cached(engine, runs_q, "replan vs runs");
  expect_still_cached(engine, inst_q, "replan vs instances");

  // 5. A node edit bumps nodes but not plans.
  auto& space = m->schedule_space();
  auto plan = space.active_plan();
  ASSERT_TRUE(plan.has_value());
  auto node = space.node_in_plan(*plan, "Create");
  ASSERT_TRUE(node.has_value());
  expect_cached(engine, plans_q);
  expect_cached(engine, sched_q);
  (void)space.node_mut(*node);  // conservative bump through the mutable accessor
  expect_invalidated(engine, sched_q, "node_mut vs schedule");
  expect_still_cached(engine, plans_q, "node_mut vs plans");

  // 6. Linking a completion adds a link (and stamps the node): the schedule
  // and link targets go stale, the metadata space still survives.
  expect_cached(engine, links_q);
  expect_cached(engine, sched_q);
  ASSERT_TRUE(m->link_completion("adder", "Create").ok());
  expect_invalidated(engine, links_q, "link_completion vs links");
  expect_invalidated(engine, sched_q, "link_completion vs schedule");
  expect_still_cached(engine, runs_q, "link_completion vs runs");
  expect_still_cached(engine, inst_q, "link_completion vs instances");
}

// The whole point of per-target stamps: a run-append-heavy workload (the
// server's hot loop) no longer evicts cached schedule-side queries.  Under
// the coarse predecessor this workload had a 0% hit rate after the first
// append; now every repeated plans/links read is a hit.
TEST(QueryCache, ScheduleQueriesSurviveRunAppends) {
  auto m = executed_circuit();
  const QueryEngine& engine = m->query_engine();
  const std::string plans_q = "select plans";
  const std::string links_q = "select links";
  ASSERT_TRUE(engine.execute(plans_q).ok());  // warm
  ASSERT_TRUE(engine.execute(links_q).ok());

  auto before = engine.stats();
  for (int i = 0; i < 10; ++i) {
    record_failed_run(*m, "Simulate", "bob");
    ASSERT_TRUE(engine.execute(plans_q).ok());
    ASSERT_TRUE(engine.execute(links_q).ok());
  }
  auto after = engine.stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 20);
  EXPECT_EQ(after.cache_misses, before.cache_misses);
}

TEST(QueryCache, DisabledCacheNeverHits) {
  auto m = executed_circuit();
  QueryEngine engine(m->db(), m->schedule_space());
  engine.set_options({.use_index = true, .use_cache = false});
  ASSERT_TRUE(engine.execute("select runs").ok());
  ASSERT_TRUE(engine.execute("select runs").ok());
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(QueryCache, ClearCacheForcesReexecution) {
  auto m = executed_circuit();
  const QueryEngine& engine = m->query_engine();
  expect_cached(engine, "select runs");
  engine.clear_cache();
  expect_invalidated(engine, "select runs", "clear_cache");
}

// --- byte-identical paths ----------------------------------------------------

TEST(QueryPaths, IndexScanAndCacheAgreeByteForByte) {
  auto m = executed_circuit();
  record_failed_run(*m, "Simulate", "bob");

  QueryEngine fast(m->db(), m->schedule_space());
  QueryEngine slow(m->db(), m->schedule_space());
  slow.set_options({.use_index = false, .use_cache = false});

  for (const char* stmt :
       {"select runs", "select runs where designer = \"alice\"",
        "select runs where activity = \"Simulate\" and status = \"failed\"",
        "select runs where status = \"completed\" order by finished desc limit 1",
        "select runs where designer = \"alice\" or designer = \"bob\"",
        "select runs where not designer = \"bob\"",
        "select avg(duration) from runs group by activity",
        "select instances where type = \"performance\"",
        "select instances where name contains \"adder\"",
        "select schedule where critical = true", "select plans",
        "select links"}) {
    std::string reference = bytes(slow.execute(stmt));
    EXPECT_EQ(bytes(fast.execute(stmt)), reference) << stmt;
    EXPECT_EQ(bytes(fast.execute(stmt)), reference) << stmt << " (cached)";
  }

  // An equality literal that was never interned still matches nothing,
  // identically on both paths.
  EXPECT_EQ(bytes(fast.execute("select runs where designer = \"stranger\"")),
            bytes(slow.execute("select runs where designer = \"stranger\"")));
  EXPECT_EQ(bytes(fast.execute("select runs where not designer = \"stranger\"")),
            bytes(slow.execute("select runs where not designer = \"stranger\"")));
}

TEST(QueryPaths, ExplainReportsSeekAndScan) {
  auto m = executed_circuit();
  auto seek = m->explain("select runs where designer = \"alice\" and duration >= 0");
  ASSERT_TRUE(seek.ok());
  EXPECT_NE(seek.value().find("index seek runs.designer = \"alice\""),
            std::string::npos);
  EXPECT_NE(seek.value().find("residual filter on 1 condition(s)"),
            std::string::npos);

  auto scan = m->explain("select runs where duration >= 0");
  ASSERT_TRUE(scan.ok());
  EXPECT_NE(scan.value().find("full scan"), std::string::npos);

  // Explain validates without executing: bad fields fail the same way.
  EXPECT_FALSE(m->explain("select runs where nonsense = 1").ok());
}

// --- parser edge cases -------------------------------------------------------

TEST(QueryParser, UnknownColumnFailsIdenticallyOnBothPaths) {
  auto m = executed_circuit();
  QueryEngine fast(m->db(), m->schedule_space());
  QueryEngine slow(m->db(), m->schedule_space());
  slow.set_options({.use_index = false, .use_cache = false});

  for (const char* stmt :
       {"select runs where nonsense = 1", "select runs order by nonsense",
        "select avg(nonsense) from runs", "select count from runs group by bogus"}) {
    auto f = fast.execute(stmt);
    auto s = slow.execute(stmt);
    ASSERT_FALSE(f.ok()) << stmt;
    ASSERT_FALSE(s.ok()) << stmt;
    EXPECT_EQ(f.error().message, s.error().message) << stmt;
    EXPECT_NE(f.error().message.find("has no field"), std::string::npos) << stmt;
  }
}

TEST(QueryParser, EmptyGroupByIsAParseError) {
  auto q = query::parse_query("select count from runs group by");
  EXPECT_FALSE(q.ok());
  auto trailing = query::parse_query("select count from runs group by ");
  EXPECT_FALSE(trailing.ok());
  // Errors never land in the cache: the same engine still answers afterwards.
  auto m = executed_circuit();
  EXPECT_FALSE(m->query("select count from runs group by").ok());
  EXPECT_TRUE(m->query("select count from runs").ok());
}

}  // namespace
}  // namespace herc
