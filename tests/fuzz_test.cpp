// Fuzz-harness tests: sampled scenarios pass all seven oracle families, each
// planted mutation is caught by exactly the family built to catch it (a
// harness whose oracles cannot fail tests nothing), and the reference CPM
// really is an independent check.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "gen/fuzz.hpp"

namespace herc::gen {
namespace {

std::string describe(const std::vector<OracleFailure>& failures) {
  std::ostringstream os;
  for (const auto& f : failures)
    os << "[" << oracle_name(f.family) << "] " << f.check << ": " << f.detail << "\n";
  return os.str();
}

TEST(Fuzz, SampledScenariosPassAllOracles) {
  util::Rng rng(2026);
  for (int i = 0; i < 20; ++i) {
    Scenario s = sample_scenario(rng);
    auto failures = run_scenario(s);
    EXPECT_TRUE(failures.empty())
        << "scenario " << i << " (spec seed " << s.spec.seed << "):\n"
        << describe(failures) << scenario_to_json(s).dump();
  }
}

// One fixed, fault-free scenario per mutation: fault-free so the run
// completes and the strict (non-lenient) oracle paths are exercised.
Scenario mutation_victim() {
  return generate({.seed = 31, .shape = Shape::kRandom, .size = 8, .inputs = 2});
}

struct MutationCase {
  Mutation mutation;
  unsigned family;
};

class MutationCatch : public ::testing::TestWithParam<MutationCase> {};

TEST_P(MutationCatch, PlantedBugIsCaughtByItsFamily) {
  auto [mutation, family] = GetParam();
  Scenario s = mutation_victim();
  // Sanity: clean run first; the bug must come from the mutation alone.
  ASSERT_TRUE(run_scenario(s).empty());
  auto failures = run_scenario(s, {.mutation = mutation});
  ASSERT_FALSE(failures.empty()) << "mutation " << mutation_name(mutation)
                                 << " was not caught";
  bool family_tripped = false;
  for (const auto& f : failures) family_tripped |= f.family == family;
  EXPECT_TRUE(family_tripped) << "wrong family caught it:\n" << describe(failures);
}

INSTANTIATE_TEST_SUITE_P(
    AllMutations, MutationCatch,
    ::testing::Values(MutationCase{Mutation::kMirrorDropRun, kOracleMirror},
                      MutationCase{Mutation::kCpmOffByOne, kOracleCpm},
                      MutationCase{Mutation::kRecoveryDropLine, kOracleRecovery},
                      MutationCase{Mutation::kRiskSeedSkew, kOracleRisk},
                      MutationCase{Mutation::kMetamorphicScale, kOracleMetamorphic},
                      MutationCase{Mutation::kQueryStaleCache, kOracleQuery},
                      MutationCase{Mutation::kAdapterDropFiring, kOracleAdapter}),
    [](const auto& info) {
      std::string name = mutation_name(info.param.mutation);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Fuzz, OracleMaskRestrictsChecking) {
  Scenario s = mutation_victim();
  // The CPM bug is invisible when only the mirror family runs.
  EXPECT_TRUE(run_scenario(s, {.oracles = kOracleMirror,
                               .mutation = Mutation::kCpmOffByOne})
                  .empty());
  EXPECT_FALSE(run_scenario(s, {.oracles = kOracleCpm,
                                .mutation = Mutation::kCpmOffByOne})
                   .empty());
}

TEST(Fuzz, FuzzLoopSmoke) {
  FuzzOptions options;
  options.seed = 99;
  options.max_scenarios = 10;
  std::size_t progress_calls = 0;
  options.on_progress = [&](std::size_t) { ++progress_calls; };
  auto report = fuzz(options);
  EXPECT_EQ(report.scenarios, 10u);
  EXPECT_EQ(progress_calls, 10u);
  EXPECT_TRUE(report.failures.empty()) << describe(report.failures);
  EXPECT_FALSE(report.failing.has_value());
}

TEST(Fuzz, FuzzLoopStopsAndShrinksOnFailure) {
  FuzzOptions options;
  options.seed = 7;
  options.max_scenarios = 3;
  options.mutation = Mutation::kCpmOffByOne;  // every scenario fails
  auto report = fuzz(options);
  EXPECT_EQ(report.scenarios, 1u);  // stops at the first failure
  ASSERT_FALSE(report.failures.empty());
  ASSERT_TRUE(report.failing.has_value());
  ASSERT_TRUE(report.shrunk.has_value());
  EXPECT_LE(report.shrunk->graph.rules.size(), report.failing->graph.rules.size());
}

TEST(ReferenceCpm, AgreesOnChainAndDetectsCycles) {
  auto ref = reference_cpm(chain_cpm_network(10));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().makespan, 600);
  // Every chain activity is critical.  (The reference deliberately skips
  // critical-path reconstruction; the harness compares paths only between
  // compute_cpm and CpmSolver.)
  EXPECT_EQ(std::count(ref.value().critical.begin(), ref.value().critical.end(), true),
            10);

  std::vector<sched::CpmActivity> cyclic(2);
  cyclic[0].duration = 10;
  cyclic[0].preds = {1};
  cyclic[1].duration = 10;
  cyclic[1].preds = {0};
  EXPECT_FALSE(reference_cpm(cyclic).ok());
}

TEST(ReferenceCpm, MatchesComputeCpmOnRandomDags) {
  util::Rng rng(555);
  for (int i = 0; i < 10; ++i) {
    auto acts = random_cpm_dag(rng, 30, 0.1);
    auto ref = reference_cpm(acts);
    auto full = sched::compute_cpm(acts);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(ref.value().makespan, full.value().makespan);
    EXPECT_EQ(ref.value().early_start, full.value().early_start);
    EXPECT_EQ(ref.value().total_slack, full.value().total_slack);
    EXPECT_EQ(ref.value().critical, full.value().critical);
  }
}

}  // namespace
}  // namespace herc::gen
