// Direct tests for the cross-adapter conformance driver: the canonical
// Level-3 snapshot is stable and content-addressed (no ids, no wall times),
// clean scenarios pass every leg, the planted Petri-replay mutation is
// caught, and the adversarial driver's recovery byte-identity holds under a
// fault storm.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "gen/conformance.hpp"
#include "gen/gen.hpp"

namespace herc::gen {
namespace {

std::string describe(const std::vector<ConformanceFailure>& failures) {
  std::string out;
  for (const auto& f : failures) out += f.check + ": " + f.detail + "\n";
  return out;
}

Scenario clean_scenario() {
  return generate({.seed = 41, .shape = Shape::kRandom, .size = 7, .inputs = 2});
}

TEST(Conformance, CanonicalSnapshotIsDeterministicAcrossManagers) {
  Scenario s = clean_scenario();
  auto a = make_manager(s).take();
  auto b = make_manager(s).take();
  a->execute_task("job", "alice").value();
  b->execute_task("job", "alice").value();
  EXPECT_EQ(canonical_level3(*a), canonical_level3(*b));
}

TEST(Conformance, CanonicalSnapshotNamesTheSchemaAndEveryRun) {
  Scenario s = clean_scenario();
  auto m = make_manager(s).take();
  m->execute_task("job", "alice").value();
  std::string snap = canonical_level3(*m);
  EXPECT_EQ(snap.rfind("schema ", 0), 0u);
  for (const auto& r : s.graph.rules)
    EXPECT_NE(snap.find(r.name), std::string::npos) << r.name;
  // Content-addressed: raw ids and wall-clock dates must not leak in.
  EXPECT_EQ(snap.find("id="), std::string::npos);
}

TEST(Conformance, CleanScenarioPassesEveryLeg) {
  auto failures = check_conformance(clean_scenario());
  EXPECT_TRUE(failures.empty()) << describe(failures);
}

TEST(Conformance, AdversarialScenarioPassesEveryLeg) {
  Scenario s = generate({.seed = 43, .shape = Shape::kRandom, .size = 8,
                         .inputs = 3, .adversity = 0.8});
  ASSERT_FALSE(s.adversarial.empty());
  auto failures = check_conformance(s);
  EXPECT_TRUE(failures.empty()) << describe(failures);
}

TEST(Conformance, DroppedPetriFiringBreaksTheReplayLeg) {
  auto failures = check_conformance(clean_scenario(), {.mutate_drop_firing = true});
  ASSERT_FALSE(failures.empty());
  bool replay_tripped = false;
  for (const auto& f : failures) replay_tripped |= f.check == "adapter.petri_replay";
  EXPECT_TRUE(replay_tripped) << describe(failures);
}

TEST(Conformance, AdversarialDriverSurvivesReplansAndEdits) {
  Scenario s = generate({.seed = 44, .shape = Shape::kChain, .size = 7,
                         .adversity = 0.9});
  ASSERT_FALSE(s.adversarial.empty());
  auto scratch = std::filesystem::temp_directory_path();
  auto failures = run_adversarial(s, scratch.string());
  EXPECT_TRUE(failures.empty()) << describe(failures);
}

TEST(Conformance, FaultStormRecoveryStaysByteIdentical) {
  // Retries, latency storms and mid-flight revisions all journal; recovery
  // must still reproduce the final save byte-for-byte (or, when the storm
  // kills the run, replay exactly the journaled run count).
  Scenario s = generate({.seed = 45, .shape = Shape::kRandom, .size = 8,
                         .inputs = 2, .adversity = 0.6, .fault_seed = 4501,
                         .fail_prob = 0.6, .latency_factor = 4.0,
                         .policy = exec::FailurePolicy::kRetryThenAbort,
                         .max_attempts = 3});
  ASSERT_FALSE(s.adversarial.empty());
  auto scratch = std::filesystem::temp_directory_path();
  auto failures = run_adversarial(s, scratch.string());
  EXPECT_TRUE(failures.empty()) << describe(failures);
}

}  // namespace
}  // namespace herc::gen
