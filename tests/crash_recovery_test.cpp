// Crash-safety tests: the run journal (WAL), snapshot + journal recovery,
// and the crash harness — a fault-injected process death at every possible
// invocation must recover to exactly the state an uninterrupted reference
// reaches with the same recorded runs.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common.hpp"
#include "exec/fault.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace herc::hercules {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Journal, AppendsOneLinePerRecordedRun) {
  TempFile journal("/tmp/herc_journal_lines.wal");
  auto m = test::make_circuit_manager();
  ASSERT_TRUE(m->enable_journal(journal.path).ok());
  ASSERT_NE(m->journal(), nullptr);
  m->execute_task("adder", "alice").value();  // Create + Simulate
  m->run_activity("adder", "Simulate", "bob").value();
  EXPECT_EQ(m->journal()->lines_written(), 3u);
  EXPECT_TRUE(m->journal()->status().ok());

  std::istringstream lines(slurp(journal.path));
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    auto unframed = unframe_journal_line(line, /*is_final=*/false);
    EXPECT_EQ(unframed.status, FrameStatus::kOk) << line;
    EXPECT_TRUE(util::Json::parse(unframed.payload).ok()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(Journal, RecoveryMatchesUninterruptedReferenceByteIdentically) {
  TempFile snapshot("/tmp/herc_journal_snap.json");
  TempFile journal("/tmp/herc_journal_tail.wal");

  // Reference: the same operations with no journaling and no crash.
  auto reference = test::make_circuit_manager();
  reference->execute_task("adder", "alice").value();
  reference->run_activity("adder", "Simulate", "bob").value();

  // Journaled twin: snapshot the empty project, journal every run, then
  // "crash" (drop the manager without saving).
  {
    auto m = test::make_circuit_manager();
    ASSERT_TRUE(m->enable_journal(journal.path).ok());
    ASSERT_TRUE(save_project_file(*m, snapshot.path).ok());
    m->execute_task("adder", "alice").value();
    m->run_activity("adder", "Simulate", "bob").value();
  }

  auto recovered = recover_project(snapshot.path, journal.path);
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  EXPECT_EQ(save_to_json(*recovered.value()), save_to_json(*reference));
  EXPECT_EQ(recovered.value()->clock().now(), reference->clock().now());
}

TEST(Journal, SnapshotRestartsJournalAndRecoveryStillLandsRight) {
  TempFile snapshot("/tmp/herc_journal_mid_snap.json");
  TempFile journal("/tmp/herc_journal_mid.wal");

  auto reference = test::make_circuit_manager();
  reference->execute_task("adder", "alice").value();
  reference->run_activity("adder", "Create", "bob").value();

  auto m = test::make_circuit_manager();
  ASSERT_TRUE(m->enable_journal(journal.path).ok());
  ASSERT_TRUE(save_project_file(*m, snapshot.path).ok());
  m->execute_task("adder", "alice").value();
  EXPECT_EQ(m->journal()->lines_written(), 2u);
  // Mid-flight snapshot subsumes the journal: the file restarts empty.
  ASSERT_TRUE(save_project_file(*m, snapshot.path).ok());
  EXPECT_EQ(m->journal()->lines_written(), 0u);
  m->run_activity("adder", "Create", "bob").value();
  EXPECT_EQ(m->journal()->lines_written(), 1u);

  auto recovered = recover_project(snapshot.path, journal.path);
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  EXPECT_EQ(save_to_json(*recovered.value()), save_to_json(*reference));
}

TEST(Journal, CrashHarnessSweepsEveryInvocation) {
  // Kill the process (InjectedCrash) at every possible tool invocation of a
  // three-activity execution; after each crash, recovery must reproduce the
  // state of an uninterrupted reference that performed the same recorded
  // runs — byte-identically.
  for (std::uint64_t crash_at = 1; crash_at <= 3; ++crash_at) {
    TempFile snapshot("/tmp/herc_crash_snap.json");
    TempFile journal("/tmp/herc_crash.wal");

    // Reference: the runs that complete before the crash (invocation
    // crash_at never records a run).
    auto reference = test::make_asic_manager();
    const char* activities[] = {"Synthesize", "Place", "Route"};
    for (std::uint64_t i = 0; i + 1 < crash_at; ++i)
      reference->run_activity("chip", activities[i], "carol").value();

    auto m = test::make_asic_manager();
    exec::FaultPlan plan;
    plan.crash_after_total = crash_at;
    m->set_faults(1, std::move(plan));
    ASSERT_TRUE(m->enable_journal(journal.path).ok());
    ASSERT_TRUE(save_project_file(*m, snapshot.path).ok());
    EXPECT_THROW((void)m->execute_task("chip", "carol"), exec::InjectedCrash);
    m.reset();  // process death: nothing else reaches disk

    auto recovered = recover_project(snapshot.path, journal.path);
    ASSERT_TRUE(recovered.ok()) << "crash_at=" << crash_at << ": "
                                << recovered.error().str();
    EXPECT_EQ(save_to_json(*recovered.value()), save_to_json(*reference))
        << "crash_at=" << crash_at;
    EXPECT_EQ(recovered.value()->db().run_count(), crash_at - 1);

    // The recovered manager keeps working: re-register tools and finish.
    auto& r = *recovered.value();
    r.register_tool({.instance_name = "dc", .tool_type = "synthesizer"}).expect("t");
    r.register_tool({.instance_name = "pl", .tool_type = "placer"}).expect("t");
    r.register_tool({.instance_name = "rt", .tool_type = "router"}).expect("t");
    auto finish = r.execute_task("chip", "carol");
    ASSERT_TRUE(finish.ok()) << finish.error().str();
    EXPECT_TRUE(finish.value().success);
  }
}

TEST(Journal, TornFinalLineIsIgnored) {
  auto m = test::make_circuit_manager();
  std::string snapshot = save_to_json(*m);
  TempFile journal("/tmp/herc_torn.wal");
  ASSERT_TRUE(m->enable_journal(journal.path).ok());
  m->execute_task("adder", "alice").value();
  std::string intact = slurp(journal.path);

  auto want = recover_from_json(snapshot, intact);
  ASSERT_TRUE(want.ok());
  // A crash mid-append leaves a torn final line; recovery ignores it and
  // lands on the last intact prefix.
  for (const char* torn : {"{\"clock\": 12", "{", "garbage"}) {
    auto got = recover_from_json(snapshot, intact + torn);
    ASSERT_TRUE(got.ok()) << torn << ": " << got.error().str();
    EXPECT_EQ(save_to_json(*got.value()), save_to_json(*want.value())) << torn;
  }
}

TEST(Journal, EarlierMalformedLineIsAnError) {
  auto m = test::make_circuit_manager();
  std::string snapshot = save_to_json(*m);
  TempFile journal("/tmp/herc_corrupt.wal");
  ASSERT_TRUE(m->enable_journal(journal.path).ok());
  m->execute_task("adder", "alice").value();
  std::string intact = slurp(journal.path);

  auto got = recover_from_json(snapshot, "this is not json\n" + intact);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, util::Error::Code::kParse);
}

TEST(Journal, EmptyJournalDegeneratesToPlainLoad) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  std::string snapshot = save_to_json(*m);
  auto got = recover_from_json(snapshot, "");
  ASSERT_TRUE(got.ok()) << got.error().str();
  EXPECT_EQ(save_to_json(*got.value()), snapshot);
}

TEST(Journal, MissingJournalFileTreatedAsEmpty) {
  TempFile snapshot("/tmp/herc_nojournal_snap.json");
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  ASSERT_TRUE(save_project_file(*m, snapshot.path).ok());
  auto got = recover_project(snapshot.path, "/tmp/herc_no_such_journal.wal");
  ASSERT_TRUE(got.ok()) << got.error().str();
  EXPECT_EQ(save_to_json(*got.value()), save_to_json(*m));
}

TEST(Journal, UnwritablePathFailsToOpen) {
  auto m = test::make_circuit_manager();
  EXPECT_FALSE(m->enable_journal("/no/such/dir/run.wal").ok());
  EXPECT_EQ(m->journal(), nullptr);
}

// --- atomic snapshot --------------------------------------------------------

TEST(AtomicSave, WritesFileAndLeavesNoTempBehind) {
  TempFile file("/tmp/herc_atomic_save.json");
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  ASSERT_TRUE(save_project_file(*m, file.path).ok());
  // On disk the snapshot carries a checksum footer; stripping it must give
  // back the exact serialized state, and the footer must verify.
  RecoveryStats stats;
  const std::string on_disk = slurp(file.path);
  auto body = strip_snapshot_footer(on_disk, &stats);
  ASSERT_TRUE(body.ok()) << body.error().str();
  EXPECT_TRUE(stats.snapshot_footer);
  EXPECT_EQ(body.value(), save_to_json(*m));
  std::ifstream tmp(file.path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(AtomicSave, FailedSaveReportsErrorAndReplaceWorksOverOldFile) {
  auto m = test::make_circuit_manager();
  EXPECT_FALSE(save_project_file(*m, "/no/such/dir/snap.json").ok());

  TempFile file("/tmp/herc_atomic_keep.json");
  ASSERT_TRUE(util::write_file(file.path, "previous contents").ok());
  ASSERT_TRUE(save_project_file(*m, file.path).ok());
  EXPECT_EQ(slurp(file.path), append_snapshot_footer(save_to_json(*m)));
}

}  // namespace
}  // namespace herc::hercules
