// Unit + property tests for dates and work calendars.

#include <gtest/gtest.h>

#include "calendar/date.hpp"
#include "calendar/work_calendar.hpp"
#include "util/rng.hpp"

namespace herc::cal {
namespace {

// --- Date --------------------------------------------------------------------

TEST(Date, EpochIs1970) {
  Date d;
  EXPECT_EQ(d.days(), 0);
  EXPECT_EQ(d.str(), "1970-01-01");
  EXPECT_EQ(d.weekday(), Weekday::kThursday);
}

TEST(Date, ComponentsRoundTrip) {
  Date d(1995, 6, 12);
  EXPECT_EQ(d.year(), 1995);
  EXPECT_EQ(d.month(), 6);
  EXPECT_EQ(d.day(), 12);
  EXPECT_EQ(d.weekday(), Weekday::kMonday);  // DAC'95 week
}

TEST(Date, LeapYearHandling) {
  EXPECT_NO_THROW(Date(2024, 2, 29));
  EXPECT_THROW(Date(2023, 2, 29), std::invalid_argument);
  EXPECT_THROW(Date(2100, 2, 29), std::invalid_argument);  // century non-leap
  EXPECT_NO_THROW(Date(2000, 2, 29));                      // 400-year leap
}

TEST(Date, InvalidComponentsThrow) {
  EXPECT_THROW(Date(2020, 0, 1), std::invalid_argument);
  EXPECT_THROW(Date(2020, 13, 1), std::invalid_argument);
  EXPECT_THROW(Date(2020, 4, 31), std::invalid_argument);
}

TEST(Date, PlusDaysAndDifference) {
  Date a(1995, 6, 12);
  Date b = a.plus_days(30);
  EXPECT_EQ(b.str(), "1995-07-12");
  EXPECT_EQ(b - a, 30);
  EXPECT_EQ(a.plus_days(-1).str(), "1995-06-11");
}

TEST(Date, Comparisons) {
  EXPECT_LT(Date(1995, 1, 1), Date(1995, 1, 2));
  EXPECT_EQ(Date(1995, 1, 1), Date(1995, 1, 1));
}

TEST(Date, ParseValid) {
  auto d = Date::parse("1995-06-12");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), Date(1995, 6, 12));
}

TEST(Date, ParseInvalid) {
  EXPECT_FALSE(Date::parse("1995/06/12").ok());
  EXPECT_FALSE(Date::parse("1995-13-01").ok());
  EXPECT_FALSE(Date::parse("1995-02-30").ok());
  EXPECT_FALSE(Date::parse("abcd-ef-gh").ok());
  EXPECT_FALSE(Date::parse("").ok());
}

/// Property: day-number conversion round-trips across a wide range.
class DateRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DateRoundTrip, SerialToCivilToSerial) {
  std::int64_t days = GetParam();
  Date d = Date::from_days(days);
  Date rebuilt(d.year(), d.month(), d.day());
  EXPECT_EQ(rebuilt.days(), days);
  // str -> parse also round-trips
  auto parsed = Date::parse(d.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().days(), days);
}

INSTANTIATE_TEST_SUITE_P(Samples, DateRoundTrip,
                         ::testing::Values(-100000, -1, 0, 1, 9280, 10000, 36525,
                                           100000, 2932896));

// --- WorkDuration ------------------------------------------------------------

TEST(WorkDuration, Arithmetic) {
  auto d = WorkDuration::hours(2) + WorkDuration::minutes(30);
  EXPECT_EQ(d.count_minutes(), 150);
  EXPECT_EQ((d - WorkDuration::hours(1)).count_minutes(), 90);
  EXPECT_EQ((WorkDuration::hours(1) * 3).count_minutes(), 180);
}

TEST(WorkDuration, Format) {
  EXPECT_EQ(WorkDuration::minutes(0).str(480), "0m");
  EXPECT_EQ(WorkDuration::hours(2).str(480), "2h");
  EXPECT_EQ(WorkDuration::minutes(150).str(480), "2h 30m");
  EXPECT_EQ(WorkDuration::minutes(480 * 3 + 60).str(480), "3d 1h");
  EXPECT_EQ(WorkDuration::minutes(-90).str(480), "-1h 30m");
}

// --- WorkCalendar --------------------------------------------------------------

WorkCalendar monday_calendar() {
  WorkCalendar::Config cfg;
  cfg.epoch = Date(1995, 6, 12);  // a Monday
  return WorkCalendar(cfg);
}

TEST(WorkCalendar, DefaultWorkweek) {
  auto cal = monday_calendar();
  EXPECT_TRUE(cal.is_workday(Date(1995, 6, 12)));   // Mon
  EXPECT_TRUE(cal.is_workday(Date(1995, 6, 16)));   // Fri
  EXPECT_FALSE(cal.is_workday(Date(1995, 6, 17)));  // Sat
  EXPECT_FALSE(cal.is_workday(Date(1995, 6, 18)));  // Sun
}

TEST(WorkCalendar, HolidaysAreNotWorkdays) {
  auto cal = monday_calendar();
  cal.add_holiday(Date(1995, 6, 14));
  EXPECT_FALSE(cal.is_workday(Date(1995, 6, 14)));
  EXPECT_TRUE(cal.is_holiday(Date(1995, 6, 14)));
}

TEST(WorkCalendar, NthWorkdaySkipsWeekend) {
  auto cal = monday_calendar();
  EXPECT_EQ(cal.nth_workday(0), Date(1995, 6, 12));  // Mon
  EXPECT_EQ(cal.nth_workday(4), Date(1995, 6, 16));  // Fri
  EXPECT_EQ(cal.nth_workday(5), Date(1995, 6, 19));  // next Mon
  EXPECT_EQ(cal.nth_workday(10), Date(1995, 6, 26));
}

TEST(WorkCalendar, NthWorkdaySkipsHoliday) {
  auto cal = monday_calendar();
  cal.add_holiday(Date(1995, 6, 13));  // Tue off
  EXPECT_EQ(cal.nth_workday(1), Date(1995, 6, 14));
}

TEST(WorkCalendar, WorkdaysUntilInvertsNthWorkday) {
  auto cal = monday_calendar();
  cal.add_holiday(Date(1995, 6, 21));
  for (std::int64_t n = 0; n < 30; ++n) {
    EXPECT_EQ(cal.workdays_until(cal.nth_workday(n)), n) << "n=" << n;
  }
}

TEST(WorkCalendar, ToCivilMapsMinutes) {
  auto cal = monday_calendar();
  CivilTime t = cal.to_civil(WorkInstant(0));
  EXPECT_EQ(t.date, Date(1995, 6, 12));
  EXPECT_EQ(t.minute_of_day, 0);
  // 480 min/day: minute 480 is the start of the second workday.
  t = cal.to_civil(WorkInstant(480));
  EXPECT_EQ(t.date, Date(1995, 6, 13));
  // Friday 480*4 + 60 => Friday, one hour in.
  t = cal.to_civil(WorkInstant(480 * 4 + 60));
  EXPECT_EQ(t.date, Date(1995, 6, 16));
  EXPECT_EQ(t.minute_of_day, 60);
}

TEST(WorkCalendar, FormatUsesDayStart) {
  auto cal = monday_calendar();
  EXPECT_EQ(cal.format(WorkInstant(0)), "1995-06-12 09:00");
  EXPECT_EQ(cal.format(WorkInstant(90)), "1995-06-12 10:30");
  EXPECT_EQ(cal.format_date(WorkInstant(480 * 5)), "1995-06-19");
}

TEST(WorkCalendar, NegativeInstantClampsToEpoch) {
  auto cal = monday_calendar();
  EXPECT_EQ(cal.to_civil(WorkInstant(-100)).date, Date(1995, 6, 12));
}

TEST(WorkCalendar, AtStartOfSkipsToWorkday) {
  auto cal = monday_calendar();
  // Saturday maps to Monday's start.
  EXPECT_EQ(cal.at_start_of(Date(1995, 6, 17)).minutes_since_epoch(), 480 * 5);
  EXPECT_EQ(cal.at_start_of(Date(1995, 6, 12)).minutes_since_epoch(), 0);
  // Before the epoch clamps to the epoch.
  EXPECT_EQ(cal.at_start_of(Date(1995, 6, 1)).minutes_since_epoch(), 0);
}

TEST(WorkCalendar, ParseDuration) {
  auto cal = monday_calendar();
  EXPECT_EQ(cal.parse_duration("3d").value().count_minutes(), 3 * 480);
  EXPECT_EQ(cal.parse_duration("4h").value().count_minutes(), 240);
  EXPECT_EQ(cal.parse_duration("90m").value().count_minutes(), 90);
  EXPECT_EQ(cal.parse_duration("1d 4h 5m").value().count_minutes(), 480 + 240 + 5);
  EXPECT_FALSE(cal.parse_duration("").ok());
  EXPECT_FALSE(cal.parse_duration("3x").ok());
  EXPECT_FALSE(cal.parse_duration("d").ok());
  EXPECT_FALSE(cal.parse_duration("1.5d").ok());
}

TEST(WorkCalendar, CustomWorkweek) {
  WorkCalendar::Config cfg;
  cfg.epoch = Date(1995, 6, 12);
  cfg.workweek[5] = true;  // Saturdays on
  WorkCalendar cal(cfg);
  EXPECT_TRUE(cal.is_workday(Date(1995, 6, 17)));
  EXPECT_EQ(cal.nth_workday(5), Date(1995, 6, 17));
}

TEST(WorkCalendar, RejectsDegenerateConfigs) {
  WorkCalendar::Config no_days;
  for (auto& w : no_days.workweek) w = false;
  EXPECT_THROW(WorkCalendar{no_days}, std::invalid_argument);
  WorkCalendar::Config zero_minutes;
  zero_minutes.minutes_per_day = 0;
  EXPECT_THROW(WorkCalendar{zero_minutes}, std::invalid_argument);
}

/// Property: to_civil is monotone and never lands on a non-workday.
class CalendarProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalendarProperty, CivilMappingMonotoneAndOnWorkdays) {
  util::Rng rng(GetParam());
  auto cal = monday_calendar();
  cal.add_holiday(Date(1995, 7, 4));
  cal.add_holiday(Date(1995, 9, 4));
  std::int64_t prev = -1;
  Date prev_date = Date(1900, 1, 1);
  int prev_minute = 0;
  for (int i = 0; i < 200; ++i) {
    std::int64_t t = prev + rng.uniform_int(0, 600) + 1;
    CivilTime c = cal.to_civil(WorkInstant(t));
    EXPECT_TRUE(cal.is_workday(c.date));
    EXPECT_GE(c.minute_of_day, 0);
    EXPECT_LT(c.minute_of_day, 480);
    if (c.date == prev_date) { EXPECT_GE(c.minute_of_day, prev_minute); }
    else EXPECT_GT(c.date, prev_date);
    prev = t;
    prev_date = c.date;
    prev_minute = c.minute_of_day;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarProperty, ::testing::Values(2, 3, 17, 23));

}  // namespace
}  // namespace herc::cal
