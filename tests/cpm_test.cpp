// Unit + property tests for the CPM engine.

#include <gtest/gtest.h>

#include "core/cpm.hpp"
#include "util/rng.hpp"

namespace herc::sched {
namespace {

TEST(Cpm, EmptyNetwork) {
  auto r = compute_cpm({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().makespan, 0);
  EXPECT_TRUE(r.value().critical_path.empty());
}

TEST(Cpm, SingleActivity) {
  auto r = compute_cpm({{.duration = 100, .preds = {}, .release = 0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().makespan, 100);
  EXPECT_EQ(r.value().early_start[0], 0);
  EXPECT_EQ(r.value().late_start[0], 0);
  EXPECT_TRUE(r.value().critical[0]);
  EXPECT_EQ(r.value().critical_path, (std::vector<std::size_t>{0}));
}

TEST(Cpm, Chain) {
  std::vector<CpmActivity> acts{
      {.duration = 10, .preds = {}},
      {.duration = 20, .preds = {0}},
      {.duration = 30, .preds = {1}},
  };
  auto r = compute_cpm(acts).take();
  EXPECT_EQ(r.makespan, 60);
  EXPECT_EQ(r.early_start, (std::vector<std::int64_t>{0, 10, 30}));
  EXPECT_EQ(r.early_finish, (std::vector<std::int64_t>{10, 30, 60}));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(r.critical[i]);
    EXPECT_EQ(r.total_slack[i], 0);
  }
  EXPECT_EQ(r.critical_path, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Cpm, DiamondSlackOnShortBranch) {
  // 0 -> {1 (long), 2 (short)} -> 3
  std::vector<CpmActivity> acts{
      {.duration = 10, .preds = {}},
      {.duration = 50, .preds = {0}},
      {.duration = 20, .preds = {0}},
      {.duration = 10, .preds = {1, 2}},
  };
  auto r = compute_cpm(acts).take();
  EXPECT_EQ(r.makespan, 70);
  EXPECT_TRUE(r.critical[0]);
  EXPECT_TRUE(r.critical[1]);
  EXPECT_FALSE(r.critical[2]);
  EXPECT_TRUE(r.critical[3]);
  EXPECT_EQ(r.total_slack[2], 30);
  EXPECT_EQ(r.free_slack[2], 30);  // successor starts at 60, EF = 30
  EXPECT_EQ(r.critical_path, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Cpm, ParallelIndependentChains) {
  std::vector<CpmActivity> acts{
      {.duration = 10, .preds = {}},
      {.duration = 25, .preds = {}},
  };
  auto r = compute_cpm(acts).take();
  EXPECT_EQ(r.makespan, 25);
  EXPECT_FALSE(r.critical[0]);
  EXPECT_TRUE(r.critical[1]);
  // Sink slack measured against the makespan.
  EXPECT_EQ(r.total_slack[0], 15);
  EXPECT_EQ(r.free_slack[0], 15);
}

TEST(Cpm, ReleaseTimesShiftStarts) {
  std::vector<CpmActivity> acts{
      {.duration = 10, .preds = {}, .release = 100},
      {.duration = 10, .preds = {0}},
  };
  auto r = compute_cpm(acts).take();
  EXPECT_EQ(r.early_start[0], 100);
  EXPECT_EQ(r.early_start[1], 110);
  EXPECT_EQ(r.makespan, 120);
}

TEST(Cpm, ReleaseBeyondPredFinishWins) {
  std::vector<CpmActivity> acts{
      {.duration = 10, .preds = {}},
      {.duration = 5, .preds = {0}, .release = 50},
  };
  auto r = compute_cpm(acts).take();
  EXPECT_EQ(r.early_start[1], 50);
}

TEST(Cpm, ZeroDurationActivities) {
  std::vector<CpmActivity> acts{
      {.duration = 0, .preds = {}},
      {.duration = 10, .preds = {0}},
      {.duration = 0, .preds = {1}},
  };
  auto r = compute_cpm(acts).take();
  EXPECT_EQ(r.makespan, 10);
  EXPECT_EQ(r.critical_path.size(), 3u);
}

TEST(Cpm, ErrorOnCycle) {
  std::vector<CpmActivity> acts{
      {.duration = 1, .preds = {1}},
      {.duration = 1, .preds = {0}},
  };
  auto r = compute_cpm(acts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::Error::Code::kInvalid);
}

TEST(Cpm, ErrorOnNegativeDurationOrBadPred) {
  EXPECT_FALSE(compute_cpm({{.duration = -1, .preds = {}}}).ok());
  EXPECT_FALSE(compute_cpm({{.duration = 1, .preds = {5}}}).ok());
  EXPECT_FALSE(compute_cpm({{.duration = 1, .preds = {}, .release = -2}}).ok());
}

// --- properties over random DAGs --------------------------------------------

std::vector<CpmActivity> random_dag(util::Rng& rng, std::size_t n, double edge_p) {
  std::vector<CpmActivity> acts(n);
  for (std::size_t i = 0; i < n; ++i) {
    acts[i].duration = rng.uniform_int(0, 500);
    for (std::size_t j = 0; j < i; ++j)
      if (rng.chance(edge_p)) acts[i].preds.push_back(j);
  }
  return acts;
}

class CpmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpmProperty, InvariantsHoldOnRandomDags) {
  util::Rng rng(GetParam());
  auto acts = random_dag(rng, 60, 0.08);
  auto r = compute_cpm(acts).take();
  const std::size_t n = acts.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Definitional identities.
    EXPECT_EQ(r.early_finish[i], r.early_start[i] + acts[i].duration);
    EXPECT_EQ(r.late_finish[i], r.late_start[i] + acts[i].duration);
    EXPECT_EQ(r.total_slack[i], r.late_start[i] - r.early_start[i]);
    // ES <= LS, slack >= 0.
    EXPECT_LE(r.early_start[i], r.late_start[i]);
    EXPECT_GE(r.total_slack[i], 0);
    EXPECT_GE(r.free_slack[i], 0);
    EXPECT_LE(r.free_slack[i], r.total_slack[i]);
    // Within the horizon.
    EXPECT_LE(r.early_finish[i], r.makespan);
    EXPECT_LE(r.late_finish[i], r.makespan);
    // Precedence feasibility.
    for (std::size_t p : acts[i].preds) EXPECT_GE(r.early_start[i], r.early_finish[p]);
    // critical <=> zero slack.
    EXPECT_EQ(r.critical[i], r.total_slack[i] == 0);
  }
}

TEST_P(CpmProperty, CriticalPathIsARealLongestPath) {
  util::Rng rng(GetParam() + 1000);
  auto acts = random_dag(rng, 40, 0.1);
  auto r = compute_cpm(acts).take();
  ASSERT_FALSE(r.critical_path.empty());
  std::int64_t length = 0;
  for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
    std::size_t v = r.critical_path[i];
    EXPECT_TRUE(r.critical[v]);
    length += acts[v].duration;
    if (i > 0) {
      // Consecutive entries must be a real precedence edge.
      std::size_t prev = r.critical_path[i - 1];
      bool edge = false;
      for (std::size_t p : acts[v].preds) edge |= (p == prev);
      EXPECT_TRUE(edge) << prev << " -> " << v;
    }
  }
  // With release = 0 everywhere, the critical path length is the makespan.
  EXPECT_EQ(length, r.makespan);
}

TEST_P(CpmProperty, MakespanMonotoneInDurations) {
  util::Rng rng(GetParam() + 2000);
  auto acts = random_dag(rng, 30, 0.1);
  auto base = compute_cpm(acts).take();
  // Increasing any duration never shrinks the makespan.
  auto longer = acts;
  std::size_t victim = static_cast<std::size_t>(rng.uniform_int(0, 29));
  longer[victim].duration += 100;
  auto r2 = compute_cpm(longer).take();
  EXPECT_GE(r2.makespan, base.makespan);
  // Increasing a *critical* activity's duration strictly grows it.
  for (std::size_t i = 0; i < acts.size(); ++i) {
    if (base.critical[i]) {
      auto crit = acts;
      crit[i].duration += 100;
      EXPECT_EQ(compute_cpm(crit).take().makespan, base.makespan + 100);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpmProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 20, 40));

}  // namespace
}  // namespace herc::sched
