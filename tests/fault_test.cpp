// Tests for deterministic fault injection and the executor's failure
// semantics: retry/timeout policies, abort vs. degrade, and the obs
// fault counters.

#include <gtest/gtest.h>

#include "common.hpp"
#include "exec/executor.hpp"
#include "exec/fault.hpp"
#include "hercules/persist.hpp"
#include "obs/metrics.hpp"

namespace herc::exec {
namespace {

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, DecisionsArePure) {
  FaultPlan plan;
  plan.tools["sim"] = {.fail_prob = 0.5};
  FaultInjector inj(42, std::move(plan));
  for (std::uint64_t k = 1; k <= 32; ++k) {
    auto a = inj.decide("sim", k, k);
    auto b = inj.decide("sim", k, k);
    EXPECT_EQ(a.fail, b.fail) << k;
    EXPECT_EQ(a.crash, b.crash) << k;
    EXPECT_EQ(a.latency_factor, b.latency_factor) << k;
  }
}

TEST(FaultInjector, DecisionsIndependentOfOtherTools) {
  // The k-th decision for one instance must not depend on what else ran
  // (that is what makes failure sequences thread-count independent).
  FaultPlan plan;
  plan.tools["sim"] = {.fail_prob = 0.5};
  FaultInjector inj(42, plan);
  for (std::uint64_t k = 1; k <= 32; ++k) {
    EXPECT_EQ(inj.decide("sim", k, k).fail, inj.decide("sim", k, k + 1000).fail);
  }
}

TEST(FaultInjector, FailOnHitsExactIndices) {
  FaultPlan plan;
  plan.tools["sim"] = {.fail_on = {2, 5}};
  FaultInjector inj(1, std::move(plan));
  for (std::uint64_t k = 1; k <= 6; ++k) {
    EXPECT_EQ(inj.decide("sim", k, k).fail, k == 2 || k == 5) << k;
  }
}

TEST(FaultInjector, CrashOnAndCrashAfterTotal) {
  FaultPlan plan;
  plan.tools["sim"] = {.crash_on = {3}};
  plan.crash_after_total = 7;
  FaultInjector inj(1, std::move(plan));
  EXPECT_FALSE(inj.decide("sim", 2, 2).crash);
  EXPECT_TRUE(inj.decide("sim", 3, 3).crash);    // per-tool index
  EXPECT_TRUE(inj.decide("other", 1, 7).crash);  // plan-wide total
  EXPECT_FALSE(inj.decide("other", 1, 6).crash);
}

TEST(FaultInjector, WildcardAppliesToUnlistedTools) {
  FaultPlan plan;
  plan.tools["*"] = {.fail_on = {1}};
  plan.tools["immune"] = {};  // own entry: wildcard does not apply
  FaultInjector inj(1, std::move(plan));
  EXPECT_TRUE(inj.decide("anything", 1, 1).fail);
  EXPECT_FALSE(inj.decide("immune", 1, 1).fail);
}

TEST(FaultInjector, SeedChangesProbabilisticSequence) {
  FaultPlan plan;
  plan.tools["sim"] = {.fail_prob = 0.5};
  FaultInjector a(1, plan), b(1, plan), c(2, plan);
  bool identical_ab = true, identical_ac = true;
  int fails = 0;
  for (std::uint64_t k = 1; k <= 64; ++k) {
    identical_ab &= a.decide("sim", k, k).fail == b.decide("sim", k, k).fail;
    identical_ac &= a.decide("sim", k, k).fail == c.decide("sim", k, k).fail;
    fails += a.decide("sim", k, k).fail ? 1 : 0;
  }
  EXPECT_TRUE(identical_ab);   // same seed: bit-identical
  EXPECT_FALSE(identical_ac);  // different seed: different sequence
  EXPECT_GT(fails, 10);        // p=0.5 over 64 draws
  EXPECT_LT(fails, 54);
}

// --- ToolRegistry wiring ----------------------------------------------------

TEST(ToolRegistryFaults, InjectedFailureMarksOutcome) {
  ToolRegistry reg;
  reg.add({.instance_name = "sim", .tool_type = "simulator"}).expect("add");
  FaultPlan plan;
  plan.tools["sim"] = {.fail_on = {1}};
  FaultInjector inj(1, std::move(plan));
  reg.set_fault_injector(&inj);
  ToolInvocation inv{.activity = "Simulate", .output_type = "performance"};
  auto first = reg.invoke("sim", "simulator", inv).value();
  EXPECT_FALSE(first.success);
  EXPECT_TRUE(first.fault_injected);
  EXPECT_NE(first.log.find("FAULT INJECTED"), std::string::npos);
  auto second = reg.invoke("sim", "simulator", inv).value();
  EXPECT_TRUE(second.success);
  EXPECT_EQ(reg.invocations("sim"), 2u);
  EXPECT_EQ(reg.total_invocations(), 2u);
}

TEST(ToolRegistryFaults, CrashThrowsInjectedCrash) {
  ToolRegistry reg;
  reg.add({.instance_name = "sim", .tool_type = "simulator"}).expect("add");
  FaultPlan plan;
  plan.tools["sim"] = {.crash_on = {2}};
  FaultInjector inj(1, std::move(plan));
  reg.set_fault_injector(&inj);
  ToolInvocation inv{.activity = "Simulate", .output_type = "performance"};
  EXPECT_TRUE(reg.invoke("sim", "simulator", inv).value().success);
  try {
    (void)reg.invoke("sim", "simulator", inv);
    FAIL() << "expected InjectedCrash";
  } catch (const InjectedCrash& crash) {
    EXPECT_EQ(crash.tool(), "sim");
    EXPECT_EQ(crash.invocation(), 2u);
    EXPECT_NE(std::string(crash.what()).find("injected crash"), std::string::npos);
  }
}

TEST(ToolRegistryFaults, LatencyFactorStretchesDuration) {
  ToolRegistry reg;
  reg.add({.instance_name = "slow",
           .tool_type = "x",
           .nominal = cal::WorkDuration::minutes(100)})
      .expect("add");
  FaultPlan plan;
  plan.tools["slow"] = {.latency_factor = 3.0};
  FaultInjector inj(1, std::move(plan));
  reg.set_fault_injector(&inj);
  ToolInvocation inv{.activity = "A", .output_type = "o"};
  EXPECT_EQ(reg.invoke("slow", "x", inv).value().duration.count_minutes(), 300);
}

// --- Executor failure policies ---------------------------------------------

/// Circuit manager whose simulator fails on the given 1-based invocations.
std::unique_ptr<hercules::WorkflowManager> flaky_sim_manager(
    std::vector<int> fail_on, ExecutionOptions options) {
  auto m = test::make_circuit_manager();
  FaultPlan plan;
  plan.tools["spice@s1"] = {.fail_on = std::move(fail_on)};
  m->set_faults(1, std::move(plan));
  m->set_exec_options(std::move(options));
  return m;
}

TEST(ExecutorFaults, AbortPolicyIgnoresRetries) {
  // Seed behavior: even with a generous retry policy configured, kAbort
  // makes exactly one attempt and stops.
  ExecutionOptions options;
  options.retry.max_attempts = 5;
  auto m = flaky_sim_manager({1}, options);
  auto result = m->execute_task("adder", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  ASSERT_EQ(result.value().runs.size(), 2u);  // Create + one failed Simulate
  EXPECT_FALSE(result.value().final_output.valid());
}

TEST(ExecutorFaults, RetryThenAbortRecovers) {
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kRetryThenAbort;
  options.retry.max_attempts = 2;
  auto m = flaky_sim_manager({1}, options);

  obs::MetricsRegistry metrics;
  metrics.attach(m->bus());

  auto result = m->execute_task("adder", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().success);
  EXPECT_TRUE(result.value().final_output.valid());
  // Create + failed Simulate + retried Simulate, every attempt recorded.
  ASSERT_EQ(result.value().runs.size(), 3u);
  EXPECT_FALSE(result.value().runs[1].success);
  EXPECT_EQ(result.value().runs[1].attempt, 1);
  EXPECT_TRUE(result.value().runs[2].success);
  EXPECT_EQ(result.value().runs[2].attempt, 2);
  EXPECT_EQ(m->db().run_count(), 3u);
  EXPECT_EQ(m->db().run(result.value().runs[1].run).status, meta::RunStatus::kFailed);
  EXPECT_EQ(metrics.counter("run_retries"), 1u);
}

TEST(ExecutorFaults, RetryExhaustionAborts) {
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kRetryThenAbort;
  options.retry.max_attempts = 2;
  auto m = flaky_sim_manager({1, 2}, options);  // both attempts fail
  auto result = m->execute_task("adder", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  ASSERT_EQ(result.value().runs.size(), 3u);
  EXPECT_FALSE(result.value().runs[1].success);
  EXPECT_FALSE(result.value().runs[2].success);
  EXPECT_FALSE(result.value().final_output.valid());
}

TEST(ExecutorFaults, BackoffSeparatesAttempts) {
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kRetryThenAbort;
  options.retry.max_attempts = 2;
  options.retry.backoff = cal::WorkDuration::hours(1);
  auto m = flaky_sim_manager({1}, options);
  auto result = m->execute_task("adder", "alice").value();
  const auto& failed = m->db().run(result.runs[1].run);
  const auto& retried = m->db().run(result.runs[2].run);
  EXPECT_EQ(retried.started_at.minutes_since_epoch(),
            failed.finished_at.minutes_since_epoch() + 60);
}

TEST(ExecutorFaults, PerToolPolicyOverridesDefault) {
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kRetryThenAbort;
  options.retry.max_attempts = 1;  // default: no retries
  options.tool_retry["spice@s1"] = {.max_attempts = 2};
  auto m = flaky_sim_manager({1}, options);
  auto result = m->execute_task("adder", "alice").value();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.runs.size(), 3u);
}

TEST(ExecutorFaults, TimeoutKillsRunAtBudget) {
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kRetryThenAbort;
  options.retry.timeout = cal::WorkDuration::hours(4);
  auto m = test::make_circuit_manager();  // editor nominal 14h > 4h budget
  m->set_exec_options(options);

  obs::MetricsRegistry metrics;
  metrics.attach(m->bus());

  auto result = m->execute_task("adder", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  ASSERT_EQ(result.value().runs.size(), 1u);
  EXPECT_TRUE(result.value().runs[0].timed_out);
  const auto& run = m->db().run(result.value().runs[0].run);
  EXPECT_EQ(run.status, meta::RunStatus::kFailed);
  // Killed exactly at the budget, not at the tool's natural duration.
  EXPECT_EQ(run.finished_at.minutes_since_epoch() -
                run.started_at.minutes_since_epoch(),
            4 * 60);
  EXPECT_EQ(metrics.counter("run_timeouts"), 1u);
}

TEST(ExecutorFaults, ContinueIndependentSkipsDependents) {
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kContinueIndependent;
  auto m = test::make_circuit_manager();
  FaultPlan plan;
  plan.tools["ned-2.1"] = {.fail_on = {1}};  // Create fails
  m->set_faults(1, std::move(plan));
  m->set_exec_options(options);

  obs::MetricsRegistry metrics;
  metrics.attach(m->bus());

  auto result = m->execute_task("adder", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  ASSERT_EQ(result.value().runs.size(), 1u);  // only the failed Create
  ASSERT_EQ(result.value().skipped, (std::vector<std::string>{"Simulate"}));
  EXPECT_FALSE(result.value().final_output.valid());
  EXPECT_EQ(metrics.counter("runs_degraded"), 1u);
}

TEST(ExecutorFaults, ContinueIndependentKeepsIndependentSubtrees) {
  // Diamond: Sch and Lay are independent; Merge consumes both.  When Sch
  // fails, Lay must still run and only Merge is skipped.
  auto m = hercules::WorkflowManager::create(R"(
    schema board {
      data sch, lay, out;
      tool drawer, router, merger;
      rule Sch:   sch <- drawer();
      rule Lay:   lay <- router();
      rule Merge: out <- merger(sch, lay);
    })")
               .take();
  m->register_tool({.instance_name = "d", .tool_type = "drawer"}).expect("tool");
  m->register_tool({.instance_name = "r", .tool_type = "router"}).expect("tool");
  m->register_tool({.instance_name = "g", .tool_type = "merger"}).expect("tool");
  m->extract_task("board", "out").expect("extract");
  m->bind("board", "drawer", "d").expect("bind");
  m->bind("board", "router", "r").expect("bind");
  m->bind("board", "merger", "g").expect("bind");

  ExecutionOptions options;
  options.on_failure = FailurePolicy::kContinueIndependent;
  FaultPlan plan;
  plan.tools["d"] = {.fail_on = {1}};
  m->set_faults(1, std::move(plan));
  m->set_exec_options(options);

  auto result = m->execute_task("board", "team").value();
  EXPECT_FALSE(result.success);
  ASSERT_EQ(result.runs.size(), 2u);  // failed Sch + successful Lay
  EXPECT_FALSE(result.runs[0].success);
  EXPECT_TRUE(result.runs[1].success);
  EXPECT_EQ(result.skipped, (std::vector<std::string>{"Merge"}));
  // The independent branch's output exists; the merged output does not.
  EXPECT_EQ(m->db().container("lay").size(), 1u);
  EXPECT_TRUE(m->db().container("out").empty());
}

TEST(ExecutorFaults, RootFailureSkipsNothing) {
  // ASIC chain with a failing router: Synthesize and Place still run and
  // the root simply fails (no dependents to skip).
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kContinueIndependent;
  auto m = test::make_asic_manager();
  FaultPlan plan;
  plan.tools["rt"] = {.fail_on = {1}};
  m->set_faults(1, std::move(plan));
  m->set_exec_options(options);
  auto result = m->execute_task("chip", "carol").value();
  EXPECT_FALSE(result.success);
  ASSERT_EQ(result.runs.size(), 3u);  // Synthesize, Place ok; Route failed
  EXPECT_TRUE(result.runs[0].success);
  EXPECT_TRUE(result.runs[1].success);
  EXPECT_FALSE(result.runs[2].success);
  EXPECT_TRUE(result.skipped.empty());
}

// --- Reproducibility --------------------------------------------------------

TEST(ExecutorFaults, SameSeedReproducesIdenticalState) {
  auto run_scenario = [](std::uint64_t seed) {
    ExecutionOptions options;
    options.on_failure = FailurePolicy::kContinueIndependent;
    options.retry.max_attempts = 2;
    auto m = test::make_circuit_manager();
    FaultPlan plan;
    plan.tools["*"] = {.fail_prob = 0.4};
    m->set_faults(seed, std::move(plan));
    m->set_exec_options(options);
    (void)m->execute_task("adder", "alice").value();
    (void)m->execute_task("adder", "bob").value();
    return hercules::save_to_json(*m);
  };
  // Same seed: the whole persisted state (runs, statuses, timestamps) is
  // bit-identical.  Different seed: the failure sequence moves.
  EXPECT_EQ(run_scenario(7), run_scenario(7));
  EXPECT_NE(run_scenario(7), run_scenario(8));
}

TEST(ExecutorFaults, InjectorSurvivesInspection) {
  // The CLI reads back seed/plan to compose successive `faults` commands.
  auto m = test::make_circuit_manager();
  FaultPlan plan;
  plan.tools["spice@s1"] = {.fail_prob = 0.25, .latency_factor = 2.0};
  plan.crash_after_total = 9;
  m->set_faults(77, plan);
  ASSERT_NE(m->fault_injector(), nullptr);
  EXPECT_EQ(m->fault_injector()->seed(), 77u);
  EXPECT_EQ(m->fault_injector()->plan().crash_after_total, 9u);
  EXPECT_EQ(m->fault_injector()->plan().tools.at("spice@s1").latency_factor, 2.0);
  m->clear_faults();
  EXPECT_EQ(m->fault_injector(), nullptr);
}

}  // namespace
}  // namespace herc::exec
