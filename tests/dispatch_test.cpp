// Tests for concurrent-dispatch execution: overlapping runs, resource
// serialization, and agreement with the leveling model.

#include <gtest/gtest.h>

#include "common.hpp"

namespace herc::exec {
namespace {

constexpr const char* kParSchema = R"(
schema par {
  data a, b, c;
  tool t;
  rule MakeA: a <- t();
  rule MakeB: b <- t();
  rule Join:  c <- t(a, b);
}
)";

std::unique_ptr<hercules::WorkflowManager> par_manager() {
  auto m = hercules::WorkflowManager::create(kParSchema).take();
  m->register_tool({.instance_name = "t1", .tool_type = "t",
                    .nominal = cal::WorkDuration::hours(4)})
      .expect("tool");
  m->extract_task("job", "c").expect("extract");
  m->bind("job", "t", "t1").expect("bind");
  return m;
}

TEST(Dispatch, IndependentActivitiesOverlap) {
  auto m = par_manager();
  auto result = m->execute_task_concurrent("job", "team");
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_TRUE(result.value().success);

  const auto& a = m->db().run(m->db().runs_of_activity("MakeA").front());
  const auto& b = m->db().run(m->db().runs_of_activity("MakeB").front());
  const auto& join = m->db().run(m->db().runs_of_activity("Join").front());
  // MakeA and MakeB run in parallel...
  EXPECT_EQ(a.started_at.minutes_since_epoch(), 0);
  EXPECT_EQ(b.started_at.minutes_since_epoch(), 0);
  // ...and Join waits for both.
  EXPECT_EQ(join.started_at.minutes_since_epoch(), 4 * 60);
  // Makespan 8h, not the serial 12h; the clock lands on the makespan.
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 8 * 60);
}

TEST(Dispatch, SerialExecutionOfSameFlowIsSlower) {
  auto serial = par_manager();
  serial->execute_task("job", "solo").value();
  auto concurrent = par_manager();
  concurrent->execute_task_concurrent("job", "team").value();
  EXPECT_EQ(serial->clock().now().minutes_since_epoch(), 12 * 60);
  EXPECT_EQ(concurrent->clock().now().minutes_since_epoch(), 8 * 60);
}

TEST(Dispatch, SharedUnitResourceSerializes) {
  auto m = par_manager();
  auto alice = m->add_resource("alice");
  Executor::DispatchOptions opt;
  opt.assignments["MakeA"] = {alice};
  opt.assignments["MakeB"] = {alice};
  m->execute_task_concurrent("job", "alice", opt).value();
  const auto& a = m->db().run(m->db().runs_of_activity("MakeA").front());
  const auto& b = m->db().run(m->db().runs_of_activity("MakeB").front());
  bool overlap =
      a.started_at < b.finished_at && b.started_at < a.finished_at;
  EXPECT_FALSE(overlap);
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 12 * 60);  // back to serial
}

TEST(Dispatch, CapacityTwoKeepsParallelism) {
  auto m = par_manager();
  auto farm = m->add_resource("farm", "machine", 2);
  Executor::DispatchOptions opt;
  opt.assignments["MakeA"] = {farm};
  opt.assignments["MakeB"] = {farm};
  m->execute_task_concurrent("job", "team", opt).value();
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 8 * 60);
}

TEST(Dispatch, MakespanMatchesLeveledPlanShape) {
  // The dispatch rule is the leveling rule, so with identical durations the
  // executed makespan equals the leveled plan's.
  auto m = par_manager();
  auto alice = m->add_resource("alice");
  m->estimator().set_fallback(cal::WorkDuration::hours(4));  // = tool time
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["MakeA"] = {alice};
  req.assignments["MakeB"] = {alice};
  req.level_resources = true;
  auto plan = m->plan_task("job", req).value();
  const auto& space = m->schedule_space();
  cal::WorkInstant planned_finish;
  for (auto nid : space.plan(plan).nodes)
    planned_finish = std::max(planned_finish, space.node(nid).planned_finish);

  Executor::DispatchOptions opt;
  opt.assignments["MakeA"] = {alice};
  opt.assignments["MakeB"] = {alice};
  m->execute_task_concurrent("job", "alice", opt).value();
  EXPECT_EQ(m->clock().now(), planned_finish);
}

TEST(Dispatch, ValidationErrors) {
  auto m = par_manager();
  Executor::DispatchOptions bad_activity;
  bad_activity.assignments["NoSuch"] = {};
  EXPECT_FALSE(m->execute_task_concurrent("job", "x", bad_activity).ok());
  Executor::DispatchOptions bad_resource;
  bad_resource.assignments["MakeA"] = {meta::ResourceId{42}};
  EXPECT_FALSE(m->execute_task_concurrent("job", "x", bad_resource).ok());
  // Unbound tree rejected.
  auto unbound = hercules::WorkflowManager::create(kParSchema).take();
  unbound->extract_task("job", "c").expect("extract");
  EXPECT_FALSE(unbound->execute_task_concurrent("job", "x").ok());
}

TEST(Dispatch, FailureAbortsRemainingWork) {
  auto m = hercules::WorkflowManager::create(kParSchema).take();
  m->register_tool({.instance_name = "flaky", .tool_type = "t", .fail_rate = 1.0})
      .expect("tool");
  m->extract_task("job", "c").expect("extract");
  m->bind("job", "t", "flaky").expect("bind");
  auto result = m->execute_task_concurrent("job", "x");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  EXPECT_EQ(result.value().runs.size(), 1u);  // first activity failed, rest skipped
}

TEST(Dispatch, TrackerSeesOverlappingActuals) {
  auto m = par_manager();
  m->estimator().set_fallback(cal::WorkDuration::hours(4));
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->execute_task_concurrent("job", "team").value();
  for (const char* a : {"MakeA", "MakeB", "Join"})
    m->link_completion("job", a).expect("link");
  const auto& space = m->schedule_space();
  auto ma = space.node(space.node_in_plan(plan, "MakeA").value());
  auto mb = space.node(space.node_in_plan(plan, "MakeB").value());
  EXPECT_EQ(*ma.actual_start, *mb.actual_start);  // genuinely parallel actuals
}

}  // namespace
}  // namespace herc::exec
