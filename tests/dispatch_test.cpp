// Tests for concurrent-dispatch execution: overlapping runs, resource
// serialization, and agreement with the leveling model.

#include <gtest/gtest.h>

#include "common.hpp"
#include "exec/fault.hpp"
#include "hercules/persist.hpp"

namespace herc::exec {
namespace {

constexpr const char* kParSchema = R"(
schema par {
  data a, b, c;
  tool t;
  rule MakeA: a <- t();
  rule MakeB: b <- t();
  rule Join:  c <- t(a, b);
}
)";

std::unique_ptr<hercules::WorkflowManager> par_manager() {
  auto m = hercules::WorkflowManager::create(kParSchema).take();
  m->register_tool({.instance_name = "t1", .tool_type = "t",
                    .nominal = cal::WorkDuration::hours(4)})
      .expect("tool");
  m->extract_task("job", "c").expect("extract");
  m->bind("job", "t", "t1").expect("bind");
  return m;
}

TEST(Dispatch, IndependentActivitiesOverlap) {
  auto m = par_manager();
  auto result = m->execute_task_concurrent("job", "team");
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_TRUE(result.value().success);

  const auto& a = m->db().run(m->db().runs_of_activity("MakeA").front());
  const auto& b = m->db().run(m->db().runs_of_activity("MakeB").front());
  const auto& join = m->db().run(m->db().runs_of_activity("Join").front());
  // MakeA and MakeB run in parallel...
  EXPECT_EQ(a.started_at.minutes_since_epoch(), 0);
  EXPECT_EQ(b.started_at.minutes_since_epoch(), 0);
  // ...and Join waits for both.
  EXPECT_EQ(join.started_at.minutes_since_epoch(), 4 * 60);
  // Makespan 8h, not the serial 12h; the clock lands on the makespan.
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 8 * 60);
}

TEST(Dispatch, SerialExecutionOfSameFlowIsSlower) {
  auto serial = par_manager();
  serial->execute_task("job", "solo").value();
  auto concurrent = par_manager();
  concurrent->execute_task_concurrent("job", "team").value();
  EXPECT_EQ(serial->clock().now().minutes_since_epoch(), 12 * 60);
  EXPECT_EQ(concurrent->clock().now().minutes_since_epoch(), 8 * 60);
}

TEST(Dispatch, SharedUnitResourceSerializes) {
  auto m = par_manager();
  auto alice = m->add_resource("alice");
  Executor::DispatchOptions opt;
  opt.assignments["MakeA"] = {alice};
  opt.assignments["MakeB"] = {alice};
  m->execute_task_concurrent("job", "alice", opt).value();
  const auto& a = m->db().run(m->db().runs_of_activity("MakeA").front());
  const auto& b = m->db().run(m->db().runs_of_activity("MakeB").front());
  bool overlap =
      a.started_at < b.finished_at && b.started_at < a.finished_at;
  EXPECT_FALSE(overlap);
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 12 * 60);  // back to serial
}

TEST(Dispatch, CapacityTwoKeepsParallelism) {
  auto m = par_manager();
  auto farm = m->add_resource("farm", "machine", 2);
  Executor::DispatchOptions opt;
  opt.assignments["MakeA"] = {farm};
  opt.assignments["MakeB"] = {farm};
  m->execute_task_concurrent("job", "team", opt).value();
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 8 * 60);
}

TEST(Dispatch, MakespanMatchesLeveledPlanShape) {
  // The dispatch rule is the leveling rule, so with identical durations the
  // executed makespan equals the leveled plan's.
  auto m = par_manager();
  auto alice = m->add_resource("alice");
  m->estimator().set_fallback(cal::WorkDuration::hours(4));  // = tool time
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["MakeA"] = {alice};
  req.assignments["MakeB"] = {alice};
  req.level_resources = true;
  auto plan = m->plan_task("job", req).value();
  const auto& space = m->schedule_space();
  cal::WorkInstant planned_finish;
  for (auto nid : space.plan(plan).nodes)
    planned_finish = std::max(planned_finish, space.node(nid).planned_finish);

  Executor::DispatchOptions opt;
  opt.assignments["MakeA"] = {alice};
  opt.assignments["MakeB"] = {alice};
  m->execute_task_concurrent("job", "alice", opt).value();
  EXPECT_EQ(m->clock().now(), planned_finish);
}

TEST(Dispatch, ValidationErrors) {
  auto m = par_manager();
  Executor::DispatchOptions bad_activity;
  bad_activity.assignments["NoSuch"] = {};
  EXPECT_FALSE(m->execute_task_concurrent("job", "x", bad_activity).ok());
  Executor::DispatchOptions bad_resource;
  bad_resource.assignments["MakeA"] = {meta::ResourceId{42}};
  EXPECT_FALSE(m->execute_task_concurrent("job", "x", bad_resource).ok());
  // Unbound tree rejected.
  auto unbound = hercules::WorkflowManager::create(kParSchema).take();
  unbound->extract_task("job", "c").expect("extract");
  EXPECT_FALSE(unbound->execute_task_concurrent("job", "x").ok());
}

TEST(Dispatch, FailureAbortsRemainingWork) {
  auto m = hercules::WorkflowManager::create(kParSchema).take();
  m->register_tool({.instance_name = "flaky", .tool_type = "t", .fail_rate = 1.0})
      .expect("tool");
  m->extract_task("job", "c").expect("extract");
  m->bind("job", "t", "flaky").expect("bind");
  auto result = m->execute_task_concurrent("job", "x");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  EXPECT_EQ(result.value().runs.size(), 1u);  // first activity failed, rest skipped
}

TEST(Dispatch, ContinueIndependentKeepsIndependentBranchRunning) {
  auto m = par_manager();
  FaultPlan plan;
  plan.tools["t1"] = {.fail_on = {1}};  // first invocation = MakeA
  m->set_faults(1, std::move(plan));
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kContinueIndependent;
  m->set_exec_options(options);

  auto result = m->execute_task_concurrent("job", "team");
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_FALSE(result.value().success);
  // MakeA failed, MakeB still dispatched, Join (needs both) skipped.
  ASSERT_EQ(result.value().runs.size(), 2u);
  EXPECT_EQ(result.value().skipped, (std::vector<std::string>{"Join"}));
  int ok_runs = 0;
  for (const auto& r : result.value().runs) ok_runs += r.success ? 1 : 0;
  EXPECT_EQ(ok_runs, 1);
  ASSERT_EQ(m->db().runs_of_activity("MakeB").size(), 1u);
  // The surviving branch still overlapped the failed one: makespan 4h.
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 4 * 60);
}

TEST(Dispatch, RetryReschedulesAfterBackoff) {
  auto m = par_manager();
  FaultPlan plan;
  plan.tools["t1"] = {.fail_on = {1}};
  m->set_faults(1, std::move(plan));
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kRetryThenAbort;
  options.retry.max_attempts = 2;
  options.retry.backoff = cal::WorkDuration::minutes(30);
  m->set_exec_options(options);

  auto result = m->execute_task_concurrent("job", "team");
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_TRUE(result.value().success);
  // MakeA: failed attempt + retry; MakeB: one run; Join: one run.
  EXPECT_EQ(result.value().runs.size(), 4u);
  auto make_a = m->db().runs_of_activity("MakeA");
  ASSERT_EQ(make_a.size(), 2u);
  const auto& failed = m->db().run(make_a[0]);
  const auto& retried = m->db().run(make_a[1]);
  EXPECT_EQ(failed.status, meta::RunStatus::kFailed);
  EXPECT_EQ(retried.status, meta::RunStatus::kCompleted);
  // The retry waits out the backoff in work time.
  EXPECT_EQ(retried.started_at.minutes_since_epoch(),
            failed.finished_at.minutes_since_epoch() + 30);
  // Join starts once the retried MakeA delivers (MakeB finished long ago).
  const auto& join = m->db().run(m->db().runs_of_activity("Join").front());
  EXPECT_EQ(join.started_at, retried.finished_at);
  EXPECT_EQ(m->clock().now(), join.finished_at);
}

TEST(Dispatch, TimeoutBudgetCapsDispatchedRun) {
  auto m = par_manager();  // nominal 4h
  ExecutionOptions options;
  options.on_failure = FailurePolicy::kRetryThenAbort;
  options.tool_retry["t1"] = {.max_attempts = 1,
                              .timeout = cal::WorkDuration::hours(2)};
  m->set_exec_options(options);
  auto result = m->execute_task_concurrent("job", "team");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  ASSERT_GE(result.value().runs.size(), 1u);
  EXPECT_TRUE(result.value().runs[0].timed_out);
  const auto& run = m->db().run(result.value().runs[0].run);
  EXPECT_EQ(run.finished_at.minutes_since_epoch() -
                run.started_at.minutes_since_epoch(),
            2 * 60);
}

TEST(Dispatch, SameFaultSeedReproducesDispatchBitIdentically) {
  auto run_once = [] {
    auto m = par_manager();
    FaultPlan plan;
    plan.tools["*"] = {.fail_prob = 0.5};
    m->set_faults(11, std::move(plan));
    ExecutionOptions options;
    options.on_failure = FailurePolicy::kContinueIndependent;
    options.retry.max_attempts = 2;
    m->set_exec_options(options);
    (void)m->execute_task_concurrent("job", "team").value();
    return hercules::save_to_json(*m);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Dispatch, TrackerSeesOverlappingActuals) {
  auto m = par_manager();
  m->estimator().set_fallback(cal::WorkDuration::hours(4));
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->execute_task_concurrent("job", "team").value();
  for (const char* a : {"MakeA", "MakeB", "Join"})
    m->link_completion("job", a).expect("link");
  const auto& space = m->schedule_space();
  auto ma = space.node(space.node_in_plan(plan, "MakeA").value());
  auto mb = space.node(space.node_in_plan(plan, "MakeB").value());
  EXPECT_EQ(*ma.actual_start, *mb.actual_start);  // genuinely parallel actuals
}

}  // namespace
}  // namespace herc::exec
