// Unit tests for Monte Carlo schedule-risk analysis.

#include <gtest/gtest.h>

#include "common.hpp"
#include "core/risk.hpp"
#include "obs/metrics.hpp"

namespace herc::sched {
namespace {

constexpr const char* kDiamondSchema = R"(
schema diamond {
  data seed, left, right, merged;
  tool t;
  rule Left:  left   <- t(seed);
  rule Right: right  <- t(seed);
  rule Merge: merged <- t(left, right);
}
)";

std::unique_ptr<hercules::WorkflowManager> diamond_manager(int left_h, int right_h) {
  auto m = hercules::WorkflowManager::create(kDiamondSchema).take();
  m->register_tool({.instance_name = "t1", .tool_type = "t",
                    .nominal = cal::WorkDuration::hours(4)})
      .expect("tool");
  m->extract_task("job", "merged").expect("extract");
  m->bind("job", "seed", "s").expect("bind");
  m->bind("job", "t", "t1").expect("bind");
  m->estimator().set_intuition("Left", cal::WorkDuration::hours(left_h));
  m->estimator().set_intuition("Right", cal::WorkDuration::hours(right_h));
  m->estimator().set_intuition("Merge", cal::WorkDuration::hours(8));
  return m;
}

TEST(Risk, Validation) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  RiskOptions bad;
  bad.samples = 0;
  EXPECT_FALSE(analyze_risk(m->schedule_space(), m->db(), plan, bad).ok());
}

TEST(Risk, DeterministicForASeed) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  RiskOptions opt;
  opt.samples = 200;
  auto a = analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
  auto b = analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
  EXPECT_EQ(a.p50_finish, b.p50_finish);
  EXPECT_EQ(a.p90_finish, b.p90_finish);
  EXPECT_EQ(a.activities[0].criticality, b.activities[0].criticality);
}

TEST(Risk, PercentilesAreOrdered) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto report = analyze_risk(m->schedule_space(), m->db(), plan).take();
  EXPECT_LE(report.p50_finish, report.p90_finish);
  EXPECT_GT(report.p90_finish.minutes_since_epoch(), 0);
  EXPECT_GE(report.on_time_probability, 0.0);
  EXPECT_LE(report.on_time_probability, 1.0);
}

TEST(Risk, ChainIsAlwaysCritical) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto report = analyze_risk(m->schedule_space(), m->db(), plan).take();
  for (const auto& a : report.activities)
    EXPECT_DOUBLE_EQ(a.criticality, 1.0) << a.activity;
}

TEST(Risk, CriticalityIndexReflectsCompetition) {
  // Left 20h vs Right 4h: with +-30% spread Right virtually never wins, so
  // Left's criticality ~1 and Right's ~0.  With near-equal branches both
  // sit near the middle.
  {
    auto m = diamond_manager(20, 4);
    auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
    auto report = analyze_risk(m->schedule_space(), m->db(), plan).take();
    double left = 0, right = 0;
    for (const auto& a : report.activities) {
      if (a.activity == "Left") left = a.criticality;
      if (a.activity == "Right") right = a.criticality;
    }
    EXPECT_GT(left, 0.95);
    EXPECT_LT(right, 0.05);
  }
  {
    auto m = diamond_manager(10, 10);
    auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
    auto report = analyze_risk(m->schedule_space(), m->db(), plan).take();
    double left = 0, right = 0;
    for (const auto& a : report.activities) {
      if (a.activity == "Left") left = a.criticality;
      if (a.activity == "Right") right = a.criticality;
    }
    EXPECT_NEAR(left, 0.5, 0.15);
    EXPECT_NEAR(right, 0.5, 0.15);
    // Merge is always critical.
    EXPECT_DOUBLE_EQ(report.activities.back().criticality, 1.0);
  }
}

TEST(Risk, BootstrapUsesMeasuredHistory) {
  // Execute the chain several times so every activity has >= 2 runs; the
  // bootstrap then samples exactly the observed durations (no noise), so
  // with a constant tool time the distribution collapses to a point.
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();
  m->execute_task("chip", "carol").value();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now(),
                                    .strategy = EstimateStrategy::kLast})
                  .value();
  auto report = analyze_risk(m->schedule_space(), m->db(), plan).take();
  EXPECT_EQ(report.p50_finish, report.p90_finish);
  EXPECT_EQ(report.p50_finish, report.deterministic_finish);
  EXPECT_DOUBLE_EQ(report.on_time_probability, 1.0);
}

TEST(Risk, CompletedActivitiesAreFixed) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  auto report = analyze_risk(m->schedule_space(), m->db(), plan).take();
  // The completed activity reports zero criticality (it carries no risk)
  // and its mean duration equals its actual duration.
  EXPECT_DOUBLE_EQ(report.activities[0].criticality, 0.0);
  EXPECT_EQ(report.activities[0].mean_duration.count_minutes(), 10 * 60);
}

TEST(Risk, ThreadCountInvariance) {
  // Same seed => bit-identical report no matter how the samples are sharded.
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();  // history for the bootstrap path
  m->execute_task("chip", "carol").value();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  RiskOptions opt;
  opt.samples = 500;
  opt.seed = 9;
  auto reference = analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
  for (int threads : {2, 3, 4, 8}) {
    opt.threads = threads;
    auto report = analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
    EXPECT_EQ(report.deterministic_finish, reference.deterministic_finish);
    EXPECT_EQ(report.mean_finish, reference.mean_finish) << threads;
    EXPECT_EQ(report.p50_finish, reference.p50_finish) << threads;
    EXPECT_EQ(report.p90_finish, reference.p90_finish) << threads;
    EXPECT_EQ(report.on_time_probability, reference.on_time_probability) << threads;
    ASSERT_EQ(report.activities.size(), reference.activities.size());
    for (std::size_t i = 0; i < report.activities.size(); ++i) {
      EXPECT_EQ(report.activities[i].criticality,
                reference.activities[i].criticality)
          << threads << " " << report.activities[i].activity;
      EXPECT_EQ(report.activities[i].mean_duration.count_minutes(),
                reference.activities[i].mean_duration.count_minutes())
          << threads << " " << report.activities[i].activity;
    }
  }
}

TEST(Risk, MoreThreadsThanSamplesIsClamped) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  RiskOptions opt;
  opt.samples = 3;
  opt.threads = 64;
  auto report = analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
  EXPECT_EQ(report.samples, 3);
  opt.threads = -5;  // nonsense degrades to single-threaded
  EXPECT_TRUE(analyze_risk(m->schedule_space(), m->db(), plan, opt).ok());
}

TEST(Risk, PublishesSolverStatsToBus) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  obs::MetricsRegistry metrics;
  metrics.attach(m->bus());
  RiskOptions opt;
  opt.samples = 50;
  opt.threads = 2;
  opt.bus = &m->bus();
  (void)analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
  EXPECT_EQ(metrics.counter("solver_compiles"), 1u);
  // Deterministic solve + one per sample.
  EXPECT_EQ(metrics.counter("solver_solves"), 51u);
  // Worker solvers are copies of the already-solved base solver, so every
  // per-sample solve reuses warm structure.
  EXPECT_EQ(metrics.counter("solver_incremental_solves"), 50u);
  // Every sample ran through a batched lane (see CpmSolver::solve_batch).
  EXPECT_EQ(metrics.counter("solver_batched_lanes"), 50u);
}

TEST(Risk, RenderContainsSummaryAndRows) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto report = analyze_risk(m->schedule_space(), m->db(), plan).take();
  std::string text = report.render(m->calendar());
  for (const char* needle :
       {"Schedule risk", "P50", "P90", "criticality", "Synthesize", "%"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace herc::sched
