// Unit tests for the Level-1 task schema and its DSL parser.

#include <gtest/gtest.h>

#include "schema/schema.hpp"

namespace herc::schema {
namespace {

TaskSchema circuit_schema() {
  TaskSchema s("circuit");
  s.add_type("netlist", EntityKind::kData).value();
  s.add_type("stimuli", EntityKind::kData).value();
  s.add_type("performance", EntityKind::kData).value();
  s.add_type("netlist_editor", EntityKind::kTool).value();
  s.add_type("simulator", EntityKind::kTool).value();
  s.add_rule("Create", "netlist", "netlist_editor", {}).value();
  s.add_rule("Simulate", "performance", "simulator", {"netlist", "stimuli"}).value();
  return s;
}

TEST(TaskSchema, TypeRegistration) {
  TaskSchema s;
  auto id = s.add_type("netlist", EntityKind::kData);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(s.type(id.value()).name, "netlist");
  EXPECT_EQ(s.type(id.value()).kind, EntityKind::kData);
  EXPECT_TRUE(s.find_type("netlist").has_value());
  EXPECT_FALSE(s.find_type("zz").has_value());
}

TEST(TaskSchema, DuplicateTypeRejected) {
  TaskSchema s;
  s.add_type("x", EntityKind::kData).value();
  auto dup = s.add_type("x", EntityKind::kTool);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, util::Error::Code::kConflict);
}

TEST(TaskSchema, BadTypeNameRejected) {
  TaskSchema s;
  EXPECT_FALSE(s.add_type("1abc", EntityKind::kData).ok());
  EXPECT_FALSE(s.add_type("", EntityKind::kData).ok());
  EXPECT_FALSE(s.add_type("a b", EntityKind::kData).ok());
}

TEST(TaskSchema, RuleKindChecking) {
  TaskSchema s;
  s.add_type("d", EntityKind::kData).value();
  s.add_type("t", EntityKind::kTool).value();
  // output must be data
  EXPECT_FALSE(s.add_rule("A", "t", "t", {}).ok());
  // tool must be tool
  EXPECT_FALSE(s.add_rule("A", "d", "d", {}).ok());
  // inputs must be data
  s.add_type("d2", EntityKind::kData).value();
  EXPECT_FALSE(s.add_rule("A", "d2", "t", {"t"}).ok());
  // unknown names
  EXPECT_FALSE(s.add_rule("A", "nope", "t", {}).ok());
  EXPECT_FALSE(s.add_rule("A", "d", "nope", {}).ok());
  EXPECT_FALSE(s.add_rule("A", "d", "t", {"nope"}).ok());
}

TEST(TaskSchema, OneProducerPerDataType) {
  TaskSchema s;
  s.add_type("d", EntityKind::kData).value();
  s.add_type("t", EntityKind::kTool).value();
  s.add_rule("A", "d", "t", {}).value();
  auto second = s.add_rule("B", "d", "t", {});
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, util::Error::Code::kConflict);
}

TEST(TaskSchema, DuplicateActivityRejected) {
  TaskSchema s;
  s.add_type("d", EntityKind::kData).value();
  s.add_type("e", EntityKind::kData).value();
  s.add_type("t", EntityKind::kTool).value();
  s.add_rule("A", "d", "t", {}).value();
  EXPECT_FALSE(s.add_rule("A", "e", "t", {}).ok());
}

TEST(TaskSchema, PrimaryInputsAndOutputs) {
  auto s = circuit_schema();
  auto inputs = s.primary_inputs();
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(s.type(inputs[0]).name, "stimuli");
  auto outputs = s.primary_outputs();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(s.type(outputs[0]).name, "performance");
}

TEST(TaskSchema, ProducerLookup) {
  auto s = circuit_schema();
  auto netlist = s.find_type("netlist").value();
  auto producer = s.producer_of(netlist);
  ASSERT_TRUE(producer.has_value());
  EXPECT_EQ(s.rule(*producer).activity, "Create");
  EXPECT_FALSE(s.producer_of(s.find_type("stimuli").value()).has_value());
}

TEST(TaskSchema, ValidateAcceptsDag) {
  EXPECT_TRUE(circuit_schema().validate().ok());
}

TEST(TaskSchema, ValidateRejectsCycle) {
  TaskSchema s;
  s.add_type("a", EntityKind::kData).value();
  s.add_type("b", EntityKind::kData).value();
  s.add_type("t", EntityKind::kTool).value();
  s.add_rule("MakeA", "a", "t", {"b"}).value();
  s.add_rule("MakeB", "b", "t", {"a"}).value();
  auto status = s.validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("MakeA"), std::string::npos);
  EXPECT_NE(status.error().message.find("MakeB"), std::string::npos);
}

// --- DSL parser ----------------------------------------------------------

constexpr const char* kDsl = R"(
# the paper's example schema
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor;
  tool simulator;
  rule Create:   netlist     <- netlist_editor();   // no inputs
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

TEST(SchemaParser, ParsesTheCircuitSchema) {
  auto s = parse_schema(kDsl);
  ASSERT_TRUE(s.ok()) << s.error().str();
  const auto& schema = s.value();
  EXPECT_EQ(schema.name(), "circuit");
  EXPECT_EQ(schema.types().size(), 5u);
  EXPECT_EQ(schema.rules().size(), 2u);
  auto rule = schema.rule(schema.find_rule_by_activity("Simulate").value());
  EXPECT_EQ(rule.inputs.size(), 2u);
  EXPECT_EQ(schema.type(rule.output).name, "performance");
  EXPECT_EQ(schema.type(rule.tool).name, "simulator");
}

TEST(SchemaParser, RoundTripsThroughDsl) {
  auto first = parse_schema(kDsl);
  ASSERT_TRUE(first.ok());
  std::string emitted = first.value().to_dsl();
  auto second = parse_schema(emitted);
  ASSERT_TRUE(second.ok()) << second.error().str() << "\n" << emitted;
  EXPECT_EQ(second.value().to_dsl(), emitted);  // fixed point
}

struct BadDslCase {
  const char* name;
  const char* text;
};

class SchemaParserErrors : public ::testing::TestWithParam<BadDslCase> {};

TEST_P(SchemaParserErrors, Rejected) {
  auto result = parse_schema(GetParam().text);
  EXPECT_FALSE(result.ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SchemaParserErrors,
    ::testing::Values(
        BadDslCase{"no_schema_keyword", "circuit { data x; }"},
        BadDslCase{"missing_brace", "schema c { data x;"},
        BadDslCase{"missing_semicolon", "schema c { data x }"},
        BadDslCase{"bad_arrow", "schema c { data x; tool t; rule A: x -> t(); }"},
        BadDslCase{"unknown_type_in_rule",
                   "schema c { data x; tool t; rule A: y <- t(); }"},
        BadDslCase{"cycle", "schema c { data a, b; tool t; rule A: a <- t(b); "
                            "rule B: b <- t(a); }"},
        BadDslCase{"trailing_garbage", "schema c { data x; } extra"},
        BadDslCase{"stray_character", "schema c { data x; $ }"},
        BadDslCase{"rule_without_paren",
                   "schema c { data x; tool t; rule A: x <- t; }"}),
    [](const ::testing::TestParamInfo<BadDslCase>& info) { return info.param.name; });

TEST(SchemaParser, EstimateAttributes) {
  auto s = parse_schema(R"(
    schema est {
      data a, b;
      tool t;
      rule MakeA: a <- t() [est 2d 4h];
      rule MakeB: b <- t(a);
    }
  )");
  ASSERT_TRUE(s.ok()) << s.error().str();
  const auto& schema = s.value();
  EXPECT_EQ(schema.rule(schema.find_rule_by_activity("MakeA").value()).default_estimate,
            "2d 4h");
  EXPECT_TRUE(
      schema.rule(schema.find_rule_by_activity("MakeB").value()).default_estimate.empty());
  // The attribute survives DSL round trips.
  auto again = parse_schema(schema.to_dsl());
  ASSERT_TRUE(again.ok()) << schema.to_dsl();
  EXPECT_EQ(again.value().to_dsl(), schema.to_dsl());
}

TEST(SchemaParser, EstimateAttributeErrors) {
  EXPECT_FALSE(parse_schema(
      "schema x { data a; tool t; rule A: a <- t() [est]; }").ok());
  EXPECT_FALSE(parse_schema(
      "schema x { data a; tool t; rule A: a <- t() [foo 2d]; }").ok());
  EXPECT_FALSE(parse_schema(
      "schema x { data a; tool t; rule A: a <- t() [est 2d; }").ok());
}

TEST(SchemaLint, FlagsSmells) {
  auto s = parse_schema(R"(
    schema smelly {
      data used_in, produced, orphan_data, second_output;
      tool used_tool, orphan_tool;
      rule Make:  produced      <- used_tool(used_in);
      rule Other: second_output <- used_tool(used_in);
    }
  )").take();
  auto warnings = s.lint();
  ASSERT_EQ(warnings.size(), 3u);
  bool orphan_tool = false, orphan_data = false, many_outputs = false;
  for (const auto& w : warnings) {
    orphan_tool |= w.find("orphan_tool") != std::string::npos;
    orphan_data |= w.find("orphan_data") != std::string::npos;
    many_outputs |= w.find("primary outputs") != std::string::npos;
  }
  EXPECT_TRUE(orphan_tool);
  EXPECT_TRUE(orphan_data);
  EXPECT_TRUE(many_outputs);
}

TEST(SchemaLint, CleanSchemaHasNoWarnings) {
  auto s = parse_schema(kDsl).take();
  EXPECT_TRUE(s.lint().empty());
}

TEST(SchemaParser, DescribeMentionsEverything) {
  auto s = parse_schema(kDsl).take();
  std::string d = s.describe();
  for (const char* needle : {"netlist", "stimuli", "performance", "Create", "Simulate",
                             "primary inputs", "primary outputs"})
    EXPECT_NE(d.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace herc::schema
