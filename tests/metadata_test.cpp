// Unit tests for the Level-3 execution-space database.

#include <gtest/gtest.h>

#include "metadata/database.hpp"

namespace herc::meta {
namespace {

schema::TaskSchema circuit_schema() {
  return schema::parse_schema(R"(
    schema circuit {
      data netlist, stimuli, performance;
      tool netlist_editor, simulator;
      rule Create:   netlist     <- netlist_editor();
      rule Simulate: performance <- simulator(netlist, stimuli);
    }
  )").take();
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : schema_(circuit_schema()), db_(schema_) {}

  EntityInstanceId make_instance(const std::string& type, const std::string& name,
                                 std::int64_t at = 0) {
    return db_
        .create_instance(type, name, RunId::invalid(), util::DataObjectId{},
                         cal::WorkInstant(at))
        .value();
  }

  RunId make_run(const std::string& activity, std::vector<EntityInstanceId> inputs,
                 EntityInstanceId output, std::int64_t start = 0,
                 std::int64_t finish = 10) {
    meta::Run r;
    r.activity = activity;
    r.tool_binding = "tool@host";
    r.designer = "alice";
    r.inputs = std::move(inputs);
    r.output = output;
    r.started_at = cal::WorkInstant(start);
    r.finished_at = cal::WorkInstant(finish);
    return db_.record_run(std::move(r)).value();
  }

  schema::TaskSchema schema_;
  Database db_;
};

TEST_F(DatabaseTest, ContainersInitializedEmptyFromSchema) {
  EXPECT_TRUE(db_.container("netlist").empty());
  EXPECT_TRUE(db_.container("stimuli").empty());
  EXPECT_TRUE(db_.container("unknown_type").empty());
  EXPECT_EQ(db_.instance_count(), 0u);
}

TEST_F(DatabaseTest, InstanceVersioningPerTypeAndName) {
  auto a1 = make_instance("netlist", "adder");
  auto a2 = make_instance("netlist", "adder");
  auto m1 = make_instance("netlist", "mult");
  EXPECT_EQ(db_.instance(a1).version, 1);
  EXPECT_EQ(db_.instance(a2).version, 2);
  EXPECT_EQ(db_.instance(m1).version, 1);
  EXPECT_EQ(db_.container("netlist").size(), 3u);
}

TEST_F(DatabaseTest, CreateInstanceRejectsBadTypes) {
  EXPECT_FALSE(db_.create_instance("zzz", "x", RunId::invalid(), util::DataObjectId{},
                                   cal::WorkInstant(0))
                   .ok());
  // Tool types hold no entity instances.
  EXPECT_FALSE(db_.create_instance("simulator", "x", RunId::invalid(),
                                   util::DataObjectId{}, cal::WorkInstant(0))
                   .ok());
}

TEST_F(DatabaseTest, LatestInContainerAndNamed) {
  EXPECT_FALSE(db_.latest_in_container("netlist").has_value());
  auto a = make_instance("netlist", "adder");
  auto b = make_instance("netlist", "mult");
  EXPECT_EQ(db_.latest_in_container("netlist").value(), b);
  EXPECT_EQ(db_.latest_named("netlist", "adder").value(), a);
  EXPECT_FALSE(db_.latest_named("netlist", "none").has_value());
}

TEST_F(DatabaseTest, RecordRunPatchesProducedBy) {
  auto out = make_instance("netlist", "adder");
  auto run = make_run("Create", {}, out);
  EXPECT_EQ(db_.instance(out).produced_by, run);
  EXPECT_EQ(db_.run(run).output, out);
}

TEST_F(DatabaseTest, RecordRunValidation) {
  meta::Run bad;
  bad.activity = "";
  EXPECT_FALSE(db_.record_run(bad).ok());

  meta::Run no_output;
  no_output.activity = "Create";
  no_output.status = RunStatus::kCompleted;
  EXPECT_FALSE(db_.record_run(no_output).ok());

  meta::Run unknown_output;
  unknown_output.activity = "Create";
  unknown_output.output = EntityInstanceId{42};
  EXPECT_FALSE(db_.record_run(unknown_output).ok());

  auto inst = make_instance("netlist", "x");
  meta::Run bad_times;
  bad_times.activity = "Create";
  bad_times.output = inst;
  bad_times.started_at = cal::WorkInstant(10);
  bad_times.finished_at = cal::WorkInstant(5);
  EXPECT_FALSE(db_.record_run(bad_times).ok());

  meta::Run unknown_input;
  unknown_input.activity = "Create";
  unknown_input.output = inst;
  unknown_input.inputs = {EntityInstanceId{99}};
  EXPECT_FALSE(db_.record_run(unknown_input).ok());
}

TEST_F(DatabaseTest, FailedRunNeedsNoOutput) {
  meta::Run r;
  r.activity = "Simulate";
  r.status = RunStatus::kFailed;
  auto id = db_.record_run(std::move(r));
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(db_.run(id.value()).output.valid());
}

TEST_F(DatabaseTest, RunsOfActivityAndLastCompleted) {
  auto n = make_instance("netlist", "x");
  auto p1 = make_instance("performance", "perf");
  auto p2 = make_instance("performance", "perf");
  make_run("Simulate", {n}, p1, 0, 5);
  meta::Run failed;
  failed.activity = "Simulate";
  failed.status = RunStatus::kFailed;
  failed.started_at = cal::WorkInstant(5);
  failed.finished_at = cal::WorkInstant(6);
  db_.record_run(std::move(failed)).value();
  auto good = make_run("Simulate", {n}, p2, 6, 9);

  EXPECT_EQ(db_.runs_of_activity("Simulate").size(), 3u);
  EXPECT_EQ(db_.last_completed_run("Simulate").value(), good);
  EXPECT_FALSE(db_.last_completed_run("Create").has_value());
}

TEST_F(DatabaseTest, DependenciesComeFromProducingRun) {
  auto n = make_instance("netlist", "x");
  auto s = make_instance("stimuli", "stim");
  auto p = make_instance("performance", "perf");
  make_run("Simulate", {n, s}, p);
  auto deps = db_.dependencies_of(p);
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0], n);
  EXPECT_EQ(deps[1], s);
  EXPECT_TRUE(db_.dependencies_of(n).empty());  // import
}

TEST_F(DatabaseTest, ResourceRegistry) {
  auto alice = db_.add_resource("alice");
  auto farm = db_.add_resource("simfarm", "machine", 4);
  EXPECT_EQ(db_.resource(alice).capacity, 1);
  EXPECT_EQ(db_.resource(farm).kind, "machine");
  EXPECT_EQ(db_.find_resource("alice").value(), alice);
  EXPECT_FALSE(db_.find_resource("nobody").has_value());
  EXPECT_THROW(db_.resource(ResourceId{9}), std::out_of_range);
}

struct CountingObserver : DatabaseObserver {
  int instances = 0;
  int runs = 0;
  void on_instance_created(const EntityInstance&) override { ++instances; }
  void on_run_recorded(const Run&) override { ++runs; }
};

TEST_F(DatabaseTest, ObserversSeeMutations) {
  CountingObserver obs;
  db_.add_observer(&obs);
  auto n = make_instance("netlist", "x");
  make_run("Create", {}, n);
  EXPECT_EQ(obs.instances, 1);
  EXPECT_EQ(obs.runs, 1);
  db_.remove_observer(&obs);
  make_instance("netlist", "y");
  EXPECT_EQ(obs.instances, 1);  // no longer notified
}

TEST_F(DatabaseTest, DumpShowsContainersAndEmptyOnes) {
  make_instance("netlist", "adder");
  std::string d = db_.dump_containers();
  EXPECT_NE(d.find("[netlist]"), std::string::npos);
  EXPECT_NE(d.find("adder"), std::string::npos);
  EXPECT_NE(d.find("[performance] (empty)"), std::string::npos);
}

TEST_F(DatabaseTest, UnknownIdsThrow) {
  EXPECT_THROW(db_.instance(EntityInstanceId{5}), std::out_of_range);
  EXPECT_THROW(db_.run(RunId{5}), std::out_of_range);
}

}  // namespace
}  // namespace herc::meta
