// Unit tests for the simulated tool registry and the flow executor.

#include <gtest/gtest.h>

#include "common.hpp"
#include "exec/executor.hpp"

namespace herc::exec {
namespace {

// --- ToolRegistry ---------------------------------------------------------

TEST(ToolRegistry, AddAndLookup) {
  ToolRegistry reg;
  EXPECT_TRUE(reg.add({.instance_name = "spice@s1", .tool_type = "simulator"}).ok());
  EXPECT_TRUE(reg.contains("spice@s1"));
  EXPECT_FALSE(reg.contains("other"));
  EXPECT_EQ(reg.spec("spice@s1").tool_type, "simulator");
}

TEST(ToolRegistry, RejectsBadSpecs) {
  ToolRegistry reg;
  EXPECT_FALSE(reg.add({.instance_name = "", .tool_type = "t"}).ok());
  EXPECT_FALSE(reg.add({.instance_name = "x", .tool_type = ""}).ok());
  EXPECT_FALSE(reg.add({.instance_name = "x",
                        .tool_type = "t",
                        .nominal = cal::WorkDuration::minutes(0)})
                   .ok());
  reg.add({.instance_name = "x", .tool_type = "t"}).expect("first");
  EXPECT_FALSE(reg.add({.instance_name = "x", .tool_type = "t"}).ok());  // dup
}

TEST(ToolRegistry, InstancesOfFiltersByType) {
  ToolRegistry reg;
  reg.add({.instance_name = "a", .tool_type = "sim"}).expect("a");
  reg.add({.instance_name = "b", .tool_type = "syn"}).expect("b");
  reg.add({.instance_name = "c", .tool_type = "sim"}).expect("c");
  EXPECT_EQ(reg.instances_of("sim"), (std::vector<std::string>{"a", "c"}));
}

TEST(ToolRegistry, InvokeChecksTypeAndExistence) {
  ToolRegistry reg;
  reg.add({.instance_name = "spice", .tool_type = "simulator"}).expect("add");
  ToolInvocation inv{.activity = "Simulate", .output_type = "performance"};
  EXPECT_FALSE(reg.invoke("nope", "simulator", inv).ok());
  EXPECT_FALSE(reg.invoke("spice", "editor", inv).ok());
  EXPECT_TRUE(reg.invoke("spice", "simulator", inv).ok());
}

TEST(ToolRegistry, DeterministicNoise) {
  ToolRegistry a(7), b(7);
  ToolSpec spec{.instance_name = "t",
                .tool_type = "x",
                .nominal = cal::WorkDuration::hours(4),
                .noise_frac = 0.5};
  a.add(spec).expect("a");
  b.add(spec).expect("b");
  ToolInvocation inv{.activity = "A", .output_type = "o"};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.invoke("t", "x", inv).value().duration.count_minutes(),
              b.invoke("t", "x", inv).value().duration.count_minutes());
  }
}

TEST(ToolRegistry, NoiseStaysWithinBounds) {
  ToolRegistry reg(3);
  reg.add({.instance_name = "t",
           .tool_type = "x",
           .nominal = cal::WorkDuration::minutes(100),
           .noise_frac = 0.2})
      .expect("add");
  ToolInvocation inv{.activity = "A", .output_type = "o"};
  for (int i = 0; i < 100; ++i) {
    auto d = reg.invoke("t", "x", inv).value().duration.count_minutes();
    EXPECT_GE(d, 80);
    EXPECT_LE(d, 120);
  }
}

TEST(ToolRegistry, FailRateProducesFailures) {
  ToolRegistry reg(5);
  reg.add({.instance_name = "flaky", .tool_type = "x", .fail_rate = 0.5}).expect("add");
  ToolInvocation inv{.activity = "A", .output_type = "o"};
  int failures = 0;
  for (int i = 0; i < 100; ++i)
    if (!reg.invoke("flaky", "x", inv).value().success) ++failures;
  EXPECT_GT(failures, 20);
  EXPECT_LT(failures, 80);
}

TEST(ToolRegistry, DefaultContentDependsOnInputs) {
  ToolInvocation a{.activity = "A", .output_type = "o"};
  a.input_names = {"x v1"};
  a.input_contents = {"content-1"};
  ToolInvocation b = a;
  b.input_contents = {"content-2"};
  EXPECT_NE(default_tool_content(a), default_tool_content(b));
  EXPECT_EQ(default_tool_content(a), default_tool_content(a));
}

// --- SimClock ---------------------------------------------------------------

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now().minutes_since_epoch(), 0);
  clock.advance(cal::WorkDuration::hours(2));
  EXPECT_EQ(clock.now().minutes_since_epoch(), 120);
  clock.advance_to(cal::WorkInstant(100));  // backwards: ignored
  EXPECT_EQ(clock.now().minutes_since_epoch(), 120);
  clock.advance_to(cal::WorkInstant(300));
  EXPECT_EQ(clock.now().minutes_since_epoch(), 300);
  EXPECT_THROW(clock.advance(cal::WorkDuration::minutes(-1)), std::logic_error);
}

// --- Executor (through the facade fixtures) -----------------------------------

TEST(Executor, FullExecutionCreatesRunsAndInstances) {
  auto m = test::make_circuit_manager();
  auto result = m->execute_task("adder", "alice");
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_TRUE(result.value().success);
  ASSERT_EQ(result.value().runs.size(), 2u);  // Create, Simulate
  EXPECT_TRUE(result.value().final_output.valid());

  // Instances: imported stimuli + netlist + performance.
  EXPECT_EQ(m->db().instance_count(), 3u);
  EXPECT_EQ(m->db().run_count(), 2u);
  const auto& final_inst = m->db().instance(result.value().final_output);
  EXPECT_EQ(final_inst.type_name, "performance");
}

TEST(Executor, ClockAdvancesByToolDurations) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  // 14h editor + 6h simulator = 20h = 1200 minutes.
  EXPECT_EQ(m->clock().now().minutes_since_epoch(), 1200);
}

TEST(Executor, RunsRecordDesignerToolAndTimes) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  const auto& create = m->db().run(m->db().runs_of_activity("Create").front());
  EXPECT_EQ(create.designer, "alice");
  EXPECT_EQ(create.tool_binding, "ned-2.1");
  EXPECT_EQ(create.started_at.minutes_since_epoch(), 0);
  EXPECT_EQ(create.finished_at.minutes_since_epoch(), 14 * 60);
}

TEST(Executor, UnboundTreeRefusesToExecute) {
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  m->extract_task("adder", "performance").expect("extract");
  auto result = m->execute_task("adder", "alice");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::Error::Code::kUnbound);
}

TEST(Executor, ImportedInputReusedAcrossExecutions) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  m->execute_task("adder", "bob").value();
  // stimuli imported exactly once.
  EXPECT_EQ(m->db().container("stimuli").size(), 1u);
  // but outputs versioned per execution.
  EXPECT_EQ(m->db().container("performance").size(), 2u);
  EXPECT_EQ(m->db().instance(m->db().container("performance")[1]).version, 2);
}

TEST(Executor, IterationUsesLatestInputs) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  auto iter = m->run_activity("adder", "Simulate", "bob");
  ASSERT_TRUE(iter.ok()) << iter.error().str();
  const auto& run = m->db().run(iter.value().run);
  // Inputs are the latest netlist + stimuli instances.
  ASSERT_EQ(run.inputs.size(), 2u);
  EXPECT_EQ(m->db().instance(run.inputs[0]).type_name, "netlist");
  EXPECT_EQ(run.designer, "bob");
}

TEST(Executor, IterationWithoutUpstreamFails) {
  auto m = test::make_circuit_manager();
  // Simulate needs a netlist instance; none exists yet.
  auto iter = m->run_activity("adder", "Simulate", "bob");
  ASSERT_FALSE(iter.ok());
  EXPECT_EQ(iter.error().code, util::Error::Code::kConflict);
}

TEST(Executor, FailingToolStopsExecutionAndRecordsFailedRun) {
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  m->register_tool({.instance_name = "ed", .tool_type = "netlist_editor"})
      .expect("tool");
  m->register_tool({.instance_name = "sim",
                    .tool_type = "simulator",
                    .fail_rate = 1.0})
      .expect("tool");
  m->extract_task("adder", "performance").expect("extract");
  m->bind("adder", "stimuli", "s").expect("b");
  m->bind("adder", "netlist_editor", "ed").expect("b");
  m->bind("adder", "simulator", "sim").expect("b");
  auto result = m->execute_task("adder", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().success);
  ASSERT_EQ(result.value().runs.size(), 2u);
  EXPECT_FALSE(result.value().runs[1].success);
  const auto& failed = m->db().run(result.value().runs[1].run);
  EXPECT_EQ(failed.status, meta::RunStatus::kFailed);
  EXPECT_FALSE(failed.output.valid());
  // No performance instance was created, and the result's final_output is
  // explicitly the invalid sentinel (never a stale or zero-initialised id).
  EXPECT_TRUE(m->db().container("performance").empty());
  EXPECT_FALSE(result.value().final_output.valid());
}

TEST(Executor, FinalOutputDefaultsToInvalidSentinel) {
  // A default-constructed result must already carry the sentinel, so no
  // failure path can leak an accidentally-valid id.
  ExecutionResult result;
  EXPECT_FALSE(result.final_output.valid());
  EXPECT_EQ(result.final_output, meta::EntityInstanceId::invalid());
}

TEST(Executor, FailedExecutionKeepsSentinelEvenAfterEarlierSuccesses) {
  // Create succeeds (produces a real instance id) but Simulate fails: the
  // whole-tree result must NOT surface Create's output as final_output.
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  m->register_tool({.instance_name = "ed", .tool_type = "netlist_editor"})
      .expect("tool");
  m->register_tool({.instance_name = "sim",
                    .tool_type = "simulator",
                    .fail_rate = 1.0})
      .expect("tool");
  m->extract_task("adder", "performance").expect("extract");
  m->bind("adder", "stimuli", "s").expect("b");
  m->bind("adder", "netlist_editor", "ed").expect("b");
  m->bind("adder", "simulator", "sim").expect("b");
  auto result = m->execute_task("adder", "alice").value();
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_TRUE(result.runs[0].output.valid());  // Create produced a netlist
  EXPECT_FALSE(result.final_output.valid());   // but the tree has no output
}

TEST(Executor, ContentChangesWhenUpstreamChanges) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  auto perf1 = m->db().latest_in_container("performance").value();
  // Re-run Create: new netlist version -> re-run Simulate: new content.
  m->run_activity("adder", "Create", "alice").value();
  m->run_activity("adder", "Simulate", "alice").value();
  auto perf2 = m->db().latest_in_container("performance").value();
  const auto& d1 = m->store().get(m->db().instance(perf1).data);
  const auto& d2 = m->store().get(m->db().instance(perf2).data);
  EXPECT_NE(d1.content_hash, d2.content_hash);
}

}  // namespace
}  // namespace herc::exec
