// Integration tests for the WorkflowManager facade: the paper's full
// procedure and its error paths.

#include <gtest/gtest.h>

#include "common.hpp"

namespace herc::hercules {
namespace {

TEST(WorkflowManager, CreateRejectsBadSchema) {
  auto bad = WorkflowManager::create("schema x { data a; tool t; rule A: b <- t(); }");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(WorkflowManager::create("not a schema at all").ok());
}

TEST(WorkflowManager, SchemaEstimatesSeedTheEstimator) {
  auto m = WorkflowManager::create(R"(
    schema est {
      data a, b;
      tool t;
      rule MakeA: a <- t() [est 2d 4h];
      rule MakeB: b <- t(a);
    }
  )").take();
  using sched::EstimateStrategy;
  EXPECT_EQ(m->estimator()
                .estimate(m->db(), "MakeA", EstimateStrategy::kIntuition)
                .count_minutes(),
            2 * 480 + 240);
  // Rules without [est] fall back to the default.
  EXPECT_EQ(m->estimator()
                .estimate(m->db(), "MakeB", EstimateStrategy::kIntuition)
                .count_minutes(),
            m->estimator().fallback().count_minutes());
}

TEST(WorkflowManager, BadSchemaEstimateRejected) {
  auto bad = WorkflowManager::create(
      "schema x { data a; tool t; rule A: a <- t() [est 2x]; }");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, util::Error::Code::kParse);
}

TEST(WorkflowManager, TaskManagement) {
  auto m = test::make_circuit_manager();
  EXPECT_TRUE(m->has_task("adder"));
  EXPECT_FALSE(m->has_task("mult"));
  EXPECT_EQ(m->task_names(), (std::vector<std::string>{"adder"}));
  // Duplicate task names rejected.
  auto dup = m->extract_task("adder", "performance");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, util::Error::Code::kConflict);
  // Unknown task errors.
  EXPECT_FALSE(m->task("mult").ok());
  EXPECT_FALSE(m->bind("mult", "stimuli", "x").ok());
  EXPECT_FALSE(m->execute_task("mult", "alice").ok());
  EXPECT_FALSE(m->plan_task("mult", {}).ok());
}

TEST(WorkflowManager, StatusApisRequireAPlan) {
  auto m = test::make_circuit_manager();
  EXPECT_FALSE(m->gantt("adder").ok());
  EXPECT_FALSE(m->status_report("adder").ok());
  EXPECT_FALSE(m->plan_of("adder").has_value());
  m->plan_task("adder", {.anchor = m->clock().now()}).value();
  EXPECT_TRUE(m->gantt("adder").ok());
  EXPECT_TRUE(m->status_report("adder").ok());
}

TEST(WorkflowManager, RunActivityUnknownActivity) {
  auto m = test::make_circuit_manager();
  auto r = m->run_activity("adder", "NoSuch", "alice");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::Error::Code::kNotFound);
}

TEST(WorkflowManager, QueryFacadePropagatesErrors) {
  auto m = test::make_circuit_manager();
  EXPECT_TRUE(m->query("select runs").ok());
  EXPECT_FALSE(m->query("garbage").ok());
}

TEST(WorkflowManager, PaperProcedureEndToEnd) {
  // The complete Sec. IV.A walkthrough with database-state assertions that
  // mirror Figs. 5, 6 and 7.
  auto m = test::make_circuit_manager();

  // Fig. 5: after planning, schedule containers hold SC instances while
  // entity containers are empty.
  auto plan1 = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  EXPECT_EQ(m->db().instance_count(), 0u);
  EXPECT_EQ(m->schedule_space().container("Create").size(), 1u);
  EXPECT_EQ(m->schedule_space().container("Simulate").size(), 1u);

  // Re-plan: SC2 generation appears (Fig. 5 shows multiple versions).
  auto plan2 = m->replan_task("adder", {.anchor = m->clock().now()}).value();
  EXPECT_EQ(m->schedule_space().container("Create").size(), 2u);
  EXPECT_EQ(m->schedule_space().lineage(plan2),
            (std::vector<sched::ScheduleRunId>{plan2, plan1}));

  // Fig. 6: after execution + an iteration, entity containers fill up;
  // the performance container holds multiple instances.
  m->execute_task("adder", "alice").value();
  m->run_activity("adder", "Simulate", "bob").value();
  EXPECT_EQ(m->db().container("netlist").size(), 1u);
  EXPECT_EQ(m->db().container("performance").size(), 2u);
  EXPECT_EQ(m->db().run_count(), 3u);

  // Fig. 7: linking connects the schedule instances to the final versions.
  m->link_completion("adder", "Create").expect("link");
  m->link_completion("adder", "Simulate").expect("link");
  EXPECT_EQ(m->schedule_space().links().size(), 2u);
  // The Simulate link points at performance v2 (the final iteration).
  auto sim_node = m->schedule_space().node_in_plan(plan2, "Simulate").value();
  auto link_id = m->schedule_space().link_of(sim_node).value();
  const auto& link = m->schedule_space().links()[link_id.value() - 1];
  EXPECT_EQ(m->db().instance(link.entity_instance).version, 2);

  // Status reflects completion.
  std::string report = m->status_report("adder").value();
  EXPECT_NE(report.find("2 complete"), std::string::npos);

  // The database dump contains all four figure ingredients.
  std::string dump = m->dump_database();
  EXPECT_NE(dump.find("Execution space"), std::string::npos);
  EXPECT_NE(dump.find("Schedule space"), std::string::npos);
  EXPECT_NE(dump.find("linked to"), std::string::npos);
}

TEST(WorkflowManager, TwoTasksTrackIndependently) {
  auto m = test::make_asic_manager();
  m->extract_task("front", "gates").expect("extract");
  m->bind("front", "rtl", "chip.rtl").expect("bind");
  m->bind("front", "constraints", "chip.sdc").expect("bind");
  m->bind("front", "synthesizer", "dc").expect("bind");

  auto chip_plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto front_plan = m->plan_task("front", {.anchor = m->clock().now()}).value();
  EXPECT_NE(chip_plan, front_plan);
  EXPECT_EQ(m->plan_of("chip").value(), chip_plan);
  EXPECT_EQ(m->plan_of("front").value(), front_plan);
  // Planning "front" did not supersede "chip".
  EXPECT_EQ(m->schedule_space().plan(chip_plan).status, sched::PlanStatus::kActive);
}

TEST(WorkflowManager, DumpListsEmptyContainers) {
  auto m = test::make_circuit_manager();
  std::string dump = m->dump_database();
  EXPECT_NE(dump.find("[netlist] (empty)"), std::string::npos);
  EXPECT_NE(dump.find("[Create] (empty)"), std::string::npos);
}

}  // namespace
}  // namespace herc::hercules
