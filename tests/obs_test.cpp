// Tests for herc::obs: event-bus ordering and isolation, metrics math,
// and the Chrome-trace exporter (including the golden property that a full
// plan->execute->link session yields slices on both the schedule and the
// execution track).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace herc::obs {
namespace {

/// Test subscriber keeping a copy of everything it sees.
struct Recorder : Subscriber {
  std::vector<Event> events;
  void on_event(const Event& event) override { events.push_back(event); }
};

Event named_event(EventKind kind, std::string name) {
  Event e;
  e.kind = kind;
  e.name = std::move(name);
  return e;
}

// --- EventBus ---------------------------------------------------------------

TEST(EventBus, InactiveWithoutSubscribersAndPublishIsANoOp) {
  EventBus bus;
  EXPECT_FALSE(bus.active());
  EXPECT_FALSE(on(&bus));
  EXPECT_FALSE(on(nullptr));
  bus.publish(named_event(EventKind::kScope, "dropped"));
  EXPECT_EQ(bus.published(), 0u);
}

TEST(EventBus, DeliversInOrderWithSequentialSeqAndProjectStamp) {
  EventBus bus;
  bus.set_project("circuit");
  Recorder rec;
  bus.subscribe(&rec);
  EXPECT_TRUE(on(&bus));

  bus.publish(named_event(EventKind::kRunStarted, "a"));
  bus.publish(named_event(EventKind::kRunFinished, "b"));
  bus.publish(named_event(EventKind::kScope, "c"));

  ASSERT_EQ(rec.events.size(), 3u);
  EXPECT_EQ(rec.events[0].name, "a");
  EXPECT_EQ(rec.events[1].name, "b");
  EXPECT_EQ(rec.events[2].name, "c");
  EXPECT_LT(rec.events[0].seq, rec.events[1].seq);
  EXPECT_LT(rec.events[1].seq, rec.events[2].seq);
  for (const Event& e : rec.events) {
    EXPECT_EQ(e.project, "circuit");
    EXPECT_GT(e.wall_ns, 0);
  }
  EXPECT_EQ(bus.published(), 3u);
  bus.unsubscribe(&rec);
}

TEST(EventBus, SubscribersAreIsolated) {
  EventBus bus;
  Recorder first, second;
  bus.subscribe(&first);
  bus.publish(named_event(EventKind::kScope, "only-first"));

  bus.subscribe(&second);
  bus.publish(named_event(EventKind::kScope, "both"));

  bus.unsubscribe(&first);
  bus.publish(named_event(EventKind::kScope, "only-second"));

  ASSERT_EQ(first.events.size(), 2u);
  EXPECT_EQ(first.events[1].name, "both");
  ASSERT_EQ(second.events.size(), 2u);
  EXPECT_EQ(second.events[0].name, "both");
  EXPECT_EQ(second.events[1].name, "only-second");

  // Unsubscribing an unknown subscriber is harmless.
  bus.unsubscribe(&first);
  bus.unsubscribe(&second);
  EXPECT_FALSE(bus.active());
}

TEST(EventBus, ScopedTimerPublishesDurationOnlyWhenActive) {
  EventBus bus;
  { ScopedTimer silent(&bus, "off", "test"); }   // no subscribers: no event
  { ScopedTimer nullbus(nullptr, "null", "test"); }
  EXPECT_EQ(bus.published(), 0u);

  Recorder rec;
  bus.subscribe(&rec);
  { ScopedTimer timer(&bus, "work", "test"); }
  ASSERT_EQ(rec.events.size(), 1u);
  EXPECT_EQ(rec.events[0].kind, EventKind::kScope);
  EXPECT_EQ(rec.events[0].name, "work");
  EXPECT_EQ(rec.events[0].category, "test");
  EXPECT_GE(rec.events[0].duration_ns, 0);
  bus.unsubscribe(&rec);
}

// --- Histogram / MetricsRegistry --------------------------------------------

TEST(Histogram, StatisticsAndCoarseQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);

  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_ns(), 600);
  EXPECT_EQ(h.min_ns(), 100);
  EXPECT_EQ(h.max_ns(), 300);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 200.0);
  // Coarse quantiles: upper bound of the covering log2 bucket, so good to 2x.
  EXPECT_GE(h.quantile_ns(0.0), 100);
  EXPECT_GE(h.quantile_ns(1.0), 300);
  EXPECT_LE(h.quantile_ns(1.0), 600);
}

TEST(Metrics, CountersAndLatencies) {
  MetricsRegistry metrics;
  metrics.add("widgets");
  metrics.add("widgets", 4);
  EXPECT_EQ(metrics.counter("widgets"), 5u);
  EXPECT_EQ(metrics.counter("missing"), 0u);

  metrics.record_latency("lat", 1000);
  metrics.record_latency("lat", 3000);
  EXPECT_NE(metrics.text().find("widgets"), std::string::npos);
  EXPECT_NE(metrics.text().find("lat"), std::string::npos);

  metrics.reset();
  EXPECT_EQ(metrics.counter("widgets"), 0u);
}

TEST(Metrics, JsonDumpParsesAndMirrorsCounters) {
  MetricsRegistry metrics;
  metrics.add("plans_computed", 2);
  metrics.record_latency("query_latency", 1500);

  auto parsed = util::Json::parse(metrics.json().dump(-1));
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  const auto& root = parsed.value().as_object();
  EXPECT_EQ(root.at("counters").as_object().at("plans_computed").as_int(), 2);
  const auto& lat = root.at("histograms").as_object().at("query_latency").as_object();
  EXPECT_EQ(lat.at("count").as_int(), 1);
  EXPECT_EQ(lat.at("sum_ns").as_int(), 1500);
}

TEST(Metrics, FailedProjectionCountsAsProjectFailure) {
  EventBus bus;
  MetricsRegistry metrics;
  metrics.attach(bus);
  Event ok_ev;
  ok_ev.kind = EventKind::kSlipPropagated;
  bus.publish(std::move(ok_ev));
  Event failed_ev;
  failed_ev.kind = EventKind::kSlipPropagated;
  failed_ev.failed = true;
  failed_ev.args = {{"error", "CPM: precedence cycle"}};
  bus.publish(std::move(failed_ev));
  EXPECT_EQ(metrics.counter("project_failures"), 1u);
  // The failure is not double-counted as a successful re-projection.
  EXPECT_EQ(metrics.counter("replan_invalidations"), 1u);
  EXPECT_EQ(metrics.counter("cpm_passes"), 1u);
}

TEST(Metrics, SolverStatsEventFeedsSolverCounters) {
  EventBus bus;
  MetricsRegistry metrics;
  metrics.attach(bus);
  Event e;
  e.kind = EventKind::kScope;
  e.name = "cpm.solver";
  e.args = {{"compiles", "1"}, {"solves", "12"}, {"resolves", "11"}};
  bus.publish(std::move(e));
  EXPECT_EQ(metrics.counter("solver_compiles"), 1u);
  EXPECT_EQ(metrics.counter("solver_solves"), 12u);
  EXPECT_EQ(metrics.counter("solver_incremental_solves"), 11u);
}

TEST(Metrics, AccumulatesFromAWorkflowSession) {
  auto manager = test::make_circuit_manager();
  MetricsRegistry metrics;
  metrics.attach(manager->bus());

  sched::PlanRequest request;
  request.anchor = manager->clock().now();
  ASSERT_TRUE(manager->plan_task("adder", request).ok());
  ASSERT_TRUE(manager->execute_task("adder", "alice").ok());
  ASSERT_TRUE(manager->link_completion("adder", "Create").ok());
  ASSERT_TRUE(manager->query("select count from runs").ok());

  EXPECT_EQ(metrics.counter("plans_computed"), 1u);
  EXPECT_EQ(metrics.counter("runs_executed"), 2u);  // Create + Simulate
  EXPECT_GT(metrics.counter("instances_created"), 0u);
  EXPECT_GT(metrics.counter("activities_planned"), 0u);
  EXPECT_EQ(metrics.counter("completions_linked"), 1u);
  EXPECT_GT(metrics.counter("cpm_passes"), 0u);
  EXPECT_EQ(metrics.counter("queries_executed"), 1u);
  metrics.detach();

  // Detached: further work leaves the registry untouched.
  ASSERT_TRUE(manager->query("select count from instances").ok());
  EXPECT_EQ(metrics.counter("queries_executed"), 1u);
}

// --- ChromeTraceExporter ----------------------------------------------------

/// pid of the process-name metadata event whose name contains `needle`.
std::int64_t find_track_pid(const util::JsonArray& events, const std::string& needle) {
  for (const util::Json& ev : events) {
    const auto& obj = ev.as_object();
    if (obj.at("ph").as_string() != "M") continue;
    if (obj.at("name").as_string() != "process_name") continue;
    const std::string& label =
        obj.at("args").as_object().at("name").as_string();
    if (label.find(needle) != std::string::npos) return obj.at("pid").as_int();
  }
  return -1;
}

int count_complete_slices_on(const util::JsonArray& events, std::int64_t pid) {
  int n = 0;
  for (const util::Json& ev : events) {
    const auto& obj = ev.as_object();
    if (obj.at("ph").as_string() == "X" && obj.at("pid").as_int() == pid) ++n;
  }
  return n;
}

TEST(ChromeTrace, FullSessionYieldsScheduleAndExecutionTracks) {
  auto manager = test::make_circuit_manager();
  ChromeTraceExporter trace;
  trace.attach(manager->bus());

  sched::PlanRequest request;
  request.anchor = manager->clock().now();
  ASSERT_TRUE(manager->plan_task("adder", request).ok());
  ASSERT_TRUE(manager->execute_task("adder", "alice").ok());
  ASSERT_TRUE(manager->run_activity("adder", "Simulate", "bob").ok());
  ASSERT_TRUE(manager->link_completion("adder", "Create").ok());
  trace.detach();
  EXPECT_GT(trace.event_count(), 0u);

  auto parsed = util::Json::parse(trace.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  const auto& root = parsed.value().as_object();
  ASSERT_TRUE(root.contains("traceEvents"));
  const auto& events = root.at("traceEvents").as_array();

  std::int64_t schedule_pid = find_track_pid(events, "schedule");
  std::int64_t execution_pid = find_track_pid(events, "execution");
  ASSERT_GE(schedule_pid, 0) << "no schedule process track";
  ASSERT_GE(execution_pid, 0) << "no execution process track";
  // The golden acceptance property: complete slices on BOTH tracks.
  EXPECT_GE(count_complete_slices_on(events, schedule_pid), 2);   // Create+Simulate nodes
  EXPECT_GE(count_complete_slices_on(events, execution_pid), 3);  // 2 runs + 1 rerun

  // Work-time slices carry microsecond timestamps == work minutes: the
  // planned Create node starts at the anchor (minute 0) and spans 2 days.
  bool found_planned_create = false;
  for (const util::Json& ev : events) {
    const auto& obj = ev.as_object();
    if (obj.at("ph").as_string() != "X") continue;
    if (obj.at("pid").as_int() != schedule_pid) continue;
    if (obj.at("name").as_string() != "Create") continue;
    found_planned_create = true;
    EXPECT_DOUBLE_EQ(obj.at("ts").as_double(), 0.0);
    EXPECT_GT(obj.at("dur").as_double(), 0.0);
  }
  EXPECT_TRUE(found_planned_create);
}

TEST(ChromeTrace, WriteFileRoundTrips) {
  auto manager = test::make_circuit_manager();
  ChromeTraceExporter trace;
  trace.attach(manager->bus());
  sched::PlanRequest request;
  request.anchor = manager->clock().now();
  ASSERT_TRUE(manager->plan_task("adder", request).ok());
  trace.detach();

  const char* path = "/tmp/herc_obs_trace.json";
  ASSERT_TRUE(trace.write_file(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = util::Json::parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  EXPECT_TRUE(parsed.value().as_object().contains("traceEvents"));
  std::remove(path);
}

TEST(ChromeTrace, ReplanAddsAPlanGenerationRow) {
  auto manager = test::make_circuit_manager();
  ChromeTraceExporter trace;
  trace.attach(manager->bus());

  sched::PlanRequest request;
  request.anchor = manager->clock().now();
  ASSERT_TRUE(manager->plan_task("adder", request).ok());
  sched::PlanRequest again;
  again.anchor = manager->clock().now();
  ASSERT_TRUE(manager->replan_task("adder", again).ok());
  trace.detach();

  auto parsed = util::Json::parse(trace.str());
  ASSERT_TRUE(parsed.ok());
  const auto& events = parsed.value().as_object().at("traceEvents").as_array();
  std::int64_t schedule_pid = find_track_pid(events, "schedule");
  ASSERT_GE(schedule_pid, 0);
  // Two generations -> schedule slices on two distinct rows (tids).
  std::vector<std::int64_t> tids;
  for (const util::Json& ev : events) {
    const auto& obj = ev.as_object();
    if (obj.at("ph").as_string() != "X") continue;
    if (obj.at("pid").as_int() != schedule_pid) continue;
    std::int64_t tid = obj.at("tid").as_int();
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) tids.push_back(tid);
  }
  EXPECT_GE(tids.size(), 2u);
}

}  // namespace
}  // namespace herc::obs
