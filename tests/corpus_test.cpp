// Replays the committed regression corpus (tests/corpus/*.json) through the
// full fuzz harness.  Every scenario that ever caught a bug — or that seeds
// coverage of a workload shape or oracle stressor — must keep passing all
// seven oracle families forever.  Regenerate the seed entries with
// `herc_fuzz --emit-seed-corpus tests/corpus`.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "gen/fuzz.hpp"

#ifndef HERC_CORPUS_DIR
#error "build must define HERC_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace herc::gen {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(HERC_CORPUS_DIR, ec))
    if (entry.path().extension() == ".json") files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, HasTheCommittedSeedScenarios) {
  // 11 original entries plus the 6 adapter/adversarial stressors.
  EXPECT_GE(corpus_files().size(), 17u) << "corpus dir: " << HERC_CORPUS_DIR;
}

TEST(Corpus, EveryScenarioReplaysCleanThroughAllOracles) {
  auto files = corpus_files();
  ASSERT_FALSE(files.empty()) << "corpus dir: " << HERC_CORPUS_DIR;
  for (const auto& path : files) {
    auto scenario = read_corpus_file(path);
    ASSERT_TRUE(scenario.ok()) << path << ": " << scenario.error().message;
    auto failures = run_scenario(scenario.value());
    for (const auto& f : failures)
      ADD_FAILURE() << path << ": [" << oracle_name(f.family) << "] " << f.check
                    << ": " << f.detail;
  }
}

TEST(Corpus, FilesAreCanonicalSerializations) {
  // Corpus files must stay byte-stable under a read/write cycle, so diffs
  // in review always reflect real scenario changes.
  for (const auto& path : corpus_files()) {
    auto scenario = read_corpus_file(path);
    ASSERT_TRUE(scenario.ok()) << path;
    auto j = scenario_to_json(scenario.value());
    auto again = scenario_from_json(j);
    ASSERT_TRUE(again.ok()) << path;
    EXPECT_EQ(scenario_to_json(again.value()).dump(), j.dump()) << path;
  }
}

}  // namespace
}  // namespace herc::gen
