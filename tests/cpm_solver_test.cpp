// Unit + property tests for the reusable CSR scheduling kernel.  The
// invariant under test throughout: a compiled solver, after any sequence of
// set_duration/set_release mutations, produces exactly the result a fresh
// compute_cpm would on the mutated network.

#include <gtest/gtest.h>

#include "core/cpm_solver.hpp"
#include "core/worker_pool.hpp"
#include "gen/gen.hpp"
#include "util/rng.hpp"

namespace herc::sched {
namespace {

void expect_same_result(const CpmResult& got, const CpmResult& want) {
  EXPECT_EQ(got.early_start, want.early_start);
  EXPECT_EQ(got.early_finish, want.early_finish);
  EXPECT_EQ(got.late_start, want.late_start);
  EXPECT_EQ(got.late_finish, want.late_finish);
  EXPECT_EQ(got.total_slack, want.total_slack);
  EXPECT_EQ(got.free_slack, want.free_slack);
  EXPECT_EQ(got.critical, want.critical);
  EXPECT_EQ(got.makespan, want.makespan);
  EXPECT_EQ(got.critical_path, want.critical_path);
}

TEST(CpmSolver, EmptyNetwork) {
  auto solver = CpmSolver::compile({}).take();
  EXPECT_EQ(solver.size(), 0u);
  CpmResult r;
  r.makespan = 99;                 // stale caller buffer must be overwritten
  r.critical_path = {1, 2, 3};
  solver.solve(r);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_TRUE(r.critical_path.empty());
  EXPECT_TRUE(r.early_start.empty());
}

TEST(CpmSolver, SingleActivity) {
  auto solver = CpmSolver::compile({{.duration = 100, .preds = {}, .release = 0}}).take();
  CpmResult r;
  solver.solve(r);
  EXPECT_EQ(r.makespan, 100);
  EXPECT_TRUE(r.critical[0]);
  EXPECT_EQ(r.critical_path, (std::vector<std::size_t>{0}));
  // Incremental: change the duration, re-solve in place.
  solver.set_duration(0, 40);
  solver.solve(r);
  EXPECT_EQ(r.makespan, 40);
  EXPECT_EQ(solver.solve_makespan(), 40);
}

TEST(CpmSolver, ParallelEdgesAreHarmless) {
  // Duplicate precedence edges 0 -> 1 must behave exactly like one edge.
  std::vector<CpmActivity> dup{
      {.duration = 10, .preds = {}},
      {.duration = 20, .preds = {0, 0, 0}},
  };
  std::vector<CpmActivity> single{
      {.duration = 10, .preds = {}},
      {.duration = 20, .preds = {0}},
  };
  auto solver = CpmSolver::compile(dup).take();
  CpmResult got;
  solver.solve(got);
  expect_same_result(got, compute_cpm(single).take());
  EXPECT_EQ(got.makespan, 30);
}

TEST(CpmSolver, ReleasePushedNonCriticalSources) {
  // The release on activity 1 pushes the chain 0 -> 1 so late that source 0
  // gains slack: no critical activity has an empty pred list, exercising the
  // fallback critical-source scan.
  std::vector<CpmActivity> acts{
      {.duration = 1, .preds = {}},
      {.duration = 10, .preds = {0}, .release = 100},
  };
  auto solver = CpmSolver::compile(acts).take();
  CpmResult r;
  solver.solve(r);
  EXPECT_EQ(r.makespan, 110);
  EXPECT_FALSE(r.critical[0]);
  EXPECT_TRUE(r.critical[1]);
  EXPECT_EQ(r.critical_path, (std::vector<std::size_t>{1}));
  expect_same_result(r, compute_cpm(acts).take());
  // Dropping the release restores the ordinary critical source.
  solver.set_release(1, 0);
  solver.solve(r);
  EXPECT_EQ(r.makespan, 11);
  EXPECT_EQ(r.critical_path, (std::vector<std::size_t>{0, 1}));
}

TEST(CpmSolver, CompileValidatesLikeComputeCpm) {
  EXPECT_FALSE(CpmSolver::compile({{.duration = -1, .preds = {}}}).ok());
  EXPECT_FALSE(CpmSolver::compile({{.duration = 1, .preds = {7}}}).ok());
  EXPECT_FALSE(CpmSolver::compile({{.duration = 1, .preds = {}, .release = -2}}).ok());
  auto cycle = CpmSolver::compile({{.duration = 1, .preds = {1}},
                                   {.duration = 1, .preds = {0}}});
  ASSERT_FALSE(cycle.ok());
  EXPECT_EQ(cycle.error().code, util::Error::Code::kInvalid);
  EXPECT_NE(cycle.error().message.find("cycle"), std::string::npos);
}

TEST(CpmSolver, MutationsClampNegativeValues) {
  auto solver = CpmSolver::compile({{.duration = 5, .preds = {}}}).take();
  solver.set_duration(0, -10);
  solver.set_release(0, -10);
  EXPECT_EQ(solver.duration(0), 0);
  EXPECT_EQ(solver.release(0), 0);
  EXPECT_EQ(solver.solve_makespan(), 0);
}

TEST(CpmSolver, StatsCountCompileSolveAndIncrementals) {
  auto solver = CpmSolver::compile({{.duration = 5, .preds = {}}}).take();
  CpmResult r;
  solver.solve(r);
  solver.solve(r);
  (void)solver.solve_makespan();
  EXPECT_EQ(solver.stats().compiles, 1u);
  EXPECT_EQ(solver.stats().solves, 3u);
  EXPECT_EQ(solver.stats().incremental_solves, 2u);
  auto taken = solver.take_stats();
  EXPECT_EQ(taken.solves, 3u);
  EXPECT_EQ(solver.stats().solves, 0u);
  // incremental status survives take_stats: the structure is still warm.
  solver.solve(r);
  EXPECT_EQ(solver.stats().incremental_solves, 1u);
}

// --- incremental equivalence on randomized DAGs ------------------------------
// DAG sampling lives in herc::gen so the fuzzer and these tests draw from the
// same distribution (gen::random_cpm_dag preserves this file's original draws).

class CpmSolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpmSolverProperty, IncrementalSolveMatchesFreshComputeCpm) {
  util::Rng rng(GetParam());
  auto acts = gen::random_cpm_dag(rng, 50, 0.08);
  auto solver = CpmSolver::compile(acts).take();
  CpmResult incremental;
  solver.solve(incremental);
  expect_same_result(incremental, compute_cpm(acts).take());

  for (int round = 0; round < 20; ++round) {
    // Mutate a few durations/releases, keeping the mirror `acts` in sync.
    for (int k = 0; k < 5; ++k) {
      auto i = static_cast<std::size_t>(rng.uniform_int(0, 49));
      if (rng.chance(0.7)) {
        acts[i].duration = rng.uniform_int(0, 500);
        solver.set_duration(i, acts[i].duration);
      } else {
        acts[i].release = rng.uniform_int(0, 300);
        solver.set_release(i, acts[i].release);
      }
    }
    solver.solve(incremental);
    auto fresh = compute_cpm(acts).take();
    expect_same_result(incremental, fresh);
    EXPECT_EQ(solver.solve_makespan(), fresh.makespan);
  }
}

TEST_P(CpmSolverProperty, DragMatchesBruteForceResolve) {
  util::Rng rng(GetParam() + 500);
  auto acts = gen::random_cpm_dag(rng, 40, 0.1);
  auto drags = compute_drag(acts).take();
  auto base = compute_cpm(acts).take();
  for (std::size_t i = 0; i < acts.size(); ++i) {
    auto probe = acts;
    probe[i].duration = 0;
    std::int64_t expected =
        (!base.critical[i] || acts[i].duration == 0)
            ? 0
            : base.makespan - compute_cpm(probe).take().makespan;
    EXPECT_EQ(drags[i], expected) << "activity " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpmSolverProperty,
                         ::testing::Values(1, 2, 3, 7, 11, 23));

// --- level-parallel equivalence ----------------------------------------------
// The contract: the parallel passes are byte-identical to the serial solver
// at any thread count and chunk size, on any shape.  serial_threshold = 0
// forces the parallel path even on the small networks the tests can afford.

TEST(CpmSolverParallel, ByteIdenticalToSerialAcrossShapesAndThreadCounts) {
  std::vector<std::vector<CpmActivity>> networks;
  networks.push_back(gen::chain_cpm_network(257));
  networks.push_back(gen::random_cpm_network(1000, 0.4, 42));
  {
    util::Rng rng(7);
    networks.push_back(gen::random_cpm_dag(rng, 300, 0.05));
  }
  networks.push_back(gen::mega_cpm_network(
      {.seed = 9, .shape = gen::Shape::kLayered, .activities = 900, .width = 30}));
  networks.push_back(gen::mega_cpm_network(
      {.seed = 10, .shape = gen::Shape::kRandom, .activities = 800,
       .release_p = 0.2}));

  for (const auto& acts : networks) {
    auto solver = CpmSolver::compile(acts).take();
    CpmResult serial;
    solver.solve(serial);
    for (int threads : {1, 2, 4, 8}) {
      WorkerPool pool(threads);
      for (std::size_t chunk : {std::size_t{1}, std::size_t{64}, std::size_t{4096}}) {
        SolveOptions opts{.pool = &pool, .serial_threshold = 0, .chunk = chunk};
        CpmResult par;
        solver.solve(par, opts);
        expect_same_result(par, serial);
        EXPECT_EQ(solver.solve_makespan(opts), serial.makespan);
      }
    }
  }
}

TEST(CpmSolverParallel, ThresholdKeepsSmallNetworksSerial) {
  auto solver = CpmSolver::compile(gen::chain_cpm_network(100)).take();
  WorkerPool pool(4);
  CpmResult r;
  solver.solve(r, {.pool = &pool, .serial_threshold = 1000});
  EXPECT_EQ(solver.stats().parallel_solves, 0u);
  solver.solve(r, {.pool = &pool, .serial_threshold = 0});
  EXPECT_EQ(solver.stats().parallel_solves, 1u);
}

TEST(CpmSolverParallel, MutationsResolveInParallelToo) {
  auto acts = gen::random_cpm_network(2000, 0.5, 77);
  auto solver = CpmSolver::compile(acts).take();
  WorkerPool pool(4);
  SolveOptions opts{.pool = &pool, .serial_threshold = 0, .chunk = 128};
  CpmResult par;
  util::Rng rng(3);
  for (int round = 0; round < 5; ++round) {
    for (int k = 0; k < 10; ++k) {
      auto i = static_cast<std::size_t>(rng.uniform_int(0, 1999));
      acts[i].duration = rng.uniform_int(0, 500);
      solver.set_duration(i, acts[i].duration);
    }
    solver.solve(par, opts);
    expect_same_result(par, compute_cpm(acts).take());
  }
}

// --- streaming compile -------------------------------------------------------

TEST(CpmSolverStream, CompileStreamMatchesCompile) {
  for (auto shape : {gen::Shape::kLayered, gen::Shape::kRandom}) {
    gen::MegaGraphSpec spec{.seed = 21, .shape = shape, .activities = 1200,
                            .width = 37, .release_p = 0.15};
    auto acts = gen::mega_cpm_network(spec);
    auto classic = CpmSolver::compile(acts).take();
    auto streamed = CpmSolver::compile_stream(
        spec.activities,
        [&](const CpmSolver::ActivitySink& sink) { gen::stream_mega_cpm(spec, sink); })
        .take();
    EXPECT_EQ(streamed.size(), acts.size());
    EXPECT_EQ(streamed.levels(), classic.levels());
    CpmResult a, b;
    classic.solve(a);
    streamed.solve(b);
    expect_same_result(b, a);
  }
}

TEST(CpmSolverStream, ValidatesLikeCompile) {
  auto bad_pred = CpmSolver::compile_stream(1, [](const CpmSolver::ActivitySink& sink) {
    std::uint32_t preds[] = {7};
    sink(1, 0, preds, 1);
  });
  EXPECT_FALSE(bad_pred.ok());
  auto bad_dur = CpmSolver::compile_stream(1, [](const CpmSolver::ActivitySink& sink) {
    sink(-1, 0, nullptr, 0);
  });
  EXPECT_FALSE(bad_dur.ok());
  auto wrong_count = CpmSolver::compile_stream(2, [](const CpmSolver::ActivitySink& sink) {
    sink(1, 0, nullptr, 0);
  });
  EXPECT_FALSE(wrong_count.ok());
}

// --- batched lanes -----------------------------------------------------------

TEST(CpmSolverBatch, LanesMatchPerLaneSolves) {
  util::Rng rng(5);
  auto acts = gen::random_cpm_dag(rng, 120, 0.06);
  auto solver = CpmSolver::compile(acts).take();
  const std::size_t n = acts.size();
  constexpr std::size_t kLanes = 8;
  std::vector<std::int64_t> durations(n * kLanes);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t l = 0; l < kLanes; ++l)
      durations[i * kLanes + l] = rng.uniform_int(0, 500);
  std::vector<std::int64_t> makespans(kLanes);
  std::vector<std::uint8_t> critical(n * kLanes);
  solver.solve_batch(durations.data(), kLanes, makespans.data(), critical.data());

  auto reference = CpmSolver::compile(acts).take();
  CpmResult r;
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t i = 0; i < n; ++i)
      reference.set_duration(i, durations[i * kLanes + l]);
    reference.solve(r);
    EXPECT_EQ(makespans[l], r.makespan) << "lane " << l;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(critical[i * kLanes + l], r.critical[i])
          << "lane " << l << " activity " << i;
  }
  EXPECT_EQ(solver.stats().batched_lanes, kLanes);
}

}  // namespace
}  // namespace herc::sched
