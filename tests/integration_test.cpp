// Randomized integration ("torture") test: long random operation sequences
// against the facade with global invariants checked after every step, plus
// persistence round-trips at random points.  Catches interactions between
// planning, execution, iteration, linking, slips and re-planning that
// directed tests miss.

#include <gtest/gtest.h>

#include <map>

#include "common.hpp"
#include "hercules/persist.hpp"
#include "util/rng.hpp"

namespace herc {
namespace {

class Torture : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Torture() : rng_(GetParam()) { reset(); }

  void reset() {
    m_ = test::make_asic_manager();
    // A flaky tool exercises the failed-run path.
    m_->register_tool({.instance_name = "dc-flaky",
                       .tool_type = "synthesizer",
                       .nominal = cal::WorkDuration::hours(10),
                       .noise_frac = 0.3,
                       .fail_rate = 0.2})
        .expect("tool");
  }

  /// Checks every cross-module invariant we can state globally.
  void check_invariants() {
    const auto& db = m_->db();
    const auto& space = m_->schedule_space();

    // Runs: time-ordered by id, finish >= start, completed runs have outputs
    // whose producer points back.
    cal::WorkInstant prev_finish;
    for (const auto& run : db.runs()) {
      EXPECT_LE(run.started_at, run.finished_at);
      EXPECT_GE(run.started_at, prev_finish) << "runs overlap on the single clock";
      prev_finish = run.finished_at;
      if (run.status == meta::RunStatus::kCompleted) {
        ASSERT_TRUE(run.output.valid());
        EXPECT_EQ(db.instance(run.output).produced_by, run.id);
      } else {
        EXPECT_FALSE(run.output.valid());
      }
    }

    // Instances: versions within a (type, name) strictly increase with id.
    std::map<std::pair<std::string, std::string>, int> last_version;
    for (const auto& inst : db.instances()) {
      int& v = last_version[{inst.type_name, inst.name}];
      EXPECT_EQ(inst.version, v + 1);
      v = inst.version;
      if (inst.data.valid()) { EXPECT_TRUE(m_->store().contains(inst.data)); }
    }

    // Schedule space: baselines immutable once set (checked via snapshot),
    // deps respected by projections of incomplete nodes, links unique and
    // consistent.
    for (const auto& plan : space.plans()) {
      for (const auto& dep : plan.deps) {
        const auto& from = space.node(dep.from);
        const auto& to = space.node(dep.to);
        if (!to.completed && !to.actual_start) {
          cal::WorkInstant from_finish =
              from.actual_finish ? *from.actual_finish : from.planned_finish;
          EXPECT_GE(to.planned_start, from_finish)
              << plan.str() << ": " << from.activity << " -> " << to.activity;
        }
      }
      for (sched::ScheduleNodeId nid : plan.nodes) {
        const auto& n = space.node(nid);
        EXPECT_LE(n.planned_start, n.planned_finish);
        EXPECT_LE(n.baseline_start, n.baseline_finish);
        if (n.completed) {
          EXPECT_TRUE(n.actual_finish.has_value());
          EXPECT_TRUE(space.link_of(nid).has_value());
        }
      }
    }
    for (const auto& link : space.links()) {
      EXPECT_TRUE(space.node(link.schedule_node).completed);
      EXPECT_LE(link.entity_instance.value(), db.instance_count());
    }

    // Baseline snapshots never move after first observation.
    for (std::size_t i = 1; i <= space.node_count(); ++i) {
      sched::ScheduleNodeId nid{i};
      const auto& n = space.node(nid);
      auto it = baselines_.find(i);
      if (it == baselines_.end()) {
        baselines_[i] = {n.baseline_start, n.baseline_finish};
      } else {
        EXPECT_EQ(it->second.first, n.baseline_start) << "baseline moved";
        EXPECT_EQ(it->second.second, n.baseline_finish) << "baseline moved";
      }
    }
  }

  /// One random operation; returns a label for diagnostics.
  std::string random_op() {
    switch (rng_.uniform_int(0, 9)) {
      case 0: {
        sched::PlanRequest req;
        req.anchor = m_->clock().now();
        req.strategy = static_cast<sched::EstimateStrategy>(rng_.uniform_int(0, 4));
        if (m_->plan_of("chip")) {
          (void)m_->replan_task("chip", req);
          return "replan";
        }
        (void)m_->plan_task("chip", req);
        return "plan";
      }
      case 1:
      case 2: {
        const char* activities[] = {"Synthesize", "Place", "Route"};
        (void)m_->run_activity("chip", activities[rng_.uniform_int(0, 2)], "carol");
        return "run";
      }
      case 3: {
        (void)m_->execute_task("chip", "carol");
        return "execute";
      }
      case 4: {
        const char* activities[] = {"Synthesize", "Place", "Route"};
        (void)m_->link_completion("chip", activities[rng_.uniform_int(0, 2)]);
        return "link";
      }
      case 5: {
        m_->clock().advance(cal::WorkDuration::minutes(rng_.uniform_int(0, 2000)));
        return "idle";
      }
      case 6: {
        // Rebind the synthesizer between the stable and flaky instances.
        (void)m_->bind("chip", "synthesizer",
                       rng_.chance(0.5) ? "dc" : "dc-flaky");
        return "rebind";
      }
      case 7: {
        if (m_->plan_of("chip")) (void)m_->status_report("chip");
        (void)m_->query("select runs where status = \"failed\"");
        return "read";
      }
      case 8: {
        auto browser = m_->browser();
        if (m_->schedule_space().node_count() > 0) {
          auto id = sched::ScheduleNodeId{
              static_cast<std::uint64_t>(rng_.uniform_int(
                  1, static_cast<std::int64_t>(m_->schedule_space().node_count())))};
          if (browser.select(id).ok()) (void)browser.delete_selected();
        }
        return "browse";
      }
      default: {
        // Persistence round trip mid-flight; continue on the clone.
        std::string saved = hercules::save_to_json(*m_);
        auto loaded = hercules::load_from_json(saved);
        EXPECT_TRUE(loaded.ok()) << loaded.error().str();
        if (loaded.ok()) {
          EXPECT_EQ(hercules::save_to_json(*loaded.value()), saved);
          m_ = std::move(loaded).take();
          // Tools are not persisted: re-register.
          reset_tools();
        }
        return "persist";
      }
    }
  }

  void reset_tools() {
    m_->register_tool({.instance_name = "dc",
                       .tool_type = "synthesizer",
                       .nominal = cal::WorkDuration::hours(10)})
        .expect("tool");
    m_->register_tool({.instance_name = "pl",
                       .tool_type = "placer",
                       .nominal = cal::WorkDuration::hours(12)})
        .expect("tool");
    m_->register_tool({.instance_name = "rt",
                       .tool_type = "router",
                       .nominal = cal::WorkDuration::hours(20)})
        .expect("tool");
    m_->register_tool({.instance_name = "dc-flaky",
                       .tool_type = "synthesizer",
                       .nominal = cal::WorkDuration::hours(10),
                       .noise_frac = 0.3,
                       .fail_rate = 0.2})
        .expect("tool");
  }

  std::unique_ptr<hercules::WorkflowManager> m_;
  util::Rng rng_;
  std::map<std::uint64_t, std::pair<cal::WorkInstant, cal::WorkInstant>> baselines_;
};

TEST_P(Torture, RandomOperationSequencesKeepInvariants) {
  std::string history;
  for (int step = 0; step < 120; ++step) {
    history += random_op() + " ";
    check_invariants();
    if (HasFatalFailure() || HasNonfatalFailure()) {
      ADD_FAILURE() << "op history: " << history;
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Torture, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace herc
