// Unit tests for the Level-4 data store.

#include <gtest/gtest.h>

#include "data/data_store.hpp"

namespace herc::data {
namespace {

TEST(ContentHash, StableAndSensitive) {
  EXPECT_EQ(content_hash("abc"), content_hash("abc"));
  EXPECT_NE(content_hash("abc"), content_hash("abd"));
  EXPECT_NE(content_hash(""), content_hash("a"));
  // FNV-1a of the empty string: the offset basis.
  EXPECT_EQ(content_hash(""), 0xcbf29ce484222325ull);
}

TEST(DataStore, CreateAssignsDenseIdsAndVersions) {
  DataStore store;
  auto a = store.create("adder.netlist", "netlist", "v1 content", cal::WorkInstant(0));
  auto b = store.create("adder.netlist", "netlist", "v2 content", cal::WorkInstant(5));
  auto c = store.create("mult.netlist", "netlist", "other", cal::WorkInstant(9));
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(store.get(a).version, 1);
  EXPECT_EQ(store.get(b).version, 2);
  EXPECT_EQ(store.get(c).version, 1);  // versions are per name
  EXPECT_EQ(store.size(), 3u);
}

TEST(DataStore, ObjectsAreImmutableRecords) {
  DataStore store;
  auto id = store.create("x", "netlist", "payload", cal::WorkInstant(7));
  const DataObject& obj = store.get(id);
  EXPECT_EQ(obj.content, "payload");
  EXPECT_EQ(obj.content_hash, content_hash("payload"));
  EXPECT_EQ(obj.created_at.minutes_since_epoch(), 7);
  EXPECT_EQ(obj.type_name, "netlist");
}

TEST(DataStore, LatestFollowsVersions) {
  DataStore store;
  EXPECT_FALSE(store.latest("x").has_value());
  auto a = store.create("x", "t", "1", cal::WorkInstant(0));
  EXPECT_EQ(store.latest("x").value(), a);
  auto b = store.create("x", "t", "2", cal::WorkInstant(0));
  EXPECT_EQ(store.latest("x").value(), b);
}

TEST(DataStore, OfTypeFilters) {
  DataStore store;
  store.create("a", "netlist", "", cal::WorkInstant(0));
  store.create("b", "stimuli", "", cal::WorkInstant(0));
  store.create("c", "netlist", "", cal::WorkInstant(0));
  auto netlists = store.of_type("netlist");
  EXPECT_EQ(netlists.size(), 2u);
  EXPECT_TRUE(store.of_type("nothing").empty());
}

TEST(DataStore, GetUnknownThrows) {
  DataStore store;
  EXPECT_THROW(store.get(DataObjectId{1}), std::out_of_range);
  EXPECT_THROW(store.get(DataObjectId{}), std::out_of_range);
  EXPECT_FALSE(store.contains(DataObjectId{1}));
}

TEST(DataStore, RestoreRebuildsInIdOrder) {
  DataStore original;
  original.create("x", "t", "one", cal::WorkInstant(1));
  original.create("x", "t", "two", cal::WorkInstant(2));

  DataStore restored;
  for (const auto& obj : original.all()) {
    ASSERT_TRUE(restored.restore(obj).ok());
  }
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.latest("x").value().value(), 2u);
  EXPECT_EQ(restored.get(DataObjectId{2}).content, "two");
}

TEST(DataStore, RestoreRejectsOutOfOrder) {
  DataStore store;
  DataObject obj;
  obj.id = DataObjectId{5};
  obj.name = "x";
  EXPECT_FALSE(store.restore(obj).ok());
  DataObject bad;
  EXPECT_FALSE(store.restore(bad).ok());  // invalid id
}

TEST(DataStore, StrRendersNameVersionId) {
  DataStore store;
  auto id = store.create("adder.netlist", "netlist", "zz", cal::WorkInstant(0));
  std::string s = store.get(id).str();
  EXPECT_NE(s.find("adder.netlist"), std::string::npos);
  EXPECT_NE(s.find("v1"), std::string::npos);
  EXPECT_NE(s.find("#1"), std::string::npos);
}

}  // namespace
}  // namespace herc::data
