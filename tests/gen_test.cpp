// herc::gen generator tests: determinism (same spec -> byte-identical DSL
// and corpus JSON), golden equality with the legacy workload strings the
// benches were baselined on, bound clamping, and the structural promise that
// every generated scenario parses into a runnable, acyclic flow.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gen/gen.hpp"
#include "util/rng.hpp"

namespace herc::gen {
namespace {

TEST(GenLegacy, ChainSchemaGolden) {
  EXPECT_EQ(chain_schema(2),
            "schema chain {\n"
            "  data d0, d1, d2;\n"
            "  tool t;\n"
            "  rule A1: d1 <- t(d0);\n"
            "  rule A2: d2 <- t(d1);\n"
            "}\n");
}

TEST(GenLegacy, FaninSchemaGolden) {
  EXPECT_EQ(fanin_schema(2),
            "schema fanin {\n"
            "  data out, s0, s1;\n"
            "  tool t;\n"
            "  rule Make0: s0 <- t();\n"
            "  rule Make1: s1 <- t();\n"
            "  rule Merge: out <- t(s0, s1);\n"
            "}\n");
}

TEST(GenLegacy, LayeredSchemaGolden) {
  EXPECT_EQ(layered_schema(1, 2),
            "schema layered {\n"
            "  data root, d0_0, d0_1, d1_0, d1_1;\n"
            "  tool t;\n"
            "  rule A1_0: d1_0 <- t(d0_0, d0_1);\n"
            "  rule A1_1: d1_1 <- t(d0_1, d0_0);\n"
            "  rule Join: root <- t(d1_0, d1_1);\n"
            "}\n");
}

TEST(GenLegacy, RandomGraphAlwaysParsesAndTargetsLastType) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1995u}) {
    util::Rng rng(seed);
    auto graph = random_graph(rng, 2, 8);
    EXPECT_EQ(graph.target, "d9");
    auto m = hercules::WorkflowManager::create(render_schema(graph));
    ASSERT_TRUE(m.ok()) << m.error().message;
  }
}

TEST(Gen, SameSpecIsByteIdentical) {
  ScenarioSpec spec{.seed = 77,
                    .shape = Shape::kRandom,
                    .size = 10,
                    .inputs = 3,
                    .fault_seed = 5,
                    .fail_prob = 0.2};
  Scenario a = generate(spec), b = generate(spec);
  EXPECT_EQ(a.dsl(), b.dsl());
  EXPECT_EQ(scenario_to_json(a).dump(), scenario_to_json(b).dump());
}

TEST(Gen, DistinctSeedsVaryDurations) {
  Scenario a = generate({.seed = 1, .shape = Shape::kRandom, .size = 12});
  Scenario b = generate({.seed = 2, .shape = Shape::kRandom, .size = 12});
  EXPECT_NE(scenario_to_json(a).dump(), scenario_to_json(b).dump());
}

TEST(Gen, EverySpecInGridParsesBindsAndIsAcyclic) {
  for (Shape shape : {Shape::kChain, Shape::kFanin, Shape::kLayered, Shape::kRandom}) {
    for (std::size_t size : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      for (std::uint64_t seed : {3u, 9u}) {
        Scenario s = generate({.seed = seed, .shape = shape, .size = size});
        auto m = make_manager(s);
        ASSERT_TRUE(m.ok()) << shape_name(shape) << "/" << size << ": "
                            << m.error().message;
        // Acyclicity: the scenario's activity network must admit a CPM solve.
        auto cpm = sched::compute_cpm(cpm_network(s));
        ASSERT_TRUE(cpm.ok()) << shape_name(shape) << "/" << size;
        EXPECT_GT(cpm.value().makespan, 0);
      }
    }
  }
}

TEST(Gen, FactsMatchTheGraph) {
  Scenario s = generate({.seed = 4, .shape = Shape::kLayered, .size = 2, .width = 3});
  StructuralFacts f = facts(s);
  EXPECT_EQ(f.n_rules, s.graph.rules.size());
  EXPECT_EQ(f.n_data_types, s.graph.data_types.size());
  EXPECT_EQ(f.n_primary_inputs, s.graph.primary_inputs().size());
  EXPECT_EQ(f.target, s.graph.target);
  // The target must actually be produced by some rule.
  bool produced = false;
  for (const auto& r : s.graph.rules) produced |= r.output == f.target;
  EXPECT_TRUE(produced);
}

TEST(Gen, BoundsAreClamped) {
  Scenario tiny = generate({.seed = 5, .shape = Shape::kChain, .size = 0});
  EXPECT_GE(tiny.graph.rules.size(), 1u);
  Scenario huge = generate({.seed = 5, .shape = Shape::kChain, .size = 1000});
  EXPECT_LE(huge.graph.rules.size(), 64u);
  Scenario wide = generate({.seed = 5, .shape = Shape::kRandom, .size = 8,
                            .inputs = 100});
  EXPECT_LE(wide.graph.primary_inputs().size(), 8u);
  // Estimates land inside the (sane-clamped) configured range.
  Scenario s = generate({.seed = 6, .shape = Shape::kRandom, .size = 10,
                         .tool_minutes_lo = 50, .tool_minutes_hi = 60,
                         .est_minutes_lo = 100, .est_minutes_hi = 110});
  EXPECT_GE(s.tool_minutes, 50);
  EXPECT_LE(s.tool_minutes, 60);
  for (const auto& r : s.graph.rules) {
    EXPECT_GE(r.est_minutes, 100);
    EXPECT_LE(r.est_minutes, 110);
  }
}

TEST(Gen, JsonRoundTripIsByteIdentical) {
  for (Shape shape : {Shape::kChain, Shape::kRandom}) {
    Scenario s = generate({.seed = 13,
                           .shape = shape,
                           .size = 6,
                           .resources = 2,
                           .fault_seed = 99,
                           .fail_prob = 0.25,
                           .latency_factor = 1.5,
                           .mode = ExecMode::kConcurrent,
                           .policy = exec::FailurePolicy::kRetryThenAbort,
                           .max_attempts = 3,
                           .timeout_minutes = 120});
    auto j = scenario_to_json(s);
    auto back = scenario_from_json(j);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(scenario_to_json(back.value()).dump(), j.dump());
  }
}

TEST(GenAdversarial, ZeroAdversityKeepsThePlanEmpty) {
  Scenario s = generate({.seed = 14, .shape = Shape::kRandom, .size = 8});
  EXPECT_TRUE(s.adversarial.empty());
}

TEST(GenAdversarial, PlanIsSeededDeterministicAndBounded) {
  ScenarioSpec spec{.seed = 15, .shape = Shape::kRandom, .size = 10,
                    .inputs = 3, .adversity = 1.0};
  Scenario a = generate(spec), b = generate(spec);
  EXPECT_FALSE(a.adversarial.empty());
  EXPECT_EQ(scenario_to_json(a).dump(), scenario_to_json(b).dump());
  // Every index stays resolvable against the generated graph.
  const auto n_rules = static_cast<int>(a.graph.rules.size());
  const auto n_primary = a.graph.primary_inputs().size();
  EXPECT_TRUE(std::is_sorted(a.adversarial.replans.begin(),
                             a.adversarial.replans.end()));
  for (int k : a.adversarial.replans) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, n_rules);
  }
  for (const auto& e : a.adversarial.edits) {
    EXPECT_LT(e.rule, a.graph.rules.size());
    EXPECT_EQ(e.designer.rfind("designer", 0), 0u);
  }
  for (std::size_t i : a.adversarial.input_revisions) EXPECT_LT(i, n_primary);
}

TEST(GenAdversarial, PlanRoundTripsThroughJsonByteIdentically) {
  Scenario s = generate({.seed = 16, .shape = Shape::kLayered, .size = 3,
                         .width = 3, .adversity = 0.7});
  ASSERT_FALSE(s.adversarial.empty());
  auto j = scenario_to_json(s);
  auto back = scenario_from_json(j);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(scenario_to_json(back.value()).dump(), j.dump());
  EXPECT_EQ(back.value().adversarial.replans, s.adversarial.replans);
  EXPECT_EQ(back.value().adversarial.input_revisions, s.adversarial.input_revisions);
  ASSERT_EQ(back.value().adversarial.edits.size(), s.adversarial.edits.size());
  for (std::size_t i = 0; i < s.adversarial.edits.size(); ++i) {
    EXPECT_EQ(back.value().adversarial.edits[i].rule, s.adversarial.edits[i].rule);
    EXPECT_EQ(back.value().adversarial.edits[i].designer,
              s.adversarial.edits[i].designer);
  }
}

TEST(GenHeavyTail, DrawsStayInsideTheClampAndEscapeTheUniformRange) {
  // Heavy-tailed draws are clamped into [1, 64 * est_minutes_hi]; with a
  // fat enough tail and enough activities, some draw must land beyond the
  // uniform hi bound — that's the whole point of the family.
  for (DurationDist dist : {DurationDist::kLognormal, DurationDist::kPareto}) {
    Scenario s = generate({.seed = 17, .shape = Shape::kRandom, .size = 64,
                           .inputs = 4, .duration_dist = dist,
                           .dist_sigma = 2.0, .dist_alpha = 0.8});
    std::int64_t above_hi = 0;
    for (const auto& r : s.graph.rules) {
      EXPECT_GE(r.est_minutes, 1);
      EXPECT_LE(r.est_minutes, 64 * s.spec.est_minutes_hi);
      if (r.est_minutes > s.spec.est_minutes_hi) ++above_hi;
    }
    EXPECT_GT(above_hi, 0) << duration_dist_name(dist);
  }
}

TEST(GenHeavyTail, MedianStaysNearTheConfiguredRange) {
  // The tail is heavy but the bulk is not: at least half the lognormal
  // draws stay within the uniform window's order of magnitude.
  Scenario s = generate({.seed = 18, .shape = Shape::kRandom, .size = 64,
                         .inputs = 4,
                         .duration_dist = DurationDist::kLognormal,
                         .dist_sigma = 1.0});
  std::vector<std::int64_t> mins;
  for (const auto& r : s.graph.rules) mins.push_back(r.est_minutes);
  std::sort(mins.begin(), mins.end());
  std::int64_t median = mins[mins.size() / 2];
  EXPECT_LE(median, 4 * s.spec.est_minutes_hi);
  EXPECT_GE(median, s.spec.est_minutes_lo / 4);
}

TEST(GenHeavyTail, DistributionNamesRoundTrip) {
  for (DurationDist d : {DurationDist::kUniform, DurationDist::kLognormal,
                         DurationDist::kPareto}) {
    auto parsed = parse_duration_dist(duration_dist_name(d));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), d);
  }
  EXPECT_FALSE(parse_duration_dist("cauchy").ok());
}

TEST(GenBursty, ZeroProbabilityKeepsTheHistoricalStreamShape) {
  RequestStreamSpec smooth{.seed = 21, .count = 60};
  RequestStreamSpec with_knobs = smooth;
  with_knobs.burst_len_lo = 2;  // knobs are inert while burst_prob == 0
  with_knobs.burst_len_hi = 3;
  auto a = request_stream(smooth);
  auto b = request_stream(with_knobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].op, b[i].op);
}

TEST(GenBursty, BurstsLandBackToBackAcrossTheDesignerPool) {
  RequestStreamSpec spec{.seed = 22, .count = 120, .designers = 3};
  spec.burst_prob = 0.5;
  spec.burst_len_lo = 4;
  spec.burst_len_hi = 6;
  auto stream = request_stream(spec);
  EXPECT_LE(stream.size(), spec.count);
  // Deterministic under the same seed.
  auto again = request_stream(spec);
  ASSERT_EQ(stream.size(), again.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].op, again[i].op);
    if (stream[i].args.contains("designer")) {
      EXPECT_EQ(stream[i].args.at("designer").as_string(),
                again[i].args.at("designer").as_string());
    }
  }
  // Find a burst: >= burst_len_lo consecutive executes cycling designer0,
  // designer1, designer2 in order.
  bool found_burst = false;
  std::size_t run = 0;
  for (const auto& r : stream) {
    if (r.op == "execute" &&
        r.args.at("designer").as_string() ==
            "designer" + std::to_string(run % 3)) {
      if (++run >= 4) found_burst = true;
    } else {
      run = 0;
    }
  }
  EXPECT_TRUE(found_burst) << "no round-robin execute storm in 120 requests";
}

TEST(Gen, FaultSeedMaterializesWildcardInjector) {
  Scenario clean = generate({.seed = 8, .shape = Shape::kChain, .size = 4});
  EXPECT_TRUE(clean.faults.tools.empty());
  Scenario faulty = generate({.seed = 8, .shape = Shape::kChain, .size = 4,
                              .fault_seed = 81, .fail_prob = 0.3});
  ASSERT_EQ(faulty.faults.tools.count("*"), 1u);
  EXPECT_DOUBLE_EQ(faulty.faults.tools.at("*").fail_prob, 0.3);
}

}  // namespace
}  // namespace herc::gen
