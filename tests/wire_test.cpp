// Wire protocol tests: frame round trips, incremental decoding, a corpus of
// malformed/truncated frames (all must latch broken() without crashing), and
// request/response document round trips.

#include "srv/wire.hpp"

#include <gtest/gtest.h>

namespace herc::srv::wire {
namespace {

using util::Error;
using util::Json;
using util::JsonObject;

TEST(Frame, RoundTripSingle) {
  std::string frame = encode_frame("{\"id\":1}");
  EXPECT_EQ(frame, "#8\n{\"id\":1}\n");

  FrameReader reader;
  reader.feed(frame);
  auto payload = reader.poll();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"id\":1}");
  EXPECT_FALSE(reader.poll().has_value());
  EXPECT_FALSE(reader.broken());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frame, RoundTripMany) {
  std::string stream;
  for (int i = 0; i < 50; ++i) {
    stream += encode_frame("payload-" + std::to_string(i));
  }
  FrameReader reader;
  reader.feed(stream);
  for (int i = 0; i < 50; ++i) {
    auto payload = reader.poll();
    ASSERT_TRUE(payload.has_value()) << i;
    EXPECT_EQ(*payload, "payload-" + std::to_string(i));
  }
  EXPECT_FALSE(reader.poll().has_value());
}

TEST(Frame, ByteAtATime) {
  std::string frame = encode_frame("{\"op\":\"x\",\"nl\":\"a\\nb\"}");
  FrameReader reader;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(frame.substr(i, 1));
    EXPECT_FALSE(reader.poll().has_value()) << "complete too early at " << i;
  }
  reader.feed(frame.substr(frame.size() - 1));
  auto payload = reader.poll();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"op\":\"x\",\"nl\":\"a\\nb\"}");
}

TEST(Frame, PayloadMayContainNewlinesAndHashes) {
  std::string payload = "line1\n#2\nline3\n#999\n";
  FrameReader reader;
  reader.feed(encode_frame(payload) + encode_frame("tail"));
  auto first = reader.poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, payload);
  auto second = reader.poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "tail");
}

TEST(Frame, EmptyPayload) {
  FrameReader reader;
  reader.feed(encode_frame(""));
  auto payload = reader.poll();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "");
}

// Every entry must latch broken() — no crash, no payload, and the reader
// refuses further work.
TEST(Frame, MalformedCorpus) {
  const char* corpus[] = {
      "x5\nhello\n",        // missing '#'
      "#\nhello\n",         // no digits
      "#5x\nhello\n",       // non-digit in length
      "#-5\nhello\n",       // negative
      "#999999999\nx\n",    // over kMaxFrameBytes
      "#123456789012\nx\n", // over 8 digits
      "#5\nhelloX",         // wrong trailer byte
      "hello",              // garbage, no header at all
  };
  for (const char* bytes : corpus) {
    FrameReader reader;
    reader.feed(bytes);
    // Drain; a malformed stream must never yield a payload after the break.
    while (reader.poll().has_value()) {
    }
    EXPECT_TRUE(reader.broken()) << "corpus entry not rejected: " << bytes;
    EXPECT_FALSE(reader.poll().has_value());
    EXPECT_FALSE(reader.error().empty());
  }
}

TEST(Frame, HeaderWithoutNewlineEventuallyRejected) {
  FrameReader reader;
  reader.feed("#11111111111111111111111111111111111111");  // way past max header
  EXPECT_FALSE(reader.poll().has_value());
  EXPECT_TRUE(reader.broken());
}

TEST(Frame, TruncatedIsPendingNotBroken) {
  FrameReader reader;
  reader.feed("#10\nhalf");  // frame promised 10 bytes, only 4 arrived
  EXPECT_FALSE(reader.poll().has_value());
  EXPECT_FALSE(reader.broken());  // more bytes may still arrive
  reader.feed("-done!");  // completes the 10 payload bytes
  EXPECT_FALSE(reader.poll().has_value());  // trailer still missing
  reader.feed("\n");
  auto payload = reader.poll();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "half-done!");
}

TEST(Frame, BrokenReaderStaysBroken) {
  FrameReader reader;
  reader.feed("garbage");
  EXPECT_FALSE(reader.poll().has_value());
  ASSERT_TRUE(reader.broken());
  reader.feed(encode_frame("valid"));  // too late: the stream is poisoned
  EXPECT_FALSE(reader.poll().has_value());
}

TEST(Request, RoundTrip) {
  Request request;
  request.id = 42;
  request.project = "chip";
  request.op = "execute";
  request.args.set("designer", "pat");
  request.args.set("minutes", Json(30));

  auto parsed = Request::parse(request.to_json().dump(-1));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 42u);
  EXPECT_EQ(parsed.value().project, "chip");
  EXPECT_EQ(parsed.value().op, "execute");
  EXPECT_EQ(parsed.value().args.at("designer").as_string(), "pat");
  EXPECT_EQ(parsed.value().args.at("minutes").as_int(), 30);
}

TEST(Request, EncodeIsFramed) {
  Request request;
  request.id = 7;
  request.op = "ping";
  FrameReader reader;
  reader.feed(request.encode());
  auto payload = reader.poll();
  ASSERT_TRUE(payload.has_value());
  auto parsed = Request::parse(*payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 7u);
  EXPECT_EQ(parsed.value().op, "ping");
}

TEST(Request, MalformedDocuments) {
  // Well-framed garbage: parse() fails but nothing crashes.
  EXPECT_FALSE(Request::parse("{not json").ok());
  EXPECT_FALSE(Request::parse("[1,2,3]").ok());          // not an object
  EXPECT_FALSE(Request::parse("{\"id\":1}").ok());       // missing op
  EXPECT_FALSE(Request::parse("{\"op\":5,\"id\":1}").ok());  // op wrong type
  EXPECT_FALSE(Request::parse("{\"op\":\"x\",\"id\":\"y\"}").ok());  // id wrong type
}

TEST(Response, SuccessRoundTrip) {
  JsonObject result;
  result.set("runs", Json(3));
  auto response = Response::success(9, Json(std::move(result)));
  auto parsed = Response::parse(response.to_json().dump(-1));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ok);
  EXPECT_EQ(parsed.value().id, 9u);
  EXPECT_EQ(parsed.value().result.as_object().at("runs").as_int(), 3);
}

TEST(Response, FailureRoundTrip) {
  auto response = Response::failure(
      11, Error{Error::Code::kNotFound, "no such task"});
  auto parsed = Response::parse(response.encode().substr(0));
  // encode() is framed; parse the payload via a reader instead.
  FrameReader reader;
  reader.feed(response.encode());
  auto payload = reader.poll();
  ASSERT_TRUE(payload.has_value());
  parsed = Response::parse(*payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().ok);
  EXPECT_EQ(parsed.value().id, 11u);
  EXPECT_EQ(parsed.value().error.code, Error::Code::kNotFound);
  EXPECT_EQ(parsed.value().error.message, "no such task");
}

TEST(Response, ErrorCodeNames) {
  // Codes survive the wire: code -> name -> code is the identity.
  for (auto code : {Error::Code::kParse, Error::Code::kNotFound,
                    Error::Code::kInvalid, Error::Code::kUnbound,
                    Error::Code::kConflict, Error::Code::kUnsupported}) {
    EXPECT_EQ(error_code_from_name(error_code_name(code)), code);
  }
}

}  // namespace
}  // namespace herc::srv::wire
