// Tests for JSON persistence: save -> load -> save fixed point, state
// equivalence after reload, and load-time validation.

#include <gtest/gtest.h>

#include "common.hpp"
#include "hercules/persist.hpp"
#include "util/json.hpp"

namespace herc::hercules {
namespace {

std::unique_ptr<WorkflowManager> full_scenario() {
  auto m = test::make_circuit_manager();
  m->calendar().add_holiday(cal::Date(1995, 7, 4));
  m->db()
      .add_time_off(m->db().find_resource("bob").value(), cal::WorkInstant(100),
                    cal::WorkInstant(500))
      .expect("time off");
  sched::PlanRequest first;
  first.anchor = m->clock().now();
  first.deadline = cal::WorkInstant(40 * 60);  // exercise deadline persistence
  m->plan_task("adder", first).value();
  m->execute_task("adder", "alice").value();
  m->run_activity("adder", "Simulate", "bob").value();
  m->link_completion("adder", "Create").expect("link");
  m->link_completion("adder", "Simulate").expect("link");
  m->replan_task("adder", {.anchor = m->clock().now()}).value();
  return m;
}

TEST(Persist, SaveLoadSaveIsFixedPoint) {
  auto m = full_scenario();
  std::string once = save_to_json(*m);
  auto loaded = load_from_json(once);
  ASSERT_TRUE(loaded.ok()) << loaded.error().str();
  std::string twice = save_to_json(*loaded.value());
  EXPECT_EQ(once, twice);
}

TEST(Persist, ReloadedStateIsEquivalent) {
  auto m = full_scenario();
  auto loaded = load_from_json(save_to_json(*m)).take();

  EXPECT_EQ(loaded->db().instance_count(), m->db().instance_count());
  EXPECT_EQ(loaded->db().run_count(), m->db().run_count());
  EXPECT_EQ(loaded->store().size(), m->store().size());
  EXPECT_EQ(loaded->schedule_space().plans().size(),
            m->schedule_space().plans().size());
  EXPECT_EQ(loaded->schedule_space().node_count(), m->schedule_space().node_count());
  EXPECT_EQ(loaded->schedule_space().links().size(),
            m->schedule_space().links().size());
  EXPECT_EQ(loaded->clock().now(), m->clock().now());
  EXPECT_EQ(loaded->calendar().holidays().size(), 1u);
  EXPECT_TRUE(loaded->calendar().is_holiday(cal::Date(1995, 7, 4)));
  // Resource time off survives.
  auto bob = loaded->db().find_resource("bob").value();
  ASSERT_EQ(loaded->db().resource(bob).time_off.size(), 1u);
  EXPECT_EQ(loaded->db().resource(bob).time_off[0].second.minutes_since_epoch(), 500);

  // Database dumps (both spaces) agree textually.
  EXPECT_EQ(loaded->dump_database(), m->dump_database());

  // The task tree survived with bindings and plan association.
  ASSERT_TRUE(loaded->has_task("adder"));
  EXPECT_TRUE(loaded->task("adder").value()->fully_bound().ok());
  EXPECT_EQ(loaded->plan_of("adder").value(), m->plan_of("adder").value());
  EXPECT_EQ(loaded->tracker().watched_plan(), m->tracker().watched_plan());
}

TEST(Persist, ReloadedManagerKeepsWorking) {
  auto m = full_scenario();
  auto loaded = load_from_json(save_to_json(*m)).take();
  // Tools are NOT persisted (documented); re-register and keep executing.
  loaded->register_tool({.instance_name = "spice@s1",
                         .tool_type = "simulator",
                         .nominal = cal::WorkDuration::hours(6)})
      .expect("tool");
  auto iter = loaded->run_activity("adder", "Simulate", "carol");
  ASSERT_TRUE(iter.ok()) << iter.error().str();
  // Versions continue from the persisted state, not from 1.
  EXPECT_EQ(loaded->db().instance(iter.value().output).version, 3);
  // Queries and Gantt still work.
  EXPECT_TRUE(loaded->query("select runs where designer = \"carol\"").ok());
  EXPECT_TRUE(loaded->gantt("adder").ok());
}

TEST(Persist, StatusReportIdenticalAfterReload) {
  auto m = full_scenario();
  auto loaded = load_from_json(save_to_json(*m)).take();
  EXPECT_EQ(loaded->status_report("adder").value(), m->status_report("adder").value());
}

TEST(Persist, RejectsMalformedInput) {
  EXPECT_FALSE(load_from_json("not json").ok());
  EXPECT_FALSE(load_from_json("{}").ok());  // missing fields
  EXPECT_FALSE(load_from_json(R"({"format": "something-else"})").ok());
}

TEST(Persist, RejectsTamperedIds) {
  auto m = full_scenario();
  std::string text = save_to_json(*m);
  // Corrupt an instance id: load must detect the id mismatch.
  auto doc = util::Json::parse(text).take();
  auto& instances = doc.as_object().at("instances").as_array();
  ASSERT_FALSE(instances.empty());
  instances[0].as_object().set("id", 999);
  auto loaded = load_from_json(doc.dump(2));
  EXPECT_FALSE(loaded.ok());
}

TEST(Persist, RejectsWrongFieldTypes) {
  auto m = full_scenario();
  auto doc = util::Json::parse(save_to_json(*m)).take();
  doc.as_object().set("clock", "noon");
  auto loaded = load_from_json(doc.dump(2));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, util::Error::Code::kParse);
}

TEST(Persist, TruncatedSnapshotsNeverCrash) {
  // A crash mid-write (before atomic saves existed) leaves a prefix of the
  // real document; every prefix must come back as a clean error.
  auto m = full_scenario();
  std::string text = save_to_json(*m);
  while (!text.empty() && (text.back() == '\n' || text.back() == '}'))
    text.pop_back();  // strip the closing brace so every prefix is torn
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, text.size() / 4,
                          text.size() / 2, text.size() - 2, text.size() - 1}) {
    auto loaded = load_from_json(text.substr(0, len));
    ASSERT_FALSE(loaded.ok()) << "prefix length " << len;
    EXPECT_TRUE(loaded.error().code == util::Error::Code::kParse ||
                loaded.error().code == util::Error::Code::kInvalid)
        << "prefix length " << len << ": " << loaded.error().str();
  }
}

TEST(Persist, MalformedDocumentCorpusRejectedCleanly) {
  // Structurally valid JSON with broken content: every case must produce a
  // kParse/kInvalid/kConflict error, never a crash or an UB read.
  const char* corpus[] = {
      R"({"format": "hercsched-db-v1"})",              // missing sections
      R"({"format": "hercsched-db-v1", "schema": 7})", // wrong type
      R"({"format": "hercsched-db-v1", "schema": "not a schema"})",
      "[1, 2, 3]",                                     // not an object
      "null",
      "\"hercsched-db-v1\"",
  };
  for (const char* text : corpus) {
    auto loaded = load_from_json(text);
    ASSERT_FALSE(loaded.ok()) << text;
  }
}

TEST(Persist, MalformedNestedRecordsRejectedCleanly) {
  auto m = full_scenario();
  std::string text = save_to_json(*m);
  // Each mutation breaks one nested record the loader must validate.
  auto mutate = [&](auto&& fn) {
    auto doc = util::Json::parse(text).take();
    fn(doc.as_object());
    return load_from_json(doc.dump(2));
  };
  // A run whose inputs are not numbers.
  auto bad_run_inputs = mutate([](util::JsonObject& doc) {
    doc.at("runs").as_array()[0].as_object().set(
        "inputs", util::Json::parse(R"(["x"])").take());
  });
  EXPECT_FALSE(bad_run_inputs.ok());
  // A resource time-off window with the wrong arity.
  auto bad_window = mutate([](util::JsonObject& doc) {
    auto& resources = doc.at("resources").as_array();
    for (auto& r : resources) {
      if (r.as_object().at("name").as_string() == "bob")
        r.as_object().set("time_off", util::Json::parse(R"([[100]])").take());
    }
  });
  ASSERT_FALSE(bad_window.ok());
  EXPECT_EQ(bad_window.error().code, util::Error::Code::kParse);
  // A plan dependency pair with one endpoint missing.
  auto bad_dep = mutate([](util::JsonObject& doc) {
    auto& plans = doc.at("plans").as_array();
    plans[0].as_object().set("deps", util::Json::parse(R"([[3]])").take());
  });
  ASSERT_FALSE(bad_dep.ok());
  EXPECT_EQ(bad_dep.error().code, util::Error::Code::kParse);
  // An instance of a type the schema does not define.
  auto bad_type = mutate([](util::JsonObject& doc) {
    doc.at("instances").as_array()[0].as_object().set("type", "nosuchtype");
  });
  EXPECT_FALSE(bad_type.ok());
}

TEST(Persist, EmptyManagerRoundTrips) {
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  std::string once = save_to_json(*m);
  auto loaded = load_from_json(once);
  ASSERT_TRUE(loaded.ok()) << loaded.error().str();
  EXPECT_EQ(save_to_json(*loaded.value()), once);
  EXPECT_EQ(loaded.value()->db().instance_count(), 0u);
}

}  // namespace
}  // namespace herc::hercules
