// Unit tests for what-if analysis: delay impact, deadline crash, deadline
// slack.

#include <gtest/gtest.h>

#include "common.hpp"
#include "core/whatif.hpp"

namespace herc::sched {
namespace {

// The ASIC fixture is a pure chain (Synthesize 12h -> Place 16h -> Route
// 24h); for slack-absorption cases we need parallelism, so build a diamond.
constexpr const char* kDiamondSchema = R"(
schema diamond {
  data seed, left, right, merged;
  tool t;
  rule Left:  left   <- t(seed);
  rule Right: right  <- t(seed);
  rule Merge: merged <- t(left, right);
}
)";

std::unique_ptr<hercules::WorkflowManager> diamond_manager() {
  auto m = hercules::WorkflowManager::create(kDiamondSchema).take();
  m->register_tool({.instance_name = "t1", .tool_type = "t",
                    .nominal = cal::WorkDuration::hours(4)})
      .expect("tool");
  m->extract_task("job", "merged").expect("extract");
  m->bind("job", "seed", "seed.in").expect("bind");
  m->bind("job", "t", "t1").expect("bind");
  m->estimator().set_intuition("Left", cal::WorkDuration::hours(20));
  m->estimator().set_intuition("Right", cal::WorkDuration::hours(4));
  m->estimator().set_intuition("Merge", cal::WorkDuration::hours(8));
  return m;
}

TEST(SimulateDelay, CriticalDelayMovesProject) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto impact =
      simulate_delay(m->schedule_space(), plan, "Place", cal::WorkDuration::hours(8));
  ASSERT_TRUE(impact.ok()) << impact.error().str();
  EXPECT_FALSE(impact.value().absorbed);
  EXPECT_EQ(impact.value().project_slip.count_minutes(), 8 * 60);
  // Route shifts; Synthesize does not.
  EXPECT_EQ(impact.value().shifted_activities,
            (std::vector<std::string>{"Route"}));
}

TEST(SimulateDelay, SlackAbsorbsNonCriticalDelay) {
  auto m = diamond_manager();
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  // Right has 16h of slack (Left takes 20h, Right 4h).
  auto small = simulate_delay(m->schedule_space(), plan, "Right",
                              cal::WorkDuration::hours(10));
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small.value().absorbed);
  EXPECT_EQ(small.value().project_slip.count_minutes(), 0);

  // Beyond the slack it bites.
  auto big = simulate_delay(m->schedule_space(), plan, "Right",
                            cal::WorkDuration::hours(20));
  ASSERT_TRUE(big.ok());
  EXPECT_FALSE(big.value().absorbed);
  EXPECT_EQ(big.value().project_slip.count_minutes(), 4 * 60);  // 20 - 16 slack
}

TEST(SimulateDelay, NeverMutatesThePlan) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();
  auto before = space.node(space.node_in_plan(plan, "Route").value()).planned_finish;
  simulate_delay(space, plan, "Synthesize", cal::WorkDuration::hours(40)).value();
  auto after = space.node(space.node_in_plan(plan, "Route").value()).planned_finish;
  EXPECT_EQ(before, after);
}

TEST(SimulateDelay, Errors) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  EXPECT_FALSE(simulate_delay(m->schedule_space(), plan, "NoSuch",
                              cal::WorkDuration::hours(1))
                   .ok());
  EXPECT_FALSE(simulate_delay(m->schedule_space(), plan, "Place",
                              cal::WorkDuration::minutes(-5))
                   .ok());
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  auto done = simulate_delay(m->schedule_space(), plan, "Synthesize",
                             cal::WorkDuration::hours(1));
  ASSERT_FALSE(done.ok());
  EXPECT_EQ(done.error().code, util::Error::Code::kConflict);
}

TEST(SimulateDelay, CompletedPredecessorsStayFixed) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  auto impact =
      simulate_delay(m->schedule_space(), plan, "Place", cal::WorkDuration::hours(4));
  ASSERT_TRUE(impact.ok());
  // Only Route shifts; the completed Synthesize cannot.
  EXPECT_EQ(impact.value().shifted_activities, (std::vector<std::string>{"Route"}));
}

TEST(CrashToDeadline, AlreadyMetNeedsNoSteps) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  // Chain is 52h; a 100h deadline is comfortable.
  auto crash = crash_to_deadline(m->schedule_space(), plan,
                                 cal::WorkInstant(100 * 60));
  ASSERT_TRUE(crash.ok());
  EXPECT_TRUE(crash.value().feasible);
  EXPECT_TRUE(crash.value().steps.empty());
  EXPECT_LE(crash.value().shortfall.count_minutes(), 0);
}

TEST(CrashToDeadline, CutsCriticalActivities) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  // 52h chain, 40h deadline: needs 12h of cuts on critical work.
  auto crash =
      crash_to_deadline(m->schedule_space(), plan, cal::WorkInstant(40 * 60));
  ASSERT_TRUE(crash.ok());
  EXPECT_TRUE(crash.value().feasible);
  EXPECT_EQ(crash.value().shortfall.count_minutes(), 12 * 60);
  std::int64_t total_cut = 0;
  for (const auto& step : crash.value().steps) total_cut += step.reduction.count_minutes();
  EXPECT_EQ(total_cut, 12 * 60);
  // Greedy starts with the longest critical activity: Route (24h).
  EXPECT_EQ(crash.value().steps.front().activity, "Route");
}

TEST(CrashToDeadline, InfeasiblePastTheFloor) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  // 3 activities, floor 1h each: nothing below 3h is reachable.
  auto crash = crash_to_deadline(m->schedule_space(), plan, cal::WorkInstant(2 * 60));
  ASSERT_TRUE(crash.ok());
  EXPECT_FALSE(crash.value().feasible);
  EXPECT_FALSE(crash.value().steps.empty());
}

TEST(CrashToDeadline, FloorValidation) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  EXPECT_FALSE(crash_to_deadline(m->schedule_space(), plan, cal::WorkInstant(100),
                                 cal::WorkDuration::minutes(0))
                   .ok());
}

TEST(DeadlineSlack, MarginDistributes) {
  auto m = diamond_manager();
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  // Project is 28h (Left 20 + Merge 8); deadline 30h -> margin 2h.
  auto slack = deadline_slack(m->schedule_space(), plan, cal::WorkInstant(30 * 60));
  ASSERT_EQ(slack.size(), 3u);
  for (const auto& row : slack) {
    if (row.activity == "Left" || row.activity == "Merge") {
      EXPECT_EQ(row.slack.count_minutes(), 2 * 60) << row.activity;
    }
    if (row.activity == "Right") {
      EXPECT_EQ(row.slack.count_minutes(), (16 + 2) * 60);
    }
  }
}

TEST(DeadlineSlack, NegativeWhenJeopardised) {
  auto m = diamond_manager();
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  auto slack = deadline_slack(m->schedule_space(), plan, cal::WorkInstant(20 * 60));
  for (const auto& row : slack) {
    if (row.activity == "Left") {
      EXPECT_EQ(row.slack.count_minutes(), -8 * 60);  // 28h vs 20h deadline
    }
  }
}

TEST(DeadlineSlack, CompletedActivitiesExcluded) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  auto slack = deadline_slack(m->schedule_space(), plan, cal::WorkInstant(100 * 60));
  EXPECT_EQ(slack.size(), 2u);
  for (const auto& row : slack) EXPECT_NE(row.activity, "Synthesize");
}

}  // namespace
}  // namespace herc::sched
