// Epoch-reclamation edge cases for snapshot reads (hercules::ReadView):
//
//   - a reader pinning the oldest epoch while the writer publishes many more
//     keeps memory bounded (exactly pinned + newest alive, everything between
//     reclaimed) and keeps reading its own epoch's bytes;
//   - a view pinned before the clock advances stays at its snapshot instant
//     (renders are byte-stable) while the manager moves on;
//   - recovery rebuilds into a fresh epoch sequence: the recovered shard's
//     first published view is epoch 1, with no retired epochs carried over.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "gen/gen.hpp"
#include "srv/shard.hpp"

namespace herc::hercules {
namespace {

using test::make_circuit_manager;

/// One failed run attributed to `designer`; bumps only the runs table.
void append_failed_run(WorkflowManager& m, const std::string& designer) {
  meta::Run run;
  run.activity = "Create";
  run.tool_binding = "ned-2.1";
  run.designer = designer;
  run.status = meta::RunStatus::kFailed;
  run.started_at = m.clock().now();
  run.finished_at = m.clock().now();
  (void)m.db().record_run(std::move(run));
}

TEST(SnapshotReclamation, PinnedOldestEpochBoundsLiveViews) {
  auto m = make_circuit_manager();
  ASSERT_TRUE(m->plan_task("adder", {.anchor = m->clock().now()}).ok());

  // Pin the oldest epoch, render through it once, remember the bytes.
  std::shared_ptr<const ReadView> pinned = m->read_view();
  const std::uint64_t pinned_epoch = pinned->epoch();
  auto before = pinned->query("select runs");
  ASSERT_TRUE(before.ok()) << before.error().str();

  // Heavy writes: every append changes the database, so every read_view()
  // call publishes a new epoch.  The intermediate views have no reader and
  // must be reclaimed as they are superseded.
  std::uint64_t last_epoch = pinned_epoch;
  for (int i = 0; i < 50; ++i) {
    append_failed_run(*m, "pinner");
    auto v = m->read_view();
    EXPECT_GT(v->epoch(), last_epoch);
    last_epoch = v->epoch();
  }
  EXPECT_EQ(m->snapshots_published(), pinned_epoch + 50);

  // Bounded memory: only the pinned epoch and the manager's newest cache
  // survive; the 49 epochs in between are gone.
  EXPECT_EQ(m->snapshots_live(), 2);

  // The pinned epoch still replays its own bytes, not the new state.
  auto after = pinned->query("select runs");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
  auto fresh = m->read_view()->query("select runs");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh.value(), before.value());

  // Dropping the pin reclaims it: only the cache remains.
  pinned.reset();
  EXPECT_EQ(m->snapshots_live(), 1);
}

TEST(SnapshotReclamation, ViewPinnedBeforeAdvanceStaysAtItsInstant) {
  auto m = make_circuit_manager();
  ASSERT_TRUE(m->plan_task("adder", {.anchor = m->clock().now()}).ok());

  std::shared_ptr<const ReadView> pinned = m->read_view();
  const auto pinned_now = pinned->now();
  auto status_before = pinned->status_report("adder");
  ASSERT_TRUE(status_before.ok()) << status_before.error().str();

  // The project moves: the clock advances mid-flight and work lands.
  m->clock().advance(cal::WorkDuration::hours(30));
  append_failed_run(*m, "late");

  // The pinned view renders from its snapshot instant — byte-stable even
  // though "now" (and the status table's progress math) has moved on.
  EXPECT_EQ(pinned->now().minutes_since_epoch(),
            pinned_now.minutes_since_epoch());
  auto status_pinned = pinned->status_report("adder");
  ASSERT_TRUE(status_pinned.ok());
  EXPECT_EQ(status_before.value(), status_pinned.value());

  // A freshly published view sees the later instant and a new epoch.
  auto fresh = m->read_view();
  EXPECT_GT(fresh->epoch(), pinned->epoch());
  EXPECT_GT(fresh->now().minutes_since_epoch(),
            pinned_now.minutes_since_epoch());
  auto status_fresh = fresh->status_report("adder");
  ASSERT_TRUE(status_fresh.ok());
  EXPECT_NE(status_fresh.value(), status_before.value());
}

TEST(SnapshotReclamation, RecoveryRebuildsIntoFreshEpochSequence) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("herc_snapshot_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  gen::ScenarioSpec spec;
  spec.seed = 11;
  spec.shape = gen::Shape::kLayered;
  spec.size = 2;
  srv::ShardOptions options;
  options.dir = dir.string();

  auto shard = srv::ProjectShard::create("p", gen::generate(spec), options);
  ASSERT_TRUE(shard.ok()) << shard.error().str();

  // Drive the epoch counter well past 1.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    srv::wire::Request request;
    request.id = id;
    request.project = "p";
    request.op = "execute";
    request.args.set("designer", "alice");
    (void)shard.value()->apply(request);
  }
  srv::wire::Request stats;
  stats.id = 99;
  stats.project = "p";
  stats.op = "stats";
  auto reply = shard.value()->apply(stats);
  ASSERT_TRUE(reply.ok);
  const util::JsonObject& sn =
      reply.result.as_object().at("snapshots").as_object();
  EXPECT_GT(sn.at("epoch").as_int(), 1);

  shard.value()->simulate_crash();
  auto recovered = srv::ProjectShard::recover("p", 120, options);
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();

  // The recovered manager starts a fresh epoch sequence: exactly one view
  // published (the factory's), nothing retired from the old incarnation.
  auto reply2 = recovered.value()->apply(stats);
  ASSERT_TRUE(reply2.ok);
  const util::JsonObject& sn2 =
      reply2.result.as_object().at("snapshots").as_object();
  EXPECT_EQ(sn2.at("epoch").as_int(), 1);
  EXPECT_EQ(sn2.at("published").as_int(), 1);
  EXPECT_EQ(sn2.at("live").as_int(), 1);
  EXPECT_EQ(sn2.at("retired_unreclaimed").as_int(), 0);

  // And the fresh epoch serves the read lane.
  srv::wire::Request query;
  query.id = 100;
  query.project = "p";
  query.op = "query";
  query.args.set("statement", std::string("select runs"));
  auto answer = recovered.value()->apply(query);
  EXPECT_TRUE(answer.ok);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace herc::hercules
