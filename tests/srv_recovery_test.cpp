// Durability tests for the server shards: group commit batching vs the plain
// per-run journal, fsync-backed durable mode, the kill-mid-commit model
// (simulate_crash drops everything unflushed), byte-identical recovery, and
// the WAL prefix sweep (every truncation point must recover cleanly).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/gen.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "srv/shard.hpp"
#include "util/fsio.hpp"

namespace herc::srv {
namespace {

using util::Json;
using util::JsonObject;

struct TempDir {
  explicit TempDir(const std::string& tag)
      : dir(std::filesystem::temp_directory_path() /
            ("herc_srv_rec_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::filesystem::path dir;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

gen::Scenario small_scenario(std::uint64_t seed) {
  gen::ScenarioSpec spec;
  spec.seed = seed;
  spec.shape = gen::Shape::kLayered;
  spec.size = 2;
  return gen::generate(spec);
}

wire::Request execute_request(std::uint64_t id, const std::string& designer) {
  wire::Request request;
  request.id = id;
  request.project = "p";
  request.op = "execute";
  request.args.set("designer", designer);
  return request;
}

ShardOptions options_in(const TempDir& tmp, bool group_commit = true,
                        bool durable = false) {
  ShardOptions options;
  options.dir = tmp.dir.string();
  options.group_commit = group_commit;
  options.durable = durable;
  return options;
}

TEST(SrvRecovery, CrashLosesNothingAcknowledged) {
  TempDir tmp("ack");
  auto shard = ProjectShard::create("p", small_scenario(1), options_in(tmp));
  ASSERT_TRUE(shard.ok()) << shard.error().str();

  std::int64_t acked_runs = 0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto response = shard.value()->apply(execute_request(i, "pat"));
    ASSERT_TRUE(response.ok) << response.error.str();
    acked_runs += response.result.as_object().at("runs").as_int();
  }
  // Capture the exact state every acknowledged mutation built, then crash:
  // queued-but-unflushed journal lines vanish, no snapshot is taken.
  std::string expected =
      hercules::save_to_json(shard.value()->manager_for_test());
  shard.value()->simulate_crash();
  auto dead = shard.value()->apply(execute_request(99, "pat"));
  EXPECT_FALSE(dead.ok);  // a crashed shard refuses everything

  auto recovered = ProjectShard::recover("p", 120, options_in(tmp));
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  // Everything acknowledged is back, byte for byte.
  EXPECT_EQ(hercules::save_to_json(recovered.value()->manager_for_test()),
            expected);
  const Json stats = recovered.value()->stats_json();
  EXPECT_EQ(stats.as_object().at("run_count").as_int(), acked_runs);
}

TEST(SrvRecovery, RecoveryIsDeterministic) {
  TempDir tmp("det");
  auto shard = ProjectShard::create("p", small_scenario(2), options_in(tmp));
  ASSERT_TRUE(shard.ok());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(shard.value()->apply(execute_request(i, "alice")).ok);
  }
  shard.value()->simulate_crash();

  // Two recoveries from the same on-disk bytes agree byte-identically.
  // recover() re-snapshots, so run them against copies of the files.
  TempDir copy_a("det_a");
  TempDir copy_b("det_b");
  for (auto* copy : {&copy_a, &copy_b}) {
    std::filesystem::copy(tmp.dir, copy->dir,
                          std::filesystem::copy_options::overwrite_existing |
                              std::filesystem::copy_options::recursive);
  }
  auto a = ProjectShard::recover("p", 120, options_in(copy_a));
  auto b = ProjectShard::recover("p", 120, options_in(copy_b));
  ASSERT_TRUE(a.ok()) << a.error().str();
  ASSERT_TRUE(b.ok()) << b.error().str();
  EXPECT_EQ(hercules::save_to_json(a.value()->manager_for_test()),
            hercules::save_to_json(b.value()->manager_for_test()));
}

TEST(SrvRecovery, KillMidLoadUnderConcurrency) {
  TempDir tmp("kill");
  auto shard = ProjectShard::create("p", small_scenario(3), options_in(tmp));
  ASSERT_TRUE(shard.ok());

  std::atomic<std::int64_t> acked_runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0;; ++i) {
        auto response = shard.value()->apply(
            execute_request(i, "d" + std::to_string(t)));
        if (!response.ok) return;  // the crash hit
        acked_runs.fetch_add(response.result.as_object().at("runs").as_int());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  shard.value()->simulate_crash();
  for (auto& thread : threads) thread.join();

  auto recovered = ProjectShard::recover("p", 120, options_in(tmp));
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  // acked => recovered.  (The WAL may hold MORE: lines flushed but not yet
  // acknowledged at the kill are legitimately replayed.)
  const Json stats = recovered.value()->stats_json();
  EXPECT_GE(stats.as_object().at("run_count").as_int(), acked_runs.load());
  EXPECT_GT(acked_runs.load(), 0);
}

TEST(SrvRecovery, WalPrefixSweepAlwaysRecovers) {
  TempDir tmp("sweep");
  auto shard = ProjectShard::create("p", small_scenario(4), options_in(tmp));
  ASSERT_TRUE(shard.ok());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(shard.value()->apply(execute_request(i, "pat")).ok);
  }
  shard.value()->simulate_crash();

  const std::string snapshot = slurp(shard.value()->snapshot_path());
  const std::string wal = slurp(shard.value()->wal_path());
  ASSERT_FALSE(wal.empty());

  // A kill may tear the WAL at ANY byte.  Every prefix must recover, and the
  // recovered run count must grow monotonically with the prefix.
  std::int64_t previous_runs = -1;
  const std::size_t step = wal.size() / 200 + 1;
  for (std::size_t cut = 0; cut <= wal.size(); cut += step) {
    auto manager =
        hercules::recover_from_json(snapshot, std::string_view(wal).substr(0, cut));
    ASSERT_TRUE(manager.ok()) << "cut at " << cut << ": "
                              << manager.error().str();
    auto runs = static_cast<std::int64_t>(manager.value()->db().run_count());
    EXPECT_GE(runs, previous_runs) << "cut at " << cut;
    previous_runs = runs;
  }
}

TEST(SrvRecovery, GroupCommitMatchesPlainJournalStateWithFewerFlushes) {
  TempDir tmp_gc("gc");
  TempDir tmp_plain("plain");
  auto gc = ProjectShard::create("p", small_scenario(5),
                                 options_in(tmp_gc, /*group_commit=*/true));
  auto plain = ProjectShard::create("p", small_scenario(5),
                                    options_in(tmp_plain, /*group_commit=*/false));
  ASSERT_TRUE(gc.ok());
  ASSERT_TRUE(plain.ok());

  gen::RequestStreamSpec spec;
  spec.seed = 9;
  spec.count = 30;
  spec.designers = 2;
  std::uint64_t id = 0;
  for (const auto& generated : gen::request_stream(spec)) {
    wire::Request request;
    request.id = ++id;
    request.project = "p";
    request.op = generated.op;
    request.args = generated.args;
    auto from_gc = gc.value()->apply(request);
    auto from_plain = plain.value()->apply(request);
    ASSERT_TRUE(from_gc.ok) << generated.op << ": " << from_gc.error.str();
    ASSERT_TRUE(from_plain.ok) << generated.op << ": " << from_plain.error.str();
  }

  // Same ops, same state — group commit changes durability mechanics, never
  // semantics.
  EXPECT_EQ(hercules::save_to_json(gc.value()->manager_for_test()),
            hercules::save_to_json(plain.value()->manager_for_test()));

  // ... and the same bytes recover on both sides.
  // The flush accounting: the plain journal flushes once per line by
  // construction; group commit covered the same lines with fewer flushes.
  auto gc_stats = gc.value()->committer()->stats();
  EXPECT_GT(gc_stats.lines, 0u);
  EXPECT_LT(gc_stats.flushes, gc_stats.lines);

  // ... and the same bytes recover on both sides.
  gc.value()->simulate_crash();
  auto gc_recovered = ProjectShard::recover("p", 120, options_in(tmp_gc));
  ASSERT_TRUE(gc_recovered.ok());
  EXPECT_EQ(hercules::save_to_json(gc_recovered.value()->manager_for_test()),
            hercules::save_to_json(plain.value()->manager_for_test()));
}

TEST(SrvRecovery, GroupCommitFlushesFewerThanLines) {
  TempDir tmp("fewer");
  auto shard = ProjectShard::create("p", small_scenario(6), options_in(tmp));
  ASSERT_TRUE(shard.ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(shard.value()->apply(execute_request(i, "pat")).ok);
  }
  ASSERT_NE(shard.value()->committer(), nullptr);
  auto stats = shard.value()->committer()->stats();
  EXPECT_GT(stats.lines, 0u);
  EXPECT_GT(stats.flushes, 0u);
  // One execute journals a whole flow of runs; the committer batches them.
  EXPECT_LT(stats.flushes, stats.lines);
  EXPECT_GE(stats.batch_max, 2u);
}

TEST(SrvRecovery, DurableModeSyncsAndSurvivesShutdown) {
  TempDir tmp("durable");
  auto shard = ProjectShard::create(
      "p", small_scenario(7), options_in(tmp, /*group_commit=*/true,
                                         /*durable=*/true));
  ASSERT_TRUE(shard.ok()) << shard.error().str();
  std::int64_t runs = 0;
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto response = shard.value()->apply(execute_request(i, "pat"));
    ASSERT_TRUE(response.ok);
    runs += response.result.as_object().at("runs").as_int();
  }
  // Durable mode fsyncs every batch.
  auto stats = shard.value()->committer()->stats();
  EXPECT_GT(stats.synced, 0u);
  EXPECT_EQ(stats.synced, stats.flushes);

  std::string expected = hercules::save_to_json(shard.value()->manager_for_test());
  ASSERT_TRUE(shard.value()->shutdown().ok());
  shard.value().reset();

  auto recovered = ProjectShard::recover(
      "p", 120, options_in(tmp, /*group_commit=*/true, /*durable=*/true));
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  EXPECT_EQ(hercules::save_to_json(recovered.value()->manager_for_test()),
            expected);
  const Json stats2 = recovered.value()->stats_json();
  EXPECT_EQ(stats2.as_object().at("run_count").as_int(), runs);
}

TEST(SrvRecovery, PlainDurableJournalSurvivesCrash) {
  TempDir tmp("plaindur");
  auto shard = ProjectShard::create(
      "p", small_scenario(8), options_in(tmp, /*group_commit=*/false,
                                         /*durable=*/true));
  ASSERT_TRUE(shard.ok()) << shard.error().str();
  ASSERT_TRUE(shard.value()->apply(execute_request(1, "pat")).ok);
  std::string expected = hercules::save_to_json(shard.value()->manager_for_test());
  shard.value()->simulate_crash();

  auto recovered = ProjectShard::recover("p", 120, options_in(tmp));
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  EXPECT_EQ(hercules::save_to_json(recovered.value()->manager_for_test()),
            expected);
}

// Satellite (a): the fsio primitives underneath the durability contract.
TEST(SrvRecovery, DurableAtomicWriteAndAppendFile) {
  TempDir tmp("fsio");
  const std::string path = (tmp.dir / "atomic.json").string();
  ASSERT_TRUE(util::write_file_atomic(path, "{\"v\":1}", /*durable=*/true).ok());
  EXPECT_EQ(slurp(path), "{\"v\":1}");
  // Overwrite is atomic too — and no temp file lingers.
  ASSERT_TRUE(util::write_file_atomic(path, "{\"v\":2}", /*durable=*/true).ok());
  EXPECT_EQ(slurp(path), "{\"v\":2}");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  util::AppendFile file;
  const std::string log = (tmp.dir / "a.log").string();
  ASSERT_TRUE(file.open_trunc(log).ok());
  ASSERT_TRUE(file.append("one\n").ok());
  ASSERT_TRUE(file.sync().ok());
  ASSERT_TRUE(file.append("two\n").ok());
  file.close();
  EXPECT_EQ(slurp(log), "one\ntwo\n");
  EXPECT_TRUE(util::sync_parent_dir(log).ok());
}

}  // namespace
}  // namespace herc::srv
