// Unit tests for the duration estimator and its history strategies.

#include <gtest/gtest.h>

#include "common.hpp"
#include "core/estimate.hpp"

namespace herc::sched {
namespace {

std::vector<cal::WorkDuration> durations(std::initializer_list<int> minutes) {
  std::vector<cal::WorkDuration> out;
  for (int m : minutes) out.push_back(cal::WorkDuration::minutes(m));
  return out;
}

TEST(Estimator, IntuitionAndFallback) {
  DurationEstimator est(cal::WorkDuration::hours(8));
  est.set_intuition("Create", cal::WorkDuration::hours(2));
  EXPECT_EQ(est.estimate_from({}, EstimateStrategy::kLast).count_minutes(), 480);
  EXPECT_EQ(est.fallback().count_minutes(), 480);
  est.set_fallback(cal::WorkDuration::hours(1));
  EXPECT_EQ(est.fallback().count_minutes(), 60);
}

TEST(Estimator, LastTakesNewest) {
  DurationEstimator est;
  EXPECT_EQ(est.estimate_from(durations({100, 200, 300}), EstimateStrategy::kLast)
                .count_minutes(),
            300);
}

TEST(Estimator, MeanAverages) {
  DurationEstimator est;
  EXPECT_EQ(est.estimate_from(durations({100, 200, 300}), EstimateStrategy::kMean)
                .count_minutes(),
            200);
}

TEST(Estimator, EwmaWeightsNewest) {
  DurationEstimator est;
  est.set_ewma_alpha(0.5);
  // 100 -> 0.5*200+0.5*100 = 150 -> 0.5*400+0.5*150 = 275
  EXPECT_EQ(est.estimate_from(durations({100, 200, 400}), EstimateStrategy::kEwma)
                .count_minutes(),
            275);
}

TEST(Estimator, EwmaAlphaOneIsLast) {
  DurationEstimator est;
  est.set_ewma_alpha(1.0);
  EXPECT_EQ(est.estimate_from(durations({100, 200, 400}), EstimateStrategy::kEwma)
                .count_minutes(),
            400);
}

TEST(Estimator, PertThreePoint) {
  DurationEstimator est;
  // sorted: 60, 120, 600 -> (60 + 4*120 + 600) / 6 = 190
  EXPECT_EQ(est.estimate_from(durations({120, 600, 60}), EstimateStrategy::kPert)
                .count_minutes(),
            190);
}

TEST(Estimator, SingleObservationAllStrategiesAgree) {
  DurationEstimator est;
  auto h = durations({240});
  for (auto s : {EstimateStrategy::kLast, EstimateStrategy::kMean,
                 EstimateStrategy::kEwma, EstimateStrategy::kPert})
    EXPECT_EQ(est.estimate_from(h, s).count_minutes(), 240)
        << estimate_strategy_name(s);
}

TEST(Estimator, HistoryReadsCompletedRunsOnly) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  m->run_activity("adder", "Simulate", "bob").value();
  auto h = DurationEstimator::history(m->db(), "Simulate");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].count_minutes(), 6 * 60);  // spice nominal
  EXPECT_EQ(h[1].count_minutes(), 6 * 60);
  EXPECT_TRUE(DurationEstimator::history(m->db(), "NoSuch").empty());
}

TEST(Estimator, EstimateFallsBackWithoutHistory) {
  auto m = test::make_circuit_manager();
  // intuition set in the fixture: Create 16h.
  EXPECT_EQ(
      m->estimator().estimate(m->db(), "Create", EstimateStrategy::kMean).count_minutes(),
      16 * 60);
  // unknown activity -> fallback (default 8h)
  EXPECT_EQ(m->estimator()
                .estimate(m->db(), "Unknown", EstimateStrategy::kIntuition)
                .count_minutes(),
            8 * 60);
}

TEST(Estimator, EstimateUsesHistoryOnceAvailable) {
  auto m = test::make_circuit_manager();
  m->execute_task("adder", "alice").value();
  // Create ran 14h; intuition said 16h. History should win for kLast.
  EXPECT_EQ(
      m->estimator().estimate(m->db(), "Create", EstimateStrategy::kLast).count_minutes(),
      14 * 60);
  EXPECT_EQ(m->estimator()
                .estimate(m->db(), "Create", EstimateStrategy::kIntuition)
                .count_minutes(),
            16 * 60);
}

TEST(Estimator, StrategyNames) {
  EXPECT_STREQ(estimate_strategy_name(EstimateStrategy::kIntuition), "intuition");
  EXPECT_STREQ(estimate_strategy_name(EstimateStrategy::kPert), "pert");
}

}  // namespace
}  // namespace herc::sched
