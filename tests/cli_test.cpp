// Tests for the CLI session: the full paper procedure driven as command
// lines, plus argument validation of every command.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include <filesystem>

#include "cli/cli.hpp"
#include "common.hpp"
#include "srv/server.hpp"
#include "util/json.hpp"

namespace herc::cli {
namespace {

/// Runs a line that must succeed and returns its output.
std::string ok(CliSession& s, const std::string& line) {
  auto r = s.execute_line(line);
  EXPECT_TRUE(r.ok()) << line << " -> " << (r.ok() ? "" : r.error().str());
  return r.ok() ? r.value() : std::string{};
}

/// Runs a line that must fail and returns the error message.
std::string fail(CliSession& s, const std::string& line) {
  auto r = s.execute_line(line);
  EXPECT_FALSE(r.ok()) << line << " unexpectedly succeeded:\n"
                       << (r.ok() ? r.value() : "");
  return r.ok() ? std::string{} : r.error().str();
}

const std::string kInlineSchema =
    "schema circuit { data netlist, stimuli, performance; "
    "tool netlist_editor, simulator; "
    "rule Create: netlist <- netlist_editor(); "
    "rule Simulate: performance <- simulator(netlist, stimuli); }";

CliSession circuit_session() {
  CliSession s;
  ok(s, "schema " + kInlineSchema);
  ok(s, "tool ned netlist_editor 14h");
  ok(s, "tool spice simulator 6h");
  ok(s, "task adder performance");
  ok(s, "bind adder stimuli adder.stim");
  ok(s, "bind adder netlist_editor ned");
  ok(s, "bind adder simulator spice");
  ok(s, "estimate Create 2d");
  ok(s, "estimate Simulate 1d");
  return s;
}

TEST(Cli, BlankAndCommentLinesAreSilent) {
  CliSession s;
  EXPECT_EQ(ok(s, ""), "");
  EXPECT_EQ(ok(s, "   "), "");
  EXPECT_EQ(ok(s, "# a comment"), "");
}

TEST(Cli, HelpAndUnknown) {
  CliSession s;
  EXPECT_NE(ok(s, "help").find("commands:"), std::string::npos);
  EXPECT_NE(fail(s, "frobnicate"), "");
}

TEST(Cli, CommandsNeedAProject) {
  CliSession s;
  for (const char* line : {"show db", "tool a b 4h", "task t out", "plan t",
                           "status t", "query select runs", "browse", "now"})
    EXPECT_NE(fail(s, line).find("no project"), std::string::npos) << line;
}

TEST(Cli, InlineSchemaCreatesProject) {
  CliSession s;
  auto out = ok(s, "schema " + kInlineSchema);
  EXPECT_NE(out.find("circuit"), std::string::npos);
  EXPECT_NE(ok(s, "show schema").find("Simulate"), std::string::npos);
  EXPECT_TRUE(s.manager() != nullptr);
}

TEST(Cli, SchemaFromFileWithEpoch) {
  const char* path = "/tmp/herc_cli_schema.hsc";
  std::ofstream(path) << kInlineSchema;
  CliSession s;
  auto out = ok(s, std::string("new ") + path + " epoch 1995-06-12");
  EXPECT_NE(out.find("circuit"), std::string::npos);
  EXPECT_EQ(s.manager()->calendar().config().epoch, cal::Date(1995, 6, 12));
  fail(s, "new /no/such/file.hsc");
  fail(s, std::string("new ") + path + " epoch not-a-date");
  std::remove(path);
}

TEST(Cli, FullPaperProcedure) {
  CliSession s = circuit_session();
  auto plan_out = ok(s, "plan adder");
  EXPECT_NE(plan_out.find("Gantt"), std::string::npos);

  auto exec_out = ok(s, "execute adder alice");
  EXPECT_NE(exec_out.find("execution complete"), std::string::npos);
  EXPECT_NE(exec_out.find("[Create]"), std::string::npos);

  ok(s, "run adder Simulate bob");
  ok(s, "link adder Create");
  ok(s, "link adder Simulate");

  auto status = ok(s, "status adder");
  EXPECT_NE(status.find("2 complete"), std::string::npos);

  auto query = ok(s, "query select runs where designer = \"bob\"");
  EXPECT_NE(query.find("(1 row)"), std::string::npos);

  auto dump = ok(s, "show db");
  EXPECT_NE(dump.find("linked to"), std::string::npos);
}

TEST(Cli, TaskShowAndStops) {
  CliSession s = circuit_session();
  auto tree = ok(s, "show task adder");
  EXPECT_NE(tree.find("[Simulate] -> performance"), std::string::npos);
  ok(s, "task simonly performance stop netlist");
  auto tree2 = ok(s, "show task simonly");
  EXPECT_EQ(tree2.find("[Create]"), std::string::npos);
  fail(s, "show task nope");
  fail(s, "show bogus");
}

TEST(Cli, ToolOptionsAndValidation) {
  CliSession s;
  ok(s, "schema " + kInlineSchema);
  ok(s, "tool flaky simulator 2h noise 0.2 fail 0.1");
  fail(s, "tool missingargs simulator");
  fail(s, "tool bad simulator 2h noise abc");
  fail(s, "tool bad2 simulator notaduration");
  fail(s, "tool flaky simulator 2h");  // duplicate
}

TEST(Cli, ResourceCommand) {
  CliSession s;
  ok(s, "schema " + kInlineSchema);
  EXPECT_NE(ok(s, "resource alice").find("added"), std::string::npos);
  ok(s, "resource farm machine 4");
  fail(s, "resource farm machine notanumber");
  fail(s, "resource");
}

TEST(Cli, VacationCommand) {
  CliSession s = circuit_session();
  ok(s, "resource alice");
  auto out = ok(s, "vacation alice 1970-01-05 3");
  EXPECT_NE(out.find("alice off"), std::string::npos);
  fail(s, "vacation nobody 1970-01-05 3");
  fail(s, "vacation alice notadate 3");
  fail(s, "vacation alice 1970-01-05 zero");
  fail(s, "vacation alice 1970-01-05 0");
  fail(s, "vacation alice");
}

TEST(Cli, EstimateValidation) {
  CliSession s;
  ok(s, "schema " + kInlineSchema);
  ok(s, "estimate fallback 4h");
  ok(s, "estimate Create 1d 4h");
  fail(s, "estimate NoSuchActivity 2h");
  fail(s, "estimate Create xyz");
  fail(s, "estimate Create");
}

TEST(Cli, PlanWithDeadline) {
  CliSession s = circuit_session();
  ok(s, "plan adder deadline 2d");
  auto status = ok(s, "status adder");
  EXPECT_NE(status.find("deadline:"), std::string::npos);
  // 2d deadline vs 3d projection: miss is flagged.
  EXPECT_NE(status.find("MISSING BY"), std::string::npos);
  fail(s, "plan adder deadline notaduration");
}

TEST(Cli, PlanOptionsAndReplan) {
  CliSession s = circuit_session();
  ok(s, "plan adder strategy intuition");
  ok(s, "replan adder strategy mean");
  auto lineage = ok(s, "lineage adder");
  EXPECT_NE(lineage.find("superseded"), std::string::npos);
  fail(s, "plan adder strategy nope");
  fail(s, "plan adder bogus");
  fail(s, "replan neverplanned");
}

TEST(Cli, ClockCommands) {
  CliSession s = circuit_session();
  auto before = ok(s, "now");
  ok(s, "advance 1d 2h");
  auto after = ok(s, "now");
  EXPECT_NE(before, after);
  fail(s, "advance xyz");
}

TEST(Cli, WhatIfDelayAndCrash) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  auto delay = ok(s, "whatif delay adder Create 1d");
  EXPECT_NE(delay.find("completion moves"), std::string::npos);
  auto crash = ok(s, "whatif crash adder 2d");
  EXPECT_NE(crash.find("shorten"), std::string::npos);
  fail(s, "whatif delay adder NoSuch 1d");
  fail(s, "whatif");
  fail(s, "whatif delay neverplanned Create 1d");
}

TEST(Cli, BrowserWorkflow) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  auto listing = ok(s, "browse");
  EXPECT_NE(listing.find("SC1"), std::string::npos);
  fail(s, "display");  // nothing selected
  ok(s, "select 1");
  EXPECT_NE(ok(s, "display").find("Schedule instance"), std::string::npos);
  ok(s, "delete");
  fail(s, "select 1");  // deleted
  fail(s, "select notanumber");
}

TEST(Cli, SvgCommand) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  auto svg = ok(s, "svg adder");
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  fail(s, "svg neverplanned");
}

TEST(Cli, ReportRiskAndUtilizationCommands) {
  CliSession s = circuit_session();
  ok(s, "resource alice");
  ok(s, "plan adder");
  auto report = ok(s, "report adder");
  EXPECT_EQ(report.rfind("<!DOCTYPE html>", 0), 0u);
  auto risk = ok(s, "risk adder");
  EXPECT_NE(risk.find("P90"), std::string::npos);
  auto util_out = ok(s, "utilization adder");
  EXPECT_NE(util_out.find("alice"), std::string::npos);
  fail(s, "report neverplanned");
  fail(s, "risk neverplanned");
  fail(s, "utilization neverplanned");
}

TEST(Cli, RiskCommandAcceptsSamplesSeedThreads) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  auto out = ok(s, "risk adder 50 7 2");
  EXPECT_NE(out.find("50 samples"), std::string::npos);
  // Thread count must not change the report (determinism is user-visible).
  EXPECT_EQ(ok(s, "risk adder 50 7 4"), out);
  EXPECT_EQ(ok(s, "risk adder 50 7"), out);
  fail(s, "risk adder fifty");
  fail(s, "risk adder 50 7 2 9");  // too many arguments
  EXPECT_NE(ok(s, "help").find("risk <task> [samples] [seed] [threads]"),
            std::string::npos);
}

TEST(Cli, ShowSchemaIncludesLintWarnings) {
  CliSession s;
  ok(s, "schema schema smelly { data a, orphan; tool t; rule A: a <- t(); }");
  auto out = ok(s, "show schema");
  EXPECT_NE(out.find("warning:"), std::string::npos);
  EXPECT_NE(out.find("orphan"), std::string::npos);
}

TEST(Cli, DiffCommand) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  fail(s, "diff adder");  // single generation: nothing to diff
  ok(s, "estimate Simulate 2d");
  ok(s, "replan adder");
  auto out = ok(s, "diff adder");
  EXPECT_NE(out.find("Simulate"), std::string::npos);
  EXPECT_NE(out.find("+1d"), std::string::npos);  // 1d -> 2d estimate
  fail(s, "diff neverplanned");
}

TEST(Cli, DispatchCommand) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  auto out = ok(s, "dispatch adder team");
  EXPECT_NE(out.find("dispatch complete"), std::string::npos);
  EXPECT_NE(out.find("[Create]"), std::string::npos);
  EXPECT_NE(out.find("[Simulate]"), std::string::npos);
  fail(s, "dispatch adder");       // missing designer
  fail(s, "dispatch nosuch team");
}

TEST(Cli, PortfolioCommand) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  ok(s, "task simonly performance stop netlist");
  ok(s, "plan simonly");
  auto g = ok(s, "portfolio adder simonly");
  EXPECT_NE(g.find("Portfolio Gantt"), std::string::npos);
  EXPECT_NE(g.find("-- plan 'adder'"), std::string::npos);
  EXPECT_NE(g.find("-- plan 'simonly'"), std::string::npos);
  fail(s, "portfolio");
  fail(s, "portfolio neverplanned");
}

TEST(Cli, RefreshStaleAndDragCommands) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  // First refresh builds everything.
  auto first = ok(s, "refresh adder alice");
  EXPECT_NE(first.find("[Create]"), std::string::npos);
  EXPECT_NE(first.find("[Simulate]"), std::string::npos);
  // Nothing stale now.
  EXPECT_NE(ok(s, "stale").find("no stale design data"), std::string::npos);
  EXPECT_NE(ok(s, "refresh adder alice").find("up to date"), std::string::npos);
  // Re-create the netlist: Simulate's output becomes stale.
  ok(s, "run adder Create alice");
  EXPECT_NE(ok(s, "stale").find("performance"), std::string::npos);
  auto second = ok(s, "refresh adder alice");
  EXPECT_NE(second.find("[Simulate]"), std::string::npos);
  EXPECT_EQ(second.find("[Create]"), std::string::npos);  // Create was fresh
  // Drag table renders for the plan.
  auto drag = ok(s, "drag adder");
  EXPECT_NE(drag.find("Create"), std::string::npos);
  fail(s, "drag neverplanned");
  fail(s, "refresh adder");  // missing designer
}

TEST(Cli, SaveAndOpenRoundTrip) {
  const char* path = "/tmp/herc_cli_db.json";
  {
    CliSession s = circuit_session();
    ok(s, "plan adder");
    ok(s, "execute adder alice");
    ok(s, "link adder Create");
    ok(s, std::string("save ") + path);
  }
  CliSession s2;
  auto out = ok(s2, std::string("open ") + path);
  EXPECT_NE(out.find("loaded"), std::string::npos);
  // The reloaded project answers status queries.
  EXPECT_NE(ok(s2, "status adder").find("Create"), std::string::npos);
  fail(s2, "open /no/such/file.json");
  std::remove(path);
}

TEST(Cli, RetryAndOnfailConfigureExecution) {
  CliSession s = circuit_session();
  // A retry policy under the default abort policy earns a hint.
  auto out = ok(s, "retry 3 backoff 30m");
  EXPECT_NE(out.find("3 attempt(s)"), std::string::npos);
  EXPECT_NE(out.find("onfail"), std::string::npos);
  ok(s, "onfail retry");
  EXPECT_EQ(s.manager()->exec_options().on_failure,
            exec::FailurePolicy::kRetryThenAbort);
  EXPECT_EQ(s.manager()->exec_options().retry.max_attempts, 3);
  EXPECT_EQ(s.manager()->exec_options().retry.backoff.count_minutes(), 30);
  ok(s, "retry 2 timeout 4h tool spice");
  EXPECT_EQ(s.manager()->exec_options().tool_retry.at("spice").timeout.count_minutes(),
            4 * 60);
  ok(s, "onfail continue");
  ok(s, "onfail abort");
  fail(s, "retry");
  fail(s, "retry zero");
  fail(s, "retry 0");
  fail(s, "retry 2 backoff notaduration");
  fail(s, "retry 2 bogus 1h");
  fail(s, "onfail sometimes");
  fail(s, "onfail");
}

TEST(Cli, FaultsCommandComposesAndShows) {
  CliSession s = circuit_session();
  ok(s, "faults seed 42");
  ok(s, "faults tool spice fail 0.5 latency 2.0 failon 1 3 crashon 9");
  ok(s, "faults crashafter 12");
  auto shown = ok(s, "faults show");
  EXPECT_NE(shown.find("seed 42"), std::string::npos);
  EXPECT_NE(shown.find("spice"), std::string::npos);
  EXPECT_NE(shown.find("failon 1 3"), std::string::npos);
  EXPECT_NE(shown.find("crash after 12"), std::string::npos);
  ASSERT_NE(s.manager()->fault_injector(), nullptr);
  EXPECT_EQ(s.manager()->fault_injector()->seed(), 42u);
  EXPECT_EQ(s.manager()->fault_injector()->plan().tools.at("spice").fail_prob, 0.5);
  ok(s, "faults off");
  EXPECT_EQ(s.manager()->fault_injector(), nullptr);
  EXPECT_NE(ok(s, "faults show").find("off"), std::string::npos);
  fail(s, "faults");
  fail(s, "faults seed notanumber");
  fail(s, "faults tool spice failon");
  fail(s, "faults tool spice bogus 1");
  fail(s, "faults bogus");
}

TEST(Cli, InjectedFailuresDriveRetriesEndToEnd) {
  CliSession s = circuit_session();
  ok(s, "faults tool spice failon 1");
  ok(s, "onfail retry");
  ok(s, "retry 2");
  auto out = ok(s, "execute adder alice");
  EXPECT_NE(out.find("execution complete"), std::string::npos);
  EXPECT_EQ(s.manager()->db().run_count(), 3u);  // Create + failed + retried
}

TEST(Cli, DegradedExecutionReportsSkippedActivities) {
  CliSession s = circuit_session();
  ok(s, "faults tool ned failon 1");
  ok(s, "onfail continue");
  auto out = ok(s, "execute adder alice");
  EXPECT_NE(out.find("DEGRADED"), std::string::npos);
  EXPECT_NE(out.find("Simulate"), std::string::npos);
}

TEST(Cli, InjectedCrashSurfacesAsSimulatedCrashError) {
  CliSession s = circuit_session();
  ok(s, "faults crashafter 1");
  auto err = fail(s, "execute adder alice");
  EXPECT_NE(err.find("simulated crash"), std::string::npos);
  EXPECT_NE(err.find("injected crash"), std::string::npos);
}

TEST(Cli, JournalAndRecoverRebuildAfterCrash) {
  const char* snap = "/tmp/herc_cli_snap.json";
  const char* wal = "/tmp/herc_cli_run.wal";
  {
    CliSession s = circuit_session();
    ok(s, std::string("journal on ") + wal);
    ok(s, std::string("save ") + snap);
    ok(s, "faults crashafter 3");  // Create, Simulate OK; next run crashes
    ok(s, "execute adder alice");
    fail(s, "run adder Simulate bob");  // the simulated process death
  }
  CliSession s2;
  auto out = ok(s2, std::string("recover ") + snap + " " + wal);
  EXPECT_NE(out.find("2 runs"), std::string::npos);
  EXPECT_NE(ok(s2, "show db"), "");
  // Journal misuse errors.
  CliSession s3 = circuit_session();
  fail(s3, "journal off");  // not on
  fail(s3, "journal");
  fail(s3, "journal on");
  ok(s3, std::string("journal on ") + wal);
  ok(s3, "journal off");
  fail(s3, "recover /no/such/snap.json /no/such/run.wal");
  fail(s3, "recover " + std::string(snap));
  std::remove(snap);
  std::remove(wal);
}

TEST(Cli, QuitSetsFlag) {
  CliSession s;
  EXPECT_FALSE(s.quit_requested());
  ok(s, "quit");
  EXPECT_TRUE(s.quit_requested());
}

TEST(Cli, AdoptExistingManager) {
  CliSession s;
  s.adopt(test::make_circuit_manager());
  EXPECT_NE(ok(s, "show schema").find("circuit"), std::string::npos);
}

TEST(Cli, TraceCapturesSessionToAParseableFile) {
  const char* path = "/tmp/herc_cli_trace.json";
  CliSession s = circuit_session();
  ok(s, std::string("trace on ") + path);
  fail(s, std::string("trace on ") + path);  // already tracing
  ok(s, "plan adder");
  ok(s, "execute adder alice");
  auto off = ok(s, "trace off");
  EXPECT_NE(off.find(path), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = util::Json::parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  const auto& events = parsed.value().as_object().at("traceEvents").as_array();
  EXPECT_GT(events.size(), 0u);
  std::remove(path);

  fail(s, "trace off");      // no longer tracing
  fail(s, "trace");          // usage
  fail(s, "trace on");       // missing file
}

TEST(Cli, FailedTraceWriteDoesNotLeaveSessionStuck) {
  CliSession s = circuit_session();
  ok(s, "trace on /no/such/dir/herc.json");
  auto err = fail(s, "trace off");
  EXPECT_NE(err.find("discarded"), std::string::npos);
  // The failed write ended the capture: a new trace can start.
  ok(s, "trace on /tmp/herc_cli_trace2.json");
  ok(s, "trace off");
  std::remove("/tmp/herc_cli_trace2.json");
}

TEST(Cli, TraceOnNeedsAProject) {
  CliSession s;
  EXPECT_NE(fail(s, "trace on /tmp/x.json").find("no project"), std::string::npos);
}

TEST(Cli, StatsCountsPlansAndRuns) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  ok(s, "execute adder alice");

  auto text = ok(s, "stats");
  EXPECT_NE(text.find("plans_computed"), std::string::npos);
  EXPECT_NE(text.find("runs_executed"), std::string::npos);
  EXPECT_NE(text.find("snapshots:"), std::string::npos);

  auto parsed = util::Json::parse(ok(s, "stats json"));
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  const auto& counters = parsed.value().as_object().at("counters").as_object();
  EXPECT_GE(counters.at("plans_computed").as_int(), 1);
  EXPECT_GE(counters.at("runs_executed").as_int(), 2);
  const auto& snapshots =
      parsed.value().as_object().at("snapshots").as_object();
  EXPECT_GE(snapshots.at("epoch").as_int(), 0);
  EXPECT_GE(snapshots.at("live").as_int(), 0);
  EXPECT_EQ(snapshots.at("retired_unreclaimed").as_int(), 0);

  fail(s, "stats verbose");  // usage
}

TEST(Cli, ExplainShowsAccessPathAndCacheState) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  ok(s, "execute adder alice");

  // Indexed equality seeks; the cache is cold before the first execution.
  auto cold = ok(s, "explain select runs where designer = \"alice\"");
  EXPECT_NE(cold.find("index seek runs.designer = \"alice\""), std::string::npos);
  EXPECT_NE(cold.find("cache:  cold"), std::string::npos);

  ok(s, "query select runs where designer = \"alice\"");
  auto hot = ok(s, "explain select runs where designer = \"alice\"");
  EXPECT_NE(hot.find("cache:  hit"), std::string::npos);

  // Non-equality predicates cannot use an index.
  auto scan = ok(s, "explain select runs where duration >= 0");
  EXPECT_NE(scan.find("full scan"), std::string::npos);

  EXPECT_NE(fail(s, "explain"), "");                // missing statement
  EXPECT_NE(fail(s, "explain select runs where nonsense = 1"), "");  // bad field
}

TEST(Cli, ExplainNeedsAProject) {
  CliSession s;
  EXPECT_NE(fail(s, "explain select runs").find("no project"), std::string::npos);
}

TEST(Cli, StatsCountsQueryFastPath) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  ok(s, "execute adder alice");
  ok(s, "query select runs where designer = \"alice\"");
  ok(s, "query select runs where designer = \"alice\"");  // served by the cache

  auto parsed = util::Json::parse(ok(s, "stats json"));
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  const auto& counters = parsed.value().as_object().at("counters").as_object();
  EXPECT_GE(counters.at("index_seeks").as_int(), 1);
  EXPECT_GE(counters.at("query_cache_misses").as_int(), 1);
  EXPECT_GE(counters.at("query_cache_hits").as_int(), 1);
  EXPECT_GE(counters.at("rows_scanned").as_int(), 1);
}

TEST(Cli, StatsFollowsTheProjectAcrossAdopt) {
  CliSession s = circuit_session();
  ok(s, "plan adder");
  // A new project resets nothing, but events keep flowing from the new bus.
  s.adopt(test::make_circuit_manager());
  ok(s, "plan adder");
  auto parsed = util::Json::parse(ok(s, "stats json"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_GE(parsed.value().as_object().at("counters").as_object()
                .at("plans_computed").as_int(), 2);
}

TEST(Cli, RemoteCommandsDriveAServer) {
  namespace fs = std::filesystem;
  const fs::path tmp =
      fs::temp_directory_path() /
      ("herc_cli_remote." + std::to_string(::getpid()));
  fs::create_directories(tmp);
  srv::ServerConfig config;
  config.unix_path = (tmp / "srv.sock").string();
  config.shard.dir = tmp.string();
  config.workers = 2;
  auto server = srv::Server::start(config);
  ASSERT_TRUE(server.ok()) << server.error().str();

  CliSession s;
  EXPECT_NE(fail(s, "remote ping").find("not connected"), std::string::npos);
  ok(s, "remote connect " + server.value()->unix_address());
  EXPECT_NE(ok(s, "remote ping").find("pong"), std::string::npos);

  // Open a generated project, drive it, and read it back — the CLI is a
  // full wire client here; the project lives server-side.
  ok(s, "remote open demo seed=7 shape=layered size=2");
  EXPECT_NE(fail(s, "remote open demo seed=7").find("already open"),
            std::string::npos);
  ok(s, "remote demo plan");
  auto executed = ok(s, "remote demo execute designer=alice");
  EXPECT_NE(executed.find("runs"), std::string::npos);
  EXPECT_NE(ok(s, "remote demo status").find("job"), std::string::npos);
  EXPECT_NE(ok(s, "remote demo query select runs where designer = \"alice\"")
                .find("alice"),
            std::string::npos);
  EXPECT_NE(ok(s, "remote projects").find("demo"), std::string::npos);

  auto stats = util::Json::parse(ok(s, "remote stats"));
  ASSERT_TRUE(stats.ok()) << stats.error().str();
  EXPECT_GE(stats.value().as_object().at("totals").as_object()
                .at("shards").as_int(), 1);

  EXPECT_NE(fail(s, "remote demo bogus_op"), "");
  EXPECT_NE(fail(s, "remote demo execute not-a-pair"), "");
  ok(s, "remote close demo");
  ok(s, "remote disconnect");
  EXPECT_NE(fail(s, "remote ping").find("not connected"), std::string::npos);

  // A local project coexists with (and survives) the remote session.
  s.adopt(test::make_circuit_manager());
  ok(s, "plan adder");

  server.value()->stop();
  fs::remove_all(tmp);
}

}  // namespace
}  // namespace herc::cli
