// Unit tests for plan-generation comparison.

#include <gtest/gtest.h>

#include "common.hpp"
#include "core/compare.hpp"

namespace herc::sched {
namespace {

TEST(ComparePlans, Validation) {
  auto m = test::make_asic_manager();
  auto p1 = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  EXPECT_FALSE(compare_plans(m->schedule_space(), p1, p1).ok());
}

TEST(ComparePlans, IdenticalReplansShowNoChange) {
  auto m = test::make_asic_manager();
  auto p1 = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto p2 = m->replan_task("chip", {.anchor = m->clock().now()}).value();
  auto cmp = compare_plans(m->schedule_space(), p1, p2).take();
  EXPECT_EQ(cmp.completion_delta.count_minutes(), 0);
  for (const auto& d : cmp.activities) {
    EXPECT_TRUE(d.in_a);
    EXPECT_TRUE(d.in_b);
    EXPECT_EQ(d.est_delta->count_minutes(), 0);
    EXPECT_EQ(d.finish_delta->count_minutes(), 0);
  }
}

TEST(ComparePlans, EstimateChangeShowsUpWithRipple) {
  auto m = test::make_asic_manager();
  auto p1 = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  // The designer revises the Place estimate upward by 8h and re-plans.
  m->estimator().set_intuition("Place", cal::WorkDuration::hours(24));  // was 16h
  auto p2 = m->replan_task("chip", {.anchor = m->clock().now()}).value();
  auto cmp = compare_plans(m->schedule_space(), p1, p2).take();
  EXPECT_EQ(cmp.completion_delta.count_minutes(), 8 * 60);
  for (const auto& d : cmp.activities) {
    if (d.activity == "Place") {
      EXPECT_EQ(d.est_delta->count_minutes(), 8 * 60);
      EXPECT_EQ(d.start_delta->count_minutes(), 0);
    }
    if (d.activity == "Route") {
      EXPECT_EQ(d.est_delta->count_minutes(), 0);
      EXPECT_EQ(d.start_delta->count_minutes(), 8 * 60);  // rippled later
    }
  }
}

TEST(ComparePlans, ScopeChangesMarked) {
  // Two plans over different task scopes of the same schema.
  auto m = test::make_asic_manager();
  m->extract_task("front", "gates").expect("extract");
  auto full = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto front = m->plan_task("front", {.anchor = m->clock().now()}).value();
  auto cmp = compare_plans(m->schedule_space(), full, front).take();
  int dropped = 0, both = 0;
  for (const auto& d : cmp.activities) {
    if (d.in_a && !d.in_b) ++dropped;
    if (d.in_a && d.in_b) ++both;
  }
  EXPECT_EQ(both, 1);     // Synthesize in both
  EXPECT_EQ(dropped, 2);  // Place, Route only in full
}

TEST(ComparePlans, RenderShowsDeltasAndScope) {
  auto m = test::make_asic_manager();
  auto p1 = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->estimator().set_intuition("Route", cal::WorkDuration::hours(30));
  auto p2 = m->replan_task("chip", {.anchor = m->clock().now()}).value();
  auto text = compare_plans(m->schedule_space(), p1, p2).take().render(m->calendar());
  EXPECT_NE(text.find("Route"), std::string::npos);
  EXPECT_NE(text.find("+6h"), std::string::npos);
  EXPECT_NE(text.find("projected completion: +6h"), std::string::npos);
  EXPECT_NE(text.find("="), std::string::npos);  // unchanged cells
}

}  // namespace
}  // namespace herc::sched
