// Unit tests for the Planner: plan = simulated execution.

#include <gtest/gtest.h>

#include "common.hpp"
#include "core/planner.hpp"

namespace herc::sched {
namespace {

TEST(Planner, PlanMirrorsExecutorActivitySet) {
  // The paper's central symmetry: simulating the execution creates one
  // schedule instance per activity the executor would run.
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  const auto& p = m->schedule_space().plan(plan);
  ASSERT_EQ(p.nodes.size(), 3u);

  std::vector<std::string> planned;
  for (auto nid : p.nodes) planned.push_back(m->schedule_space().node(nid).activity);

  m->execute_task("chip", "carol").value();
  std::vector<std::string> executed;
  for (const auto& run : m->db().runs()) executed.push_back(run.activity);

  EXPECT_EQ(planned, executed);  // same activities, same (post) order
}

TEST(Planner, DependenciesMirrorTreeDataFlow) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();
  const auto& p = space.plan(plan);
  // Synthesize -> Place -> Route: exactly 2 deps.
  ASSERT_EQ(p.deps.size(), 2u);
  EXPECT_EQ(space.node(p.deps[0].from).activity, "Synthesize");
  EXPECT_EQ(space.node(p.deps[0].to).activity, "Place");
  EXPECT_EQ(space.node(p.deps[1].from).activity, "Place");
  EXPECT_EQ(space.node(p.deps[1].to).activity, "Route");
}

TEST(Planner, DatesComeFromCpmOverEstimates) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();
  auto synth = space.node(space.node_in_plan(plan, "Synthesize").value());
  auto place = space.node(space.node_in_plan(plan, "Place").value());
  auto route = space.node(space.node_in_plan(plan, "Route").value());
  // Estimates: 12h, 16h, 24h in a chain.
  EXPECT_EQ(synth.planned_start.minutes_since_epoch(), 0);
  EXPECT_EQ(synth.planned_finish.minutes_since_epoch(), 12 * 60);
  EXPECT_EQ(place.planned_start.minutes_since_epoch(), 12 * 60);
  EXPECT_EQ(route.planned_finish.minutes_since_epoch(), (12 + 16 + 24) * 60);
  // Chain: everything critical, zero slack, baseline == planned.
  for (const auto* n : {&synth, &place, &route}) {
    EXPECT_TRUE(n->critical);
    EXPECT_EQ(n->total_slack.count_minutes(), 0);
    EXPECT_EQ(n->baseline_start, n->planned_start);
    EXPECT_EQ(n->baseline_finish, n->planned_finish);
  }
}

TEST(Planner, AnchorOffsetsAllDates) {
  auto m = test::make_asic_manager();
  auto plan =
      m->plan_task("chip", {.anchor = cal::WorkInstant(1000)}).value();
  const auto& space = m->schedule_space();
  auto synth = space.node(space.node_in_plan(plan, "Synthesize").value());
  EXPECT_EQ(synth.planned_start.minutes_since_epoch(), 1000);
}

TEST(Planner, PlanningNeedsNoBindings) {
  // "Planning precedes binding": an unbound tree plans fine.
  auto m = hercules::WorkflowManager::create(test::kAsicSchema).take();
  m->extract_task("chip", "routed").expect("extract");
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()});
  ASSERT_TRUE(plan.ok()) << plan.error().str();
  EXPECT_EQ(m->schedule_space().plan(plan.value()).nodes.size(), 3u);
}

TEST(Planner, ReplanCreatesNewVersionsAndLineage) {
  auto m = test::make_asic_manager();
  auto p1 = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto p2 = m->replan_task("chip", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();
  EXPECT_EQ(space.plan(p2).derived_from, p1);
  EXPECT_EQ(space.plan(p1).status, PlanStatus::kSuperseded);
  // Schedule-instance containers now hold SC1 and SC2 per activity (Fig. 5).
  auto container = space.container("Synthesize");
  ASSERT_EQ(container.size(), 2u);
  EXPECT_EQ(space.node(container[0]).version, 1);
  EXPECT_EQ(space.node(container[1]).version, 2);
  // replan without an existing plan fails.
  m->extract_task("other", "gates").expect("extract");
  EXPECT_FALSE(m->replan_task("other", {}).ok());
}

TEST(Planner, HistoryStrategyUsesMeasuredDurations) {
  auto m = test::make_asic_manager();
  m->execute_task("chip", "carol").value();  // 10h, 12h, 20h actuals
  auto plan = m->plan_task("chip", {.anchor = m->clock().now(),
                                    .strategy = EstimateStrategy::kLast})
                  .value();
  const auto& space = m->schedule_space();
  auto synth = space.node(space.node_in_plan(plan, "Synthesize").value());
  EXPECT_EQ(synth.est_duration.count_minutes(), 10 * 60);  // measured, not 12h
}

TEST(Planner, ResourceAssignmentsStored) {
  auto m = test::make_asic_manager();
  auto carol = m->db().find_resource("carol").value();
  PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["Synthesize"] = {carol};
  auto plan = m->plan_task("chip", req).value();
  const auto& space = m->schedule_space();
  auto synth = space.node(space.node_in_plan(plan, "Synthesize").value());
  ASSERT_EQ(synth.resources.size(), 1u);
  EXPECT_EQ(synth.resources[0], carol);
}

TEST(Planner, LevelingSerializesSharedResource) {
  // Two independent tasks of the circuit schema would overlap; with one
  // person assigned to both activities of one plan they cannot.  Use the
  // circuit schema where Create and Simulate are already a chain, so build
  // a schema with parallelism instead.
  auto m = hercules::WorkflowManager::create(R"(
    schema par {
      data a, b, c;
      tool t;
      rule MakeA: a <- t();
      rule MakeB: b <- t();
      rule Join:  c <- t(a, b);
    }
  )").take();
  auto alice = m->add_resource("alice");
  m->extract_task("join", "c").expect("extract");
  m->estimator().set_fallback(cal::WorkDuration::hours(8));

  PlanRequest unleveled;
  unleveled.anchor = m->clock().now();
  unleveled.assignments["MakeA"] = {alice};
  unleveled.assignments["MakeB"] = {alice};
  auto p1 = m->plan_task("join", unleveled).value();
  const auto& space = m->schedule_space();
  auto a1 = space.node(space.node_in_plan(p1, "MakeA").value());
  auto b1 = space.node(space.node_in_plan(p1, "MakeB").value());
  EXPECT_EQ(a1.planned_start, b1.planned_start);  // CPM ignores resources

  PlanRequest leveled = unleveled;
  leveled.level_resources = true;
  auto p2 = m->replan_task("join", leveled).value();
  auto a2 = space.node(space.node_in_plan(p2, "MakeA").value());
  auto b2 = space.node(space.node_in_plan(p2, "MakeB").value());
  bool overlap = a2.planned_start < b2.planned_finish &&
                 b2.planned_start < a2.planned_finish;
  EXPECT_FALSE(overlap);
}

TEST(Planner, LeveledPlanRespectsTimeOff) {
  auto m = test::make_asic_manager();
  auto carol = m->db().find_resource("carol").value();
  // Carol is away for the first 40 work-hours.
  m->db()
      .add_time_off(carol, cal::WorkInstant(0), cal::WorkInstant(40 * 60))
      .expect("time off");
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["Synthesize"] = {carol};
  req.level_resources = true;
  auto plan = m->plan_task("chip", req).value();
  const auto& space = m->schedule_space();
  auto synth = space.node(space.node_in_plan(plan, "Synthesize").value());
  EXPECT_EQ(synth.planned_start.minutes_since_epoch(), 40 * 60);
  // Unassigned successors shift behind it.
  auto place = space.node(space.node_in_plan(plan, "Place").value());
  EXPECT_GE(place.planned_start, synth.planned_finish);
}

TEST(Planner, TimeOffBeforeAnchorIgnored) {
  auto m = test::make_asic_manager();
  auto carol = m->db().find_resource("carol").value();
  m->db()
      .add_time_off(carol, cal::WorkInstant(0), cal::WorkInstant(100))
      .expect("time off");
  sched::PlanRequest req;
  req.anchor = cal::WorkInstant(1000);  // vacation long over
  req.assignments["Synthesize"] = {carol};
  req.level_resources = true;
  auto plan = m->plan_task("chip", req).value();
  const auto& space = m->schedule_space();
  auto synth = space.node(space.node_in_plan(plan, "Synthesize").value());
  EXPECT_EQ(synth.planned_start.minutes_since_epoch(), 1000);
}

TEST(Planner, RejectsBadAssignments) {
  auto m = test::make_asic_manager();
  PlanRequest bad_activity;
  bad_activity.anchor = m->clock().now();
  bad_activity.assignments["NoSuch"] = {};
  EXPECT_FALSE(m->plan_task("chip", bad_activity).ok());

  PlanRequest bad_resource;
  bad_resource.anchor = m->clock().now();
  bad_resource.assignments["Synthesize"] = {util::ResourceId{42}};
  EXPECT_FALSE(m->plan_task("chip", bad_resource).ok());
}

TEST(Planner, PlanNameDefaultsToTaskName) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  EXPECT_EQ(m->schedule_space().plan(plan).name, "chip");
}

}  // namespace
}  // namespace herc::sched
