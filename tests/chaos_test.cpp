// Chaos-harness tests: a small but complete fault sweep — every IO point of
// the workload crossed with every fault kind, plus probabilistic trials —
// must hold the durability contract (acknowledged => recovered
// byte-identically, recovery deterministic, degraded shards read-only but
// alive) with zero violations.  The CI chaos job runs the same sweep at a
// larger scale through tools/herc_chaos.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "srv/chaos.hpp"

namespace herc::srv {
namespace {

ChaosOptions small_sweep(const std::string& tag) {
  ChaosOptions options;
  options.dir = (std::filesystem::temp_directory_path() /
                 ("herc_chaos_test_" + tag + "_" + std::to_string(::getpid())))
                    .string();
  options.seed = 7;
  options.ops = 4;
  options.save_every = 2;
  options.flow_size = 2;
  options.max_points = 10;  // keep the (points x kinds) grid test-sized
  options.random_trials = 3;
  options.fail_prob = 0.08;
  return options;
}

TEST(Chaos, SweepHoldsTheDurabilityContract) {
  auto report = run_chaos(small_sweep("plain"));
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_TRUE(report.value().ok()) << report.value().summary();

  // The sweep actually exercised the machinery: the workload has IO points,
  // every (point, kind) pair plus the probabilistic trials ran, faults were
  // injected, and at least one of them latched a shard read-only.
  EXPECT_GT(report.value().io_points, 0u);
  EXPECT_EQ(report.value().trials, 10u * 5u + 3u);
  EXPECT_GT(report.value().faults_injected, 0u);
  EXPECT_GT(report.value().read_only_trials, 0u);
  EXPECT_GT(report.value().recoveries, 0u);
  EXPECT_GT(report.value().acked_ops, 0u);
  // The scratch tree is cleaned up.
  EXPECT_FALSE(std::filesystem::exists(small_sweep("plain").dir));
}

TEST(Chaos, SweepAlsoHoldsUnderGroupCommit) {
  ChaosOptions options = small_sweep("gc");
  options.group_commit = true;
  options.max_points = 6;
  options.random_trials = 2;
  auto report = run_chaos(options);
  ASSERT_TRUE(report.ok()) << report.error().str();
  EXPECT_TRUE(report.value().ok()) << report.value().summary();
  EXPECT_GT(report.value().recoveries, 0u);
}

TEST(Chaos, ReportSerializesItsCounters) {
  ChaosReport report;
  report.io_points = 12;
  report.trials = 3;
  report.violations.push_back("example violation");
  const util::Json json = report.to_json();
  const auto& doc = json.as_object();
  EXPECT_EQ(doc.at("io_points").as_int(), 12);
  EXPECT_EQ(doc.at("trials").as_int(), 3);
  EXPECT_EQ(doc.at("violations").as_array().size(), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("example violation"), std::string::npos);
}

}  // namespace
}  // namespace herc::srv
