// Storage-integrity tests: the CRC-32C primitive, journal record framing,
// the snapshot footer, the FaultFs IO-fault shim, fsio behaviour under
// injected faults (including fd hygiene), and the corrupt-journal corpus —
// bit-flips at the head / middle / tail, truncated length prefixes, and bad
// snapshot footers must each recover to the last verified record with the
// damage reported and quarantined, never silently replayed.

#include <gtest/gtest.h>

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "util/crc32c.hpp"
#include "util/faultfs.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace herc::hercules {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
  }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- crc32c -----------------------------------------------------------------

TEST(Crc32c, KnownAnswers) {
  // The standard CRC-32C check value.
  EXPECT_EQ(util::crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(util::crc32c(""), 0u);
  // iSCSI test vector: 32 zero bytes.
  EXPECT_EQ(util::crc32c(std::string(32, '\0')), 0x8a9136aau);
}

TEST(Crc32c, ChainingMatchesOneShot) {
  const std::string data = "the journal line to be checksummed";
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    std::uint32_t chained =
        util::crc32c(data.substr(cut), util::crc32c(data.substr(0, cut)));
    EXPECT_EQ(chained, util::crc32c(data)) << "cut at " << cut;
  }
}

TEST(Crc32c, HexRoundTrip) {
  for (std::uint32_t crc : {0u, 1u, 0xe3069283u, 0xffffffffu, 0x00ff00ffu}) {
    char hex[8];
    util::crc32c_to_hex(crc, hex);
    bool ok = false;
    EXPECT_EQ(util::crc32c_from_hex(std::string_view(hex, 8), &ok), crc);
    EXPECT_TRUE(ok);
  }
  bool ok = true;
  (void)util::crc32c_from_hex("not-hex!", &ok);
  EXPECT_FALSE(ok);
}

// --- journal framing --------------------------------------------------------

TEST(JournalFrame, RoundTrip) {
  const std::string payload = R"({"clock":7,"runs":[]})";
  const std::string framed = frame_journal_line(payload);
  ASSERT_EQ(framed.substr(0, 3), "J1 ");
  auto unframed = unframe_journal_line(framed, /*is_final=*/false);
  EXPECT_EQ(unframed.status, FrameStatus::kOk);
  EXPECT_EQ(unframed.payload, payload);
}

TEST(JournalFrame, TornVersusCorruptClassification) {
  const std::string framed = frame_journal_line(R"({"clock":7})");
  // Every strict prefix of a framed line is a tear when final...
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    auto at_tail = unframe_journal_line(framed.substr(0, cut), /*is_final=*/true);
    EXPECT_NE(at_tail.status, FrameStatus::kOk) << "cut at " << cut;
    EXPECT_NE(at_tail.status, FrameStatus::kCorrupt) << "cut at " << cut;
  }
  // ...but a header-complete prefix mid-file is corruption, and in-place
  // damage is corruption even at the tail.
  auto mid_file = unframe_journal_line(framed.substr(0, framed.size() - 1),
                                       /*is_final=*/false);
  EXPECT_EQ(mid_file.status, FrameStatus::kCorrupt);
  std::string flipped = framed;
  flipped[flipped.size() - 3] ^= 0x20;
  EXPECT_EQ(unframe_journal_line(flipped, /*is_final=*/true).status,
            FrameStatus::kCorrupt);
  // Damage inside the checksum field itself.
  std::string bad_crc = framed;
  bad_crc[framed.find(' ', 3) + 1] = 'z';
  EXPECT_EQ(unframe_journal_line(bad_crc, /*is_final=*/true).status,
            FrameStatus::kCorrupt);
}

TEST(JournalFrame, UnframedLineFallsBackToLegacy) {
  auto legacy = unframe_journal_line(R"({"clock":7})", /*is_final=*/false);
  EXPECT_EQ(legacy.status, FrameStatus::kLegacy);
  EXPECT_EQ(legacy.payload, R"({"clock":7})");
  // A final line that is a prefix of the magic itself is crash debris.
  EXPECT_EQ(unframe_journal_line("J", /*is_final=*/true).status,
            FrameStatus::kTorn);
  EXPECT_EQ(unframe_journal_line("J", /*is_final=*/false).status,
            FrameStatus::kLegacy);
}

// --- snapshot footer --------------------------------------------------------

TEST(SnapshotFooter, AppendVerifyStrip) {
  const std::string body = R"({"project":"p","clock":3})" "\n";
  const std::string with_footer = append_snapshot_footer(body);
  RecoveryStats stats;
  auto stripped = strip_snapshot_footer(with_footer, &stats);
  ASSERT_TRUE(stripped.ok()) << stripped.error().str();
  EXPECT_EQ(stripped.value(), body);
  EXPECT_TRUE(stats.snapshot_footer);
  EXPECT_FALSE(stats.snapshot_corrupt);
}

TEST(SnapshotFooter, MissingFooterPassesThrough) {
  RecoveryStats stats;
  auto stripped = strip_snapshot_footer("{\"plain\":1}", &stats);
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.value(), "{\"plain\":1}");
  EXPECT_FALSE(stats.snapshot_footer);
}

TEST(SnapshotFooter, DamageIsDetected) {
  const std::string good = append_snapshot_footer(R"({"project":"p"})" "\n");
  // Flip one body byte, corrupt the stored checksum, and declare the wrong
  // length: all three must fail verification and set snapshot_corrupt.
  std::string flipped_body = good;
  flipped_body[2] ^= 0x01;
  std::string bad_crc = good;
  bad_crc[good.rfind(' ') - 4] = 'z';
  std::string bad_len = good;
  bad_len[good.rfind(' ') + 1] = '9';
  for (const std::string& damaged : {flipped_body, bad_crc, bad_len}) {
    RecoveryStats stats;
    auto stripped = strip_snapshot_footer(damaged, &stats);
    EXPECT_FALSE(stripped.ok());
    EXPECT_TRUE(stats.snapshot_corrupt);
  }
}

// --- FaultFs ----------------------------------------------------------------

TEST(FaultFs, ExactIndicesAndDeterminism) {
  util::FsFaultPlan plan;
  plan.eio_on = {2};
  plan.enospc_on = {4};
  for (int repeat = 0; repeat < 2; ++repeat) {
    util::FaultFs fs(7, plan);
    using A = util::FaultFs::Action;
    EXPECT_EQ(fs.decide(util::FsOp::kWrite, "x", 10).action, A::kNone);
    EXPECT_EQ(fs.decide(util::FsOp::kWrite, "x", 10).action, A::kEio);
    EXPECT_EQ(fs.decide(util::FsOp::kFsync, "x", 0).action, A::kNone);
    EXPECT_EQ(fs.decide(util::FsOp::kWrite, "x", 10).action, A::kEnospc);
    EXPECT_EQ(fs.ops(), 4u);
    EXPECT_EQ(fs.injected(), 2u);
    EXPECT_FALSE(fs.crashed());
  }
}

TEST(FaultFs, ProbabilisticFaultsAreAPureHashOfSeedAndIndex) {
  util::FsFaultPlan plan;
  plan.fail_prob = 0.3;
  std::vector<util::FaultFs::Action> first;
  for (int repeat = 0; repeat < 2; ++repeat) {
    util::FaultFs fs(42, plan);
    for (int i = 0; i < 64; ++i) {
      auto action = fs.decide(util::FsOp::kWrite, "x", 8).action;
      if (repeat == 0)
        first.push_back(action);
      else
        EXPECT_EQ(action, first[static_cast<std::size_t>(i)]) << "op " << i;
    }
  }
  util::FaultFs other(43, plan);
  bool any_difference = false;
  for (int i = 0; i < 64; ++i)
    if (other.decide(util::FsOp::kWrite, "x", 8).action != first[static_cast<std::size_t>(i)])
      any_difference = true;
  EXPECT_TRUE(any_difference) << "different seeds produced identical streams";
}

TEST(FaultFs, CrashPointLatchesAllLaterIo) {
  util::FsFaultPlan plan;
  plan.crash_at = 3;
  util::FaultFs fs(1, plan);
  using A = util::FaultFs::Action;
  EXPECT_EQ(fs.decide(util::FsOp::kWrite, "x", 4).action, A::kNone);
  EXPECT_EQ(fs.decide(util::FsOp::kFsync, "x", 0).action, A::kNone);
  EXPECT_EQ(fs.decide(util::FsOp::kWrite, "x", 4).action, A::kCrash);
  EXPECT_TRUE(fs.crashed());
  // The process is dead: every later operation fails too.
  EXPECT_NE(fs.decide(util::FsOp::kRename, "x", 0).action, A::kNone);
  EXPECT_NE(fs.decide(util::FsOp::kOpen, "y", 0).action, A::kNone);
}

TEST(FaultFs, TornWritePrefixIsAStrictPrefix) {
  util::FsFaultPlan plan;
  plan.torn_write_on = {1};
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    util::FaultFs fs(seed, plan);
    auto decision = fs.decide(util::FsOp::kWrite, "x", 100);
    ASSERT_EQ(decision.action, util::FaultFs::Action::kTorn) << seed;
    EXPECT_LT(decision.prefix_bytes, 100u) << seed;
    EXPECT_TRUE(fs.crashed());
  }
}

TEST(FaultFs, PathFilterScopesCountingAndFaults) {
  util::FsFaultPlan plan;
  plan.eio_on = {1};
  plan.path_filter = "/scoped/";
  util::FaultFs fs(1, plan);
  using A = util::FaultFs::Action;
  // Non-matching paths neither consume indices nor fail.
  EXPECT_EQ(fs.decide(util::FsOp::kWrite, "/elsewhere/file", 8).action, A::kNone);
  EXPECT_EQ(fs.ops(), 0u);
  EXPECT_EQ(fs.decide(util::FsOp::kWrite, "/scoped/file", 8).action, A::kEio);
  EXPECT_EQ(fs.ops(), 1u);
}

// --- fsio under injected faults ---------------------------------------------

int open_fd_count() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

TEST(FsioFaults, AtomicWriteFailurePreservesTargetAndLeaksNothing) {
  TempFile file("/tmp/herc_faulted_atomic.json");
  ASSERT_TRUE(util::write_file(file.path, "old contents").ok());
  const int fds_before = open_fd_count();

  // Sweep the fault across the atomic-replace sequence (open, write, fsync,
  // rename, dir fsync): every position must fail cleanly — the target is
  // never torn, no temp file survives, no descriptor leaks.  Up to and
  // including the rename (ops 1-4) the OLD contents must be preserved; a
  // directory-fsync failure (op 5) comes after the replacement is visible,
  // so the new contents are allowed (the caller still gets the error — the
  // durability guarantee was not met).
  constexpr std::uint64_t kRenameIndex = 4;
  for (std::uint64_t index = 1; index <= 5; ++index) {
    for (auto arm : {&util::FsFaultPlan::eio_on, &util::FsFaultPlan::enospc_on}) {
      util::Status status = util::Status::ok_status();
      {
        util::FsFaultPlan plan;
        plan.*arm = {index};
        plan.path_filter = file.path;
        util::ScopedFaultFs faults(11, plan);
        status = util::write_file_atomic(file.path, "new contents", true);
        ASSERT_GT(faults.fs().injected(), 0u) << "index " << index;
      }
      EXPECT_FALSE(status.ok()) << "index " << index;
      EXPECT_EQ(status.error().code, util::Error::Code::kIoError);
      EXPECT_NE(status.error().message.find("(injected)"), std::string::npos);

      const std::string content = slurp(file.path);
      EXPECT_TRUE(content == "old contents" || content == "new contents")
          << "index " << index << ": torn target: " << content;
      if (index <= kRenameIndex)
        EXPECT_EQ(content, "old contents") << "index " << index;
      std::ifstream tmp(file.path + ".tmp");
      EXPECT_FALSE(tmp.good()) << "index " << index;
      ASSERT_TRUE(util::write_file(file.path, "old contents").ok());
    }
  }
  EXPECT_EQ(open_fd_count(), fds_before);

  // No fault installed: the same write goes through.
  ASSERT_TRUE(util::write_file_atomic(file.path, "new contents", true).ok());
  EXPECT_EQ(slurp(file.path), "new contents");
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(FsioFaults, AppendShortWriteReportsDiskFullAndKeepsFdHygiene) {
  TempFile file("/tmp/herc_faulted_append.wal");
  const int fds_before = open_fd_count();
  {
    util::FsFaultPlan plan;
    plan.short_write_on = {2};
    plan.path_filter = file.path;
    util::ScopedFaultFs faults(3, plan);
    util::AppendFile out;
    ASSERT_TRUE(out.open_trunc(file.path).ok());  // op 1
    auto short_write = out.append("0123456789");  // op 2: prefix only
    EXPECT_FALSE(short_write.ok());
    EXPECT_EQ(short_write.error().code, util::Error::Code::kIoError);
    out.close();
  }
  // The injected short write landed a strict prefix of the payload.
  EXPECT_LT(slurp(file.path).size(), 10u);
  EXPECT_EQ(std::string("0123456789").substr(0, slurp(file.path).size()),
            slurp(file.path));
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(FsioFaults, TornWriteLatchesEverythingAfter) {
  TempFile file("/tmp/herc_faulted_torn.wal");
  util::FsFaultPlan plan;
  plan.torn_write_on = {2};
  plan.path_filter = file.path;
  util::ScopedFaultFs faults(5, plan);
  util::AppendFile out;
  ASSERT_TRUE(out.open_trunc(file.path).ok());
  EXPECT_FALSE(out.append("the line that tears\n").ok());
  EXPECT_TRUE(faults.fs().crashed());
  // Dead process: later IO on the same path fails without touching disk.
  EXPECT_FALSE(out.append("after death\n").ok());
  EXPECT_FALSE(out.sync().ok());
  EXPECT_EQ(slurp(file.path).find("after death"), std::string::npos);
}

// --- corrupt-journal corpus -------------------------------------------------

/// A real snapshot + multi-line framed journal from the circuit fixture.
struct Corpus {
  std::string snapshot;
  std::string journal;
  std::vector<std::string> lines;  // without trailing newlines
};

Corpus make_corpus() {
  TempFile wal("/tmp/herc_integrity_corpus.wal");
  auto m = test::make_circuit_manager();
  Corpus corpus;
  corpus.snapshot = save_to_json(*m);
  EXPECT_TRUE(m->enable_journal(wal.path).ok());
  m->execute_task("adder", "alice").value();       // Create + Simulate
  m->run_activity("adder", "Simulate", "bob").value();
  m->disable_journal();
  corpus.journal = slurp(wal.path);
  std::istringstream in(corpus.journal);
  for (std::string line; std::getline(in, line);) corpus.lines.push_back(line);
  EXPECT_EQ(corpus.lines.size(), 3u);
  return corpus;
}

std::string flip_payload_byte(std::string line) {
  line[line.size() / 2] ^= 0x01;  // well past the header on these lines
  return line;
}

std::string join(const std::vector<std::string>& lines) {
  std::string text;
  for (const auto& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

TEST(CorruptJournal, BitFlipStopsAtLastVerifiedRecord) {
  const Corpus corpus = make_corpus();
  for (std::size_t damaged = 0; damaged < corpus.lines.size(); ++damaged) {
    std::vector<std::string> lines = corpus.lines;
    lines[damaged] = flip_payload_byte(lines[damaged]);
    const std::string journal = join(lines);

    // Strict mode (the CLI, the fuzz oracle): mid-stream corruption is a
    // hard parse error, nothing is silently replayed.
    auto strict = recover_from_json(corpus.snapshot, journal);
    ASSERT_FALSE(strict.ok()) << "line " << damaged;
    EXPECT_EQ(strict.error().code, util::Error::Code::kParse);

    // Resilient mode (the server): stop at the last verified record and
    // report exactly what was dropped.
    RecoveryStats stats;
    auto resilient = recover_from_json(corpus.snapshot, journal, &stats);
    ASSERT_TRUE(resilient.ok()) << "line " << damaged << ": "
                                << resilient.error().str();
    EXPECT_EQ(stats.lines_applied, damaged);
    EXPECT_EQ(stats.corrupt_lines, 1u);
    EXPECT_EQ(stats.lines_discarded, corpus.lines.size() - damaged - 1);
    EXPECT_EQ(stats.torn_tail, 0u);
    EXPECT_FALSE(stats.detail.empty());

    // The recovered state is exactly the replay of the verified prefix.
    auto want = recover_from_json(
        corpus.snapshot,
        join({corpus.lines.begin(), corpus.lines.begin() +
                                        static_cast<std::ptrdiff_t>(damaged)}));
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(save_to_json(*resilient.value()), save_to_json(*want.value()));
  }
}

TEST(CorruptJournal, TruncatedLengthPrefixIsATornTailNotCorruption) {
  const Corpus corpus = make_corpus();
  // Cut the final line inside "J1 <len>": crash debris, even for resilient
  // callers nothing is quarantined and the prefix replays fully.
  for (std::size_t keep : {1u, 2u, 4u, 5u}) {
    const std::string journal =
        join({corpus.lines[0], corpus.lines[1]}) + corpus.lines[2].substr(0, keep);
    RecoveryStats stats;
    auto recovered = recover_from_json(corpus.snapshot, journal, &stats);
    ASSERT_TRUE(recovered.ok()) << "keep " << keep;
    EXPECT_EQ(stats.lines_applied, 2u) << "keep " << keep;
    EXPECT_EQ(stats.torn_tail, 1u) << "keep " << keep;
    EXPECT_EQ(stats.corrupt_lines, 0u) << "keep " << keep;
    // Strict mode agrees: a torn tail is not an error.
    EXPECT_TRUE(recover_from_json(corpus.snapshot, journal).ok());
  }
}

TEST(CorruptJournal, RecoverProjectQuarantinesTheDamagedJournal) {
  const Corpus corpus = make_corpus();
  TempFile snapshot("/tmp/herc_integrity_snap.json");
  TempFile journal("/tmp/herc_integrity_journal.wal");
  ASSERT_TRUE(
      util::write_file(snapshot.path, append_snapshot_footer(corpus.snapshot))
          .ok());
  std::vector<std::string> lines = corpus.lines;
  lines[1] = flip_payload_byte(lines[1]);
  ASSERT_TRUE(util::write_file(journal.path, join(lines)).ok());

  RecoveryStats stats;
  auto recovered = recover_project(snapshot.path, journal.path, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.error().str();
  EXPECT_TRUE(stats.snapshot_footer);
  EXPECT_EQ(stats.lines_applied, 1u);
  EXPECT_EQ(stats.corrupt_lines, 1u);
  ASSERT_EQ(stats.quarantine_path, journal.path + ".corrupt");
  // The sidecar preserves the damaged bytes for diagnosis.
  EXPECT_EQ(slurp(stats.quarantine_path), join(lines));
}

TEST(CorruptJournal, BadSnapshotFooterFailsAndQuarantinesTheSnapshot) {
  const Corpus corpus = make_corpus();
  TempFile snapshot("/tmp/herc_integrity_badsnap.json");
  TempFile journal("/tmp/herc_integrity_badsnap.wal");
  std::string damaged = append_snapshot_footer(corpus.snapshot);
  damaged[damaged.size() / 2] ^= 0x01;
  ASSERT_TRUE(util::write_file(snapshot.path, damaged).ok());
  ASSERT_TRUE(util::write_file(journal.path, corpus.journal).ok());

  // A snapshot damaged in place is unrecoverable (the journal replays over
  // the snapshot's state); recovery must refuse rather than rebuild a
  // silently wrong project.
  RecoveryStats stats;
  auto recovered = recover_project(snapshot.path, journal.path, &stats);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(stats.snapshot_corrupt);
  ASSERT_EQ(stats.quarantine_path, snapshot.path + ".corrupt");
  EXPECT_EQ(slurp(stats.quarantine_path), damaged);
}

}  // namespace
}  // namespace herc::hercules
