// Unit tests for Level-2 task trees: extraction, binding, traversal.

#include <gtest/gtest.h>

#include "flow/task_tree.hpp"

namespace herc::flow {
namespace {

schema::TaskSchema asic_schema() {
  auto parsed = schema::parse_schema(R"(
    schema asic {
      data rtl, constraints, gates, placed, routed;
      tool synthesizer, placer, router;
      rule Synthesize: gates  <- synthesizer(rtl, constraints);
      rule Place:      placed <- placer(gates, constraints);
      rule Route:      routed <- router(placed);
    }
  )");
  return std::move(parsed).take();
}

TEST(TaskTree, ExtractFullScope) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed");
  ASSERT_TRUE(tree.ok()) << tree.error().str();
  auto activities = tree.value().activities_post_order();
  ASSERT_EQ(activities.size(), 3u);
  // Post-order: inputs before outputs.
  EXPECT_EQ(tree.value().activity_name(activities[0]), "Synthesize");
  EXPECT_EQ(tree.value().activity_name(activities[1]), "Place");
  EXPECT_EQ(tree.value().activity_name(activities[2]), "Route");
}

TEST(TaskTree, RootIsTargetActivity) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  const TaskNode& root = tree.node(tree.root());
  EXPECT_EQ(root.kind, NodeKind::kActivity);
  EXPECT_EQ(schema.type(root.type).name, "routed");
  EXPECT_FALSE(root.parent.valid());
}

TEST(TaskTree, LeavesAreDataAndTools) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  // Leaves: rtl + constraints (ONE shared node although both Synthesize and
  // Place consume it) + 3 tool leaves (one per activity).
  auto leaves = tree.leaves();
  std::size_t data = 0, tools = 0;
  for (auto id : leaves) {
    if (tree.node(id).kind == NodeKind::kDataLeaf) ++data;
    if (tree.node(id).kind == NodeKind::kToolLeaf) ++tools;
  }
  EXPECT_EQ(data, 2u);
  EXPECT_EQ(tools, 3u);
}

TEST(TaskTree, SharedInputIsOneNodeWithTwoConsumers) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  auto constraints = schema.find_type("constraints").value();
  int consumers = 0;
  TaskNodeId the_leaf;
  for (const auto& n : tree.nodes()) {
    if (n.kind != NodeKind::kActivity) continue;
    for (auto c : n.children) {
      if (tree.node(c).type == constraints) {
        ++consumers;
        if (the_leaf.valid()) { EXPECT_EQ(c, the_leaf); }  // same node both times
        the_leaf = c;
      }
    }
  }
  EXPECT_EQ(consumers, 2);  // Synthesize and Place
}

TEST(TaskTree, StopAtLimitsScope) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed", {"placed"});
  ASSERT_TRUE(tree.ok());
  auto activities = tree.value().activities_post_order();
  ASSERT_EQ(activities.size(), 1u);
  EXPECT_EQ(tree.value().activity_name(activities[0]), "Route");
  // 'placed' became a data leaf.
  bool found = false;
  for (auto id : tree.value().leaves()) {
    const auto& n = tree.value().node(id);
    if (n.kind == NodeKind::kDataLeaf && schema.type(n.type).name == "placed")
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TaskTree, ExtractErrors) {
  auto schema = asic_schema();
  EXPECT_FALSE(TaskTree::extract(schema, "nothing").ok());
  EXPECT_FALSE(TaskTree::extract(schema, "router").ok());  // tool type
  EXPECT_FALSE(TaskTree::extract(schema, "rtl").ok());     // primary input
  EXPECT_FALSE(TaskTree::extract(schema, "routed", {"routed"}).ok());  // target stopped
  EXPECT_FALSE(TaskTree::extract(schema, "routed", {"nope"}).ok());    // bad stop type
}

TEST(TaskTree, BindTypeBindsAllMatchingLeaves) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  EXPECT_TRUE(tree.bind_type("constraints", "chip.sdc").ok());
  int bound = 0;
  for (const auto& n : tree.nodes())
    if (n.kind == NodeKind::kDataLeaf && n.binding == "chip.sdc") ++bound;
  EXPECT_EQ(bound, 1);  // the shared constraints leaf
}

TEST(TaskTree, BindErrors) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  EXPECT_FALSE(tree.bind(tree.root(), "x").ok());          // activities unbindable
  EXPECT_FALSE(tree.bind(util::TaskNodeId{999}, "x").ok());
  EXPECT_FALSE(tree.bind_type("gates", "x").ok());  // no leaf of that type
  EXPECT_FALSE(tree.bind_type("zzz", "x").ok());
  auto leaf = tree.leaves().front();
  EXPECT_FALSE(tree.bind(leaf, "").ok());  // empty instance name
}

TEST(TaskTree, FullyBoundReportsMissing) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  auto status = tree.fully_bound();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::kUnbound);
  EXPECT_NE(status.error().message.find("rtl"), std::string::npos);

  tree.bind_type("rtl", "chip.rtl").expect("bind");
  tree.bind_type("constraints", "chip.sdc").expect("bind");
  tree.bind_type("synthesizer", "dc").expect("bind");
  tree.bind_type("placer", "pl").expect("bind");
  tree.bind_type("router", "rt").expect("bind");
  EXPECT_TRUE(tree.fully_bound().ok());
}

TEST(TaskTree, ChildrenKeepRuleOrderWithToolLast) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "gates").take();
  const TaskNode& synth = tree.node(tree.root());
  ASSERT_EQ(synth.children.size(), 3u);  // rtl, constraints, tool
  EXPECT_EQ(schema.type(tree.node(synth.children[0]).type).name, "rtl");
  EXPECT_EQ(schema.type(tree.node(synth.children[1]).type).name, "constraints");
  EXPECT_EQ(tree.node(synth.children[2]).kind, NodeKind::kToolLeaf);
}

TEST(TaskTree, ParentPointersConsistent) {
  // Shared nodes keep their FIRST consumer as parent; every node's recorded
  // parent must list it among its children.
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  for (const auto& n : tree.nodes()) {
    if (!n.parent.valid()) continue;
    const auto& parent = tree.node(n.parent);
    bool listed = false;
    for (auto c : parent.children) listed |= (c == n.id);
    EXPECT_TRUE(listed) << n.id.str();
  }
}

TEST(TaskTree, RenderShowsStructureAndBindings) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  tree.bind_type("rtl", "chip.rtl").expect("bind");
  std::string r = tree.render();
  EXPECT_NE(r.find("[Route] -> routed"), std::string::npos);
  EXPECT_NE(r.find("[Synthesize] -> gates"), std::string::npos);
  EXPECT_NE(r.find("chip.rtl"), std::string::npos);
  EXPECT_NE(r.find("UNBOUND"), std::string::npos);  // constraints still unbound
}

TEST(TaskTree, ActivityNameOnLeafThrows) {
  auto schema = asic_schema();
  auto tree = TaskTree::extract(schema, "routed").take();
  EXPECT_THROW((void)tree.activity_name(tree.leaves().front()), std::logic_error);
}

}  // namespace
}  // namespace herc::flow
