// Unit tests for the ScheduleTracker: automatic actuals, links, slips.

#include <gtest/gtest.h>

#include "common.hpp"
#include "core/tracker.hpp"

namespace herc::sched {
namespace {

TEST(Tracker, FirstRunStampsActualStart) {
  auto m = test::make_circuit_manager();
  auto plan = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "alice").value();
  const auto& space = m->schedule_space();
  auto create = space.node(space.node_in_plan(plan, "Create").value());
  ASSERT_TRUE(create.actual_start.has_value());
  EXPECT_EQ(create.actual_start->minutes_since_epoch(), 0);
  // Not yet linked -> not complete, no actual finish.
  EXPECT_FALSE(create.completed);
  EXPECT_FALSE(create.actual_finish.has_value());
}

TEST(Tracker, IterationDoesNotMoveActualStart) {
  auto m = test::make_circuit_manager();
  auto plan = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "alice").value();
  auto first_start = m->schedule_space()
                         .node(m->schedule_space().node_in_plan(plan, "Simulate").value())
                         .actual_start;
  m->run_activity("adder", "Simulate", "bob").value();
  auto after = m->schedule_space()
                   .node(m->schedule_space().node_in_plan(plan, "Simulate").value())
                   .actual_start;
  EXPECT_EQ(first_start, after);
}

TEST(Tracker, LinkCompletionStampsActualsFromRun) {
  auto m = test::make_circuit_manager();
  auto plan = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "alice").value();
  m->link_completion("adder", "Create").expect("link");
  const auto& space = m->schedule_space();
  auto create = space.node(space.node_in_plan(plan, "Create").value());
  EXPECT_TRUE(create.completed);
  ASSERT_TRUE(create.actual_finish.has_value());
  EXPECT_EQ(create.actual_finish->minutes_since_epoch(), 14 * 60);  // editor ran 14h
  // The link row exists and points at the netlist instance.
  auto link_id = space.link_of(create.id);
  ASSERT_TRUE(link_id.has_value());
  const auto& link = space.links()[link_id->value() - 1];
  EXPECT_EQ(m->db().instance(link.entity_instance).type_name, "netlist");
}

TEST(Tracker, LinkErrors) {
  auto m = test::make_circuit_manager();
  // No plan yet.
  EXPECT_FALSE(m->link_completion("adder", "Create").ok());
  auto plan = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  (void)plan;
  // No completed run yet.
  EXPECT_FALSE(m->link_completion("adder", "Create").ok());
  m->execute_task("adder", "alice").value();
  // Unknown activity.
  EXPECT_FALSE(m->link_completion("adder", "NoSuch").ok());
  // Double link.
  m->link_completion("adder", "Create").expect("link");
  EXPECT_FALSE(m->link_completion("adder", "Create").ok());
}

TEST(Tracker, SlipPropagatesToSuccessors) {
  // Estimates: Synthesize 12h, Place 16h, Route 24h.  Force Synthesize to
  // take much longer by idling the clock before executing it.
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();

  auto baseline_route_finish =
      space.node(space.node_in_plan(plan, "Route").value()).baseline_finish;

  // Designer procrastinates 3 days (1440 min), then synthesizes (10h tool).
  m->clock().advance(cal::WorkDuration::hours(24));
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");

  auto route = space.node(space.node_in_plan(plan, "Route").value());
  // Route's projection slipped past its baseline.
  EXPECT_GT(route.planned_finish, baseline_route_finish);
  // But the baseline itself never moved.
  EXPECT_EQ(route.baseline_finish, baseline_route_finish);
  // Successor can't start before its predecessor's projection.
  auto place = space.node(space.node_in_plan(plan, "Place").value());
  auto synth = space.node(space.node_in_plan(plan, "Synthesize").value());
  EXPECT_GE(place.planned_start, *synth.actual_finish);
  EXPECT_GE(route.planned_start, place.planned_finish);
}

TEST(Tracker, ProjectionNeverSchedulesBeforeNow) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  // Idle five days with no work at all, then poke the tracker via a run of
  // Synthesize.
  m->clock().advance(cal::WorkDuration::hours(40));
  m->run_activity("chip", "Synthesize", "carol").value();
  const auto& space = m->schedule_space();
  auto now = m->clock().now();
  for (auto nid : space.plan(plan).nodes) {
    const auto& n = space.node(nid);
    if (!n.completed && !n.actual_start) {
      EXPECT_GE(n.planned_start, now) << n.activity;
    }
  }
}

TEST(Tracker, InProgressActivityStretchesToNow) {
  auto m = test::make_circuit_manager();
  auto plan = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "alice").value();
  // Simulate ran once (in progress, not linked).  Let time pass: its
  // projection must cover `now`.
  m->clock().advance(cal::WorkDuration::hours(30));
  m->run_activity("adder", "Simulate", "bob").value();
  const auto& space = m->schedule_space();
  auto sim = space.node(space.node_in_plan(plan, "Simulate").value());
  EXPECT_GE(sim.planned_finish, cal::WorkInstant(30 * 60));
}

TEST(Tracker, EarlyFinishPullsScheduleIn) {
  // If an activity finishes faster than estimated, successors project
  // earlier than baseline.
  auto m = test::make_asic_manager();
  // Estimate Synthesize at 40h but the tool takes 10h.
  m->estimator().set_intuition("Synthesize", cal::WorkDuration::hours(40));
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();
  auto baseline_place_start =
      space.node(space.node_in_plan(plan, "Place").value()).baseline_start;

  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");

  auto place = space.node(space.node_in_plan(plan, "Place").value());
  EXPECT_LT(place.planned_start, baseline_place_start);
}

TEST(Tracker, RunsOfOtherActivitiesIgnored) {
  // A plan that covers only Route must not react to Synthesize runs.
  auto m = test::make_asic_manager();
  m->extract_task("routing", "routed", {"placed"}).expect("extract");
  m->bind("routing", "placed", "placed").expect("bind");
  m->bind("routing", "router", "rt").expect("bind");
  auto plan = m->plan_task("routing", {.anchor = m->clock().now()}).value();
  // Execute the full chip task (its Synthesize is not in 'routing' plan).
  m->run_activity("chip", "Synthesize", "carol").value();
  const auto& space = m->schedule_space();
  auto route = space.node(space.node_in_plan(plan, "Route").value());
  EXPECT_FALSE(route.actual_start.has_value());
}

TEST(Tracker, RunsAttributeToTheExecutedTasksPlan) {
  // Two tasks instantiate the same schema, so their activities share names;
  // a run of one task must stamp only that task's plan.
  auto m = test::make_asic_manager();
  m->extract_task("chip2", "routed").expect("extract");
  m->bind("chip2", "rtl", "other.rtl").expect("bind");
  m->bind("chip2", "constraints", "other.sdc").expect("bind");
  m->bind("chip2", "synthesizer", "dc").expect("bind");
  m->bind("chip2", "placer", "pl").expect("bind");
  m->bind("chip2", "router", "rt").expect("bind");

  auto plan1 = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto plan2 = m->plan_task("chip2", {.anchor = m->clock().now()}).value();

  // Although plan2 was created last (and is therefore "watched"), running
  // chip's Synthesize must stamp plan1, not plan2.
  m->run_activity("chip", "Synthesize", "carol").value();
  const auto& space = m->schedule_space();
  EXPECT_TRUE(space.node(space.node_in_plan(plan1, "Synthesize").value())
                  .actual_start.has_value());
  EXPECT_FALSE(space.node(space.node_in_plan(plan2, "Synthesize").value())
                   .actual_start.has_value());
}

TEST(Tracker, WatchedPlanSwitches) {
  auto m = test::make_circuit_manager();
  auto p1 = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  auto p2 = m->replan_task("adder", {.anchor = m->clock().now()}).value();
  EXPECT_EQ(m->tracker().watched_plan().value(), p2);
  m->execute_task("adder", "alice").value();
  const auto& space = m->schedule_space();
  // Actuals land on the new plan's nodes, not the superseded one's.
  EXPECT_TRUE(space.node(space.node_in_plan(p2, "Create").value())
                  .actual_start.has_value());
  EXPECT_FALSE(space.node(space.node_in_plan(p1, "Create").value())
                   .actual_start.has_value());
}

}  // namespace
}  // namespace herc::sched
