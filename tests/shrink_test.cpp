// Shrinker tests: a planted mirror-invariant bug on a 12-rule flow reduces
// to a minimal reproducer within the candidate budget, every intermediate
// candidate is a parseable scenario (the repair step's contract), irrelevant
// dimensions (faults, durations, resources) shrink away, and the reproducer
// survives a corpus round trip still failing.

#include <gtest/gtest.h>

#include <cstdio>

#include "gen/fuzz.hpp"
#include "schema/schema.hpp"

namespace herc::gen {
namespace {

Scenario planted() {
  return generate({.seed = 5,
                   .shape = Shape::kRandom,
                   .size = 12,
                   .inputs = 3,
                   .resources = 3,
                   .mode = ExecMode::kConcurrent});
}

TEST(Shrink, MirrorBugReducesToMinimalReproducer) {
  Scenario failing = planted();
  ShrinkOptions options;
  options.mutation = Mutation::kMirrorDropRun;
  std::size_t seen = 0;
  options.on_candidate = [&](const Scenario& c) {
    ++seen;
    // The repair step promises every candidate parses and keeps >= 1 rule.
    EXPECT_TRUE(schema::parse_schema(c.dsl()).ok());
    EXPECT_GE(c.graph.rules.size(), 1u);
  };
  ASSERT_FALSE(run_scenario(failing, {.mutation = options.mutation}).empty());

  ShrinkResult result = shrink(failing, options);
  EXPECT_LE(result.scenario.graph.rules.size(), 5u);  // acceptance bound
  EXPECT_LE(result.candidates, options.max_candidates);
  EXPECT_EQ(result.candidates, seen);
  EXPECT_GT(result.improvements, 0u);
  ASSERT_FALSE(result.failures.empty());  // the reproducer still reproduces

  // Irrelevant dimensions were shrunk away: the mirror bug needs no
  // concurrency, no spare resources, and no long durations.
  EXPECT_EQ(result.scenario.mode, ExecMode::kSerial);
  EXPECT_EQ(result.scenario.resources, 1);
  EXPECT_EQ(result.scenario.tool_minutes, 1);
  for (const auto& r : result.scenario.graph.rules) EXPECT_EQ(r.est_minutes, 1);
}

TEST(Shrink, FaultsClearedWhenOrthogonalToTheBug) {
  // The CPM off-by-one fails with or without faults, so the fault plan (and
  // the execution knobs it forced) must disappear from the reproducer.
  Scenario failing = generate({.seed = 6,
                               .shape = Shape::kRandom,
                               .size = 8,
                               .fault_seed = 61,
                               .fail_prob = 0.2,
                               .policy = exec::FailurePolicy::kRetryThenAbort,
                               .max_attempts = 3});
  ShrinkResult result = shrink(failing, {.mutation = Mutation::kCpmOffByOne});
  ASSERT_FALSE(result.failures.empty());
  EXPECT_EQ(result.scenario.fault_seed, 0u);
  EXPECT_TRUE(result.scenario.faults.empty());
  EXPECT_EQ(result.scenario.policy, exec::FailurePolicy::kAbort);
  EXPECT_EQ(result.scenario.max_attempts, 1);
  EXPECT_LE(result.scenario.graph.rules.size(), 2u);
}

TEST(Shrink, CandidateBudgetIsRespected) {
  ShrinkOptions options;
  options.mutation = Mutation::kMirrorDropRun;
  options.max_candidates = 7;
  ShrinkResult result = shrink(planted(), options);
  EXPECT_LE(result.candidates, 7u);
  ASSERT_FALSE(result.failures.empty());  // partial shrink still reproduces
}

TEST(Shrink, ReproducerSurvivesCorpusRoundTrip) {
  ShrinkResult result = shrink(planted(), {.mutation = Mutation::kMirrorDropRun});
  ASSERT_FALSE(result.failures.empty());

  std::string path = ::testing::TempDir() + "shrink_roundtrip.json";
  ASSERT_TRUE(write_corpus_file(result.scenario, path).ok());
  auto back = read_corpus_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(scenario_to_json(back.value()).dump(),
            scenario_to_json(result.scenario).dump());
  // Replaying the file reproduces the failure; without the mutation it passes.
  EXPECT_FALSE(run_scenario(back.value(), {.mutation = Mutation::kMirrorDropRun})
                   .empty());
  EXPECT_TRUE(run_scenario(back.value()).empty());
}

}  // namespace
}  // namespace herc::gen
