// Unit tests for the HTML project report.

#include <gtest/gtest.h>

#include "common.hpp"
#include "track/report.hpp"

namespace herc::track {
namespace {

std::unique_ptr<hercules::WorkflowManager> reported_manager() {
  auto m = test::make_asic_manager();
  auto carol = m->db().find_resource("carol").value();
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.deadline = cal::WorkInstant(60 * 60);
  req.assignments["Synthesize"] = {carol};
  m->plan_task("chip", req).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  sched::PlanRequest refine = req;  // keep the deadline across the re-plan
  refine.anchor = m->clock().now();
  m->replan_task("chip", refine).value();
  return m;
}

TEST(Report, EmptyPlanRejected) {
  sched::ScheduleSpace space;
  auto m = test::make_asic_manager();
  auto plan = space.create_plan("empty", cal::WorkInstant(0));
  EXPECT_FALSE(render_html_report(space, m->db(), m->calendar(), plan,
                                  cal::WorkInstant(0))
                   .ok());
}

TEST(Report, CompleteDocumentWithAllSections) {
  auto m = reported_manager();
  auto plan = m->plan_of("chip").value();
  auto html = render_html_report(m->schedule_space(), m->db(), m->calendar(), plan,
                                 m->clock().now())
                  .take();
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  for (const char* section :
       {"Summary", "Gantt", "Activities", "Resource utilization", "Schedule risk",
        "Plan evolution", "<svg", "Synthesize", "earned value", "deadline"})
    EXPECT_NE(html.find(section), std::string::npos) << section;
}

TEST(Report, OptionsDisableSections) {
  auto m = reported_manager();
  auto plan = m->plan_of("chip").value();
  ReportOptions opt;
  opt.include_risk = false;
  opt.include_utilization = false;
  opt.include_lineage = false;
  auto html = render_html_report(m->schedule_space(), m->db(), m->calendar(), plan,
                                 m->clock().now(), opt)
                  .take();
  EXPECT_EQ(html.find("Schedule risk"), std::string::npos);
  EXPECT_EQ(html.find("Resource utilization"), std::string::npos);
  EXPECT_EQ(html.find("Plan evolution"), std::string::npos);
  EXPECT_NE(html.find("Gantt"), std::string::npos);
}

TEST(Report, NoExternalReferences) {
  auto m = reported_manager();
  auto plan = m->plan_of("chip").value();
  auto html = render_html_report(m->schedule_space(), m->db(), m->calendar(), plan,
                                 m->clock().now())
                  .take();
  EXPECT_EQ(html.find("http://"), html.find("http://www.w3.org"));  // only the SVG ns
  EXPECT_EQ(html.find("href="), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
}

TEST(Report, EscapesNames) {
  auto m = hercules::WorkflowManager::create(test::kCircuitSchema).take();
  m->extract_task("a<b>", "performance").expect("extract");
  m->estimator().set_fallback(cal::WorkDuration::hours(4));
  auto plan = m->plan_task("a<b>", {.anchor = m->clock().now()}).value();
  auto html = render_html_report(m->schedule_space(), m->db(), m->calendar(), plan,
                                 m->clock().now())
                  .take();
  EXPECT_NE(html.find("a&lt;b&gt;"), std::string::npos);
}

TEST(Report, DeterministicForSeed) {
  auto m = reported_manager();
  auto plan = m->plan_of("chip").value();
  auto a = render_html_report(m->schedule_space(), m->db(), m->calendar(), plan,
                              m->clock().now())
               .take();
  auto b = render_html_report(m->schedule_space(), m->db(), m->calendar(), plan,
                              m->clock().now())
               .take();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace herc::track
