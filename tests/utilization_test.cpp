// Unit tests for resource-utilization reporting.

#include <gtest/gtest.h>

#include "common.hpp"
#include "track/utilization.hpp"

namespace herc::track {
namespace {

constexpr const char* kParSchema = R"(
schema par {
  data a, b, c;
  tool t;
  rule MakeA: a <- t();
  rule MakeB: b <- t();
  rule Join:  c <- t(a, b);
}
)";

std::unique_ptr<hercules::WorkflowManager> par_manager() {
  auto m = hercules::WorkflowManager::create(kParSchema).take();
  m->register_tool({.instance_name = "t1", .tool_type = "t",
                    .nominal = cal::WorkDuration::hours(4)})
      .expect("tool");
  m->extract_task("job", "c").expect("extract");
  m->bind("job", "t", "t1").expect("bind");
  m->estimator().set_fallback(cal::WorkDuration::hours(8));
  return m;
}

TEST(Utilization, EmptyPlanRejected) {
  sched::ScheduleSpace space;
  auto m = par_manager();
  auto plan = space.create_plan("empty", cal::WorkInstant(0));
  EXPECT_FALSE(utilization(space, m->db(), plan).ok());
}

TEST(Utilization, UnassignedPlanShowsIdleResources) {
  auto m = par_manager();
  m->add_resource("alice");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  auto report = utilization(m->schedule_space(), m->db(), plan).take();
  ASSERT_EQ(report.resources.size(), 1u);
  EXPECT_EQ(report.resources[0].load.count_minutes(), 0);
  EXPECT_DOUBLE_EQ(report.resources[0].utilization, 0.0);
  EXPECT_FALSE(report.has_overallocation());
}

TEST(Utilization, UnleveledDoubleBookingDetected) {
  auto m = par_manager();
  auto alice = m->add_resource("alice");
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["MakeA"] = {alice};
  req.assignments["MakeB"] = {alice};
  auto plan = m->plan_task("job", req).value();  // NOT leveled: A and B overlap
  auto report = utilization(m->schedule_space(), m->db(), plan).take();
  const auto& a = report.resources[0];
  EXPECT_EQ(a.intervals.size(), 2u);
  EXPECT_EQ(a.load.count_minutes(), 16 * 60);  // two 8h bookings
  EXPECT_EQ(a.busy.count_minutes(), 8 * 60);   // fully overlapping
  EXPECT_EQ(a.peak_concurrency, 2);
  EXPECT_TRUE(report.has_overallocation());
  ASSERT_EQ(a.overallocations.size(), 1u);
  EXPECT_EQ((a.overallocations[0].finish - a.overallocations[0].start).count_minutes(),
            8 * 60);
}

TEST(Utilization, LeveledPlanHasNoOverallocation) {
  auto m = par_manager();
  auto alice = m->add_resource("alice");
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["MakeA"] = {alice};
  req.assignments["MakeB"] = {alice};
  req.level_resources = true;
  auto plan = m->plan_task("job", req).value();
  auto report = utilization(m->schedule_space(), m->db(), plan).take();
  const auto& a = report.resources[0];
  EXPECT_EQ(a.peak_concurrency, 1);
  EXPECT_FALSE(report.has_overallocation());
  EXPECT_EQ(a.busy.count_minutes(), 16 * 60);  // serialized
}

TEST(Utilization, CapacityTwoAbsorbsParallelWork) {
  auto m = par_manager();
  auto farm = m->add_resource("farm", "machine", 2);
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["MakeA"] = {farm};
  req.assignments["MakeB"] = {farm};
  auto plan = m->plan_task("job", req).value();
  auto report = utilization(m->schedule_space(), m->db(), plan).take();
  EXPECT_EQ(report.resources[0].peak_concurrency, 2);
  EXPECT_FALSE(report.has_overallocation());
}

TEST(Utilization, ActualsOverrideProjections) {
  auto m = test::make_asic_manager();
  auto carol = m->db().find_resource("carol").value();
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["Synthesize"] = {carol};
  auto plan = m->plan_task("chip", req).value();
  m->run_activity("chip", "Synthesize", "carol").value();  // 10h actual vs 12h est
  m->link_completion("chip", "Synthesize").expect("link");
  auto report = utilization(m->schedule_space(), m->db(), plan).take();
  EXPECT_EQ(report.resources[0].load.count_minutes(), 10 * 60);
}

TEST(Utilization, RenderShowsBarsAndOverbooking) {
  auto m = par_manager();
  auto alice = m->add_resource("alice");
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.assignments["MakeA"] = {alice};
  req.assignments["MakeB"] = {alice};
  auto plan = m->plan_task("job", req).value();
  auto report = utilization(m->schedule_space(), m->db(), plan).take();
  std::string text = report.render(m->calendar());
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("OVERBOOKED"), std::string::npos);
  EXPECT_NE(text.find('X'), std::string::npos);  // overlap glyph in the bar
}

}  // namespace
}  // namespace herc::track
