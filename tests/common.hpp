#pragma once
// Shared fixtures and helpers for the test suite.

#include <memory>
#include <string>

#include "hercules/workflow_manager.hpp"

namespace herc::test {

/// The paper's Fig. 4 circuit schema.
inline constexpr const char* kCircuitSchema = R"(
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

/// A deeper four-activity schema used where two levels are not enough:
/// rtl -> (synthesize) gates -> (place) placed -> (route) routed, with a
/// side input of constraints into synthesize and place.
inline constexpr const char* kAsicSchema = R"(
schema asic {
  data rtl, constraints, gates, placed, routed;
  tool synthesizer, placer, router;
  rule Synthesize: gates  <- synthesizer(rtl, constraints);
  rule Place:      placed <- placer(gates, constraints);
  rule Route:      routed <- router(placed);
}
)";

/// Manager over the circuit schema with tools registered and the "adder"
/// task extracted and fully bound, ready to plan/execute.
inline std::unique_ptr<hercules::WorkflowManager> make_circuit_manager() {
  cal::WorkCalendar::Config cfg;
  cfg.epoch = cal::Date(1995, 6, 12);
  auto m = hercules::WorkflowManager::create(kCircuitSchema, cfg).take();
  m->register_tool({.instance_name = "ned-2.1",
                    .tool_type = "netlist_editor",
                    .nominal = cal::WorkDuration::hours(14)})
      .expect("tool");
  m->register_tool({.instance_name = "spice@s1",
                    .tool_type = "simulator",
                    .nominal = cal::WorkDuration::hours(6)})
      .expect("tool");
  m->add_resource("alice");
  m->add_resource("bob");
  m->extract_task("adder", "performance").expect("extract");
  m->bind("adder", "stimuli", "adder.stimuli").expect("bind");
  m->bind("adder", "netlist_editor", "ned-2.1").expect("bind");
  m->bind("adder", "simulator", "spice@s1").expect("bind");
  m->estimator().set_intuition("Create", cal::WorkDuration::hours(16));
  m->estimator().set_intuition("Simulate", cal::WorkDuration::hours(8));
  return m;
}

/// Manager over the ASIC schema, bound and with intuition estimates.
inline std::unique_ptr<hercules::WorkflowManager> make_asic_manager() {
  cal::WorkCalendar::Config cfg;
  cfg.epoch = cal::Date(1995, 1, 2);
  auto m = hercules::WorkflowManager::create(kAsicSchema, cfg).take();
  m->register_tool({.instance_name = "dc",
                    .tool_type = "synthesizer",
                    .nominal = cal::WorkDuration::hours(10)})
      .expect("tool");
  m->register_tool({.instance_name = "pl",
                    .tool_type = "placer",
                    .nominal = cal::WorkDuration::hours(12)})
      .expect("tool");
  m->register_tool({.instance_name = "rt",
                    .tool_type = "router",
                    .nominal = cal::WorkDuration::hours(20)})
      .expect("tool");
  m->add_resource("carol");
  m->extract_task("chip", "routed").expect("extract");
  m->bind("chip", "rtl", "chip.rtl").expect("bind");
  m->bind("chip", "constraints", "chip.sdc").expect("bind");
  m->bind("chip", "synthesizer", "dc").expect("bind");
  m->bind("chip", "placer", "pl").expect("bind");
  m->bind("chip", "router", "rt").expect("bind");
  m->estimator().set_intuition("Synthesize", cal::WorkDuration::hours(12));
  m->estimator().set_intuition("Place", cal::WorkDuration::hours(16));
  m->estimator().set_intuition("Route", cal::WorkDuration::hours(24));
  return m;
}

}  // namespace herc::test
