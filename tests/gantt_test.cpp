// Unit tests for the Gantt renderer and the schedule-instance browser.

#include <gtest/gtest.h>

#include "common.hpp"
#include "gantt/browser.hpp"
#include "gantt/gantt.hpp"

namespace herc::gantt {
namespace {

TEST(Gantt, FreshPlanShowsProjectionOnly) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  GanttOptions no_legend;
  no_legend.show_legend = false;
  std::string g = render_gantt(m->schedule_space(), m->calendar(), plan,
                               m->clock().now(), no_legend);
  EXPECT_NE(g.find("Synthesize"), std::string::npos);
  EXPECT_NE(g.find("Place"), std::string::npos);
  EXPECT_NE(g.find("Route"), std::string::npos);
  EXPECT_NE(g.find('='), std::string::npos);  // projection bars
  // Nothing accomplished yet: no '#' in the bar rows (the header line shows
  // the plan id as "#1", so skip it; legend already suppressed).
  EXPECT_EQ(g.find('#', g.find('\n')), std::string::npos);
  // With the legend on, the glyph key is present.
  std::string with_legend =
      render_gantt(m->schedule_space(), m->calendar(), plan, m->clock().now());
  EXPECT_NE(with_legend.find("baseline"), std::string::npos);
}

TEST(Gantt, AccomplishedWorkDrawsActualBars) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  std::string g = render_gantt(m->schedule_space(), m->calendar(), plan,
                               m->clock().now());
  EXPECT_NE(g.find('#'), std::string::npos);
  EXPECT_NE(g.find("(done)"), std::string::npos);
}

TEST(Gantt, DateAxisRendered) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  std::string g = render_gantt(m->schedule_space(), m->calendar(), plan,
                               m->clock().now());
  // The axis row carries MM-DD ticks from the project epoch (1995-01-02).
  EXPECT_NE(g.find("01-02"), std::string::npos);
}

TEST(Gantt, CriticalActivitiesMarked) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  std::string g = render_gantt(m->schedule_space(), m->calendar(), plan,
                               m->clock().now());
  // The ASIC chain is fully critical: every activity row carries '*'.
  EXPECT_NE(g.find("Synthesize *"), std::string::npos);
}

TEST(Gantt, EmptyPlanHandled) {
  sched::ScheduleSpace space;
  auto plan = space.create_plan("empty", cal::WorkInstant(0));
  cal::WorkCalendar calendar;
  std::string g = render_gantt(space, calendar, plan, cal::WorkInstant(0));
  EXPECT_NE(g.find("no activities"), std::string::npos);
}

TEST(Gantt, OptionsControlWidthAndLegend) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  GanttOptions opt;
  opt.chart_width = 30;
  opt.show_legend = false;
  std::string g =
      render_gantt(m->schedule_space(), m->calendar(), plan, m->clock().now(), opt);
  EXPECT_EQ(g.find("baseline"), std::string::npos);
  // Bars area is 30 columns wide between the pipes.
  auto line_start = g.find("Synthesize");
  auto first_pipe = g.find('|', line_start);
  auto second_pipe = g.find('|', first_pipe + 1);
  // Today marker may add a pipe inside; just check the row is bounded sanely.
  EXPECT_LE(second_pipe - first_pipe, 32u);
}

TEST(ScheduleCard, ShowsEstimatesActualsAndLink) {
  auto m = test::make_asic_manager();
  auto plan = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  m->run_activity("chip", "Synthesize", "carol").value();
  m->link_completion("chip", "Synthesize").expect("link");
  auto node = m->schedule_space().node_in_plan(plan, "Synthesize").value();
  std::string card =
      render_schedule_card(m->schedule_space(), m->db(), m->calendar(), node);
  for (const char* needle : {"Synthesize", "estimate", "baseline", "actual start",
                             "actual finish", "linked to", "complete"})
    EXPECT_NE(card.find(needle), std::string::npos) << needle;
}

// --- portfolio --------------------------------------------------------------

TEST(PortfolioGantt, StacksPlansOnSharedAxis) {
  auto m = test::make_asic_manager();
  m->extract_task("front", "gates").expect("extract");
  auto chip = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  auto front = m->plan_task("front", {.anchor = m->clock().now()}).value();
  auto out = render_portfolio_gantt(m->schedule_space(), m->calendar(),
                                    {chip, front}, m->clock().now());
  ASSERT_TRUE(out.ok()) << out.error().str();
  const std::string& g = out.value();
  EXPECT_NE(g.find("Portfolio Gantt"), std::string::npos);
  EXPECT_NE(g.find("-- plan 'chip'"), std::string::npos);
  EXPECT_NE(g.find("-- plan 'front'"), std::string::npos);
  // Sections in the order given; chip first.
  EXPECT_LT(g.find("'chip'"), g.find("'front'"));
  // Both plans' activities present (Synthesize appears in each section).
  auto first = g.find("Synthesize");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(g.find("Synthesize", first + 1), std::string::npos);
}

TEST(PortfolioGantt, Validation) {
  auto m = test::make_asic_manager();
  auto chip = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  EXPECT_FALSE(render_portfolio_gantt(m->schedule_space(), m->calendar(), {},
                                      m->clock().now())
                   .ok());
  EXPECT_FALSE(render_portfolio_gantt(m->schedule_space(), m->calendar(),
                                      {chip, chip}, m->clock().now())
                   .ok());
}

TEST(PortfolioGantt, SequencedPlansDoNotOverlap) {
  auto m = test::make_asic_manager();
  m->extract_task("chip2", "routed").expect("extract");
  auto first = m->plan_task("chip", {.anchor = m->clock().now()}).value();
  sched::PlanRequest after;
  after.anchor = m->clock().now();
  after.predecessors = {first};
  auto second = m->plan_task("chip2", after).value();
  const auto& space = m->schedule_space();
  // chip2 starts exactly when chip is projected to finish (52h).
  auto synth2 = space.node(space.node_in_plan(second, "Synthesize").value());
  EXPECT_EQ(synth2.planned_start.minutes_since_epoch(), 52 * 60);
  // Unknown predecessor rejected.
  sched::PlanRequest bad;
  bad.predecessors = {sched::ScheduleRunId{99}};
  m->extract_task("chip3", "routed").expect("extract");
  EXPECT_FALSE(m->plan_task("chip3", bad).ok());
}

// --- browser ---------------------------------------------------------------

class BrowserTest : public ::testing::Test {
 protected:
  BrowserTest() : m_(test::make_circuit_manager()) {
    plan_ = m_->plan_task("adder", {.anchor = m_->clock().now()}).value();
  }

  std::unique_ptr<hercules::WorkflowManager> m_;
  sched::ScheduleRunId plan_;
};

TEST_F(BrowserTest, ListGroupsByActivity) {
  auto browser = m_->browser();
  std::string listing = browser.list();
  EXPECT_NE(listing.find("[Create]"), std::string::npos);
  EXPECT_NE(listing.find("[Simulate]"), std::string::npos);
  EXPECT_NE(listing.find("SC1"), std::string::npos);
}

TEST_F(BrowserTest, SelectDisplayDelete) {
  auto browser = m_->browser();
  auto node = m_->schedule_space().node_in_plan(plan_, "Create").value();
  EXPECT_FALSE(browser.display().ok());  // nothing selected
  EXPECT_TRUE(browser.select(node).ok());
  EXPECT_EQ(browser.selected().value(), node);
  auto card = browser.display();
  ASSERT_TRUE(card.ok());
  EXPECT_NE(card.value().find("Create"), std::string::npos);
  // Selected marker in the listing.
  EXPECT_NE(browser.list().find("> SC1 [Create]"), std::string::npos);

  EXPECT_TRUE(browser.delete_selected().ok());
  EXPECT_FALSE(browser.selected().has_value());
  EXPECT_EQ(browser.list().find("SC1 [Create]"), std::string::npos);  // hidden
  // Deleted instances cannot be selected again.
  EXPECT_FALSE(browser.select(node).ok());
}

TEST_F(BrowserTest, LinkedInstancesCannotBeDeleted) {
  m_->execute_task("adder", "alice").value();
  m_->link_completion("adder", "Create").expect("link");
  auto browser = m_->browser();
  auto node = m_->schedule_space().node_in_plan(plan_, "Create").value();
  browser.select(node).expect("select");
  auto status = browser.delete_selected();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::kConflict);
}

TEST_F(BrowserTest, SelectErrors) {
  auto browser = m_->browser();
  EXPECT_FALSE(browser.select(sched::ScheduleNodeId{999}).ok());
  EXPECT_FALSE(browser.select(sched::ScheduleNodeId{}).ok());
  EXPECT_FALSE(browser.delete_selected().ok());  // nothing selected
}

TEST_F(BrowserTest, DeletedNodesLeaveGantt) {
  auto browser = m_->browser();
  auto node = m_->schedule_space().node_in_plan(plan_, "Create").value();
  browser.select(node).expect("select");
  browser.delete_selected().expect("delete");
  std::string g = render_gantt(m_->schedule_space(), m_->calendar(), plan_,
                               m_->clock().now());
  EXPECT_EQ(g.find("Create"), std::string::npos);
  EXPECT_NE(g.find("Simulate"), std::string::npos);
}

}  // namespace
}  // namespace herc::gantt
