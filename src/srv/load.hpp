#pragma once
// Closed-loop load driver for the server: N projects x M simulated designers,
// each designer a thread with its own connection, all hammering `execute`
// (plus a sprinkling of reads) until a deadline.  This is the headline
// benchmark for the server PR — it measures the throughput/latency effect of
// group commit under real socket + worker-pool + shard contention, which the
// in-process microbenches cannot.
//
// Arrival modes:
//   closed  each designer issues its next request the moment the previous
//           response lands (classic closed loop; offered load tracks
//           capacity, latencies measure service time under full contention).
//   open    each designer issues requests on a fixed schedule (rate/sec,
//           deterministically jittered) regardless of completion; if the
//           server falls behind, requests queue and latency shows it.
//           Arrival timestamps are scheduled, so reported latency is
//           queueing + service (coordinated-omission safe).

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace herc::srv {

struct LoadOptions {
  std::string address;  ///< server to drive ("unix:..." / "tcp:...")
  int projects = 8;
  int designers = 4;  ///< per project
  std::chrono::milliseconds duration{5000};

  enum class Arrival { kClosed, kOpen };
  Arrival arrival = Arrival::kClosed;
  double rate_per_designer = 20.0;  ///< open mode: requests/sec per designer

  /// Every Kth request is a read (`status` op) instead of an `execute`;
  /// 0 = mutations only.
  int read_every = 0;

  std::uint64_t seed = 1;        ///< scenario seeds: seed, seed+1, ...
  std::string shape = "layered";
  std::size_t size = 3;          ///< kept small: latency, not flow width

  /// Open the projects before driving (off when the caller pre-opened them).
  bool open_projects = true;
};

struct LoadReport {
  std::uint64_t requests = 0;  ///< responses received
  std::uint64_t errors = 0;    ///< transport errors + ok=false responses
  std::uint64_t runs = 0;      ///< tool runs the executes produced
  double elapsed_sec = 0.0;
  double runs_per_sec = 0.0;
  double requests_per_sec = 0.0;
  // Latency percentiles over per-request wall time, microseconds.
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  std::int64_t max_us = 0;
  // Durability accounting from the server's `stats` op, for the group-commit
  // comparison: how many physical flushes covered how many journal lines.
  std::int64_t journal_lines = 0;
  std::int64_t group_commits = 0;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] std::string summary() const;  ///< one human line
};

/// Runs the workload to completion.  Fails fast if the server is
/// unreachable or a project cannot be opened.
[[nodiscard]] util::Result<LoadReport> run_load(const LoadOptions& options);

}  // namespace herc::srv
