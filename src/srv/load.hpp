#pragma once
// Closed-loop load driver for the server: N projects x M simulated designers,
// each designer a thread with its own connection, all hammering `execute`
// (plus a sprinkling of reads) until a deadline.  This is the headline
// benchmark for the server PR — it measures the throughput/latency effect of
// group commit under real socket + worker-pool + shard contention, which the
// in-process microbenches cannot.
//
// Arrival modes:
//   closed  each designer issues its next request the moment the previous
//           response lands (classic closed loop; offered load tracks
//           capacity, latencies measure service time under full contention).
//   open    each designer issues requests on a fixed schedule (rate/sec,
//           deterministically jittered) regardless of completion; if the
//           server falls behind, requests queue and latency shows it.
//           Arrival timestamps are scheduled, so reported latency is
//           queueing + service (coordinated-omission safe).

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace herc::srv {

struct LoadOptions {
  std::string address;  ///< server to drive ("unix:..." / "tcp:...")
  int projects = 8;
  int designers = 4;  ///< per project
  std::chrono::milliseconds duration{5000};

  enum class Arrival { kClosed, kOpen };
  Arrival arrival = Arrival::kClosed;
  double rate_per_designer = 20.0;  ///< open mode: requests/sec per designer

  /// Every Kth request is a read (`status` op) instead of an `execute`;
  /// 0 = mutations only.
  int read_every = 0;

  /// Percentage (0-100) of DESIGNERS dedicated to reads; -1 = off (use
  /// read_every).  With `--read-mix 90 --designers 8 --projects 1`, 7
  /// threads are managers polling the project (status + a query rotation:
  /// `select plans`, `select links`, `select schedule where critical =
  /// true`, `select runs where designer = ...`) while 1 thread executes
  /// flows and advances the clock.  Roles are dedicated — not a per-request
  /// coin flip — because that is the contended shape: in a closed loop a
  /// mixed designer cannot read while its own write is in flight, which
  /// pins read throughput to a fixed multiple of write throughput and hides
  /// exactly the blocking this workload exists to measure.  This is the
  /// MVCC headline (readers must not stall behind the writer's lock).
  int read_mix = -1;

  std::uint64_t seed = 1;        ///< scenario seeds: seed, seed+1, ...
  std::string shape = "layered";
  std::size_t size = 3;          ///< kept small: latency, not flow width

  /// Open the projects before driving (off when the caller pre-opened them).
  bool open_projects = true;

  /// Executes issued per project before the measured window starts, so the
  /// drive hits a mid-flight project (thousands of recorded runs) rather
  /// than a freshly planned one.  Identical state for every config under
  /// comparison; 0 = drive the fresh project.
  int warmup_executes = 0;
};

struct LoadReport {
  std::uint64_t requests = 0;  ///< responses received
  std::uint64_t errors = 0;    ///< transport errors + HARD ok=false responses
  /// Responses the server declined with a RETRYABLE error (`overloaded`
  /// shedding, a read-only shard's `io_error`).  Counted apart from `errors`:
  /// shed work is the server protecting itself, not the workload failing —
  /// CI asserts errors == 0 while a shed count merely dents throughput.
  std::uint64_t shed = 0;
  std::uint64_t runs = 0;      ///< tool runs the executes produced
  double elapsed_sec = 0.0;
  double runs_per_sec = 0.0;
  double requests_per_sec = 0.0;
  // Latency percentiles over per-request wall time, microseconds.
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  std::int64_t max_us = 0;
  // Read/write split (reads = query/status/..., writes = execute).  Reads
  // and writes have wildly different service times, so the combined
  // percentiles above say little under --read-mix; these are the headline.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double reads_per_sec = 0.0;
  std::int64_t read_p50_us = 0;
  std::int64_t read_p99_us = 0;
  std::int64_t write_p50_us = 0;
  std::int64_t write_p99_us = 0;
  // Durability accounting from the server's `stats` op, for the group-commit
  // comparison: how many physical flushes covered how many journal lines.
  std::int64_t journal_lines = 0;
  std::int64_t group_commits = 0;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] std::string summary() const;  ///< one human line
};

/// Runs the workload to completion.  Fails fast if the server is
/// unreachable or a project cannot be opened.
[[nodiscard]] util::Result<LoadReport> run_load(const LoadOptions& options);

}  // namespace herc::srv
