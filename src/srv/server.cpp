#include "srv/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace herc::srv {

namespace {

using util::Error;
using util::Json;
using util::JsonObject;
using util::Result;
using util::Status;

/// Required string member of an op's args.
Result<std::string> arg_string(const JsonObject& args, const std::string& key) {
  if (!args.contains(key) || !args.at(key).is_string()) {
    return Error{Error::Code::kInvalid, "missing string arg '" + key + "'"};
  }
  return args.at(key).as_string();
}

}  // namespace

Server::Session::~Session() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Result<std::unique_ptr<Server>> Server::start(ServerConfig config) {
  if (config.unix_path.empty() && config.tcp_port < 0) {
    return Error{Error::Code::kInvalid, "server: no listener configured"};
  }
  if (config.workers < 1) config.workers = 1;
  auto server = std::unique_ptr<Server>(new Server(std::move(config)));

  if (::pipe(server->stop_pipe_) != 0) {
    return Error{Error::Code::kInvalid, "server: pipe() failed"};
  }

  if (!server->config_.unix_path.empty()) {
    net::Address addr;
    addr.kind = net::Address::Kind::kUnix;
    addr.path = server->config_.unix_path;
    auto fd = net::listen_on(addr);
    if (!fd.ok()) return fd.error();
    server->listen_fds_[0] = fd.value();
  }
  if (server->config_.tcp_port >= 0) {
    net::Address addr;
    addr.kind = net::Address::Kind::kTcp;
    addr.host = server->config_.tcp_host;
    addr.port = server->config_.tcp_port;
    auto fd = net::listen_on(addr);
    if (!fd.ok()) return fd.error();
    server->listen_fds_[1] = fd.value();
    auto port = net::bound_port(fd.value());
    if (!port.ok()) return port.error();
    server->tcp_port_ = port.value();
  }

  for (int i = 0; i < server->config_.workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->worker_main(); });
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->accept_main(); });
  return server;
}

Server::~Server() {
  stop();
  for (int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

std::string Server::unix_address() const {
  return config_.unix_path.empty() ? std::string() : "unix:" + config_.unix_path;
}

std::string Server::tcp_address() const {
  if (tcp_port_ < 0) return {};
  return "tcp:" + config_.tcp_host + ":" + std::to_string(tcp_port_);
}

void Server::request_stop() {
  if (stop_requested_.exchange(true)) return;
  char byte = 's';
  // Best effort: the pipe only wakes pollers; stop_requested_ is the truth.
  [[maybe_unused]] auto n = ::write(stop_pipe_[1], &byte, 1);
}

void Server::accept_main() {
  while (!stopping_.load()) {
    pollfd fds[3];
    nfds_t n = 0;
    int index_of[2] = {-1, -1};
    for (int i = 0; i < 2; ++i) {
      if (listen_fds_[i] >= 0) {
        fds[n] = {listen_fds_[i], POLLIN, 0};
        index_of[i] = static_cast<int>(n);
        ++n;
      }
    }
    fds[n++] = {stop_pipe_[0], POLLIN, 0};

    int rc = ::poll(fds, n, 250);
    if (stopping_.load()) break;
    if (rc <= 0) continue;

    for (int i = 0; i < 2; ++i) {
      if (index_of[i] < 0 || (fds[index_of[i]].revents & POLLIN) == 0) continue;
      int client = ::accept(listen_fds_[i], nullptr, nullptr);
      if (client < 0) continue;
      auto session = std::make_shared<Session>();
      session->fd = client;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        if (stopping_.load()) continue;  // ~Session closes the fd
        session->id = next_session_id_++;
        sessions_.push_back(session);
        reader_threads_.emplace_back(
            [this, session] { reader_main(session); });
      }
      sessions_total_.fetch_add(1);
      active_sessions_.fetch_add(1);
    }
  }
}

void Server::reader_main(std::shared_ptr<Session> session) {
  wire::FrameReader reader;
  std::string chunk;
  for (;;) {
    chunk.clear();
    auto n = net::recv_some(session->fd, chunk);
    if (!n.ok() || n.value() == 0) break;  // error or clean EOF / shutdown
    reader.feed(chunk);
    while (auto payload = reader.poll()) {
      auto request = wire::Request::parse(*payload);
      if (!request.ok()) {
        // Well-framed but unparseable: answer (id 0 — we could not read one)
        // and keep the connection.
        protocol_errors_.fetch_add(1);
        send_response(*session, wire::Response::failure(0, request.error()));
        continue;
      }
      bool shed = false;
      std::uint64_t request_id = 0;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        // Overload shedding: past the bound the request is answered (not
        // queued) with a retryable error, from the reader thread — the
        // worker pool never sees it, so a storm cannot grow the queue or
        // its memory without limit.
        if (config_.max_queue_depth != 0 &&
            queue_.size() >= config_.max_queue_depth) {
          shed = true;
          request_id = request.value().id;
        } else {
          queue_.push_back(Job{session, std::move(request).take()});
          queue_depth_.store(static_cast<std::int64_t>(queue_.size()));
        }
      }
      if (shed) {
        requests_shed_.fetch_add(1);
        send_response(
            *session,
            wire::Response::failure(
                request_id,
                util::overloaded("server queue full (" +
                                 std::to_string(config_.max_queue_depth) +
                                 " requests pending); retry after backoff")));
        continue;
      }
      queue_cv_.notify_one();
    }
    if (reader.broken()) {
      // Framing violations are connection-fatal: stop writes and slam the
      // connection shut so the peer sees EOF.
      protocol_errors_.fetch_add(1);
      session->open.store(false);
      ::shutdown(session->fd, SHUT_RDWR);
      break;
    }
  }
  // Deregister.  On a clean EOF `open` stays true: responses for requests
  // this connection already queued are still written (the graceful-shutdown
  // drain depends on that); the fd closes with the last shared_ptr.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    std::erase(sessions_, session);
  }
  active_sessions_.fetch_sub(1);
}

void Server::worker_main() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(static_cast<std::int64_t>(queue_.size()));
      ++busy_workers_;
    }
    handle(job);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --busy_workers_;
      if (queue_.empty() && busy_workers_ == 0) drain_cv_.notify_all();
    }
  }
}

void Server::handle(Job& job) {
  requests_total_.fetch_add(1);
  const wire::Request& request = job.request;
  wire::Response response;
  if (request.project.empty()) {
    response = handle_server_op(request);
  } else {
    std::shared_ptr<ProjectShard> shard;
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      auto it = shards_.find(request.project);
      if (it != shards_.end()) shard = it->second;
    }
    if (!shard) {
      response = wire::Response::failure(
          request.id, Error{Error::Code::kNotFound,
                            "no open project '" + request.project + "'"});
    } else {
      response = shard->apply(request);
    }
  }
  send_response(*job.session, response);
}

wire::Response Server::handle_server_op(const wire::Request& request) {
  const auto& op = request.op;
  if (op == "ping") {
    JsonObject result;
    result.set("pong", true);
    return wire::Response::success(request.id, Json(std::move(result)));
  }
  if (op == "projects") {
    util::JsonArray names;
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      for (const auto& [name, shard] : shards_) names.emplace_back(name);
    }
    JsonObject result;
    result.set("projects", Json(std::move(names)));
    return wire::Response::success(request.id, Json(std::move(result)));
  }
  if (op == "stats") {
    return wire::Response::success(request.id, stats_json());
  }
  if (op == "shutdown") {
    request_stop();
    JsonObject result;
    result.set("stopping", true);
    return wire::Response::success(request.id, Json(std::move(result)));
  }
  if (op == "open") {
    auto name = arg_string(request.args, "name");
    if (!name.ok()) return wire::Response::failure(request.id, name.error());
    std::lock_guard<std::mutex> lock(shards_mu_);
    if (shards_.count(name.value()) != 0) {
      return wire::Response::failure(
          request.id, Error{Error::Code::kConflict,
                            "project '" + name.value() + "' already open"});
    }
    Result<std::unique_ptr<ProjectShard>> shard =
        Error{Error::Code::kInvalid,
              "open: args need one of scenario / scenario_seed / schema / recover"};
    if (request.args.contains("scenario")) {
      auto scenario = gen::scenario_from_json(request.args.at("scenario"));
      if (!scenario.ok()) {
        return wire::Response::failure(request.id, scenario.error());
      }
      shard = ProjectShard::create(name.value(), scenario.value(), config_.shard);
    } else if (request.args.contains("scenario_seed")) {
      const Json& seed = request.args.at("scenario_seed");
      if (!seed.is_int()) {
        return wire::Response::failure(
            request.id,
            Error{Error::Code::kInvalid, "scenario_seed must be an integer"});
      }
      gen::ScenarioSpec spec;
      spec.seed = static_cast<std::uint64_t>(seed.as_int());
      if (request.args.contains("shape") && request.args.at("shape").is_string()) {
        auto shape = gen::parse_shape(request.args.at("shape").as_string());
        if (!shape.ok()) return wire::Response::failure(request.id, shape.error());
        spec.shape = shape.value();
      }
      if (request.args.contains("size") && request.args.at("size").is_int()) {
        spec.size = static_cast<std::size_t>(request.args.at("size").as_int());
      }
      shard = ProjectShard::create(name.value(), gen::generate(spec), config_.shard);
    } else if (request.args.contains("schema")) {
      auto schema = arg_string(request.args, "schema");
      if (!schema.ok()) return wire::Response::failure(request.id, schema.error());
      shard = ProjectShard::create_from_dsl(name.value(), schema.value(),
                                            config_.tool_minutes, config_.shard);
    } else if (request.args.contains("recover") &&
               request.args.at("recover").is_bool() &&
               request.args.at("recover").as_bool()) {
      shard = ProjectShard::recover(name.value(), config_.tool_minutes,
                                    config_.shard);
    }
    if (!shard.ok()) return wire::Response::failure(request.id, shard.error());
    JsonObject result;
    result.set("project", name.value());
    result.set("snapshot", shard.value()->snapshot_path());
    shards_.emplace(name.value(),
                    std::shared_ptr<ProjectShard>(std::move(shard).take()));
    return wire::Response::success(request.id, Json(std::move(result)));
  }
  if (op == "close") {
    auto name = arg_string(request.args, "name");
    if (!name.ok()) return wire::Response::failure(request.id, name.error());
    std::shared_ptr<ProjectShard> shard;
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      auto it = shards_.find(name.value());
      if (it == shards_.end()) {
        return wire::Response::failure(
            request.id, Error{Error::Code::kNotFound,
                              "no open project '" + name.value() + "'"});
      }
      shard = std::move(it->second);
      shards_.erase(it);
    }
    // In-flight requests still hold a reference; they finish against the
    // detached shard.  The final commit+snapshot happens here.
    Status status = shard->shutdown();
    if (!status.ok()) return wire::Response::failure(request.id, status.error());
    JsonObject result;
    result.set("closed", name.value());
    return wire::Response::success(request.id, Json(std::move(result)));
  }
  return wire::Response::failure(
      request.id, Error{Error::Code::kInvalid, "unknown server op '" + op + "'"});
}

void Server::send_response(Session& session, const wire::Response& response) {
  if (!session.open.load()) return;
  std::string frame = response.encode();
  std::lock_guard<std::mutex> lock(session.write_mu);
  // Send failures just mean the peer vanished; the reader notices EOF.
  [[maybe_unused]] auto status = net::send_all(session.fd, frame);
}

Json Server::stats_json() {
  JsonObject server;
  server.set("workers", Json(static_cast<std::int64_t>(config_.workers)));
  server.set("srv_requests", Json(static_cast<std::int64_t>(requests_total_.load())));
  server.set("srv_sessions_total",
             Json(static_cast<std::int64_t>(sessions_total_.load())));
  server.set("srv_active_sessions",
             Json(static_cast<std::int64_t>(active_sessions_.load())));
  server.set("srv_protocol_errors",
             Json(static_cast<std::int64_t>(protocol_errors_.load())));
  server.set("srv_requests_shed",
             Json(static_cast<std::int64_t>(requests_shed_.load())));
  server.set("srv_queue_depth", Json(queue_depth_.load()));
  server.set("srv_queue_limit",
             Json(static_cast<std::int64_t>(config_.max_queue_depth)));

  util::JsonArray shard_stats;
  std::int64_t total_requests = 0;
  std::int64_t total_commits = 0;
  std::int64_t total_lines = 0;
  std::int64_t shards_read_only = 0;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& [name, shard] : shards_) {
      if (shard->read_only()) ++shards_read_only;
      Json stats = shard->stats_json();
      const JsonObject& obj = stats.as_object();
      if (obj.contains("srv_requests")) {
        total_requests += obj.at("srv_requests").as_int();
      }
      if (obj.contains("journal_lines")) {
        total_lines += obj.at("journal_lines").as_int();
      }
      if (obj.contains("group_commit")) {
        const JsonObject& gc = obj.at("group_commit").as_object();
        if (gc.contains("srv_group_commits")) {
          total_commits += gc.at("srv_group_commits").as_int();
        }
      }
      shard_stats.push_back(std::move(stats));
    }
  }
  JsonObject totals;
  totals.set("shards", Json(static_cast<std::int64_t>(shard_stats.size())));
  totals.set("shards_read_only", Json(shards_read_only));
  totals.set("shard_requests", Json(total_requests));
  totals.set("srv_group_commits", Json(total_commits));
  totals.set("journal_lines", Json(total_lines));

  JsonObject out;
  out.set("server", Json(std::move(server)));
  out.set("totals", Json(std::move(totals)));
  out.set("shards", Json(std::move(shard_stats)));
  return Json(std::move(out));
}

void Server::adopt_shard(std::unique_ptr<ProjectShard> shard) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::string name = shard->name();
  shards_[name] = std::shared_ptr<ProjectShard>(std::move(shard));
}

ProjectShard* Server::find_shard(const std::string& name) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  auto it = shards_.find(name);
  return it == shards_.end() ? nullptr : it->second.get();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  request_stop();
  stopping_.store(true);

  // 1. No new connections.
  if (accept_thread_.joinable()) accept_thread_.join();
  for (int& fd : listen_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());

  // 2. No new requests: shut the read side of every session.  Readers see
  // EOF after parsing whatever already arrived, so nothing parsed is lost —
  // and the write side stays open for the drain's responses.
  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions = sessions_;
    readers.swap(reader_threads_);
  }
  for (auto& session : sessions) ::shutdown(session->fd, SHUT_RD);
  for (auto& reader : readers) {
    if (reader.joinable()) reader.join();
  }

  // 3. Drain: every parsed request executes and is answered.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && busy_workers_ == 0; });
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // 4. Per shard: final group commit (fsynced) + clean snapshot.
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (auto& [name, shard] : shards_) {
      [[maybe_unused]] Status status = shard->shutdown();
    }
    shards_.clear();
  }

  // 5. Now responses are all written; dropping the last references closes
  // the sockets (~Session).
  sessions.clear();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.clear();
  }
}

}  // namespace herc::srv
