#pragma once
// ProjectShard: one hosted project inside the server.
//
// A shard owns everything a single-user session used to own — the
// WorkflowManager facade over meta::Database + sched::ScheduleSpace, the
// query engine, and the crash-safety machinery (journal + snapshot files in
// the shard's directory).
//
// Concurrency model: TWO lanes.
//
//   write lane   One mutex serializes every mutating op (plan, replan,
//                execute, run, link, advance, save) plus stats.  At the end
//                of each op, while still holding the lock, the shard
//                republishes the project's epoch snapshot
//                (WorkflowManager::read_view) — BEFORE the durability wait,
//                so a client that got its ack always sees its own write.
//   read lane    query / explain / status / gantt copy the published
//                snapshot out of a pointer-copy slot (hercules::ViewSlot)
//                and run entirely without the shard mutex.  Readers pin
//                their epoch for the duration of
//                the call; the writer keeps publishing newer epochs
//                meanwhile, and an epoch's buffers are reclaimed when its
//                last reader drops it (copy-on-write tables, util/cow.hpp).
//
// One caveat is inherent to ack-after-publish ordering: a READER can observe
// a mutation that is published but not yet fsync-durable (the mutator itself
// is still blocked in its durability wait).  That read could be lost by a
// crash — the same contract as PostgreSQL's asynchronous standby reads.
// ShardOptions::snapshot_reads = false restores the old single-mutex
// behavior (every op through the write lane); the load driver uses it as
// the baseline for the read-throughput benchmark.
//
// Scaling still also comes from shard independence — requests for different
// projects never contend — and from group commit: a mutation enqueues its
// journal lines under the lock but waits for durability AFTER releasing it,
// so the next request's mutation overlaps this one's fsync.
//
// Files: <dir>/<name>.snapshot.json (atomic replace) and <dir>/<name>.wal.
// An acknowledged mutation is always recoverable from snapshot + WAL.

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "gen/gen.hpp"
#include "hercules/journal.hpp"
#include "hercules/workflow_manager.hpp"
#include "obs/metrics.hpp"
#include "srv/group_commit.hpp"
#include "srv/wire.hpp"

namespace herc::srv {

struct ShardOptions {
  std::string dir = ".";  ///< where the snapshot and WAL live
  bool durable = false;   ///< fsync group commits and snapshots
  std::chrono::microseconds commit_window{200};
  /// Off: plain per-run journal (one flush — durable: one fsync — per run).
  /// The load driver uses this to measure what group commit buys.
  bool group_commit = true;
  /// Off: read ops go through the write lane like any mutation (the pre-MVCC
  /// single-mutex model).  The load driver's --no-snapshot-reads baseline.
  bool snapshot_reads = true;
  /// Writer-priority backoff for the read lane: while a write dispatch holds
  /// the write lane, arriving readers briefly sleep-poll (bounded) instead
  /// of competing with the mutator for cores.  This is what keeps write p99
  /// flat under a read storm on small machines; on wide machines it costs a
  /// little read overlap during the (short) dispatch window.  0 = off.
  std::chrono::microseconds reader_backoff{150};
  /// Upper bound on the total backoff one read will wait before proceeding
  /// anyway (a slow writer must never starve the read lane).
  std::chrono::microseconds reader_backoff_cap{8000};
};

class ProjectShard {
 public:
  /// New project from a generated scenario (the load driver's path): the
  /// manager comes from gen::make_manager, the initial snapshot is written
  /// and journaling starts.
  [[nodiscard]] static util::Result<std::unique_ptr<ProjectShard>> create(
      const std::string& name, const gen::Scenario& scenario,
      const ShardOptions& options);

  /// New project from schema DSL text.  Every tool type gets one simulated
  /// instance named "<type>1" with the given nominal runtime, so the project
  /// is executable over the wire without native tool closures.
  [[nodiscard]] static util::Result<std::unique_ptr<ProjectShard>> create_from_dsl(
      const std::string& name, const std::string& schema_dsl,
      std::int64_t tool_minutes, const ShardOptions& options);

  /// Reopens a project from its snapshot + WAL after a crash or restart,
  /// re-registers simulated tools for every tool type, and restarts
  /// journaling from a fresh post-recovery snapshot.  Recovery is resilient:
  /// a torn WAL tail is dropped, mid-stream corruption stops replay at the
  /// last verified record and quarantines the damaged file (see
  /// hercules::RecoveryStats); what happened is surfaced under
  /// stats_json()["health"]["recovery"].
  [[nodiscard]] static util::Result<std::unique_ptr<ProjectShard>> recover(
      const std::string& name, std::int64_t tool_minutes,
      const ShardOptions& options);

  ~ProjectShard();
  ProjectShard(const ProjectShard&) = delete;
  ProjectShard& operator=(const ProjectShard&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string snapshot_path() const;
  [[nodiscard]] std::string wal_path() const;

  /// Executes one request against this shard.  Thread-safe; mutations are
  /// serialized and acknowledged only once durable per the shard's options.
  [[nodiscard]] wire::Response apply(const wire::Request& request);

  /// Snapshot now (atomic replace; durable per options) and restart the WAL.
  [[nodiscard]] util::Status snapshot();

  /// Graceful shutdown: final group commit (fsync regardless of mode), then
  /// a snapshot.  The shard stays usable afterwards; the server simply stops
  /// routing to it.
  [[nodiscard]] util::Status shutdown();

  /// Per-shard counters: srv_requests, runs_executed (from the manager's
  /// bus), group-commit stats, journal lines.
  [[nodiscard]] util::Json stats_json() const;

  /// The group committer (null when group_commit is off) — tests and the
  /// load driver read its flush counters.
  [[nodiscard]] GroupCommitter* committer() { return committer_.get(); }

  /// Direct manager access for tests; callers must not race apply().
  [[nodiscard]] hercules::WorkflowManager& manager_for_test() { return *manager_; }

  /// TEST HOOK: models SIGKILL — queued journal lines vanish, no final
  /// snapshot.  Only on-disk bytes survive for recover().
  void simulate_crash();

  /// Fail-safe degradation: true once an unrecoverable storage fault latched
  /// the shard read-only.  The MVCC read lane keeps serving pinned epochs
  /// (and `stats` still answers); every mutation is rejected with a
  /// RETRYABLE kIoError so clients back off and retry against a repaired or
  /// restarted shard instead of treating it as a hard failure.
  [[nodiscard]] bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Recovery outcome captured by recover() (empty for fresh shards).
  [[nodiscard]] const hercules::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

 private:
  ProjectShard(std::string name, ShardOptions options);

  /// Installs journaling (group committer or plain durable journal) over a
  /// freshly built manager and writes the initial snapshot.
  [[nodiscard]] util::Status start_journal();

  /// Registers "<type>1" simulated tools for every tool type missing one.
  static void register_default_tools(hercules::WorkflowManager& manager,
                                     std::int64_t tool_minutes);

  wire::Response dispatch(const wire::Request& request);
  /// The read lane: runs one query/explain/status/gantt op against a pinned
  /// epoch snapshot.  No shard lock anywhere on this path.
  wire::Response dispatch_read(const wire::Request& request,
                               const hercules::ReadView& view);
  /// Republishes the current epoch snapshot (no-op when snapshot_reads is
  /// off).  Must hold mu_: read_view() walks the live spaces.
  void publish_view_locked();
  [[nodiscard]] util::Status snapshot_locked();
  [[nodiscard]] util::Json stats_json_locked() const;

  const std::string name_;
  const ShardOptions options_;

  mutable std::mutex mu_;  ///< serializes every WRITE-lane manager access
  std::unique_ptr<hercules::WorkflowManager> manager_;
  std::unique_ptr<GroupCommitter> committer_;  ///< null when group_commit off
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  /// The epoch snapshot readers run against.  Written by the write lane
  /// (under mu_), copied out by the read lane under the slot's own
  /// pointer-copy mutex (see hercules::ViewSlot) — never under mu_.
  hercules::ViewSlot view_;
  std::atomic<std::uint64_t> read_lane_requests_{0};
  std::atomic<std::uint64_t> write_lane_requests_{0};
  /// True while a write dispatch holds mu_ (not during its durability wait);
  /// the read lane's writer-priority backoff polls it.
  std::atomic<bool> write_dispatching_{false};
  std::atomic<bool> crashed_{false};

  /// Latches the shard read-only (idempotent).  Takes mu_ itself when called
  /// from outside the lock (the post-release durability wait).
  void enter_read_only(const util::Error& cause);
  void enter_read_only_locked(const util::Error& cause);
  [[nodiscard]] util::Error read_only_error_locked() const;

  std::atomic<bool> read_only_{false};
  std::string read_only_reason_;  ///< written once under mu_ at the latch
  hercules::RecoveryStats recovery_stats_;
  bool recovered_ = false;  ///< this shard came up through recover()
};

}  // namespace herc::srv
