#pragma once
// ProjectShard: one hosted project inside the server.
//
// A shard owns everything a single-user session used to own — the
// WorkflowManager facade over meta::Database + sched::ScheduleSpace, the
// query engine, and the crash-safety machinery (journal + snapshot files in
// the shard's directory).  Concurrency model: ONE mutex serializes every
// operation against the shard (the metadata store is not yet MVCC; see
// ROADMAP), so correctness never depends on which worker thread carries a
// request.  Scaling comes from shard independence — requests for different
// projects never contend — and from group commit: a mutation enqueues its
// journal lines under the lock but waits for durability AFTER releasing it,
// so the next request's mutation overlaps this one's fsync.
//
// Files: <dir>/<name>.snapshot.json (atomic replace) and <dir>/<name>.wal.
// An acknowledged mutation is always recoverable from snapshot + WAL.

#include <memory>
#include <mutex>
#include <string>

#include "gen/gen.hpp"
#include "hercules/workflow_manager.hpp"
#include "obs/metrics.hpp"
#include "srv/group_commit.hpp"
#include "srv/wire.hpp"

namespace herc::srv {

struct ShardOptions {
  std::string dir = ".";  ///< where the snapshot and WAL live
  bool durable = false;   ///< fsync group commits and snapshots
  std::chrono::microseconds commit_window{200};
  /// Off: plain per-run journal (one flush — durable: one fsync — per run).
  /// The load driver uses this to measure what group commit buys.
  bool group_commit = true;
};

class ProjectShard {
 public:
  /// New project from a generated scenario (the load driver's path): the
  /// manager comes from gen::make_manager, the initial snapshot is written
  /// and journaling starts.
  [[nodiscard]] static util::Result<std::unique_ptr<ProjectShard>> create(
      const std::string& name, const gen::Scenario& scenario,
      const ShardOptions& options);

  /// New project from schema DSL text.  Every tool type gets one simulated
  /// instance named "<type>1" with the given nominal runtime, so the project
  /// is executable over the wire without native tool closures.
  [[nodiscard]] static util::Result<std::unique_ptr<ProjectShard>> create_from_dsl(
      const std::string& name, const std::string& schema_dsl,
      std::int64_t tool_minutes, const ShardOptions& options);

  /// Reopens a project from its snapshot + WAL after a crash or restart,
  /// re-registers simulated tools for every tool type, and restarts
  /// journaling from a fresh post-recovery snapshot.
  [[nodiscard]] static util::Result<std::unique_ptr<ProjectShard>> recover(
      const std::string& name, std::int64_t tool_minutes,
      const ShardOptions& options);

  ~ProjectShard();
  ProjectShard(const ProjectShard&) = delete;
  ProjectShard& operator=(const ProjectShard&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string snapshot_path() const;
  [[nodiscard]] std::string wal_path() const;

  /// Executes one request against this shard.  Thread-safe; mutations are
  /// serialized and acknowledged only once durable per the shard's options.
  [[nodiscard]] wire::Response apply(const wire::Request& request);

  /// Snapshot now (atomic replace; durable per options) and restart the WAL.
  [[nodiscard]] util::Status snapshot();

  /// Graceful shutdown: final group commit (fsync regardless of mode), then
  /// a snapshot.  The shard stays usable afterwards; the server simply stops
  /// routing to it.
  [[nodiscard]] util::Status shutdown();

  /// Per-shard counters: srv_requests, runs_executed (from the manager's
  /// bus), group-commit stats, journal lines.
  [[nodiscard]] util::Json stats_json() const;

  /// The group committer (null when group_commit is off) — tests and the
  /// load driver read its flush counters.
  [[nodiscard]] GroupCommitter* committer() { return committer_.get(); }

  /// Direct manager access for tests; callers must not race apply().
  [[nodiscard]] hercules::WorkflowManager& manager_for_test() { return *manager_; }

  /// TEST HOOK: models SIGKILL — queued journal lines vanish, no final
  /// snapshot.  Only on-disk bytes survive for recover().
  void simulate_crash();

 private:
  ProjectShard(std::string name, ShardOptions options);

  /// Installs journaling (group committer or plain durable journal) over a
  /// freshly built manager and writes the initial snapshot.
  [[nodiscard]] util::Status start_journal();

  /// Registers "<type>1" simulated tools for every tool type missing one.
  static void register_default_tools(hercules::WorkflowManager& manager,
                                     std::int64_t tool_minutes);

  wire::Response dispatch(const wire::Request& request);
  [[nodiscard]] util::Status snapshot_locked();
  [[nodiscard]] util::Json stats_json_locked() const;

  const std::string name_;
  const ShardOptions options_;

  mutable std::mutex mu_;  ///< serializes every manager access
  std::unique_ptr<hercules::WorkflowManager> manager_;
  std::unique_ptr<GroupCommitter> committer_;  ///< null when group_commit off
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  bool crashed_ = false;
};

}  // namespace herc::srv
