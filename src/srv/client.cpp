#include "srv/client.hpp"

#include <unistd.h>

#include <utility>

namespace herc::srv {

using util::Error;
using util::Json;
using util::JsonObject;
using util::Result;

Result<std::unique_ptr<Client>> Client::connect(const std::string& address) {
  auto parsed = net::parse_address(address);
  if (!parsed.ok()) return parsed.error();
  auto fd = net::connect_to(parsed.value());
  if (!fd.ok()) return fd.error();
  return std::unique_ptr<Client>(new Client(fd.value()));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::uint64_t> Client::send(const std::string& project,
                                   const std::string& op, JsonObject args) {
  wire::Request request;
  request.id = next_id_++;
  request.project = project;
  request.op = op;
  request.args = std::move(args);
  auto status = net::send_all(fd_, request.encode());
  if (!status.ok()) return status.error();
  return request.id;
}

Result<wire::Response> Client::read_response() {
  std::string chunk;
  for (;;) {
    if (auto payload = reader_.poll()) {
      auto response = wire::Response::parse(*payload);
      if (!response.ok()) return response.error();
      return std::move(response).take();
    }
    if (reader_.broken()) {
      return Error{Error::Code::kParse, "client: " + reader_.error()};
    }
    chunk.clear();
    auto n = net::recv_some(fd_, chunk);
    if (!n.ok()) return n.error();
    if (n.value() == 0) {
      return Error{Error::Code::kUnbound, "client: server closed connection"};
    }
    reader_.feed(chunk);
  }
}

Result<wire::Response> Client::recv_any() {
  if (!stashed_.empty()) {
    auto it = stashed_.begin();
    wire::Response response = std::move(it->second);
    stashed_.erase(it);
    return response;
  }
  return read_response();
}

Result<wire::Response> Client::recv(std::uint64_t id) {
  auto it = stashed_.find(id);
  if (it != stashed_.end()) {
    wire::Response response = std::move(it->second);
    stashed_.erase(it);
    return response;
  }
  for (;;) {
    auto response = read_response();
    if (!response.ok()) return response;
    if (response.value().id == id) return response;
    stashed_.emplace(response.value().id, std::move(response).take());
  }
}

Result<wire::Response> Client::call(const std::string& project,
                                    const std::string& op, JsonObject args) {
  auto id = send(project, op, std::move(args));
  if (!id.ok()) return id.error();
  return recv(id.value());
}

Result<Json> Client::invoke(const std::string& project, const std::string& op,
                            JsonObject args) {
  auto response = call(project, op, std::move(args));
  if (!response.ok()) return response.error();
  if (!response.value().ok) return response.value().error;
  return std::move(response.value().result);
}

}  // namespace herc::srv
