#pragma once
// herc::srv::Server — the multi-project front-end.
//
// Topology:
//
//   listeners (tcp / unix) -> accept thread -> one reader thread per session
//        -> bounded job queue -> worker pool -> ProjectShard registry
//        -> responses written back on the session socket
//
// Sessions only PARSE; every request — server ops (open/projects/stats/...)
// and project ops alike — executes on the worker pool, so a slow flow
// execution on one connection never starves another connection's reads, and
// `id`-tagged responses may return out of request order (clients pipeline).
// Project requests route to the shard registry; shards serialize internally
// (see shard.hpp), so workers need no shard-awareness, and requests against
// different projects execute fully in parallel.
//
// Graceful shutdown (stop(), also triggered by the `shutdown` op or a signal
// in tools/herc_srv): stop accepting, stop reading, finish every request
// already parsed, then per shard a final group commit + snapshot.  A
// SIGKILL instead loses nothing acknowledged: recovery replays each shard's
// snapshot + WAL (tests assert byte-identity).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "srv/net.hpp"
#include "srv/shard.hpp"
#include "srv/wire.hpp"

namespace herc::srv {

struct ServerConfig {
  /// unix-domain listener path; empty = none.
  std::string unix_path;
  /// TCP listener port; -1 = none, 0 = kernel-assigned (see tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  int workers = 4;
  /// Overload shedding: maximum parsed-but-unexecuted requests queued for
  /// the worker pool.  A request arriving past the bound is answered
  /// immediately with a RETRYABLE `overloaded` error instead of being
  /// queued — bounding memory and queueing latency under a request storm
  /// (shed work is cheap for the client to retry; an unbounded queue would
  /// instead time everyone out).  0 = unbounded (the pre-shedding behavior).
  std::size_t max_queue_depth = 1024;
  /// Applied to every shard (journal mode, fsync policy, data directory).
  ShardOptions shard;
  /// Nominal runtime for auto-registered simulated tools (DSL projects and
  /// recovery).
  std::int64_t tool_minutes = 120;
};

class Server {
 public:
  /// Binds listeners and starts the accept/worker threads.  At least one
  /// listener must be configured.
  [[nodiscard]] static util::Result<std::unique_ptr<Server>> start(
      ServerConfig config);

  ~Server();  ///< stop()s if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful shutdown; idempotent, callable from any thread except a
  /// worker (the `shutdown` op uses request_stop() instead).
  void stop();

  /// Asynchronous stop request: wakes whoever blocks on stop_event_fd().
  /// Safe from workers and (via the self-pipe pattern) signal contexts.
  void request_stop();

  /// Readable fd that becomes ready once request_stop() was called; poll it
  /// alongside a signal pipe, then call stop().
  [[nodiscard]] int stop_event_fd() const { return stop_pipe_[0]; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_.load(); }

  /// Actual TCP port (differs from config when 0 was requested); -1 without
  /// a TCP listener.
  [[nodiscard]] int tcp_port() const { return tcp_port_; }
  /// Connectable address strings.
  [[nodiscard]] std::string unix_address() const;
  [[nodiscard]] std::string tcp_address() const;

  /// {"server": {...counters...}, "shards": [...], "totals": {...}} — the
  /// same document the `stats` wire op returns.
  [[nodiscard]] util::Json stats_json();

  [[nodiscard]] std::size_t active_sessions() const {
    return active_sessions_.load();
  }

  /// Registry lookup for tests (nullptr when absent).  The pointer stays
  /// valid until `close`/stop().
  [[nodiscard]] ProjectShard* find_shard(const std::string& name);

  /// The shard options every `open` op uses (so pre-opened shards match).
  [[nodiscard]] const ShardOptions& config_shard() const { return config_.shard; }

  /// Registers an externally created shard (herc_srv --open).  Replaces any
  /// existing shard of the same name.
  void adopt_shard(std::unique_ptr<ProjectShard> shard);

 private:
  /// One connection.  The fd closes with the LAST reference (registry or an
  /// in-flight job), so a worker's response write can never hit a recycled
  /// fd; `open` flips off first, making late writes no-ops.
  struct Session {
    ~Session();
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };

  struct Job {
    std::shared_ptr<Session> session;
    wire::Request request;
  };

  explicit Server(ServerConfig config);

  void accept_main();
  void reader_main(std::shared_ptr<Session> session);
  void worker_main();
  void handle(Job& job);
  /// Server-level ops (empty `project`): ping/open/close/projects/stats/
  /// shutdown.
  [[nodiscard]] wire::Response handle_server_op(const wire::Request& request);
  void send_response(Session& session, const wire::Response& response);

  ServerConfig config_;
  int listen_fds_[2] = {-1, -1};  ///< [0] unix, [1] tcp (unused = -1)
  int tcp_port_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;  ///< currently connected
  /// Every reader thread ever started; finished ones join instantly at
  /// stop() (readers remove their session from sessions_ themselves).
  std::vector<std::thread> reader_threads_;
  std::uint64_t next_session_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<Job> queue_;
  int busy_workers_ = 0;
  bool workers_stop_ = false;

  std::mutex shards_mu_;
  std::map<std::string, std::shared_ptr<ProjectShard>> shards_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< guarded by stop_mu_
  std::mutex stop_mu_;

  // Observability (the satellite counters; shards hold the per-shard ones).
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> sessions_total_{0};
  std::atomic<std::uint64_t> active_sessions_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::int64_t> queue_depth_{0};
};

}  // namespace herc::srv
