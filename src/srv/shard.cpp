#include "srv/shard.hpp"

#include <thread>

#include "hercules/persist.hpp"

namespace herc::srv {

using util::Json;
using util::JsonObject;

namespace {

std::string arg_string(const JsonObject& args, const std::string& key,
                       const std::string& fallback = "") {
  if (!args.contains(key)) return fallback;
  const Json& v = args.at(key);
  return v.is_string() ? v.as_string() : fallback;
}

std::int64_t arg_int(const JsonObject& args, const std::string& key,
                     std::int64_t fallback = 0) {
  if (!args.contains(key)) return fallback;
  const Json& v = args.at(key);
  return v.is_int() ? v.as_int() : fallback;
}

util::Result<sched::EstimateStrategy> parse_strategy(const std::string& name) {
  using sched::EstimateStrategy;
  for (auto s : {EstimateStrategy::kIntuition, EstimateStrategy::kLast,
                 EstimateStrategy::kMean, EstimateStrategy::kEwma,
                 EstimateStrategy::kPert})
    if (name == sched::estimate_strategy_name(s)) return s;
  return util::invalid("unknown estimate strategy '" + name + "'");
}

Json execution_json(const exec::ExecutionResult& result,
                    const exec::SimClock& clock) {
  JsonObject o;
  o.set("runs", static_cast<std::int64_t>(result.runs.size()));
  o.set("success", result.success);
  o.set("skipped", static_cast<std::int64_t>(result.skipped.size()));
  o.set("final_output", static_cast<std::int64_t>(result.final_output.value()));
  o.set("clock_minutes", clock.now().minutes_since_epoch());
  return Json(std::move(o));
}

bool is_read_op(const std::string& op) {
  return op == "query" || op == "explain" || op == "status" || op == "gantt";
}

}  // namespace

ProjectShard::ProjectShard(std::string name, ShardOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

ProjectShard::~ProjectShard() {
  // Journal first: it must detach from the database (and stop feeding the
  // committer) before the committer and manager go away.
  if (manager_) manager_->disable_journal();
}

std::string ProjectShard::snapshot_path() const {
  return options_.dir + "/" + name_ + ".snapshot.json";
}

std::string ProjectShard::wal_path() const {
  return options_.dir + "/" + name_ + ".wal";
}

void ProjectShard::register_default_tools(hercules::WorkflowManager& manager,
                                          std::int64_t tool_minutes) {
  for (const auto& type : manager.schema().types()) {
    if (type.kind != schema::EntityKind::kTool) continue;
    // Already-registered instances (gen::make_manager's "t1") are kept; add()
    // failing on a duplicate name is harmless here.
    (void)manager.register_tool(
        {.instance_name = type.name + "1",
         .tool_type = type.name,
         .nominal = cal::WorkDuration::minutes(tool_minutes)});
  }
}

util::Status ProjectShard::start_journal() {
  // Snapshot first: journaling captures only what happens after it.
  auto st = hercules::save_project_file(*manager_, snapshot_path(),
                                        options_.durable);
  if (!st.ok()) return st;
  if (options_.group_commit) {
    GroupCommitter::Options copts;
    copts.durable = options_.durable;
    copts.window = options_.commit_window;
    auto opened = GroupCommitter::open(wal_path(), copts);
    if (!opened.ok()) return opened.error();
    committer_ = std::move(opened).take();
    return manager_->enable_journal_sink(*committer_);
  }
  return manager_->enable_journal(wal_path(), {.durable = options_.durable});
}

util::Result<std::unique_ptr<ProjectShard>> ProjectShard::create(
    const std::string& name, const gen::Scenario& scenario,
    const ShardOptions& options) {
  auto made = gen::make_manager(scenario);
  if (!made.ok()) return made.error();
  std::unique_ptr<ProjectShard> shard(new ProjectShard(name, options));
  shard->manager_ = std::move(made).take();
  shard->manager_->bus().set_project(name);
  shard->metrics_ = std::make_unique<obs::MetricsRegistry>();
  shard->metrics_->attach(shard->manager_->bus());
  auto st = shard->start_journal();
  if (!st.ok()) return st.error();
  // No readers exist yet, so "locked" is vacuously true here.
  shard->publish_view_locked();
  return shard;
}

util::Result<std::unique_ptr<ProjectShard>> ProjectShard::create_from_dsl(
    const std::string& name, const std::string& schema_dsl,
    std::int64_t tool_minutes, const ShardOptions& options) {
  auto made = hercules::WorkflowManager::create(schema_dsl);
  if (!made.ok()) return made.error();
  std::unique_ptr<ProjectShard> shard(new ProjectShard(name, options));
  shard->manager_ = std::move(made).take();
  register_default_tools(*shard->manager_, tool_minutes);
  shard->manager_->bus().set_project(name);
  shard->metrics_ = std::make_unique<obs::MetricsRegistry>();
  shard->metrics_->attach(shard->manager_->bus());
  auto st = shard->start_journal();
  if (!st.ok()) return st.error();
  // No readers exist yet, so "locked" is vacuously true here.
  shard->publish_view_locked();
  return shard;
}

util::Result<std::unique_ptr<ProjectShard>> ProjectShard::recover(
    const std::string& name, std::int64_t tool_minutes,
    const ShardOptions& options) {
  std::unique_ptr<ProjectShard> shard(new ProjectShard(name, options));
  // Resilient mode: a damaged WAL replays to its last verified record and is
  // quarantined (<wal>.corrupt) instead of failing the whole shard; the
  // outcome is kept for stats_json()["health"]["recovery"].
  auto recovered = hercules::recover_project(
      shard->snapshot_path(), shard->wal_path(), &shard->recovery_stats_);
  if (!recovered.ok()) return recovered.error();
  shard->recovered_ = true;
  shard->manager_ = std::move(recovered).take();
  // Tool closures are never persisted; rebuild the simulated registry.
  register_default_tools(*shard->manager_, tool_minutes);
  shard->manager_->bus().set_project(name);
  shard->metrics_ = std::make_unique<obs::MetricsRegistry>();
  shard->metrics_->attach(shard->manager_->bus());
  // start_journal re-snapshots, so the WAL that fed this recovery is folded
  // in before it is truncated.
  auto st = shard->start_journal();
  if (!st.ok()) return st.error();
  // No readers exist yet, so "locked" is vacuously true here.
  shard->publish_view_locked();
  return shard;
}

wire::Response ProjectShard::apply(const wire::Request& request) {
  // Read lane: no shard lock.  The snapshot is pinned by the shared_ptr for
  // the duration of the call; the write lane keeps publishing newer epochs
  // meanwhile.  (Before the first publish — snapshot_reads off, or a shard
  // mid-construction — reads fall through to the write lane.)
  if (options_.snapshot_reads && is_read_op(request.op)) {
    // Writer-priority backoff (see ShardOptions): let an in-flight write
    // dispatch have the cores; bounded so reads can never be starved.  The
    // snapshot is loaded AFTER the backoff so a read that did wait tends to
    // observe the write it waited for.
    if (options_.reader_backoff.count() > 0) {
      auto waited = std::chrono::microseconds(0);
      while (write_dispatching_.load(std::memory_order_relaxed) &&
             waited < options_.reader_backoff_cap) {
        std::this_thread::sleep_for(options_.reader_backoff);
        waited += options_.reader_backoff;
      }
    }
    if (auto view = view_.load()) {
      if (crashed_.load(std::memory_order_acquire))
        return wire::Response::failure(
            request.id, util::unsupported("shard '" + name_ + "' crashed"));
      read_lane_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics_->add("srv_requests");  // MetricsRegistry is thread-safe
      return dispatch_read(request, *view);
    }
  }

  std::uint64_t before = 0, after = 0;
  wire::Response response;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_.load(std::memory_order_relaxed))
      return wire::Response::failure(
          request.id, util::unsupported("shard '" + name_ + "' crashed"));
    // Fail-safe degradation: after an unrecoverable storage fault the shard
    // keeps answering reads (above, and read ops falling through to this
    // lane) and `stats`, but rejects anything that would need the disk with
    // a retryable error.
    if (read_only_.load(std::memory_order_relaxed) &&
        !is_read_op(request.op) && request.op != "stats")
      return wire::Response::failure(request.id, read_only_error_locked());
    write_lane_requests_.fetch_add(1, std::memory_order_relaxed);
    metrics_->add("srv_requests");
    if (committer_) before = committer_->last_enqueued();
    write_dispatching_.store(true, std::memory_order_relaxed);
    response = dispatch(request);
    if (committer_) after = committer_->last_enqueued();
    // Publish the post-op epoch before the durability wait (and thus before
    // the ack): once a client holds an ack, the published snapshot already
    // contains its write.
    publish_view_locked();
    write_dispatching_.store(false, std::memory_order_relaxed);
  }
  // Acknowledge only once this request's journal lines are durable — but
  // wait OUTSIDE the shard lock, so the next request's mutation overlaps
  // this commit (that overlap is what builds multi-line batches).
  if (response.ok && after > before) {
    auto st = committer_->wait_durable(after);
    if (!st.ok()) {
      // The WAL can no longer durably record runs: never ack this mutation,
      // and stop accepting new ones (the in-memory state stays serveable
      // through the read lane).
      enter_read_only(st.error());
      return wire::Response::failure(
          request.id, util::io_error("shard '" + name_ + "': " +
                                     st.error().message + " (not acknowledged)"));
    }
  }
  // Only mutations are held to the WAL guarantee: reads that fell through
  // to the write lane and `stats` (both must keep answering on a degraded
  // shard) never appended anything, so the sticky journal status cannot
  // retract them.
  if (!committer_ && response.ok && !is_read_op(request.op) &&
      request.op != "stats" && manager_->journal() &&
      !manager_->journal()->status().ok()) {
    auto err = manager_->journal()->status().error();
    enter_read_only(err);
    return wire::Response::failure(
        request.id, util::io_error("shard '" + name_ + "': " + err.message +
                                   " (not acknowledged)"));
  }
  return response;
}

void ProjectShard::enter_read_only(const util::Error& cause) {
  std::lock_guard<std::mutex> lock(mu_);
  enter_read_only_locked(cause);
}

void ProjectShard::enter_read_only_locked(const util::Error& cause) {
  if (read_only_.load(std::memory_order_relaxed)) return;
  read_only_reason_ = cause.message;
  read_only_.store(true, std::memory_order_release);
}

util::Error ProjectShard::read_only_error_locked() const {
  return util::io_error("shard '" + name_ +
                        "' is read-only after a storage fault (" +
                        read_only_reason_ + "); retry against a repaired shard");
}

wire::Response ProjectShard::dispatch(const wire::Request& request) {
  const JsonObject& args = request.args;
  const std::string task = arg_string(args, "task", "job");
  hercules::WorkflowManager& m = *manager_;

  // The WAL records tool runs only; schedule and clock mutations (plan,
  // replan, link, advance) are made durable by snapshotting through before
  // the ack, so "acknowledged => recovered" holds for every mutating op.
  if (request.op == "plan" || request.op == "replan") {
    sched::PlanRequest plan;
    plan.name = arg_string(args, "name", "plan");
    const std::string strategy = arg_string(args, "strategy");
    if (!strategy.empty()) {
      auto parsed = parse_strategy(strategy);
      if (!parsed.ok()) return wire::Response::failure(request.id, parsed.error());
      plan.strategy = parsed.value();
    }
    auto planned = request.op == "plan" ? m.plan_task(task, std::move(plan))
                                        : m.replan_task(task, std::move(plan));
    if (!planned.ok()) return wire::Response::failure(request.id, planned.error());
    auto persisted = snapshot_locked();
    if (!persisted.ok()) return wire::Response::failure(request.id, persisted.error());
    JsonObject o;
    o.set("schedule_run", static_cast<std::int64_t>(planned.value().value()));
    return wire::Response::success(request.id, Json(std::move(o)));
  }

  if (request.op == "execute") {
    const std::string designer = arg_string(args, "designer", "designer");
    const std::string mode = arg_string(args, "mode", "serial");
    if (mode != "serial" && mode != "concurrent")
      return wire::Response::failure(
          request.id, util::invalid("execute: mode must be serial|concurrent"));
    auto executed = mode == "serial"
                        ? m.execute_task(task, designer)
                        : m.execute_task_concurrent(task, designer);
    if (!executed.ok())
      return wire::Response::failure(request.id, executed.error());
    return wire::Response::success(request.id,
                                   execution_json(executed.value(), m.clock()));
  }

  if (request.op == "run") {
    const std::string activity = arg_string(args, "activity");
    const std::string designer = arg_string(args, "designer", "designer");
    if (activity.empty())
      return wire::Response::failure(request.id,
                                     util::invalid("run: missing 'activity'"));
    auto ran = m.run_activity(task, activity, designer);
    if (!ran.ok()) return wire::Response::failure(request.id, ran.error());
    JsonObject o;
    o.set("run", static_cast<std::int64_t>(ran.value().run.value()));
    o.set("success", ran.value().success);
    o.set("clock_minutes", m.clock().now().minutes_since_epoch());
    return wire::Response::success(request.id, Json(std::move(o)));
  }

  if (request.op == "link") {
    const std::string activity = arg_string(args, "activity");
    if (activity.empty())
      return wire::Response::failure(request.id,
                                     util::invalid("link: missing 'activity'"));
    auto st = m.link_completion(task, activity);
    if (!st.ok()) return wire::Response::failure(request.id, st.error());
    auto persisted = snapshot_locked();
    if (!persisted.ok()) return wire::Response::failure(request.id, persisted.error());
    return wire::Response::success(request.id, Json(JsonObject{}));
  }

  if (request.op == "query" || request.op == "explain") {
    const std::string statement = arg_string(args, "statement");
    if (statement.empty())
      return wire::Response::failure(
          request.id, util::invalid(request.op + ": missing 'statement'"));
    auto result = request.op == "query" ? m.query(statement) : m.explain(statement);
    if (!result.ok()) return wire::Response::failure(request.id, result.error());
    JsonObject o;
    o.set("text", result.value());
    return wire::Response::success(request.id, Json(std::move(o)));
  }

  if (request.op == "status" || request.op == "gantt") {
    auto result = request.op == "status" ? m.status_report(task) : m.gantt(task);
    if (!result.ok()) return wire::Response::failure(request.id, result.error());
    JsonObject o;
    o.set("text", result.value());
    return wire::Response::success(request.id, Json(std::move(o)));
  }

  if (request.op == "advance") {
    const std::int64_t minutes = arg_int(args, "minutes", -1);
    if (minutes < 0)
      return wire::Response::failure(
          request.id, util::invalid("advance: missing non-negative 'minutes'"));
    m.clock().advance(cal::WorkDuration::minutes(minutes));
    auto persisted = snapshot_locked();
    if (!persisted.ok()) return wire::Response::failure(request.id, persisted.error());
    JsonObject o;
    o.set("clock_minutes", m.clock().now().minutes_since_epoch());
    return wire::Response::success(request.id, Json(std::move(o)));
  }

  if (request.op == "save") {
    auto st = snapshot_locked();
    if (!st.ok()) return wire::Response::failure(request.id, st.error());
    JsonObject o;
    o.set("snapshot", snapshot_path());
    return wire::Response::success(request.id, Json(std::move(o)));
  }

  if (request.op == "stats")
    return wire::Response::success(request.id, stats_json_locked());

  return wire::Response::failure(
      request.id, util::invalid("unknown op '" + request.op + "'"));
}

wire::Response ProjectShard::dispatch_read(const wire::Request& request,
                                           const hercules::ReadView& view) {
  const JsonObject& args = request.args;
  if (request.op == "query" || request.op == "explain") {
    const std::string statement = arg_string(args, "statement");
    if (statement.empty())
      return wire::Response::failure(
          request.id, util::invalid(request.op + ": missing 'statement'"));
    auto result =
        request.op == "query" ? view.query(statement) : view.explain(statement);
    if (!result.ok()) return wire::Response::failure(request.id, result.error());
    JsonObject o;
    o.set("text", result.value());
    return wire::Response::success(request.id, Json(std::move(o)));
  }
  const std::string task = arg_string(args, "task", "job");
  auto result =
      request.op == "status" ? view.status_report(task) : view.gantt(task);
  if (!result.ok()) return wire::Response::failure(request.id, result.error());
  JsonObject o;
  o.set("text", result.value());
  return wire::Response::success(request.id, Json(std::move(o)));
}

void ProjectShard::publish_view_locked() {
  if (!options_.snapshot_reads || crashed_.load(std::memory_order_relaxed))
    return;
  view_.store(manager_->read_view());
}

util::Status ProjectShard::snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

util::Status ProjectShard::snapshot_locked() {
  if (crashed_) return util::unsupported("shard '" + name_ + "' crashed");
  if (read_only_.load(std::memory_order_relaxed)) return read_only_error_locked();
  // save_project_file restarts the journal, which for a group committer
  // first drains any in-flight batch (GroupCommitter::restart).
  auto st = hercules::save_project_file(*manager_, snapshot_path(),
                                        options_.durable);
  // A failed snapshot leaves the previous one intact (atomic replace), but
  // in-memory state this op already produced is now ahead of what recovery
  // can rebuild — stop taking mutations rather than widen that gap.
  if (!st.ok() && st.error().code == util::Error::Code::kIoError)
    enter_read_only_locked(st.error());
  return st;
}

util::Status ProjectShard::shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return util::unsupported("shard '" + name_ + "' crashed");
  if (committer_) {
    auto st = committer_->sync_now();  // final group commit
    if (!st.ok()) return st;
  }
  return snapshot_locked();
}

void ProjectShard::simulate_crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
  if (committer_) committer_->simulate_crash();
}

Json ProjectShard::stats_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_json_locked();
}

Json ProjectShard::stats_json_locked() const {
  JsonObject o;
  o.set("project", name_);
  o.set("srv_requests", metrics_->counter("srv_requests"));
  o.set("runs_executed", metrics_->counter("runs_executed"));
  o.set("run_count", manager_->db().run_count());
  o.set("clock_minutes", manager_->clock().now().minutes_since_epoch());
  if (manager_->journal())
    o.set("journal_lines", manager_->journal()->lines_written());
  if (committer_) {
    auto s = committer_->stats();
    JsonObject g;
    g.set("lines", s.lines);
    g.set("srv_group_commits", s.flushes);
    g.set("synced", s.synced);
    g.set("srv_commit_batch_max", s.batch_max);
    g.set("srv_commit_batch_mean", s.batch_mean());
    o.set("group_commit", Json(std::move(g)));
  }
  {
    // Snapshot health.  `live` counts views not yet reclaimed; the newest
    // one is the manager's own cache, so anything beyond it is retired
    // epochs still pinned by in-flight readers.
    JsonObject sn;
    sn.set("enabled", options_.snapshot_reads);
    sn.set("epoch", static_cast<std::int64_t>(manager_->snapshot_epoch()));
    sn.set("published",
           static_cast<std::int64_t>(manager_->snapshots_published()));
    const std::int64_t live = manager_->snapshots_live();
    sn.set("live", live);
    sn.set("retired_unreclaimed", live > 1 ? live - 1 : 0);
    sn.set("read_lane_requests",
           static_cast<std::int64_t>(
               read_lane_requests_.load(std::memory_order_relaxed)));
    sn.set("write_lane_requests",
           static_cast<std::int64_t>(
               write_lane_requests_.load(std::memory_order_relaxed)));
    o.set("snapshots", Json(std::move(sn)));
  }
  {
    // Per-shard health: routing layers use `state` to stop sending mutations
    // to a degraded shard; `recovery` reports what the last crash recovery
    // found (torn tails are normal crash debris, corrupt lines mean the
    // damaged file was quarantined).
    JsonObject h;
    h.set("state", std::string(read_only_.load(std::memory_order_relaxed)
                                   ? "read_only"
                                   : "ok"));
    if (!read_only_reason_.empty()) h.set("reason", read_only_reason_);
    if (recovered_) {
      const auto& rs = recovery_stats_;
      JsonObject r;
      r.set("wal_lines_seen", static_cast<std::int64_t>(rs.lines_seen));
      r.set("wal_lines_applied", static_cast<std::int64_t>(rs.lines_applied));
      r.set("torn_tail", static_cast<std::int64_t>(rs.torn_tail));
      r.set("corrupt_lines", static_cast<std::int64_t>(rs.corrupt_lines));
      r.set("lines_discarded", static_cast<std::int64_t>(rs.lines_discarded));
      r.set("snapshot_footer", rs.snapshot_footer);
      if (!rs.quarantine_path.empty()) r.set("quarantined", rs.quarantine_path);
      if (!rs.detail.empty()) r.set("detail", rs.detail);
      h.set("recovery", Json(std::move(r)));
    }
    o.set("health", Json(std::move(h)));
  }
  return Json(std::move(o));
}

}  // namespace herc::srv
