#include "srv/chaos.hpp"

#include <filesystem>
#include <map>
#include <sstream>

#include "gen/gen.hpp"
#include "hercules/persist.hpp"
#include "srv/shard.hpp"
#include "util/faultfs.hpp"

namespace herc::srv {

namespace {

namespace fs = std::filesystem;

using util::Json;
using util::JsonObject;

/// What one faulted workload run left behind.
struct TrialOutcome {
  /// run_count -> serialized state at each ACKNOWLEDGED op (last wins; ops
  /// that do not add runs, like `save`, overwrite the same key with equal
  /// bytes).
  std::map<std::uint64_t, std::string> acked_states;
  std::uint64_t last_acked_runs = 0;
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  bool read_only = false;
  std::string probe_violation;  ///< degradation-contract break, if any
};

wire::Request make_request(std::uint64_t id, std::string op,
                           JsonObject args = {}) {
  wire::Request r;
  r.id = id;
  r.project = "chaos";
  r.op = std::move(op);
  r.args = std::move(args);
  return r;
}

/// Drives the fixed workload against a fresh shard in `dir`.  A FaultFs (or
/// none, for the counting pass) must already be installed by the caller.
util::Result<TrialOutcome> drive(const gen::Scenario& scenario,
                                 const std::string& dir,
                                 const ChaosOptions& options) {
  ShardOptions sopts;
  sopts.dir = dir;
  sopts.durable = true;
  sopts.group_commit = options.group_commit;
  auto created = ProjectShard::create("chaos", scenario, sopts);
  if (!created.ok()) return created.error();
  std::unique_ptr<ProjectShard> shard = std::move(created).take();

  TrialOutcome out;
  std::uint64_t id = 0;
  auto record_if_acked = [&](const wire::Response& response) {
    if (response.ok) {
      ++out.acked;
      out.last_acked_runs = shard->manager_for_test().db().run_count();
      out.acked_states[out.last_acked_runs] =
          hercules::save_to_json(shard->manager_for_test());
    } else {
      ++out.failed;
    }
  };

  {
    JsonObject args;
    args.set("name", std::string("p"));
    record_if_acked(shard->apply(make_request(++id, "plan", std::move(args))));
  }
  for (int n = 1; n <= options.ops; ++n) {
    JsonObject args;
    args.set("designer", std::string("d"));
    record_if_acked(
        shard->apply(make_request(++id, "execute", std::move(args))));
    if (options.save_every > 0 && n % options.save_every == 0)
      record_if_acked(shard->apply(make_request(++id, "save")));
  }

  out.read_only = shard->read_only();
  if (out.read_only) {
    // Contract 5: a degraded shard keeps answering reads and stats but
    // rejects mutations with a retryable error.
    auto read = shard->apply(make_request(++id, "status"));
    if (!read.ok)
      out.probe_violation = "read-only shard refused a read: " +
                            read.error.str();
    auto stats = shard->apply(make_request(++id, "stats"));
    if (out.probe_violation.empty() && !stats.ok)
      out.probe_violation = "read-only shard refused stats: " +
                            stats.error.str();
    JsonObject args;
    args.set("designer", std::string("d"));
    auto write = shard->apply(make_request(++id, "execute", std::move(args)));
    if (out.probe_violation.empty() && write.ok)
      out.probe_violation = "read-only shard acknowledged a mutation";
    if (out.probe_violation.empty() && !write.error.retryable())
      out.probe_violation =
          "read-only shard rejected a mutation with a non-retryable error: " +
          write.error.str();
  } else if (out.failed > 0) {
    out.probe_violation =
        "an op failed on a storage fault but the shard did not degrade";
  }
  // Plain destruction, no final snapshot: only bytes already in `dir`
  // survive, exactly like a process death.
  return out;
}

/// Recovers the trial directory and checks contracts 1-4 against what the
/// faulted run acknowledged.  Appends violations to `violations`.
void verify_recovery(const std::string& label, const std::string& dir,
                     const ChaosOptions& options, const TrialOutcome& outcome,
                     ChaosReport& report) {
  ShardOptions sopts;
  sopts.dir = dir;
  sopts.durable = true;
  sopts.group_commit = options.group_commit;

  auto recovered = ProjectShard::recover("chaos", 120, sopts);
  if (!recovered.ok()) {
    report.violations.push_back(label + ": recovery failed: " +
                                recovered.error().str());
    return;
  }
  ++report.recoveries;
  const std::uint64_t runs = recovered.value()->manager_for_test().db().run_count();
  const std::string state =
      hercules::save_to_json(recovered.value()->manager_for_test());

  if (runs < outcome.last_acked_runs) {
    report.violations.push_back(
        label + ": acknowledged work lost (recovered " + std::to_string(runs) +
        " runs, last ack had " + std::to_string(outcome.last_acked_runs) + ")");
    return;
  }
  auto it = outcome.acked_states.find(runs);
  if (it != outcome.acked_states.end() && state != it->second) {
    report.violations.push_back(
        label + ": recovered state diverged from the state at ack (" +
        std::to_string(runs) + " runs)");
    return;
  }
  // Contract 4: recover() re-snapshotted the directory; recovering again
  // from that must reproduce the same bytes.
  recovered.value().reset();
  auto again = ProjectShard::recover("chaos", 120, sopts);
  if (!again.ok()) {
    report.violations.push_back(label + ": second recovery failed: " +
                                again.error().str());
    return;
  }
  if (hercules::save_to_json(again.value()->manager_for_test()) != state)
    report.violations.push_back(label +
                                ": recovery is not a fixed point "
                                "(re-recovering changed the state)");
}

/// One faulted trial end to end: fresh dir, drive under the plan, recover,
/// verify.
void run_trial(const std::string& label, const gen::Scenario& scenario,
               const fs::path& dir, std::uint64_t fault_seed,
               const util::FsFaultPlan& plan, const ChaosOptions& options,
               ChaosReport& report) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  ++report.trials;

  util::Result<TrialOutcome> outcome = util::invalid("trial did not run");
  {
    util::ScopedFaultFs faults(fault_seed, plan);
    outcome = drive(scenario, dir.string(), options);
    report.faults_injected += faults.fs().injected();
  }
  if (!outcome.ok()) {
    // Shard construction itself failed — possible when the fault lands in
    // the very first snapshot.  Nothing was acknowledged, so there is
    // nothing to verify; the directory may not even have a snapshot.
    return;
  }
  report.acked_ops += outcome.value().acked;
  report.failed_ops += outcome.value().failed;
  if (outcome.value().read_only) ++report.read_only_trials;
  if (!outcome.value().probe_violation.empty())
    report.violations.push_back(label + ": " +
                                outcome.value().probe_violation);
  verify_recovery(label, dir.string(), options, outcome.value(), report);
  fs::remove_all(dir, ec);
}

}  // namespace

Json ChaosReport::to_json() const {
  JsonObject o;
  o.set("io_points", static_cast<std::int64_t>(io_points));
  o.set("trials", static_cast<std::int64_t>(trials));
  o.set("faults_injected", static_cast<std::int64_t>(faults_injected));
  o.set("acked_ops", static_cast<std::int64_t>(acked_ops));
  o.set("failed_ops", static_cast<std::int64_t>(failed_ops));
  o.set("read_only_trials", static_cast<std::int64_t>(read_only_trials));
  o.set("recoveries", static_cast<std::int64_t>(recoveries));
  util::JsonArray v;
  for (const auto& violation : violations) v.emplace_back(violation);
  o.set("violations", std::move(v));
  return Json(std::move(o));
}

std::string ChaosReport::summary() const {
  std::ostringstream out;
  out << trials << " trials over " << io_points << " IO points, "
      << faults_injected << " faults injected, " << acked_ops << " acked / "
      << failed_ops << " failed ops, " << read_only_trials
      << " read-only degradations, " << recoveries << " recoveries, "
      << violations.size() << " violations";
  for (const auto& violation : violations) out << "\n  VIOLATION: " << violation;
  return out.str();
}

util::Result<ChaosReport> run_chaos(const ChaosOptions& options) {
  const fs::path root(options.dir);
  std::error_code ec;
  fs::create_directories(root, ec);
  if (!fs::is_directory(root))
    return util::invalid("chaos: cannot create scratch dir '" + options.dir +
                         "'");

  gen::ScenarioSpec spec;
  spec.seed = options.seed;
  auto shape = gen::parse_shape("layered");
  if (shape.ok()) spec.shape = shape.value();
  spec.size = options.flow_size;
  const gen::Scenario scenario = gen::generate(spec);

  ChaosReport report;

  // Counting pass: an installed-but-empty FaultFs tallies the workload's IO
  // points (scoped to this trial's directory) without injecting anything.
  {
    const fs::path dir = root / "clean";
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    util::FsFaultPlan count_plan;
    count_plan.path_filter = dir.string();
    util::ScopedFaultFs counter(options.seed, count_plan);
    auto outcome = drive(scenario, dir.string(), options);
    if (!outcome.ok()) return outcome.error();
    if (outcome.value().failed != 0)
      return util::invalid("chaos: clean pass had failing ops");
    report.io_points = counter.fs().ops();
    fs::remove_all(dir, ec);
  }

  std::uint64_t points = report.io_points;
  if (options.max_points != 0 && points > options.max_points)
    points = options.max_points;

  // The deterministic sweep: every IO point x every fault kind.
  struct Kind {
    const char* name;
    void (*arm)(util::FsFaultPlan&, std::uint64_t);
  };
  static const Kind kKinds[] = {
      {"eio", [](util::FsFaultPlan& p, std::uint64_t k) { p.eio_on = {k}; }},
      {"enospc",
       [](util::FsFaultPlan& p, std::uint64_t k) { p.enospc_on = {k}; }},
      {"short",
       [](util::FsFaultPlan& p, std::uint64_t k) { p.short_write_on = {k}; }},
      {"torn",
       [](util::FsFaultPlan& p, std::uint64_t k) { p.torn_write_on = {k}; }},
      {"crash", [](util::FsFaultPlan& p, std::uint64_t k) { p.crash_at = k; }},
  };
  for (std::uint64_t k = 1; k <= points; ++k) {
    for (const Kind& kind : kKinds) {
      const fs::path dir =
          root / (std::string(kind.name) + "_" + std::to_string(k));
      util::FsFaultPlan plan;
      plan.path_filter = dir.string();
      kind.arm(plan, k);
      run_trial(std::string(kind.name) + "@" + std::to_string(k), scenario,
                dir, options.seed, plan, options, report);
    }
  }

  // Probabilistic trials: several faults per run, hash-placed from the seed.
  for (int t = 0; t < options.random_trials; ++t) {
    const fs::path dir = root / ("prob_" + std::to_string(t));
    util::FsFaultPlan plan;
    plan.path_filter = dir.string();
    plan.fail_prob = options.fail_prob;
    run_trial("prob@" + std::to_string(t), scenario, dir,
              options.seed + static_cast<std::uint64_t>(t) + 1, plan, options,
              report);
  }

  fs::remove_all(root, ec);
  return report;
}

}  // namespace herc::srv
