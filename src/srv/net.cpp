#include "srv/net.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace herc::srv::net {

namespace {

util::Error sys_error(const std::string& what) {
  return util::invalid(what + ": " + std::strerror(errno));
}

}  // namespace

std::string Address::str() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

util::Result<Address> parse_address(const std::string& text) {
  Address a;
  if (text.rfind("unix:", 0) == 0) {
    a.kind = Address::Kind::kUnix;
    a.path = text.substr(5);
    if (a.path.empty()) return util::parse_error("address: empty unix path");
    if (a.path.size() >= sizeof(sockaddr_un{}.sun_path))
      return util::parse_error("address: unix path too long");
    return a;
  }
  if (text.rfind("tcp:", 0) == 0) {
    a.kind = Address::Kind::kTcp;
    std::string rest = text.substr(4);
    std::size_t colon = rest.find_last_of(':');
    if (colon == std::string::npos || colon + 1 == rest.size())
      return util::parse_error("address: expected tcp:host:port");
    a.host = rest.substr(0, colon);
    if (a.host.empty()) a.host = "127.0.0.1";
    try {
      a.port = std::stoi(rest.substr(colon + 1));
    } catch (const std::exception&) {
      return util::parse_error("address: bad tcp port");
    }
    if (a.port < 0 || a.port > 65535)
      return util::parse_error("address: tcp port out of range");
    return a;
  }
  return util::parse_error("address: expected unix:<path> or tcp:<host>:<port>");
}

util::Result<int> listen_on(const Address& address, int backlog) {
  if (address.kind == Address::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return sys_error("socket(unix)");
    // A previous server instance's socket file would make bind fail.
    ::unlink(address.path.c_str());
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      auto err = sys_error("bind(" + address.path + ")");
      ::close(fd);
      return err;
    }
    if (::listen(fd, backlog) != 0) {
      auto err = sys_error("listen(" + address.path + ")");
      ::close(fd);
      return err;
    }
    return fd;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("socket(tcp)");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(address.port));
  sa.sin_addr.s_addr =
      address.host.empty() || address.host == "0.0.0.0"
          ? INADDR_ANY
          : inet_addr(address.host == "localhost" ? "127.0.0.1"
                                                  : address.host.c_str());
  if (sa.sin_addr.s_addr == INADDR_NONE)
    return util::invalid("listen: cannot resolve host '" + address.host + "'");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    auto err = sys_error("bind(tcp:" + std::to_string(address.port) + ")");
    ::close(fd);
    return err;
  }
  if (::listen(fd, backlog) != 0) {
    auto err = sys_error("listen(tcp)");
    ::close(fd);
    return err;
  }
  return fd;
}

util::Result<int> bound_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0)
    return sys_error("getsockname");
  return static_cast<int>(ntohs(sa.sin_port));
}

util::Result<int> connect_to(const Address& address) {
  if (address.kind == Address::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return sys_error("socket(unix)");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      auto err = sys_error("connect(" + address.path + ")");
      ::close(fd);
      return err;
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(address.port);
  const char* host = address.host.empty() ? "127.0.0.1" : address.host.c_str();
  if (::getaddrinfo(host, port.c_str(), &hints, &res) != 0 || res == nullptr)
    return util::invalid("connect: cannot resolve '" + address.host + "'");
  int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                    res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return sys_error("socket(tcp)");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    auto err = sys_error("connect(" + address.str() + ")");
    ::close(fd);
    return err;
  }
  return fd;
}

util::Status send_all(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("send");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return util::Status::ok_status();
}

util::Result<std::size_t> recv_some(int fd, std::string& out, std::size_t cap) {
  std::string chunk(cap, '\0');
  for (;;) {
    ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("recv");
    }
    out.append(chunk.data(), static_cast<std::size_t>(n));
    return static_cast<std::size_t>(n);
  }
}

}  // namespace herc::srv::net
