#pragma once
// Storage chaos harness: sweeps every injected IO fault and crash point
// through a deterministic shard workload and checks the durability contract
// after each one.
//
// One trial = one fresh ProjectShard in its own scratch directory, driven
// through a fixed op sequence (executes with periodic snapshot `save`s)
// under an installed util::FaultFs that fails exactly one IO point — EIO,
// ENOSPC, a short write, a torn write (prefix lands, then the "process
// dies"), or a crash at the point.  The sweep enumerates the workload's IO
// points with a clean counting pass, then replays the workload once per
// (point, fault kind) pair, plus a batch of seeded probabilistic trials.
//
// After the faulted run the shard is discarded and the project recovered
// from whatever bytes actually reached the directory.  The contract checked
// (the same one srv_recovery_test asserts for whole-process kills):
//
//   1. recovery always succeeds — a fault can lose unacknowledged work,
//      never the ability to come back up;
//   2. acknowledged => recovered: the recovered run count is at least the
//      run count at the last acknowledged op;
//   3. byte-identity: when the recovered run count equals the count at an
//      acknowledged op, the recovered state serializes byte-identically to
//      the state captured at that ack;
//   4. recovery is a fixed point: recovering the recovered directory again
//      reproduces the same bytes;
//   5. fail-safe degradation: once an op fails on a storage fault the shard
//      is read-only — reads and stats still answer, mutations are rejected
//      with a RETRYABLE error.
//
// The harness is deliberately single-threaded (one driver, group commit
// off by default): FaultFs decisions are a pure function of (seed, IO op
// index), so every trial is reproducible from its ChaosOptions alone.

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace herc::srv {

struct ChaosOptions {
  std::string dir = "chaos.tmp";  ///< scratch root; trials use subdirs
  std::uint64_t seed = 1;
  int ops = 6;         ///< execute ops per trial
  int save_every = 3;  ///< every Kth op is a snapshot `save`; 0 = never
  std::size_t flow_size = 3;   ///< generated scenario size (layered)
  std::size_t max_points = 0;  ///< cap swept IO points; 0 = sweep all
  int random_trials = 4;       ///< extra trials with per-op fail probability
  double fail_prob = 0.05;     ///< probability for the random trials
  bool group_commit = false;   ///< sweep the group-committed WAL path too
};

struct ChaosReport {
  std::uint64_t io_points = 0;  ///< IO ops in the clean pass (sweep range)
  std::uint64_t trials = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t acked_ops = 0;
  std::uint64_t failed_ops = 0;  ///< unacknowledged ops (expected under faults)
  std::uint64_t read_only_trials = 0;  ///< trials that latched read-only
  std::uint64_t recoveries = 0;
  /// Contract violations, one human-readable line each.  Empty = pass.
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] std::string summary() const;
};

/// Runs the sweep.  Fails only on harness errors (cannot create the scratch
/// directory, cannot build the scenario); contract violations are reported
/// in the ChaosReport, not as an error.
[[nodiscard]] util::Result<ChaosReport> run_chaos(const ChaosOptions& options);

}  // namespace herc::srv
