#pragma once
// Thin POSIX socket helpers shared by the server, the client library and the
// load driver.  Addresses are spelled as strings so tools and the CLI can
// pass them through unchanged:
//
//   unix:/path/to/socket     unix-domain stream socket
//   tcp:HOST:PORT            IPv4 TCP (HOST may be a name or dotted quad)
//
// All functions return plain file descriptors; ownership is the caller's
// (the server wraps them in RAII sessions).  Sockets are blocking; the
// server uses poll() for accept wakeup and relies on close() from another
// thread to break a blocked read at shutdown.

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace herc::srv::net {

/// A parsed listen/connect address.
struct Address {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp host
  int port = 0;      ///< tcp port (0 = ephemeral when listening)

  [[nodiscard]] std::string str() const;
};

/// Parses "unix:..." / "tcp:host:port"; kParse on anything else.
[[nodiscard]] util::Result<Address> parse_address(const std::string& text);

/// Listening socket (backlog applied).  For tcp with port 0 the kernel picks
/// a free port; bound_port() reports it.
[[nodiscard]] util::Result<int> listen_on(const Address& address, int backlog = 64);

/// The local port of a bound TCP socket (getsockname).
[[nodiscard]] util::Result<int> bound_port(int fd);

/// Blocking connect.
[[nodiscard]] util::Result<int> connect_to(const Address& address);

/// Writes all of `data` (loops over partial writes, retries EINTR).
[[nodiscard]] util::Status send_all(int fd, std::string_view data);

/// Reads up to `cap` bytes into `out` (appended).  Returns the byte count;
/// 0 = clean EOF.  kInvalid on socket errors.
[[nodiscard]] util::Result<std::size_t> recv_some(int fd, std::string& out,
                                                  std::size_t cap = 64 * 1024);

}  // namespace herc::srv::net
