#pragma once
// herc::srv wire protocol: framed JSON requests/responses.
//
// A connection carries a sequence of frames in each direction.  One frame is
//
//   '#' <decimal byte length of payload> '\n' <payload bytes> '\n'
//
// where the payload is one compact JSON object.  The explicit length makes
// framing independent of payload content (newlines inside JSON strings
// cannot split a frame) and lets a reader reject oversized or garbage input
// before buffering it; the trailing newline is a cheap integrity check and
// keeps captured streams greppable.
//
// Requests:  {"id": N, "project": "p", "op": "execute", "args": {...}}
//   `id` is chosen by the client and echoed verbatim in the response, so
//   clients may pipeline requests and match responses out of order.
//   `project` is empty for server-level ops (ping/open/projects/stats/...).
// Responses: {"id": N, "ok": true,  "result": {...}}
//          | {"id": N, "ok": false, "error": {"code": "...", "message": "..."}}
//
// Framing errors (bad header, oversize, torn trailer, non-JSON payload) are
// unrecoverable for the connection: the reader latches broken() and the
// server closes the socket.  Malformed but well-framed requests (missing
// fields, wrong types) get an error RESPONSE instead — the connection
// survives.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/result.hpp"

namespace herc::srv::wire {

/// Upper bound on one frame's payload; a header announcing more is a
/// protocol violation (protects the server from absurd allocations).
inline constexpr std::size_t kMaxFrameBytes = 8u * 1024 * 1024;

/// Wraps a payload in the frame header/trailer.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed() arbitrary byte chunks, poll() complete
/// payloads.  Any framing violation latches broken(); poll() then always
/// returns nullopt and the connection must be dropped.
class FrameReader {
 public:
  void feed(std::string_view bytes);

  /// Next complete payload, or nullopt if more bytes are needed (or the
  /// stream is broken).
  [[nodiscard]] std::optional<std::string> poll();

  [[nodiscard]] bool broken() const { return broken_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (diagnostics).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void fail(std::string why);

  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_, compacted lazily
  bool broken_ = false;
  std::string error_;
};

/// One client request.
struct Request {
  std::uint64_t id = 0;
  std::string project;    ///< empty for server-level ops
  std::string op;
  util::JsonObject args;  ///< op-specific payload; may be empty

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static util::Result<Request> from_json(const util::Json& json);
  /// Frame-encoded compact JSON, ready to write to a socket.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<Request> parse(std::string_view payload);
};

/// One server response.
struct Response {
  std::uint64_t id = 0;
  bool ok = true;
  util::Json result;  ///< object; meaningful when ok
  util::Error error;  ///< meaningful when !ok

  [[nodiscard]] static Response success(std::uint64_t id, util::Json result);
  [[nodiscard]] static Response failure(std::uint64_t id, util::Error error);

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static util::Result<Response> from_json(const util::Json& json);
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<Response> parse(std::string_view payload);
};

/// Stable wire names for error codes ("parse", "not_found", ...).
[[nodiscard]] const char* error_code_name(util::Error::Code code);
[[nodiscard]] util::Error::Code error_code_from_name(std::string_view name);

}  // namespace herc::srv::wire
