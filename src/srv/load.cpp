#include "srv/load.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <utility>

#include "srv/client.hpp"
#include "util/rng.hpp"

namespace herc::srv {

namespace {

using util::Error;
using util::Json;
using util::JsonObject;
using util::Result;
using util::Status;

using Clock = std::chrono::steady_clock;

std::string project_name(int index) { return "load" + std::to_string(index); }

/// What one designer thread accumulated.
struct WorkerTally {
  std::vector<std::int64_t> latencies_us;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t runs = 0;
};

void drive_one(const LoadOptions& options, int project, int designer,
               Clock::time_point deadline, WorkerTally& tally,
               std::atomic<bool>& abort) {
  auto client = Client::connect(options.address);
  if (!client.ok()) {
    ++tally.errors;
    return;
  }
  const std::string proj = project_name(project);
  const std::string who = "designer" + std::to_string(designer);
  util::Rng rng(options.seed * 1000003u + static_cast<std::uint64_t>(project) * 131u +
                static_cast<std::uint64_t>(designer));

  const bool open_mode = options.arrival == LoadOptions::Arrival::kOpen;
  const auto interval = std::chrono::nanoseconds(
      open_mode && options.rate_per_designer > 0
          ? static_cast<std::int64_t>(1e9 / options.rate_per_designer)
          : 0);
  // Open mode: arrival schedule is fixed up front; latency is measured from
  // the SCHEDULED time, so server backlog is charged to the requests that
  // queued behind it (no coordinated omission).
  auto next_arrival = Clock::now() +
                      std::chrono::nanoseconds(static_cast<std::int64_t>(
                          interval.count() * rng.uniform()));

  int n = 0;
  while (!abort.load(std::memory_order_relaxed)) {
    Clock::time_point issued;
    if (open_mode) {
      if (next_arrival >= deadline) break;
      std::this_thread::sleep_until(next_arrival);
      issued = next_arrival;
      next_arrival += interval;
    } else {
      issued = Clock::now();
      if (issued >= deadline) break;
    }

    ++n;
    Result<wire::Response> response =
        Error{Error::Code::kInvalid, "unsent"};
    if (options.read_every > 0 && n % options.read_every == 0) {
      response = client.value()->call(proj, "status");
    } else {
      JsonObject args;
      args.set("designer", who);
      response = client.value()->call(proj, "execute", std::move(args));
    }
    auto done = Clock::now();

    ++tally.requests;
    if (!response.ok()) {
      ++tally.errors;
      return;  // transport gone; this designer is done
    }
    if (!response.value().ok) {
      ++tally.errors;
      continue;
    }
    if (response.value().result.is_object() &&
        response.value().result.as_object().contains("runs")) {
      tally.runs += static_cast<std::uint64_t>(
          response.value().result.as_object().at("runs").as_int());
    }
    tally.latencies_us.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(done - issued)
            .count());
  }
}

std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  auto index = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

Json LoadReport::to_json() const {
  JsonObject o;
  o.set("requests", Json(static_cast<std::int64_t>(requests)));
  o.set("errors", Json(static_cast<std::int64_t>(errors)));
  o.set("runs", Json(static_cast<std::int64_t>(runs)));
  o.set("elapsed_sec", Json(elapsed_sec));
  o.set("runs_per_sec", Json(runs_per_sec));
  o.set("requests_per_sec", Json(requests_per_sec));
  o.set("p50_us", Json(p50_us));
  o.set("p99_us", Json(p99_us));
  o.set("max_us", Json(max_us));
  o.set("journal_lines", Json(journal_lines));
  o.set("group_commits", Json(group_commits));
  return Json(std::move(o));
}

std::string LoadReport::summary() const {
  std::ostringstream out;
  out << requests << " reqs (" << errors << " errors), " << runs << " runs in "
      << elapsed_sec << "s = " << runs_per_sec << " runs/s; latency p50 "
      << p50_us << "us p99 " << p99_us << "us; " << journal_lines
      << " journal lines in " << group_commits << " flushes";
  return out.str();
}

Result<LoadReport> run_load(const LoadOptions& options) {
  auto control = Client::connect(options.address);
  if (!control.ok()) return control.error();

  if (options.open_projects) {
    for (int p = 0; p < options.projects; ++p) {
      JsonObject args;
      args.set("name", project_name(p));
      args.set("scenario_seed",
               Json(static_cast<std::int64_t>(options.seed + p)));
      args.set("shape", options.shape);
      args.set("size", Json(static_cast<std::int64_t>(options.size)));
      auto opened = control.value()->invoke("", "open", std::move(args));
      if (!opened.ok()) return opened.error();
    }
  }
  // Plan each project once so the read mix's status op has a plan to report
  // against (mirrors a real session: plan, then track).
  for (int p = 0; p < options.projects; ++p) {
    auto planned = control.value()->invoke(project_name(p), "plan");
    if (!planned.ok()) return planned.error();
  }

  auto stats_before = control.value()->invoke("", "stats");
  if (!stats_before.ok()) return stats_before.error();

  const int threads_n = options.projects * options.designers;
  std::vector<WorkerTally> tallies(static_cast<std::size_t>(threads_n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(threads_n));
  std::atomic<bool> abort{false};

  auto start = Clock::now();
  auto deadline = start + options.duration;
  for (int p = 0; p < options.projects; ++p) {
    for (int d = 0; d < options.designers; ++d) {
      WorkerTally& tally = tallies[static_cast<std::size_t>(
          p * options.designers + d)];
      threads.emplace_back([&options, p, d, deadline, &tally, &abort] {
        drive_one(options, p, d, deadline, tally, abort);
      });
    }
  }
  for (auto& thread : threads) thread.join();
  auto elapsed = Clock::now() - start;

  LoadReport report;
  std::vector<std::int64_t> latencies;
  for (auto& tally : tallies) {
    report.requests += tally.requests;
    report.errors += tally.errors;
    report.runs += tally.runs;
    latencies.insert(latencies.end(), tally.latencies_us.begin(),
                     tally.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = percentile(latencies, 0.50);
  report.p99_us = percentile(latencies, 0.99);
  report.max_us = latencies.empty() ? 0 : latencies.back();
  report.elapsed_sec =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  if (report.elapsed_sec > 0) {
    report.runs_per_sec = static_cast<double>(report.runs) / report.elapsed_sec;
    report.requests_per_sec =
        static_cast<double>(report.requests) / report.elapsed_sec;
  }

  // Durability accounting: flushes/lines attributable to the drive window.
  auto stats_after = control.value()->invoke("", "stats");
  if (stats_after.ok() && stats_after.value().is_object() &&
      stats_before.value().is_object()) {
    auto totals = [](const Json& stats, const char* key) -> std::int64_t {
      const JsonObject& o = stats.as_object();
      if (!o.contains("totals")) return 0;
      const JsonObject& t = o.at("totals").as_object();
      return t.contains(key) ? t.at(key).as_int() : 0;
    };
    report.journal_lines = totals(stats_after.value(), "journal_lines") -
                           totals(stats_before.value(), "journal_lines");
    report.group_commits = totals(stats_after.value(), "srv_group_commits") -
                           totals(stats_before.value(), "srv_group_commits");
  }
  return report;
}

}  // namespace herc::srv
