#include "srv/load.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <utility>

#include "srv/client.hpp"
#include "util/rng.hpp"

namespace herc::srv {

namespace {

using util::Error;
using util::Json;
using util::JsonObject;
using util::Result;
using util::Status;

using Clock = std::chrono::steady_clock;

std::string project_name(int index) { return "load" + std::to_string(index); }

/// What one designer thread accumulated.
struct WorkerTally {
  std::vector<std::int64_t> read_latencies_us;
  std::vector<std::int64_t> write_latencies_us;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;  ///< retryable refusals (overloaded / io_error)
  std::uint64_t runs = 0;
};

/// The read-mix rotation: one shard-read-lane op per slot.  The schedule
/// queries (plans/links/schedule) stay cache-served across run appends
/// under per-target stamps; the runs query and status report re-evaluate
/// whenever an execute lands.
Result<wire::Response> issue_read(Client& client, const std::string& proj,
                                  const std::string& who, int slot) {
  switch (slot % 5) {
    case 0:
      return client.call(proj, "status");
    case 1:
    case 2:
    case 3: {
      static const char* kStatements[] = {
          "select plans", "select links",
          "select schedule where critical = true"};
      JsonObject args;
      args.set("statement", std::string(kStatements[slot % 5 - 1]));
      return client.call(proj, "query", std::move(args));
    }
    default: {
      JsonObject args;
      args.set("statement", "select runs where designer = \"" + who + "\"");
      return client.call(proj, "query", std::move(args));
    }
  }
}

void drive_one(const LoadOptions& options, int project, int designer,
               Clock::time_point deadline, WorkerTally& tally,
               std::atomic<bool>& abort) {
  auto client = Client::connect(options.address);
  if (!client.ok()) {
    ++tally.errors;
    return;
  }
  const std::string proj = project_name(project);
  const std::string who = "designer" + std::to_string(designer);
  util::Rng rng(options.seed * 1000003u + static_cast<std::uint64_t>(project) * 131u +
                static_cast<std::uint64_t>(designer));

  // Role split under --read-mix: the first ceil(mix% * M) designers only
  // read, the rest only write.  Their runs queries target a writer's name so
  // the scan touches real rows.
  const bool reader_role =
      options.read_mix >= 0 &&
      (designer + 1) * 100 <= options.read_mix * options.designers;
  const std::string writer_name =
      "designer" + std::to_string(options.designers - 1);

  // Read-mix writers are paced (open arrival at --rate): real execution
  // requests arrive when work is ready, they are not issued back-to-back.
  // A closed-loop writer would saturate the write lane 100% of the wall
  // clock, which models no real project and leaves nothing to contrast.
  // Readers stay closed-loop: dashboards poll as fast as they are allowed.
  const bool open_mode = options.arrival == LoadOptions::Arrival::kOpen ||
                         (options.read_mix >= 0 && !reader_role);
  const auto interval = std::chrono::nanoseconds(
      open_mode && options.rate_per_designer > 0
          ? static_cast<std::int64_t>(1e9 / options.rate_per_designer)
          : 0);
  // Open mode: arrival schedule is fixed up front; latency is measured from
  // the SCHEDULED time, so server backlog is charged to the requests that
  // queued behind it (no coordinated omission).
  auto next_arrival = Clock::now() +
                      std::chrono::nanoseconds(static_cast<std::int64_t>(
                          interval.count() * rng.uniform()));

  int n = 0;
  while (!abort.load(std::memory_order_relaxed)) {
    Clock::time_point issued;
    if (open_mode) {
      if (next_arrival >= deadline) break;
      std::this_thread::sleep_until(next_arrival);
      issued = next_arrival;
      next_arrival += interval;
    } else {
      issued = Clock::now();
      if (issued >= deadline) break;
    }

    ++n;
    const bool is_read = options.read_mix >= 0
                             ? reader_role
                             : options.read_every > 0 && n % options.read_every == 0;
    Result<wire::Response> response =
        Error{Error::Code::kInvalid, "unsent"};
    if (is_read) {
      response = issue_read(*client.value(), proj,
                            options.read_mix >= 0 ? writer_name : who, n);
    } else {
      JsonObject args;
      args.set("designer", who);
      response = client.value()->call(proj, "execute", std::move(args));
    }
    auto done = Clock::now();

    ++tally.requests;
    if (!response.ok()) {
      ++tally.errors;
      return;  // transport gone; this designer is done
    }
    if (!response.value().ok) {
      // Retryable refusals (shed under overload, a degraded shard) are the
      // server working as designed; a closed loop simply tries again.
      if (response.value().error.retryable()) {
        ++tally.shed;
      } else {
        ++tally.errors;
      }
      continue;
    }
    if (response.value().result.is_object() &&
        response.value().result.as_object().contains("runs")) {
      tally.runs += static_cast<std::uint64_t>(
          response.value().result.as_object().at("runs").as_int());
    }
    auto& bucket = is_read ? tally.read_latencies_us : tally.write_latencies_us;
    bucket.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(done - issued)
            .count());
  }
}

std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  auto index = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

Json LoadReport::to_json() const {
  JsonObject o;
  o.set("requests", Json(static_cast<std::int64_t>(requests)));
  o.set("errors", Json(static_cast<std::int64_t>(errors)));
  o.set("shed", Json(static_cast<std::int64_t>(shed)));
  o.set("runs", Json(static_cast<std::int64_t>(runs)));
  o.set("elapsed_sec", Json(elapsed_sec));
  o.set("runs_per_sec", Json(runs_per_sec));
  o.set("requests_per_sec", Json(requests_per_sec));
  o.set("p50_us", Json(p50_us));
  o.set("p99_us", Json(p99_us));
  o.set("max_us", Json(max_us));
  o.set("reads", Json(static_cast<std::int64_t>(reads)));
  o.set("writes", Json(static_cast<std::int64_t>(writes)));
  o.set("reads_per_sec", Json(reads_per_sec));
  o.set("read_p50_us", Json(read_p50_us));
  o.set("read_p99_us", Json(read_p99_us));
  o.set("write_p50_us", Json(write_p50_us));
  o.set("write_p99_us", Json(write_p99_us));
  o.set("journal_lines", Json(journal_lines));
  o.set("group_commits", Json(group_commits));
  return Json(std::move(o));
}

std::string LoadReport::summary() const {
  std::ostringstream out;
  out << requests << " reqs (" << errors << " errors, " << shed
      << " shed), " << runs << " runs in "
      << elapsed_sec << "s = " << runs_per_sec << " runs/s; latency p50 "
      << p50_us << "us p99 " << p99_us << "us; " << journal_lines
      << " journal lines in " << group_commits << " flushes";
  if (reads > 0 && writes > 0) {
    out << "\n  reads: " << reads << " (" << reads_per_sec << "/s) p50 "
        << read_p50_us << "us p99 " << read_p99_us << "us; writes: " << writes
        << " p50 " << write_p50_us << "us p99 " << write_p99_us << "us";
  }
  return out.str();
}

Result<LoadReport> run_load(const LoadOptions& options) {
  auto control = Client::connect(options.address);
  if (!control.ok()) return control.error();

  if (options.open_projects) {
    for (int p = 0; p < options.projects; ++p) {
      JsonObject args;
      args.set("name", project_name(p));
      args.set("scenario_seed",
               Json(static_cast<std::int64_t>(options.seed + p)));
      args.set("shape", options.shape);
      args.set("size", Json(static_cast<std::int64_t>(options.size)));
      auto opened = control.value()->invoke("", "open", std::move(args));
      if (!opened.ok()) return opened.error();
    }
  }
  // Plan each project once so the read mix's status op has a plan to report
  // against (mirrors a real session: plan, then track).
  for (int p = 0; p < options.projects; ++p) {
    auto planned = control.value()->invoke(project_name(p), "plan");
    if (!planned.ok()) return planned.error();
  }

  // Warmup: grow each project to mid-flight size before the clock starts.
  for (int p = 0; p < options.projects; ++p) {
    for (int w = 0; w < options.warmup_executes; ++w) {
      JsonObject args;
      args.set("designer",
               "designer" + std::to_string(options.designers - 1));
      auto r = control.value()->invoke(project_name(p), "execute",
                                       std::move(args));
      if (!r.ok()) return r.error();
    }
  }

  auto stats_before = control.value()->invoke("", "stats");
  if (!stats_before.ok()) return stats_before.error();

  const int threads_n = options.projects * options.designers;
  std::vector<WorkerTally> tallies(static_cast<std::size_t>(threads_n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(threads_n));
  std::atomic<bool> abort{false};

  auto start = Clock::now();
  auto deadline = start + options.duration;
  for (int p = 0; p < options.projects; ++p) {
    for (int d = 0; d < options.designers; ++d) {
      WorkerTally& tally = tallies[static_cast<std::size_t>(
          p * options.designers + d)];
      threads.emplace_back([&options, p, d, deadline, &tally, &abort] {
        drive_one(options, p, d, deadline, tally, abort);
      });
    }
  }
  for (auto& thread : threads) thread.join();
  auto elapsed = Clock::now() - start;

  LoadReport report;
  std::vector<std::int64_t> latencies, reads, writes;
  for (auto& tally : tallies) {
    report.requests += tally.requests;
    report.errors += tally.errors;
    report.shed += tally.shed;
    report.runs += tally.runs;
    reads.insert(reads.end(), tally.read_latencies_us.begin(),
                 tally.read_latencies_us.end());
    writes.insert(writes.end(), tally.write_latencies_us.begin(),
                  tally.write_latencies_us.end());
  }
  latencies.reserve(reads.size() + writes.size());
  latencies.insert(latencies.end(), reads.begin(), reads.end());
  latencies.insert(latencies.end(), writes.begin(), writes.end());
  std::sort(latencies.begin(), latencies.end());
  std::sort(reads.begin(), reads.end());
  std::sort(writes.begin(), writes.end());
  report.p50_us = percentile(latencies, 0.50);
  report.p99_us = percentile(latencies, 0.99);
  report.max_us = latencies.empty() ? 0 : latencies.back();
  report.reads = reads.size();
  report.writes = writes.size();
  report.read_p50_us = percentile(reads, 0.50);
  report.read_p99_us = percentile(reads, 0.99);
  report.write_p50_us = percentile(writes, 0.50);
  report.write_p99_us = percentile(writes, 0.99);
  report.elapsed_sec =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  if (report.elapsed_sec > 0) {
    report.runs_per_sec = static_cast<double>(report.runs) / report.elapsed_sec;
    report.requests_per_sec =
        static_cast<double>(report.requests) / report.elapsed_sec;
    report.reads_per_sec = static_cast<double>(report.reads) / report.elapsed_sec;
  }

  // Durability accounting: flushes/lines attributable to the drive window.
  auto stats_after = control.value()->invoke("", "stats");
  if (stats_after.ok() && stats_after.value().is_object() &&
      stats_before.value().is_object()) {
    auto totals = [](const Json& stats, const char* key) -> std::int64_t {
      const JsonObject& o = stats.as_object();
      if (!o.contains("totals")) return 0;
      const JsonObject& t = o.at("totals").as_object();
      return t.contains(key) ? t.at(key).as_int() : 0;
    };
    report.journal_lines = totals(stats_after.value(), "journal_lines") -
                           totals(stats_before.value(), "journal_lines");
    report.group_commits = totals(stats_after.value(), "srv_group_commits") -
                           totals(stats_before.value(), "srv_group_commits");
  }
  return report;
}

}  // namespace herc::srv
