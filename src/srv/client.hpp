#pragma once
// Small blocking client for the herc::srv wire protocol, shared by the CLI
// (`herc remote ...`), the load driver and the tests.  One Client owns one
// connection; it is NOT thread-safe — the load driver gives each simulated
// designer its own Client, which is also how real sessions behave.
//
// call() is the simple RPC form (send, then wait for the matching id).
// send()/recv_any() expose pipelining: queue several requests, then collect
// responses as the server finishes them (possibly out of order).

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "srv/net.hpp"
#include "srv/wire.hpp"

namespace herc::srv {

class Client {
 public:
  /// Connects to "unix:/path" or "tcp:host:port".
  [[nodiscard]] static util::Result<std::unique_ptr<Client>> connect(
      const std::string& address);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and blocks until ITS response arrives; responses for
  /// other outstanding ids are stashed for recv().  Assigns the id.
  [[nodiscard]] util::Result<wire::Response> call(const std::string& project,
                                                 const std::string& op,
                                                 util::JsonObject args = {});

  /// Fire-and-collect-later: sends, returns the assigned id immediately.
  [[nodiscard]] util::Result<std::uint64_t> send(const std::string& project,
                                                 const std::string& op,
                                                 util::JsonObject args = {});

  /// Next response in arrival order (stashed ones first).
  [[nodiscard]] util::Result<wire::Response> recv_any();

  /// Response for a specific id (reads until it shows up).
  [[nodiscard]] util::Result<wire::Response> recv(std::uint64_t id);

  /// call() + unwrap: a transport error OR an ok=false response both come
  /// back as the error; otherwise the result document.
  [[nodiscard]] util::Result<util::Json> invoke(const std::string& project,
                                                const std::string& op,
                                                util::JsonObject args = {});

 private:
  explicit Client(int fd) : fd_(fd) {}

  [[nodiscard]] util::Result<wire::Response> read_response();

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  wire::FrameReader reader_;
  std::map<std::uint64_t, wire::Response> stashed_;
};

}  // namespace herc::srv
