#pragma once
// Group-committed journal writes.
//
// A per-run fsync caps a shard at a few hundred durable runs per second.
// The GroupCommitter decouples APPEND from COMMIT instead: appends (journal
// lines, produced under the shard's mutation lock) only enqueue; a flusher
// thread drains the queue, concatenates every pending line, writes them in
// ONE write() and — in durable mode — ONE fsync.  Requests acknowledge only
// after wait_durable() covers their lines, so while one batch is inside
// fsync the shard lock is free and the next requests pile their lines into
// the next batch: batch size grows with load and the fsync cost is
// amortized across it.
//
// Crash contract: a batch is written with a single write(), so process death
// can lose only whole un-acknowledged batches plus (machine crash) the tail
// the last fsync did not cover — never a run whose response was sent.  The
// journal file stays a valid line sequence with at worst a torn final line,
// exactly what recover_from_json tolerates.
//
// The committer implements hercules::JournalSink, so a plain RunJournal
// writes through it unchanged (WorkflowManager::enable_journal_sink).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hercules/journal.hpp"
#include "util/fsio.hpp"
#include "util/result.hpp"

namespace herc::srv {

class GroupCommitter : public hercules::JournalSink {
 public:
  struct Options {
    /// fsync each batch: acknowledged runs survive power loss.  Off, the
    /// batch write still reaches the OS before acknowledgment (process-crash
    /// safe) and fsync happens only at snapshots and shutdown.
    bool durable = false;
    /// Bounded extra latency the flusher waits after picking up work, so
    /// concurrent appenders can join the batch.  0 = flush immediately
    /// (batching then comes only from fsync backpressure).
    std::chrono::microseconds window{200};
  };

  struct Stats {
    std::uint64_t lines = 0;      ///< appends enqueued
    std::uint64_t flushes = 0;    ///< group commits (one write [+ fsync] each)
    std::uint64_t synced = 0;     ///< flushes that included an fsync
    std::uint64_t batch_max = 0;  ///< largest batch, in lines
    [[nodiscard]] double batch_mean() const {
      return flushes ? static_cast<double>(lines_flushed) /
                           static_cast<double>(flushes)
                     : 0.0;
    }
    std::uint64_t lines_flushed = 0;  ///< lines covered by those flushes
  };

  [[nodiscard]] static util::Result<std::unique_ptr<GroupCommitter>> open(
      const std::string& path, Options options);
  ~GroupCommitter() override;
  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  // --- JournalSink ----------------------------------------------------------
  [[nodiscard]] const std::string& path() const override { return path_; }
  /// Enqueues the line and returns immediately; the line's durability is
  /// settled by wait_durable().  Write errors are deferred: they surface on
  /// the waiting side and stick for later appends.
  [[nodiscard]] util::Status append(std::string line) override;
  /// Truncates the journal.  Pending lines are considered committed — the
  /// caller snapshots the state they describe BEFORE restarting (the
  /// save_project_file ordering) — and their waiters are released.
  [[nodiscard]] util::Status restart() override;

  // --- group-commit API ------------------------------------------------------
  /// Ticket of the most recent append (0 before any).  A request captures
  /// this after its mutation completes and waits on it after releasing the
  /// shard lock.
  [[nodiscard]] std::uint64_t last_enqueued() const;
  /// Blocks until every line up to `ticket` is flushed (and fsynced in
  /// durable mode), or an I/O error / crash simulation intervened.
  [[nodiscard]] util::Status wait_durable(std::uint64_t ticket);
  /// Final commit: drains the queue and fsyncs regardless of durable mode.
  /// Shutdown and snapshots call this.
  [[nodiscard]] util::Status sync_now();

  [[nodiscard]] Stats stats() const;

  /// TEST HOOK — models SIGKILL: the flusher stops where it is, queued lines
  /// vanish, nothing else reaches the file.  Only bytes already written
  /// survive, so recovery tests can assert the acked-implies-recovered
  /// contract.
  void simulate_crash();

 private:
  GroupCommitter(std::string path, Options options);
  void flusher_main();

  const std::string path_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< flusher: queue non-empty or stop
  std::condition_variable done_cv_;   ///< waiters: committed_ advanced / error
  std::vector<std::string> pending_;
  std::uint64_t enqueued_ = 0;   ///< tickets handed out
  std::uint64_t committed_ = 0;  ///< tickets flushed (durable per options)
  bool flushing_ = false;        ///< flusher holds a batch outside the lock
  bool stop_ = false;
  bool crashed_ = false;
  util::Status status_ = util::Status::ok_status();  ///< sticky first error
  Stats stats_;

  util::AppendFile file_;  ///< touched only by the flusher and restart()
  std::thread flusher_;
};

}  // namespace herc::srv
