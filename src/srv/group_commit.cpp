#include "srv/group_commit.hpp"

namespace herc::srv {

GroupCommitter::GroupCommitter(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

util::Result<std::unique_ptr<GroupCommitter>> GroupCommitter::open(
    const std::string& path, Options options) {
  std::unique_ptr<GroupCommitter> c(new GroupCommitter(path, options));
  auto st = c->file_.open_trunc(path);
  if (!st.ok())
    return util::unsupported("group commit: cannot open '" + path + "'");
  c->flusher_ = std::thread(&GroupCommitter::flusher_main, c.get());
  return c;
}

GroupCommitter::~GroupCommitter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Leftover pending lines (possible only after simulate_crash or an I/O
  // error) stay unwritten by design.
}

util::Status GroupCommitter::append(std::string line) {
  line.push_back('\n');
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return util::invalid("group commit: crashed");
    if (!status_.ok()) return status_;
    pending_.push_back(std::move(line));
    ++enqueued_;
    ++stats_.lines;
  }
  work_cv_.notify_one();
  return util::Status::ok_status();
}

std::uint64_t GroupCommitter::last_enqueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueued_;
}

util::Status GroupCommitter::wait_durable(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return committed_ >= ticket || !status_.ok() || crashed_ || stop_;
  });
  if (committed_ >= ticket) return util::Status::ok_status();
  if (!status_.ok()) return status_;
  return util::invalid("group commit: stopped before ticket became durable");
}

util::Status GroupCommitter::sync_now() {
  std::unique_lock<std::mutex> lock(mu_);
  if (crashed_) return util::invalid("group commit: crashed");
  const std::uint64_t target = enqueued_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] {
    return (committed_ >= target && !flushing_) || !status_.ok() || crashed_ ||
           stop_;
  });
  if (!status_.ok()) return status_;
  if (crashed_ || (stop_ && committed_ < target))
    return util::invalid("group commit: stopped before sync completed");
  // Batches are only fsynced in durable mode; a snapshot/shutdown sync must
  // pin the whole file to disk either way.
  auto st = file_.sync();
  if (!st.ok()) status_ = st;
  return st;
}

util::Status GroupCommitter::restart() {
  std::unique_lock<std::mutex> lock(mu_);
  if (crashed_) return util::invalid("group commit: crashed");
  // Never truncate under a flusher mid-write: its write() would land in the
  // fresh file (or on a closed fd).
  done_cv_.wait(lock, [&] { return !flushing_ || stop_; });
  if (stop_) return util::invalid("group commit: stopped");
  // Whatever is still queued describes state the caller just snapshotted;
  // dropping it IS its commit.
  committed_ = enqueued_;
  pending_.clear();
  auto st = file_.open_trunc(path_);
  if (!st.ok()) {
    // Keep a storage fault recognizable (kIoError => retryable / shard
    // degradation); everything else stays the legacy unsupported.
    status_ = st.error().code == util::Error::Code::kIoError
                  ? st
                  : util::unsupported("group commit: cannot reopen '" + path_ +
                                      "'");
    done_cv_.notify_all();
    return status_;
  }
  status_ = util::Status::ok_status();
  done_cv_.notify_all();
  return status_;
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void GroupCommitter::simulate_crash() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
    stop_ = true;
    pending_.clear();
    file_.close();  // nothing further reaches the file, no final fsync
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void GroupCommitter::flusher_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return !pending_.empty() || stop_; });
    if (stop_ && pending_.empty()) return;
    if (stop_) {
      // Drain what was enqueued before stop; new appends are rejected.
    } else if (options_.window.count() > 0) {
      // Bounded accumulation: let concurrent appenders join this batch.
      lock.unlock();
      std::this_thread::sleep_for(options_.window);
      lock.lock();
      if (crashed_) return;
    }
    std::vector<std::string> batch;
    batch.swap(pending_);
    flushing_ = true;
    lock.unlock();

    std::string buffer;
    std::size_t bytes = 0;
    for (const auto& line : batch) bytes += line.size();
    buffer.reserve(bytes);
    for (const auto& line : batch) buffer += line;
    // One write per group commit keeps crash loss whole-batch granular.
    auto st = file_.append(buffer);
    bool synced = false;
    if (st.ok() && options_.durable) {
      st = file_.sync();
      synced = st.ok();
    }

    lock.lock();
    flushing_ = false;
    if (crashed_) return;
    if (st.ok()) {
      committed_ += batch.size();
      ++stats_.flushes;
      if (synced) ++stats_.synced;
      stats_.lines_flushed += batch.size();
      if (batch.size() > stats_.batch_max) stats_.batch_max = batch.size();
    } else if (status_.ok()) {
      status_ = st;
    }
    done_cv_.notify_all();
    if (stop_ && pending_.empty()) return;
  }
}

}  // namespace herc::srv
