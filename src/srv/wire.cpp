#include "srv/wire.hpp"

namespace herc::srv::wire {

using util::Json;
using util::JsonObject;

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  out.push_back('#');
  out += std::to_string(payload.size());
  out.push_back('\n');
  out.append(payload);
  out.push_back('\n');
  return out;
}

void FrameReader::fail(std::string why) {
  broken_ = true;
  error_ = std::move(why);
  buf_.clear();
  pos_ = 0;
}

void FrameReader::feed(std::string_view bytes) {
  if (broken_) return;
  // Compact the consumed prefix before growing, keeping feed() amortized
  // linear regardless of chunking.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

std::optional<std::string> FrameReader::poll() {
  if (broken_) return std::nullopt;
  std::string_view view(buf_);
  view.remove_prefix(pos_);
  if (view.empty()) return std::nullopt;

  if (view[0] != '#') {
    fail("frame header must start with '#'");
    return std::nullopt;
  }
  std::size_t nl = view.find('\n');
  if (nl == std::string_view::npos) {
    if (view.size() > 32) fail("frame header too long");  // "#<len>" is short
    return std::nullopt;
  }
  std::string_view digits = view.substr(1, nl - 1);
  if (digits.empty() || digits.size() > 8) {
    fail("frame length malformed");
    return std::nullopt;
  }
  std::size_t len = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      fail("frame length malformed");
      return std::nullopt;
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (len > kMaxFrameBytes) {
    fail("frame exceeds " + std::to_string(kMaxFrameBytes) + " bytes");
    return std::nullopt;
  }
  // Header + payload + trailing newline must all be present.
  if (view.size() < nl + 1 + len + 1) return std::nullopt;
  if (view[nl + 1 + len] != '\n') {
    fail("frame trailer missing");
    return std::nullopt;
  }
  std::string payload(view.substr(nl + 1, len));
  pos_ += nl + 1 + len + 1;
  return payload;
}

// --- requests ----------------------------------------------------------------

Json Request::to_json() const {
  JsonObject o;
  o.set("id", static_cast<std::int64_t>(id));
  o.set("project", project);
  o.set("op", op);
  o.set("args", Json(args));
  return Json(std::move(o));
}

util::Result<Request> Request::from_json(const Json& json) {
  if (!json.is_object()) return util::parse_error("request: not a JSON object");
  const JsonObject& o = json.as_object();
  Request r;
  if (!o.contains("id") || !o.at("id").is_int())
    return util::parse_error("request: missing integer 'id'");
  r.id = static_cast<std::uint64_t>(o.at("id").as_int());
  if (!o.contains("op") || !o.at("op").is_string())
    return util::parse_error("request: missing string 'op'");
  r.op = o.at("op").as_string();
  if (o.contains("project")) {
    if (!o.at("project").is_string())
      return util::parse_error("request: 'project' must be a string");
    r.project = o.at("project").as_string();
  }
  if (o.contains("args")) {
    if (!o.at("args").is_object())
      return util::parse_error("request: 'args' must be an object");
    r.args = o.at("args").as_object();
  }
  return r;
}

std::string Request::encode() const { return encode_frame(to_json().dump(-1)); }

util::Result<Request> Request::parse(std::string_view payload) {
  auto parsed = Json::parse(payload);
  if (!parsed.ok())
    return util::parse_error("request: " + parsed.error().message);
  return from_json(parsed.value());
}

// --- responses ---------------------------------------------------------------

Response Response::success(std::uint64_t id, Json result) {
  Response r;
  r.id = id;
  r.ok = true;
  r.result = std::move(result);
  return r;
}

Response Response::failure(std::uint64_t id, util::Error error) {
  Response r;
  r.id = id;
  r.ok = false;
  r.error = std::move(error);
  return r;
}

Json Response::to_json() const {
  JsonObject o;
  o.set("id", static_cast<std::int64_t>(id));
  o.set("ok", ok);
  if (ok) {
    o.set("result", result);
  } else {
    JsonObject e;
    e.set("code", error_code_name(error.code));
    e.set("message", error.message);
    o.set("error", Json(std::move(e)));
  }
  return Json(std::move(o));
}

util::Result<Response> Response::from_json(const Json& json) {
  if (!json.is_object()) return util::parse_error("response: not a JSON object");
  const JsonObject& o = json.as_object();
  Response r;
  if (!o.contains("id") || !o.at("id").is_int())
    return util::parse_error("response: missing integer 'id'");
  r.id = static_cast<std::uint64_t>(o.at("id").as_int());
  if (!o.contains("ok") || !o.at("ok").is_bool())
    return util::parse_error("response: missing bool 'ok'");
  r.ok = o.at("ok").as_bool();
  if (r.ok) {
    if (o.contains("result")) r.result = o.at("result");
  } else {
    if (!o.contains("error") || !o.at("error").is_object())
      return util::parse_error("response: failure without 'error' object");
    const JsonObject& e = o.at("error").as_object();
    if (!e.contains("code") || !e.at("code").is_string() ||
        !e.contains("message") || !e.at("message").is_string())
      return util::parse_error("response: 'error' needs string code and message");
    r.error.code = error_code_from_name(e.at("code").as_string());
    r.error.message = e.at("message").as_string();
  }
  return r;
}

std::string Response::encode() const { return encode_frame(to_json().dump(-1)); }

util::Result<Response> Response::parse(std::string_view payload) {
  auto parsed = Json::parse(payload);
  if (!parsed.ok())
    return util::parse_error("response: " + parsed.error().message);
  return from_json(parsed.value());
}

// --- error codes -------------------------------------------------------------

const char* error_code_name(util::Error::Code code) {
  using Code = util::Error::Code;
  switch (code) {
    case Code::kParse: return "parse";
    case Code::kNotFound: return "not_found";
    case Code::kInvalid: return "invalid";
    case Code::kUnbound: return "unbound";
    case Code::kConflict: return "conflict";
    case Code::kUnsupported: return "unsupported";
    case Code::kIoError: return "io_error";
    case Code::kOverloaded: return "overloaded";
  }
  return "invalid";
}

util::Error::Code error_code_from_name(std::string_view name) {
  using Code = util::Error::Code;
  if (name == "parse") return Code::kParse;
  if (name == "not_found") return Code::kNotFound;
  if (name == "unbound") return Code::kUnbound;
  if (name == "conflict") return Code::kConflict;
  if (name == "unsupported") return Code::kUnsupported;
  if (name == "io_error") return Code::kIoError;
  if (name == "overloaded") return Code::kOverloaded;
  return Code::kInvalid;
}

}  // namespace herc::srv::wire
