#include "core/risk.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/cpm.hpp"
#include "core/estimate.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace herc::sched {

util::Result<RiskReport> analyze_risk(const ScheduleSpace& space,
                                      const meta::Database& db, ScheduleRunId plan_id,
                                      const RiskOptions& options) {
  if (options.samples < 1) return util::invalid("risk: samples must be >= 1");
  const ScheduleRun& plan = space.plan(plan_id);
  if (plan.nodes.empty()) return util::invalid("risk: plan has no activities");

  const std::int64_t anchor = plan.anchor.minutes_since_epoch();
  auto rel = [&](cal::WorkInstant t) {
    return std::max<std::int64_t>(0, t.minutes_since_epoch() - anchor);
  };

  // Static structure shared by all samples.
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<CpmActivity> base(plan.nodes.size());
  std::vector<std::vector<cal::WorkDuration>> histories(plan.nodes.size());
  std::vector<bool> fixed(plan.nodes.size(), false);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const ScheduleNode& n = space.node(plan.nodes[i]);
    index[plan.nodes[i].value()] = i;
    if (n.completed && n.actual_finish) {
      std::int64_t start = n.actual_start ? rel(*n.actual_start) : rel(*n.actual_finish);
      base[i].release = start;
      base[i].duration = rel(*n.actual_finish) - start;
      fixed[i] = true;
    } else {
      base[i].release = n.actual_start ? rel(*n.actual_start) : 0;
      base[i].duration = (n.planned_finish - n.planned_start).count_minutes();
      histories[i] = DurationEstimator::history(db, n.activity);
    }
  }
  for (const auto& dep : plan.deps)
    base[index.at(dep.to.value())].preds.push_back(index.at(dep.from.value()));

  auto deterministic = compute_cpm(base);
  if (!deterministic.ok()) return deterministic.error();

  RiskReport report;
  report.samples = options.samples;
  report.deterministic_finish =
      cal::WorkInstant(anchor + deterministic.value().makespan);

  util::Rng rng(options.seed);
  std::vector<std::int64_t> finishes;
  finishes.reserve(static_cast<std::size_t>(options.samples));
  std::vector<int> critical_count(base.size(), 0);
  std::vector<double> duration_sum(base.size(), 0);
  double finish_sum = 0;
  int on_time = 0;

  std::vector<CpmActivity> sample = base;
  for (int s = 0; s < options.samples; ++s) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (fixed[i]) {
        sample[i].duration = base[i].duration;
      } else if (histories[i].size() >= 2) {
        // Bootstrap from measured runs.
        const auto& h = histories[i];
        sample[i].duration =
            h[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(h.size()) - 1))]
                .count_minutes();
      } else {
        double f = rng.uniform(1.0 - options.default_spread,
                               1.0 + options.default_spread);
        sample[i].duration = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(static_cast<double>(base[i].duration) * f));
      }
      duration_sum[i] += static_cast<double>(sample[i].duration);
    }
    auto solved = compute_cpm(sample).take();
    finishes.push_back(solved.makespan);
    finish_sum += static_cast<double>(solved.makespan);
    if (solved.makespan <= deterministic.value().makespan) ++on_time;
    for (std::size_t i = 0; i < base.size(); ++i)
      if (!fixed[i] && solved.critical[i]) ++critical_count[i];
  }

  std::sort(finishes.begin(), finishes.end());
  auto pct = [&](double p) {
    auto idx = static_cast<std::size_t>(p * static_cast<double>(finishes.size() - 1));
    return finishes[idx];
  };
  report.mean_finish = cal::WorkInstant(
      anchor + static_cast<std::int64_t>(finish_sum / options.samples));
  report.p50_finish = cal::WorkInstant(anchor + pct(0.5));
  report.p90_finish = cal::WorkInstant(anchor + pct(0.9));
  report.on_time_probability =
      static_cast<double>(on_time) / static_cast<double>(options.samples);

  for (std::size_t i = 0; i < base.size(); ++i) {
    const ScheduleNode& n = space.node(plan.nodes[i]);
    ActivityRisk ar;
    ar.activity = n.activity;
    ar.criticality = fixed[i] ? 0.0
                              : static_cast<double>(critical_count[i]) /
                                    static_cast<double>(options.samples);
    ar.mean_duration = cal::WorkDuration::minutes(
        static_cast<std::int64_t>(duration_sum[i] / options.samples));
    report.activities.push_back(std::move(ar));
  }
  return report;
}

std::string RiskReport::render(const cal::WorkCalendar& calendar) const {
  using util::pad_right;
  std::string out = "Schedule risk (" + std::to_string(samples) + " samples)\n";
  out += "  deterministic finish: " + calendar.format_date(deterministic_finish) +
         "  (met in " + util::format_double(100 * on_time_probability, 1) +
         "% of scenarios)\n";
  out += "  mean: " + calendar.format_date(mean_finish) +
         "   P50: " + calendar.format_date(p50_finish) +
         "   P90: " + calendar.format_date(p90_finish) + "\n";
  out += "  " + pad_right("activity", 16) + pad_right("criticality", 13) +
         "mean duration\n";
  out += "  " + util::repeat('-', 44) + "\n";
  const std::int64_t mpd = calendar.minutes_per_day();
  for (const auto& a : activities) {
    out += "  " + pad_right(a.activity, 16) +
           pad_right(util::format_double(100 * a.criticality, 1) + "%", 13) +
           a.mean_duration.str(mpd) + "\n";
  }
  return out;
}

}  // namespace herc::sched
