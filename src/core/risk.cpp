#include "core/risk.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/cpm_solver.hpp"
#include "core/estimate.hpp"
#include "core/worker_pool.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace herc::sched {

namespace {

/// Independent per-sample RNG stream: a splitmix64-style finalizer over
/// (seed, sample) keeps streams decorrelated — consecutive seeds would
/// otherwise be shifted copies of one another — and makes sample s draw the
/// same values no matter which thread runs it.
std::uint64_t sample_stream_seed(std::uint64_t seed, int sample) {
  std::uint64_t z =
      seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(sample) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Per-worker accumulators.  Everything is integral, so combining worker
/// results is order-independent and the report stays bit-identical across
/// thread counts.
struct WorkerAccum {
  std::int64_t finish_sum = 0;
  int on_time = 0;
  std::vector<int> critical_count;
  std::vector<std::int64_t> duration_sum;
  CpmSolver::Stats stats;
};

}  // namespace

util::Result<RiskReport> analyze_risk(const ScheduleSpace& space,
                                      const meta::Database& db, ScheduleRunId plan_id,
                                      const RiskOptions& options) {
  if (options.samples < 1) return util::invalid("risk: samples must be >= 1");
  const ScheduleRun& plan = space.plan(plan_id);
  if (plan.nodes.empty()) return util::invalid("risk: plan has no activities");

  const std::int64_t anchor = plan.anchor.minutes_since_epoch();
  auto rel = [&](cal::WorkInstant t) {
    return std::max<std::int64_t>(0, t.minutes_since_epoch() - anchor);
  };

  // Static structure shared by all samples.
  const std::size_t n = plan.nodes.size();
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<CpmActivity> base(n);
  std::vector<std::vector<cal::WorkDuration>> histories(n);
  std::vector<bool> fixed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const ScheduleNode& node = space.node(plan.nodes[i]);
    index[plan.nodes[i].value()] = i;
    if (node.completed && node.actual_finish) {
      std::int64_t start =
          node.actual_start ? rel(*node.actual_start) : rel(*node.actual_finish);
      base[i].release = start;
      base[i].duration = rel(*node.actual_finish) - start;
      fixed[i] = true;
    } else {
      base[i].release = node.actual_start ? rel(*node.actual_start) : 0;
      base[i].duration = (node.planned_finish - node.planned_start).count_minutes();
      histories[i] = DurationEstimator::history(db, node.activity);
    }
  }
  for (const auto& dep : plan.deps)
    base[index.at(dep.to.value())].preds.push_back(index.at(dep.from.value()));

  // Compile once; fixed durations and releases are baked in, only the
  // uncertain durations change per sample.
  auto compiled = CpmSolver::compile(base);
  if (!compiled.ok()) return compiled.error();
  CpmSolver& base_solver = compiled.value();
  CpmResult deterministic;
  base_solver.solve(deterministic);
  const std::int64_t det_makespan = deterministic.makespan;
  CpmSolver::Stats base_stats = base_solver.take_stats();

  RiskReport report;
  report.samples = options.samples;
  report.deterministic_finish = cal::WorkInstant(anchor + det_makespan);

  // Each worker block simulates a contiguous range of samples on its own
  // solver copy, in lane batches of kLanes: the batch's duration matrix is
  // filled sample-by-sample from the per-sample RNG streams (the draw
  // sequence of each sample is exactly the PR 2 per-sample path, so every
  // duration is bit-identical), then one solve_batch sweep produces all
  // makespans and criticality flags.  Finishes land at their sample index,
  // accumulators merge after the pool drains, and everything accumulated is
  // integral — so the report is bit-identical for any thread count and any
  // batch width.
  constexpr std::size_t kLanes = 8;
  std::vector<std::int64_t> finishes(static_cast<std::size_t>(options.samples));
  auto run_block = [&](int lo, int hi, CpmSolver solver, WorkerAccum& acc) {
    acc.critical_count.assign(n, 0);
    acc.duration_sum.assign(n, 0);
    std::vector<std::int64_t> durations(n * kLanes);
    std::vector<std::uint8_t> critical(n * kLanes);
    std::int64_t makespans[kLanes];
    for (int s0 = lo; s0 < hi; s0 += static_cast<int>(kLanes)) {
      const std::size_t lanes =
          std::min<std::size_t>(kLanes, static_cast<std::size_t>(hi - s0));
      for (std::size_t l = 0; l < lanes; ++l) {
        const int s = s0 + static_cast<int>(l);
        util::Rng rng(sample_stream_seed(options.seed, s));
        for (std::size_t i = 0; i < n; ++i) {
          if (fixed[i]) {  // actuals are the same in every lane
            durations[i * lanes + l] = base[i].duration;
            continue;
          }
          std::int64_t d;
          if (histories[i].size() >= 2) {
            // Bootstrap from measured runs.
            const auto& h = histories[i];
            d = h[static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<std::int64_t>(h.size()) - 1))]
                    .count_minutes();
          } else {
            double f = rng.uniform(1.0 - options.default_spread,
                                   1.0 + options.default_spread);
            d = std::max<std::int64_t>(
                1,
                static_cast<std::int64_t>(static_cast<double>(base[i].duration) * f));
          }
          durations[i * lanes + l] = d;
          acc.duration_sum[i] += d;
        }
      }
      solver.solve_batch(durations.data(), lanes, makespans, critical.data());
      for (std::size_t l = 0; l < lanes; ++l) {
        const int s = s0 + static_cast<int>(l);
        finishes[static_cast<std::size_t>(s)] = makespans[l];
        acc.finish_sum += makespans[l];
        if (makespans[l] <= det_makespan) ++acc.on_time;
        for (std::size_t i = 0; i < n; ++i)
          if (!fixed[i] && critical[i * lanes + l]) ++acc.critical_count[i];
      }
    }
    acc.stats = solver.take_stats();
  };

  // Blocks are sharded across the shared worker pool — no thread spawn per
  // call.  The block partition depends only on options.threads, and block b
  // computes the same values whichever pool lane runs it.
  const int threads = std::clamp(options.threads, 1, options.samples);
  std::vector<WorkerAccum> accums(static_cast<std::size_t>(threads));
  if (threads == 1) {
    run_block(0, options.samples, std::move(base_solver), accums[0]);
  } else {
    const int per = options.samples / threads;
    const int extra = options.samples % threads;
    std::vector<std::pair<int, int>> blocks;
    blocks.reserve(static_cast<std::size_t>(threads));
    int lo = 0;
    for (int t = 0; t < threads; ++t) {
      int hi = lo + per + (t < extra ? 1 : 0);
      blocks.emplace_back(lo, hi);
      lo = hi;
    }
    WorkerPool::shared().run(threads, [&](int t) {
      run_block(blocks[static_cast<std::size_t>(t)].first,
                blocks[static_cast<std::size_t>(t)].second, base_solver,
                accums[static_cast<std::size_t>(t)]);
    });
  }

  std::int64_t finish_sum = 0;
  std::vector<int> critical_count(n, 0);
  std::vector<std::int64_t> duration_sum(n, 0);
  int on_time = 0;
  CpmSolver::Stats stats = base_stats;
  for (const WorkerAccum& acc : accums) {
    finish_sum += acc.finish_sum;
    on_time += acc.on_time;
    for (std::size_t i = 0; i < n; ++i) {
      critical_count[i] += acc.critical_count[i];
      duration_sum[i] += acc.duration_sum[i];
    }
    stats.compiles += acc.stats.compiles;
    stats.solves += acc.stats.solves;
    stats.incremental_solves += acc.stats.incremental_solves;
    stats.parallel_solves += acc.stats.parallel_solves;
    stats.batched_lanes += acc.stats.batched_lanes;
  }
  publish_solver_stats(options.bus, "risk", stats);

  std::sort(finishes.begin(), finishes.end());
  auto pct = [&](double p) {
    auto idx = static_cast<std::size_t>(p * static_cast<double>(finishes.size() - 1));
    return finishes[idx];
  };
  report.mean_finish = cal::WorkInstant(anchor + finish_sum / options.samples);
  report.p50_finish = cal::WorkInstant(anchor + pct(0.5));
  report.p90_finish = cal::WorkInstant(anchor + pct(0.9));
  report.on_time_probability =
      static_cast<double>(on_time) / static_cast<double>(options.samples);

  for (std::size_t i = 0; i < n; ++i) {
    const ScheduleNode& node = space.node(plan.nodes[i]);
    ActivityRisk ar;
    ar.activity = node.activity;
    ar.criticality = fixed[i] ? 0.0
                              : static_cast<double>(critical_count[i]) /
                                    static_cast<double>(options.samples);
    // Fixed activities never sample: their mean is exactly the actual.
    ar.mean_duration = cal::WorkDuration::minutes(
        fixed[i] ? base[i].duration : duration_sum[i] / options.samples);
    report.activities.push_back(std::move(ar));
  }
  return report;
}

std::string RiskReport::render(const cal::WorkCalendar& calendar) const {
  using util::pad_right;
  std::string out = "Schedule risk (" + std::to_string(samples) + " samples)\n";
  out += "  deterministic finish: " + calendar.format_date(deterministic_finish) +
         "  (met in " + util::format_double(100 * on_time_probability, 1) +
         "% of scenarios)\n";
  out += "  mean: " + calendar.format_date(mean_finish) +
         "   P50: " + calendar.format_date(p50_finish) +
         "   P90: " + calendar.format_date(p90_finish) + "\n";
  out += "  " + pad_right("activity", 16) + pad_right("criticality", 13) +
         "mean duration\n";
  out += "  " + util::repeat('-', 44) + "\n";
  const std::int64_t mpd = calendar.minutes_per_day();
  for (const auto& a : activities) {
    out += "  " + pad_right(a.activity, 16) +
           pad_right(util::format_double(100 * a.criticality, 1) + "%", 13) +
           a.mean_duration.str(mpd) + "\n";
  }
  return out;
}

}  // namespace herc::sched
