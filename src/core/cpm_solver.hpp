#pragma once
// Reusable CPM scheduling kernel.
//
// compute_cpm (cpm.hpp) rebuilds a vector-of-vectors digraph, re-validates,
// and re-toposorts on every call — fine for one-shot planning, wasteful for
// the hot paths that re-solve the *same* network thousands of times with
// different durations (Monte Carlo risk, crash-to-deadline, drag, slip
// propagation on every database event).  CpmSolver splits the work:
//
//   compile()  — once per network: validate, build flat CSR successor /
//                predecessor arrays (predecessor blocks sorted ascending,
//                successor lists pre-sorted by activity index), partition
//                the activities into topological *levels*, run the cycle
//                check.  compile_stream() is the bounded-memory variant for
//                mega-graphs: activities stream in, only the flat SoA/CSR
//                arrays are ever materialized.
//   solve()    — per scenario: forward/backward passes plus critical-path
//                extraction into a caller-owned CpmResult.  After the first
//                solve every buffer is reused: zero allocation per solve.
//                With a SolveOptions::pool, each level is chunked across a
//                WorkerPool — every activity in a level depends only on
//                strictly earlier levels, so chunks write disjoint slots and
//                the result is bit-identical to the serial pass at any
//                thread count (the makespan reduction folds per-chunk
//                maxima in fixed chunk order).  Networks below
//                serial_threshold take the serial path unchanged, so small
//                solves never pay fork/join latency.
//   solve_batch() — the Monte Carlo lane kernel: W duration scenarios laid
//                out lane-contiguous ([activity * lanes + lane]) solved in
//                one forward/backward sweep.  The inner loops are plain
//                int64 lane arithmetic over contiguous memory, written to
//                autovectorize; per lane the arithmetic is exactly solve()'s,
//                so batching cannot change any sampled value.
//   set_duration() / set_release() — the incremental fast path: structure is
//                immutable after compile, so value mutations never
//                re-validate, re-build, or re-toposort.
//
// A solver is copyable; per-thread copies share no state, which is how
// analyze_risk shards sample blocks across the shared WorkerPool.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/cpm.hpp"
#include "obs/event_bus.hpp"
#include "util/result.hpp"

namespace herc::sched {

class WorkerPool;

/// Per-solve execution knobs.  Defaults reproduce the serial kernel; pass a
/// pool to opt into the level-parallel path on big networks.
struct SolveOptions {
  /// Worker pool for the level-parallel passes; nullptr = always serial.
  WorkerPool* pool = nullptr;
  /// Networks smaller than this stay serial even with a pool — fork/join
  /// latency would swamp the pass itself (16k activities solve in ~0.5 ms).
  std::size_t serial_threshold = 32768;
  /// Activities per parallel task within one level; levels at most one
  /// chunk wide are processed inline on the calling thread.
  std::size_t chunk = 4096;
};

class CpmSolver {
 public:
  /// Counters since construction or the last take_stats().  A solve is
  /// *incremental* when it reuses a previously solved structure (every solve
  /// after the first on one compiled network).
  struct Stats {
    std::uint64_t compiles = 0;
    std::uint64_t solves = 0;
    std::uint64_t incremental_solves = 0;
    std::uint64_t parallel_solves = 0;  ///< solves that took the level-parallel path
    std::uint64_t batched_lanes = 0;    ///< Monte Carlo lanes solved via solve_batch
  };

  CpmSolver() = default;

  /// Compiles `activities` into level-partitioned CSR form.  Fails
  /// (kInvalid) on a negative duration or release, an out-of-range
  /// predecessor, or a precedence cycle — the same conditions as
  /// compute_cpm, checked exactly once.
  [[nodiscard]] static util::Result<CpmSolver> compile(
      const std::vector<CpmActivity>& activities);

  /// Receives one activity per call, index implicit and ascending:
  /// (duration, release, predecessor indices).  The preds pointer need only
  /// stay valid for the duration of the call.
  using ActivitySink = std::function<void(
      std::int64_t duration, std::int64_t release, const std::uint32_t* preds,
      std::size_t n_preds)>;

  /// Bounded-memory compile for streamed mega-graphs: `stream` must invoke
  /// the sink exactly `n` times (activity 0..n-1 in order) and is called
  /// twice — once to size the CSR arrays, once to fill them — so it must be
  /// deterministic.  Only the solver's flat arrays are allocated: no
  /// vector-of-vectors AoS network ever exists, which is what makes
  /// 1M-activity graphs compile in a few hundred MB less than the
  /// CpmActivity form.  Same validation and errors as compile().
  [[nodiscard]] static util::Result<CpmSolver> compile_stream(
      std::size_t n, const std::function<void(const ActivitySink&)>& stream);

  [[nodiscard]] std::size_t size() const { return n_; }
  /// Topological depth of the compiled network (0 for an empty one): the
  /// number of levels the parallel passes sweep.
  [[nodiscard]] std::size_t levels() const {
    return level_off_.empty() ? 0 : level_off_.size() - 1;
  }
  [[nodiscard]] std::int64_t duration(std::size_t i) const { return durations_[i]; }
  [[nodiscard]] std::int64_t release(std::size_t i) const { return releases_[i]; }

  /// Value mutations: no validation beyond clamping to >= 0 (compile proved
  /// the structure sound; negative inputs cannot corrupt it).
  void set_duration(std::size_t i, std::int64_t d) {
    durations_[i] = d < 0 ? 0 : d;
  }
  void set_release(std::size_t i, std::int64_t r) { releases_[i] = r < 0 ? 0 : r; }

  /// Full CPM solution into `out`, reusing its buffers.  Infallible: the
  /// compiled structure is acyclic and values are non-negative.
  void solve(CpmResult& out) { solve(out, SolveOptions{}); }
  /// As above; with options.pool set and the network at or above
  /// options.serial_threshold, runs the level-parallel passes.  Output is
  /// bit-identical to the serial path at any thread count.
  void solve(CpmResult& out, const SolveOptions& options);

  /// Forward pass only (early dates internally, returns the makespan).
  /// The cheapest probe for duration-swap loops like drag.
  [[nodiscard]] std::int64_t solve_makespan() {
    return solve_makespan(SolveOptions{});
  }
  [[nodiscard]] std::int64_t solve_makespan(const SolveOptions& options);

  /// Monte Carlo lane kernel.  `durations` holds `lanes` duration scenarios
  /// laid out lane-contiguous: durations[i * lanes + l] is activity i's
  /// duration in scenario l (fixed activities must carry the same value in
  /// every lane).  Writes each scenario's makespan to makespans[l] and its
  /// per-activity criticality flags to critical[i * lanes + l].  Releases
  /// come from the compiled network.  Per lane the results are exactly what
  /// solve() would produce after set_duration of that lane's durations.
  void solve_batch(const std::int64_t* durations, std::size_t lanes,
                   std::int64_t* makespans, std::uint8_t* critical);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Returns the counters accumulated since the last take and zeroes them —
  /// the delta a caller publishes to observability.
  Stats take_stats() {
    Stats s = stats_;
    stats_ = Stats{};
    return s;
  }

 private:
  /// Shared compile tail: pred blocks sorted, levels computed (index-order
  /// fast path for forward-indexed networks, CSR Kahn otherwise), cycle
  /// check, level-grouped topological order built.
  [[nodiscard]] static util::Result<CpmSolver> finalize(CpmSolver s);

  void count_solve() {
    ++stats_.solves;
    if (solved_once_) ++stats_.incremental_solves;
    solved_once_ = true;
  }
  void count_batch(std::size_t lanes) {
    stats_.solves += lanes;
    stats_.incremental_solves += lanes - (solved_once_ ? 0 : 1);
    stats_.batched_lanes += lanes;
    solved_once_ = true;
  }

  std::size_t n_ = 0;
  std::vector<std::int64_t> durations_;
  std::vector<std::int64_t> releases_;
  // CSR adjacency.  succ_[succ_off_[v] .. succ_off_[v+1]) are v's successors
  // in ascending index order (counting sort by construction), so the
  // critical-path walk is a plain scan — no per-step copy + sort.
  // Predecessor blocks are sorted ascending too: order is semantically free
  // (preds are only max'ed over) and the sorted scan is kinder to the cache
  // on random shapes.
  std::vector<std::uint32_t> succ_off_, succ_;
  std::vector<std::uint32_t> pred_off_, pred_;
  // Topological order grouped by level: order_[level_off_[L] ..
  // level_off_[L+1]) is level L, ascending activity index within the level.
  // Every predecessor of a level-L activity lives in a level < L, which is
  // the invariant the parallel passes rely on.
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> level_off_;
  std::vector<std::int64_t> scratch_ef_;  ///< solve_makespan early finishes
  std::vector<std::int64_t> chunk_max_;   ///< per-chunk makespan maxima
  std::vector<std::int64_t> batch_es_, batch_ef_, batch_ls_;  ///< lane scratch
  Stats stats_;
  bool solved_once_ = false;
};

/// Publishes a solver's taken Stats as one `cpm.solver` scope event (the
/// MetricsRegistry turns it into solver_compiles / solver_solves /
/// solver_incremental_solves / solver_parallel_solves /
/// solver_batched_lanes counters).  No-op when the bus is off or the stats
/// are empty, so hot paths pay one atomic load.
inline void publish_solver_stats(obs::EventBus* bus, std::string category,
                                 const CpmSolver::Stats& stats) {
  if (!obs::on(bus)) return;
  if (stats.compiles == 0 && stats.solves == 0) return;
  obs::Event e;
  e.kind = obs::EventKind::kScope;
  e.name = "cpm.solver";
  e.category = std::move(category);
  e.args = {{"compiles", std::to_string(stats.compiles)},
            {"solves", std::to_string(stats.solves)},
            {"resolves", std::to_string(stats.incremental_solves)}};
  if (stats.parallel_solves > 0)
    e.args.push_back({"parallel", std::to_string(stats.parallel_solves)});
  if (stats.batched_lanes > 0)
    e.args.push_back({"batched", std::to_string(stats.batched_lanes)});
  bus->publish(std::move(e));
}

}  // namespace herc::sched
