#pragma once
// Reusable CPM scheduling kernel.
//
// compute_cpm (cpm.hpp) rebuilds a vector-of-vectors digraph, re-validates,
// and re-toposorts on every call — fine for one-shot planning, wasteful for
// the hot paths that re-solve the *same* network thousands of times with
// different durations (Monte Carlo risk, crash-to-deadline, drag, slip
// propagation on every database event).  CpmSolver splits the work:
//
//   compile()  — once per network: validate, build flat CSR successor /
//                predecessor arrays (successor lists pre-sorted by activity
//                index), cache a topological order, run the cycle check.
//   solve()    — per scenario: forward/backward passes plus critical-path
//                extraction into a caller-owned CpmResult.  After the first
//                solve every buffer is reused: zero allocation per solve.
//   set_duration() / set_release() — the incremental fast path: structure is
//                immutable after compile, so value mutations never
//                re-validate, re-build, or re-toposort.
//
// A solver is copyable; per-thread copies share no state, which is how
// analyze_risk shards samples across a thread pool.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cpm.hpp"
#include "obs/event_bus.hpp"
#include "util/result.hpp"

namespace herc::sched {

class CpmSolver {
 public:
  /// Counters since construction or the last take_stats().  A solve is
  /// *incremental* when it reuses a previously solved structure (every solve
  /// after the first on one compiled network).
  struct Stats {
    std::uint64_t compiles = 0;
    std::uint64_t solves = 0;
    std::uint64_t incremental_solves = 0;
  };

  CpmSolver() = default;

  /// Compiles `activities` into CSR form.  Fails (kInvalid) on a negative
  /// duration or release, an out-of-range predecessor, or a precedence
  /// cycle — the same conditions as compute_cpm, checked exactly once.
  [[nodiscard]] static util::Result<CpmSolver> compile(
      const std::vector<CpmActivity>& activities);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::int64_t duration(std::size_t i) const { return durations_[i]; }
  [[nodiscard]] std::int64_t release(std::size_t i) const { return releases_[i]; }

  /// Value mutations: no validation beyond clamping to >= 0 (compile proved
  /// the structure sound; negative inputs cannot corrupt it).
  void set_duration(std::size_t i, std::int64_t d) {
    durations_[i] = d < 0 ? 0 : d;
  }
  void set_release(std::size_t i, std::int64_t r) { releases_[i] = r < 0 ? 0 : r; }

  /// Full CPM solution into `out`, reusing its buffers.  Infallible: the
  /// compiled structure is acyclic and values are non-negative.
  void solve(CpmResult& out);

  /// Forward pass only (early dates internally, returns the makespan).
  /// The cheapest probe for duration-swap loops like drag.
  [[nodiscard]] std::int64_t solve_makespan();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Returns the counters accumulated since the last take and zeroes them —
  /// the delta a caller publishes to observability.
  Stats take_stats() {
    Stats s = stats_;
    stats_ = Stats{};
    return s;
  }

 private:
  void count_solve() {
    ++stats_.solves;
    if (solved_once_) ++stats_.incremental_solves;
    solved_once_ = true;
  }

  std::size_t n_ = 0;
  std::vector<std::int64_t> durations_;
  std::vector<std::int64_t> releases_;
  // CSR adjacency.  succ_[succ_off_[v] .. succ_off_[v+1]) are v's successors
  // in ascending index order (counting sort by construction), so the
  // critical-path walk is a plain scan — no per-step copy + sort.
  std::vector<std::uint32_t> succ_off_, succ_;
  std::vector<std::uint32_t> pred_off_, pred_;
  std::vector<std::uint32_t> order_;  ///< cached topological order
  std::vector<std::int64_t> scratch_ef_;  ///< solve_makespan early finishes
  Stats stats_;
  bool solved_once_ = false;
};

/// Publishes a solver's taken Stats as one `cpm.solver` scope event (the
/// MetricsRegistry turns it into solver_compiles / solver_solves /
/// solver_incremental_solves counters).  No-op when the bus is off or the
/// stats are empty, so hot paths pay one atomic load.
inline void publish_solver_stats(obs::EventBus* bus, std::string category,
                                 const CpmSolver::Stats& stats) {
  if (!obs::on(bus)) return;
  if (stats.compiles == 0 && stats.solves == 0) return;
  obs::Event e;
  e.kind = obs::EventKind::kScope;
  e.name = "cpm.solver";
  e.category = std::move(category);
  e.args = {{"compiles", std::to_string(stats.compiles)},
            {"solves", std::to_string(stats.solves)},
            {"resolves", std::to_string(stats.incremental_solves)}};
  bus->publish(std::move(e));
}

}  // namespace herc::sched
