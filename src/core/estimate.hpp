#pragma once
// Activity-duration estimation.
//
// "The duration of an activity can be based either on the designer's
//  intuition or on the measured results of similar tasks." — paper, Sec. III
//
// The estimator combines a designer-supplied intuition table with
// history-based predictors over the execution-space metadata (completed runs
// of the same activity).  The paper leaves automatic prediction to future
// work ("instances of tools and data that are bound to tasks may serve as
// inputs to such a prediction model"); we implement the four standard
// predictors the project-scheduling literature it cites (PERT) suggests, and
// bench/ablation_predictor compares them on synthetic noisy histories.

#include <string>
#include <unordered_map>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "metadata/database.hpp"

namespace herc::sched {

enum class EstimateStrategy {
  kIntuition,  ///< designer table, falling back to the default duration
  kLast,       ///< duration of the most recent completed run
  kMean,       ///< arithmetic mean over all completed runs
  kEwma,       ///< exponentially weighted moving average (newest weighted most)
  kPert,       ///< three-point (optimistic + 4*likely + pessimistic) / 6
};

[[nodiscard]] const char* estimate_strategy_name(EstimateStrategy s);

class DurationEstimator {
 public:
  explicit DurationEstimator(cal::WorkDuration fallback = cal::WorkDuration::hours(8))
      : fallback_(fallback) {}

  /// Designer intuition for one activity.
  void set_intuition(const std::string& activity, cal::WorkDuration d) {
    intuition_[activity] = d;
  }

  void set_fallback(cal::WorkDuration d) { fallback_ = d; }
  [[nodiscard]] cal::WorkDuration fallback() const { return fallback_; }

  /// EWMA smoothing factor (weight of the newest observation), default 0.5.
  void set_ewma_alpha(double a) { ewma_alpha_ = a; }

  /// Completed-run durations of `activity`, oldest first.
  [[nodiscard]] static std::vector<cal::WorkDuration> history(
      const meta::Database& db, const std::string& activity);

  /// Estimates the next duration of `activity`.  History strategies fall
  /// back to intuition (then the default) when no completed run exists.
  [[nodiscard]] cal::WorkDuration estimate(const meta::Database& db,
                                           const std::string& activity,
                                           EstimateStrategy strategy) const;

  /// Pure function over an explicit history; used by the ablation bench.
  [[nodiscard]] cal::WorkDuration estimate_from(
      const std::vector<cal::WorkDuration>& history, EstimateStrategy strategy) const;

 private:
  [[nodiscard]] cal::WorkDuration intuition_or_fallback(
      const std::string& activity) const;

  std::unordered_map<std::string, cal::WorkDuration> intuition_;
  cal::WorkDuration fallback_;
  double ewma_alpha_ = 0.5;
};

}  // namespace herc::sched
