#include "core/estimate.hpp"

#include <algorithm>

namespace herc::sched {

const char* estimate_strategy_name(EstimateStrategy s) {
  switch (s) {
    case EstimateStrategy::kIntuition: return "intuition";
    case EstimateStrategy::kLast: return "last";
    case EstimateStrategy::kMean: return "mean";
    case EstimateStrategy::kEwma: return "ewma";
    case EstimateStrategy::kPert: return "pert";
  }
  return "?";
}

std::vector<cal::WorkDuration> DurationEstimator::history(const meta::Database& db,
                                                          const std::string& activity) {
  std::vector<cal::WorkDuration> out;
  for (meta::RunId rid : db.runs_of_activity(activity)) {
    const meta::Run& r = db.run(rid);
    if (r.status == meta::RunStatus::kCompleted)
      out.push_back(r.finished_at - r.started_at);
  }
  return out;
}

cal::WorkDuration DurationEstimator::intuition_or_fallback(
    const std::string& activity) const {
  auto it = intuition_.find(activity);
  return it == intuition_.end() ? fallback_ : it->second;
}

cal::WorkDuration DurationEstimator::estimate(const meta::Database& db,
                                              const std::string& activity,
                                              EstimateStrategy strategy) const {
  if (strategy == EstimateStrategy::kIntuition) return intuition_or_fallback(activity);
  auto h = history(db, activity);
  if (h.empty()) return intuition_or_fallback(activity);
  return estimate_from(h, strategy);
}

cal::WorkDuration DurationEstimator::estimate_from(
    const std::vector<cal::WorkDuration>& history, EstimateStrategy strategy) const {
  if (history.empty()) return fallback_;
  switch (strategy) {
    case EstimateStrategy::kIntuition:
      return fallback_;
    case EstimateStrategy::kLast:
      return history.back();
    case EstimateStrategy::kMean: {
      std::int64_t sum = 0;
      for (auto d : history) sum += d.count_minutes();
      return cal::WorkDuration::minutes(sum / static_cast<std::int64_t>(history.size()));
    }
    case EstimateStrategy::kEwma: {
      double acc = static_cast<double>(history.front().count_minutes());
      for (std::size_t i = 1; i < history.size(); ++i)
        acc = ewma_alpha_ * static_cast<double>(history[i].count_minutes()) +
              (1.0 - ewma_alpha_) * acc;
      return cal::WorkDuration::minutes(static_cast<std::int64_t>(acc));
    }
    case EstimateStrategy::kPert: {
      // Three-point estimate: optimistic = min, pessimistic = max, most
      // likely = median of the observed durations.
      std::vector<std::int64_t> mins;
      mins.reserve(history.size());
      for (auto d : history) mins.push_back(d.count_minutes());
      std::sort(mins.begin(), mins.end());
      std::int64_t opt = mins.front();
      std::int64_t pess = mins.back();
      std::int64_t likely = mins[mins.size() / 2];
      return cal::WorkDuration::minutes((opt + 4 * likely + pess) / 6);
    }
  }
  return fallback_;
}

}  // namespace herc::sched
