#pragma once
// Schedule planning = simulated flow execution (the paper's central idea).
//
// "One way to view the development of a design schedule is as a simulation
//  of the execution of a flow.  Just as Level 3 data is created when an
//  actual flow is executed, Level 3 data may also be created when the
//  execution of a flow is simulated." — paper, Sec. III
//
// The Planner performs the same post-order traversal of the task tree that
// the Executor performs, but instead of invoking tools it creates schedule
// instances (ScheduleNodes) carrying estimated durations and resource
// assignments, wires schedule dependencies mirroring the tree's data flow,
// and then solves the resulting activity network with CPM (optionally
// resource-leveled) to obtain planned dates.

#include <string>
#include <unordered_map>
#include <vector>

#include "core/estimate.hpp"
#include "core/resources.hpp"
#include "core/schedule_space.hpp"
#include "flow/task_tree.hpp"
#include "obs/event_bus.hpp"

namespace herc::sched {

struct PlanRequest {
  std::string name = "plan";
  cal::WorkInstant anchor;  ///< no activity may start before this
  EstimateStrategy strategy = EstimateStrategy::kIntuition;
  /// Resource assignment per activity name.  Activities without an entry get
  /// no resources (and are not resource-constrained).
  std::unordered_map<std::string, std::vector<util::ResourceId>> assignments;
  /// Apply serial resource leveling after CPM (requires assignments to refer
  /// to resources registered in the database, whose capacities are used).
  bool level_resources = false;
  /// When set (and level_resources is true), level through the
  /// priority-rule RCPSP SGS (sgs_schedule) with this rule instead of the
  /// legacy CPM-early-start level_serial — the scalable path for large
  /// resource-constrained plans.
  std::optional<PriorityRule> leveling_rule;
  /// Plan-evolution metadata: the plan this one refines (paper Fig. 5 shows
  /// several schedule-instance versions from successive plans).
  ScheduleRunId derived_from;
  /// Committed completion date; status reports show the margin against it
  /// and what-if/crash analysis can target it.
  std::optional<cal::WorkInstant> deadline;
  /// Inter-plan sequencing: this plan's anchor is raised to the latest
  /// projected finish among these plans (e.g. chip B starts when chip A
  /// ends).  Evaluated once at planning time — re-plan to pick up slips in a
  /// predecessor.
  std::vector<ScheduleRunId> predecessors;
};

class Planner {
 public:
  /// `space` receives the schedule instances; `db` supplies run history for
  /// the estimator and resource definitions for leveling.  `bus` (optional)
  /// receives schedule_planned / activity_planned events and timed scopes.
  Planner(ScheduleSpace& space, const meta::Database& db,
          const DurationEstimator& estimator, obs::EventBus* bus = nullptr)
      : space_(&space), db_(&db), estimator_(&estimator), bus_(bus) {}

  /// Simulates execution of `tree` and returns the new plan.  The tree does
  /// NOT need bound leaves — planning precedes binding in the paper's
  /// procedure ("a user prepares for schedule planning by extracting a task
  /// tree that covers the scope of the intended task").
  [[nodiscard]] util::Result<ScheduleRunId> plan(const flow::TaskTree& tree,
                                                 const PlanRequest& request);

  /// Convenience: re-plan an existing plan with a fresh request anchor and
  /// strategy, deriving from it (creates the SC2 generation of Fig. 5).
  [[nodiscard]] util::Result<ScheduleRunId> replan(const flow::TaskTree& tree,
                                                   ScheduleRunId previous,
                                                   PlanRequest request);

 private:
  ScheduleSpace* space_;
  const meta::Database* db_;
  const DurationEstimator* estimator_;
  obs::EventBus* bus_ = nullptr;
};

}  // namespace herc::sched
