#pragma once
// Critical Path Method over an activity-on-node network.
//
// The paper adopts the constraint/network schedule model ("Constraint or
// network models predominate in project planning", Sec. III, citing PERT).
// This module is the numeric core: given activities with durations,
// precedence edges and optional release times, compute early/late dates,
// slack and the critical path.  It is deliberately independent of the
// schedule-space object model so the perf benches can drive it at
// 10k-activity scale and the planner/tracker can reuse it for both initial
// planning and slip propagation.
//
// All times are work minutes (see calendar/work_calendar.hpp); the caller
// maps to civil dates for display.

#include <cstdint>
#include <vector>

#include "util/result.hpp"

namespace herc::sched {

/// One activity of the network.  Index in the containing vector is its id.
struct CpmActivity {
  std::int64_t duration = 0;        ///< work minutes, >= 0
  std::vector<std::size_t> preds;   ///< finish-to-start predecessors
  std::int64_t release = 0;         ///< earliest allowed start (work minutes)
};

/// Full CPM solution.
struct CpmResult {
  std::vector<std::int64_t> early_start;
  std::vector<std::int64_t> early_finish;
  std::vector<std::int64_t> late_start;
  std::vector<std::int64_t> late_finish;
  std::vector<std::int64_t> total_slack;  ///< LS - ES
  std::vector<std::int64_t> free_slack;   ///< min(succ ES) - EF (makespan for sinks)
  /// total_slack == 0, one byte per activity (not vector<bool>: the
  /// level-parallel backward pass writes flags at scattered activity
  /// indices, which must be distinct memory locations, and bytes are what
  /// the batched Monte Carlo lane kernel emits).
  std::vector<std::uint8_t> critical;
  std::int64_t makespan = 0;              ///< max early_finish (0 if empty)
  /// One longest (critical) path, source to sink, by activity index.
  std::vector<std::size_t> critical_path;
};

/// Computes the CPM solution.  Fails (kInvalid) on a precedence cycle, a
/// negative duration, or an out-of-range predecessor index.
///
/// The backward pass anchors every sink at the makespan, so project-level
/// slack is relative to the earliest possible completion.
///
/// This is a thin one-shot wrapper over CpmSolver (cpm_solver.hpp): callers
/// that re-solve the same network with different durations should compile a
/// solver once and use its incremental fast path instead.
[[nodiscard]] util::Result<CpmResult> compute_cpm(
    const std::vector<CpmActivity>& activities);

/// Critical-path drag per activity: how much the makespan shrinks if the
/// activity's duration drops to zero (everything else fixed).  Zero for
/// non-critical activities; for critical ones it is bounded by both the
/// activity's duration and the total slack of parallel paths — the right
/// number for prioritising crash/optimisation effort (compare
/// crash_to_deadline, which uses it implicitly via re-solving).
///
/// Computed by re-solving with each critical activity zeroed: O(critical *
/// n), fine at planning scale.  Same error conditions as compute_cpm.
[[nodiscard]] util::Result<std::vector<std::int64_t>> compute_drag(
    const std::vector<CpmActivity>& activities);

}  // namespace herc::sched
