#include "core/schedule_space.hpp"

#include <stdexcept>

namespace herc::sched {

std::string ScheduleNode::str() const {
  std::string out = "SC" + std::to_string(version) + " [" + activity + "] " + id.str();
  if (completed) out += " (done)";
  return out;
}

std::string ScheduleRun::str() const {
  std::string out = "plan '" + name + "' " + id.str();
  if (derived_from.valid()) out += " derived-from " + derived_from.str();
  if (status == PlanStatus::kSuperseded) out += " (superseded)";
  return out;
}

ScheduleRunId ScheduleSpace::create_plan(const std::string& name, cal::WorkInstant at,
                                         ScheduleRunId derived_from) {
  // A fresh plan supersedes the plan it derives from; other plans (e.g. for
  // other task trees) stay active.
  if (derived_from.valid()) plan_mut(derived_from).status = PlanStatus::kSuperseded;
  ScheduleRun p;
  p.id = ScheduleRunId{plans_.size() + 1};
  p.name = name;
  p.created_at = at;
  p.derived_from = derived_from;
  plans_.push_back(std::move(p));
  ++version_;
  ++plans_version_;
  return plans_.back().id;
}

const ScheduleRun& ScheduleSpace::plan(ScheduleRunId id) const {
  if (!id.valid() || id.value() > plans_.size())
    throw std::out_of_range("ScheduleSpace::plan: unknown id " + id.str());
  return plans_[id.value() - 1];
}

ScheduleRun& ScheduleSpace::plan_mut(ScheduleRunId id) {
  if (!id.valid() || id.value() > plans_.size())
    throw std::out_of_range("ScheduleSpace::plan: unknown id " + id.str());
  ++version_;  // conservative: handing out a mutable ref counts as a mutation
  ++plans_version_;
  return plans_.mutate(id.value() - 1);
}

std::optional<ScheduleRunId> ScheduleSpace::active_plan() const {
  for (auto it = plans_.rbegin(); it != plans_.rend(); ++it)
    if (it->status == PlanStatus::kActive) return it->id;
  return std::nullopt;
}

std::vector<ScheduleRunId> ScheduleSpace::lineage(ScheduleRunId id) const {
  std::vector<ScheduleRunId> out;
  while (id.valid()) {
    out.push_back(id);
    id = plan(id).derived_from;
  }
  return out;
}

ScheduleNodeId ScheduleSpace::create_node(ScheduleRunId plan_id,
                                          const std::string& activity,
                                          schema::RuleId rule) {
  ScheduleNode n;
  n.id = ScheduleNodeId{nodes_.size() + 1};
  n.plan = plan_id;
  n.activity = activity;
  n.activity_sym = symbols_.intern(activity);
  n.rule = rule;
  auto& container = containers_[n.activity_sym];
  n.version = static_cast<int>(container.size()) + 1;
  container.push_back(n.id);
  plan_mut(plan_id).nodes.push_back(n.id);
  nodes_.push_back(std::move(n));
  ++version_;
  ++nodes_version_;
  return nodes_.back().id;
}

const ScheduleNode& ScheduleSpace::node(ScheduleNodeId id) const {
  if (!id.valid() || id.value() > nodes_.size())
    throw std::out_of_range("ScheduleSpace::node: unknown id " + id.str());
  return nodes_[id.value() - 1];
}

ScheduleNode& ScheduleSpace::node_mut(ScheduleNodeId id) {
  if (!id.valid() || id.value() > nodes_.size())
    throw std::out_of_range("ScheduleSpace::node: unknown id " + id.str());
  ++version_;  // conservative, see plan_mut
  ++nodes_version_;
  return nodes_.mutate(id.value() - 1);
}

void ScheduleSpace::add_dep(ScheduleRunId plan_id, ScheduleNodeId from,
                            ScheduleNodeId to) {
  if (node(from).plan != plan_id || node(to).plan != plan_id)
    throw std::logic_error("ScheduleSpace::add_dep: nodes belong to another plan");
  plan_mut(plan_id).deps.push_back(ScheduleDep{from, to});
}

const util::CowVec<ScheduleNodeId>& ScheduleSpace::container(
    const std::string& activity) const {
  static const util::CowVec<ScheduleNodeId> kEmpty;
  util::SymbolId sym = symbols_.find(activity);
  if (!sym.valid()) return kEmpty;
  auto it = containers_.find(sym);
  return it == containers_.end() ? kEmpty : it->second;
}

std::optional<ScheduleNodeId> ScheduleSpace::node_in_plan(
    ScheduleRunId plan_id, const std::string& activity) const {
  for (ScheduleNodeId nid : plan(plan_id).nodes)
    if (node(nid).activity == activity) return nid;
  return std::nullopt;
}

util::Result<LinkId> ScheduleSpace::add_link(ScheduleNodeId node_id,
                                             meta::EntityInstanceId instance,
                                             cal::WorkInstant at) {
  if (!node_id.valid() || node_id.value() > nodes_.size())
    return util::not_found("add_link: unknown schedule node " + node_id.str());
  if (!instance.valid()) return util::invalid("add_link: invalid entity instance");
  if (link_of(node_id))
    return util::conflict("schedule node " + node_id.str() + " is already linked");
  Link l;
  l.id = LinkId{links_.size() + 1};
  l.schedule_node = node_id;
  l.entity_instance = instance;
  l.linked_at = at;
  links_.push_back(l);
  ++version_;
  ++links_version_;
  return links_.back().id;
}

std::optional<LinkId> ScheduleSpace::link_of(ScheduleNodeId node_id) const {
  for (const auto& l : links_)
    if (l.schedule_node == node_id) return l.id;
  return std::nullopt;
}

std::string ScheduleSpace::dump_containers(const meta::Database& db) const {
  std::string out = "Schedule space (" + std::to_string(plans_.size()) + " plans, " +
                    std::to_string(nodes_.size()) + " schedule instances, " +
                    std::to_string(links_.size()) + " links)\n";
  for (const auto& r : db.schema().rules()) {
    out += "  [" + r.activity + "]";
    const auto& ids = container(r.activity);
    if (ids.empty()) {
      out += " (empty)\n";
      continue;
    }
    out += "\n";
    for (ScheduleNodeId nid : ids) {
      const ScheduleNode& n = node(nid);
      out += "    o " + n.str() + " of " + plan(n.plan).str();
      if (auto lid = link_of(nid)) {
        const Link& l = links_[lid->value() - 1];
        out += "  == linked to " + db.instance(l.entity_instance).str();
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace herc::sched
