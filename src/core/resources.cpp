#include "core/resources.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace herc::sched {

namespace {

/// Booked intervals of one resource, kept unsorted; usage queries scan.
struct ResourceTimeline {
  struct Interval {
    std::int64_t start, finish;
  };
  std::vector<Interval> booked;

  /// Concurrent bookings covering instant t (intervals are half-open).
  [[nodiscard]] int usage_at(std::int64_t t) const {
    int n = 0;
    for (const auto& iv : booked)
      if (iv.start <= t && t < iv.finish) ++n;
    return n;
  }
};

}  // namespace

util::Result<LevelingResult> level_serial(const LevelingInput& input) {
  const std::size_t n = input.activities.size();
  if (input.requirements.size() != n)
    return util::invalid("leveling: requirements size mismatch");
  for (int c : input.capacities)
    if (c <= 0) return util::invalid("leveling: capacities must be positive");
  for (const auto& reqs : input.requirements)
    for (std::size_t r : reqs)
      if (r >= input.capacities.size())
        return util::invalid("leveling: unknown resource index " + std::to_string(r));
  if (!input.blocked.empty() && input.blocked.size() != input.capacities.size())
    return util::invalid("leveling: blocked windows must cover every resource");

  auto cpm = compute_cpm(input.activities);
  if (!cpm.ok()) return cpm.error();

  // Serial scheme: priority order by (CPM early start, index).
  std::vector<std::size_t> priority(n);
  std::iota(priority.begin(), priority.end(), 0);
  std::sort(priority.begin(), priority.end(), [&](std::size_t a, std::size_t b) {
    if (cpm.value().early_start[a] != cpm.value().early_start[b])
      return cpm.value().early_start[a] < cpm.value().early_start[b];
    return a < b;
  });

  LevelingResult out;
  out.start.assign(n, 0);
  out.finish.assign(n, 0);
  std::vector<bool> placed(n, false);
  std::vector<ResourceTimeline> timelines(input.capacities.size());
  // Time-off windows saturate the resource: book them capacity times so no
  // activity can be placed across them.
  if (!input.blocked.empty()) {
    for (std::size_t r = 0; r < timelines.size(); ++r)
      for (auto [s, e] : input.blocked[r]) {
        if (e <= s) return util::invalid("leveling: empty blocked window");
        for (int k = 0; k < input.capacities[r]; ++k)
          timelines[r].booked.push_back({s, e});
      }
  }

  // The CPM priority order is NOT necessarily a topological order once
  // releases differ, so we repeatedly sweep for the first unplaced activity
  // whose predecessors are all placed.  Each sweep places one activity:
  // O(n^2) sweeps worst case, fine for planning-sized inputs and still fast
  // at the bench's 10k activities because sweeps usually hit immediately.
  for (std::size_t placed_count = 0; placed_count < n; ++placed_count) {
    std::size_t chosen = n;
    for (std::size_t cand : priority) {
      if (placed[cand]) continue;
      bool ready = true;
      for (std::size_t p : input.activities[cand].preds)
        if (!placed[p]) {
          ready = false;
          break;
        }
      if (ready) {
        chosen = cand;
        break;
      }
    }
    if (chosen == n) return util::invalid("leveling: precedence cycle");

    const CpmActivity& act = input.activities[chosen];
    std::int64_t earliest = act.release;
    for (std::size_t p : act.preds) earliest = std::max(earliest, out.finish[p]);

    // Candidate start times: `earliest` plus every booked-interval finish
    // after it on a required resource (capacity can only free up there).
    std::set<std::int64_t> candidates{earliest};
    for (std::size_t r : input.requirements[chosen])
      for (const auto& iv : timelines[r].booked)
        if (iv.finish > earliest) candidates.insert(iv.finish);

    std::int64_t start = earliest;
    for (std::int64_t t : candidates) {
      // Feasible iff every required resource stays under capacity across
      // [t, t+dur).  Usage only changes at booked-interval starts, so check
      // t and each booked start inside the window.
      bool feasible = true;
      for (std::size_t r : input.requirements[chosen]) {
        const auto& tl = timelines[r];
        int cap = input.capacities[r];
        if (tl.usage_at(t) >= cap) {
          feasible = false;
          break;
        }
        for (const auto& iv : tl.booked) {
          if (iv.start > t && iv.start < t + act.duration &&
              tl.usage_at(iv.start) >= cap) {
            feasible = false;
            break;
          }
        }
        if (!feasible) break;
      }
      if (feasible) {
        start = t;
        break;
      }
      start = t;  // if no candidate is feasible the last (latest) one is:
                  // all conflicting bookings have finished by then
    }

    out.start[chosen] = start;
    out.finish[chosen] = start + act.duration;
    out.makespan = std::max(out.makespan, out.finish[chosen]);
    for (std::size_t r : input.requirements[chosen])
      timelines[r].booked.push_back({start, out.finish[chosen]});
    placed[chosen] = true;
  }

  return out;
}

}  // namespace herc::sched
