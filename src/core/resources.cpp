#include "core/resources.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>
#include <set>

#include "core/cpm_solver.hpp"

namespace herc::sched {

namespace {

/// Booked intervals of one resource, kept unsorted; usage queries scan.
struct ResourceTimeline {
  struct Interval {
    std::int64_t start, finish;
  };
  std::vector<Interval> booked;

  /// Concurrent bookings covering instant t (intervals are half-open).
  [[nodiscard]] int usage_at(std::int64_t t) const {
    int n = 0;
    for (const auto& iv : booked)
      if (iv.start <= t && t < iv.finish) ++n;
    return n;
  }
};

}  // namespace

util::Result<LevelingResult> level_serial(const LevelingInput& input) {
  const std::size_t n = input.activities.size();
  if (input.requirements.size() != n)
    return util::invalid("leveling: requirements size mismatch");
  for (int c : input.capacities)
    if (c <= 0) return util::invalid("leveling: capacities must be positive");
  for (const auto& reqs : input.requirements)
    for (std::size_t r : reqs)
      if (r >= input.capacities.size())
        return util::invalid("leveling: unknown resource index " + std::to_string(r));
  if (!input.blocked.empty() && input.blocked.size() != input.capacities.size())
    return util::invalid("leveling: blocked windows must cover every resource");

  auto cpm = compute_cpm(input.activities);
  if (!cpm.ok()) return cpm.error();

  // Serial scheme: priority order by (CPM early start, index).
  std::vector<std::size_t> priority(n);
  std::iota(priority.begin(), priority.end(), 0);
  std::sort(priority.begin(), priority.end(), [&](std::size_t a, std::size_t b) {
    if (cpm.value().early_start[a] != cpm.value().early_start[b])
      return cpm.value().early_start[a] < cpm.value().early_start[b];
    return a < b;
  });

  LevelingResult out;
  out.start.assign(n, 0);
  out.finish.assign(n, 0);
  std::vector<bool> placed(n, false);
  std::vector<ResourceTimeline> timelines(input.capacities.size());
  // Time-off windows saturate the resource: book them capacity times so no
  // activity can be placed across them.
  if (!input.blocked.empty()) {
    for (std::size_t r = 0; r < timelines.size(); ++r)
      for (auto [s, e] : input.blocked[r]) {
        if (e <= s) return util::invalid("leveling: empty blocked window");
        for (int k = 0; k < input.capacities[r]; ++k)
          timelines[r].booked.push_back({s, e});
      }
  }

  // The CPM priority order is NOT necessarily a topological order once
  // releases differ, so we repeatedly sweep for the first unplaced activity
  // whose predecessors are all placed.  Each sweep places one activity:
  // O(n^2) sweeps worst case, fine for planning-sized inputs and still fast
  // at the bench's 10k activities because sweeps usually hit immediately.
  for (std::size_t placed_count = 0; placed_count < n; ++placed_count) {
    std::size_t chosen = n;
    for (std::size_t cand : priority) {
      if (placed[cand]) continue;
      bool ready = true;
      for (std::size_t p : input.activities[cand].preds)
        if (!placed[p]) {
          ready = false;
          break;
        }
      if (ready) {
        chosen = cand;
        break;
      }
    }
    if (chosen == n) return util::invalid("leveling: precedence cycle");

    const CpmActivity& act = input.activities[chosen];
    std::int64_t earliest = act.release;
    for (std::size_t p : act.preds) earliest = std::max(earliest, out.finish[p]);

    // Candidate start times: `earliest` plus every booked-interval finish
    // after it on a required resource (capacity can only free up there).
    std::set<std::int64_t> candidates{earliest};
    for (std::size_t r : input.requirements[chosen])
      for (const auto& iv : timelines[r].booked)
        if (iv.finish > earliest) candidates.insert(iv.finish);

    std::int64_t start = earliest;
    for (std::int64_t t : candidates) {
      // Feasible iff every required resource stays under capacity across
      // [t, t+dur).  Usage only changes at booked-interval starts, so check
      // t and each booked start inside the window.
      bool feasible = true;
      for (std::size_t r : input.requirements[chosen]) {
        const auto& tl = timelines[r];
        int cap = input.capacities[r];
        if (tl.usage_at(t) >= cap) {
          feasible = false;
          break;
        }
        for (const auto& iv : tl.booked) {
          if (iv.start > t && iv.start < t + act.duration &&
              tl.usage_at(iv.start) >= cap) {
            feasible = false;
            break;
          }
        }
        if (!feasible) break;
      }
      if (feasible) {
        start = t;
        break;
      }
      start = t;  // if no candidate is feasible the last (latest) one is:
                  // all conflicting bookings have finished by then
    }

    out.start[chosen] = start;
    out.finish[chosen] = start + act.duration;
    out.makespan = std::max(out.makespan, out.finish[chosen]);
    for (std::size_t r : input.requirements[chosen])
      timelines[r].booked.push_back({start, out.finish[chosen]});
    placed[chosen] = true;
  }

  return out;
}

namespace {

/// Piecewise-constant usage level of one resource, keyed by the instants
/// where it changes: steps_[t] = usage from t (inclusive) until the next
/// key; level before the first key and after the last is 0 (bookings are
/// finite, and ensure() preserves that invariant).  Queries and bookings
/// are O(log events + events touched) instead of level_serial's
/// O(bookings) rescans — the difference between planning-sized and
/// mega-project-sized networks.
class UsageProfile {
 public:
  [[nodiscard]] int at(std::int64_t t) const {
    auto it = steps_.upper_bound(t);
    return it == steps_.begin() ? 0 : std::prev(it)->second;
  }

  /// Adds `units` over [s, e).
  void add(std::int64_t s, std::int64_t e, int units) {
    if (s >= e) return;
    ensure(s);
    ensure(e);
    for (auto it = steps_.find(s); it->first < e; ++it) it->second += units;
  }

  /// Earliest t >= from where usage + units <= cap holds throughout
  /// [t, t + dur).  Precondition: units <= cap (the trailing level is 0, so
  /// the search always terminates).  dur == 0 never conflicts.
  [[nodiscard]] std::int64_t find_slot(std::int64_t from, std::int64_t dur,
                                       int units, int cap) const {
    if (dur == 0) return from;
    std::int64_t t = from;
    for (;;) {
      if (at(t) + units > cap) {
        // Conflict at t itself: jump to the next instant the level drops
        // far enough.
        auto it = steps_.upper_bound(t);
        while (it != steps_.end() && it->second + units > cap) ++it;
        if (it == steps_.end()) return t;  // unreachable when units <= cap
        t = it->first;
        continue;
      }
      // Level at t fits; scan the boundaries inside (t, t + dur).
      auto it = steps_.upper_bound(t);
      while (it != steps_.end() && it->first < t + dur &&
             it->second + units <= cap)
        ++it;
      if (it == steps_.end() || it->first >= t + dur) return t;
      while (it != steps_.end() && it->second + units > cap) ++it;
      if (it == steps_.end()) return t + dur;  // unreachable when units <= cap
      t = it->first;
    }
  }

 private:
  /// Materializes a boundary at t carrying the level already in effect.
  void ensure(std::int64_t t) {
    auto it = steps_.find(t);
    if (it == steps_.end()) steps_.emplace(t, at(t));
  }

  std::map<std::int64_t, int> steps_;
};

}  // namespace

const char* priority_rule_name(PriorityRule rule) {
  switch (rule) {
    case PriorityRule::kLst: return "lst";
    case PriorityRule::kLft: return "lft";
    case PriorityRule::kMinSlack: return "minslack";
  }
  return "?";
}

util::Result<LevelingResult> sgs_schedule(const LevelingInput& input,
                                          const SgsOptions& options) {
  const std::size_t n = input.activities.size();
  if (input.requirements.size() != n)
    return util::invalid("leveling: requirements size mismatch");
  for (int c : input.capacities)
    if (c <= 0) return util::invalid("leveling: capacities must be positive");
  for (const auto& reqs : input.requirements)
    for (std::size_t r : reqs)
      if (r >= input.capacities.size())
        return util::invalid("leveling: unknown resource index " + std::to_string(r));
  if (!input.blocked.empty() && input.blocked.size() != input.capacities.size())
    return util::invalid("leveling: blocked windows must cover every resource");

  // One unconstrained CPM solve supplies the cycle check and every
  // priority key the rules draw from.
  auto compiled = CpmSolver::compile(input.activities);
  if (!compiled.ok()) return compiled.error();
  CpmResult cpm;
  compiled.value().solve(cpm);

  // Aggregate per-activity resource demand (a repeated requirement entry
  // means another unit) and reject demand no instant can ever satisfy —
  // level_serial silently over-books in that corner; SGS refuses.
  std::vector<std::map<std::size_t, int>> demand(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r : input.requirements[i]) ++demand[i][r];
    for (const auto& [r, units] : demand[i])
      if (units > input.capacities[r])
        return util::invalid("leveling: activity " + std::to_string(i) +
                             " requires " + std::to_string(units) +
                             " units of resource " + std::to_string(r) +
                             " but its capacity is " +
                             std::to_string(input.capacities[r]));
  }

  std::vector<UsageProfile> profiles(input.capacities.size());
  if (!input.blocked.empty()) {
    for (std::size_t r = 0; r < profiles.size(); ++r)
      for (auto [s, e] : input.blocked[r]) {
        if (e <= s) return util::invalid("leveling: empty blocked window");
        // Saturate the pool across the window: nothing fits inside it.
        profiles[r].add(std::max<std::int64_t>(0, s), e, input.capacities[r]);
      }
  }

  // Priority key per rule; smaller schedules earlier, ties by index.
  auto key = [&](std::size_t i) {
    switch (options.rule) {
      case PriorityRule::kLst: return cpm.late_start[i];
      case PriorityRule::kLft: return cpm.late_finish[i];
      case PriorityRule::kMinSlack: return cpm.total_slack[i];
    }
    return cpm.late_finish[i];
  };

  // Serial SGS: a min-heap of eligible activities (all predecessors
  // placed), popped in (key, index) order.  Successor lists mirror the
  // predecessor multiset so duplicate edges stay balanced.
  std::vector<std::uint32_t> indeg(n, 0);
  std::vector<std::vector<std::uint32_t>> succs(n);
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = static_cast<std::uint32_t>(input.activities[i].preds.size());
    for (std::size_t p : input.activities[i].preds)
      succs[p].push_back(static_cast<std::uint32_t>(i));
  }
  using Entry = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> eligible;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) eligible.emplace(key(i), i);

  LevelingResult out;
  out.start.assign(n, 0);
  out.finish.assign(n, 0);
  std::size_t placed = 0;
  while (!eligible.empty()) {
    const std::size_t i = eligible.top().second;
    eligible.pop();
    const CpmActivity& act = input.activities[i];

    std::int64_t t = act.release;
    for (std::size_t p : act.preds) t = std::max(t, out.finish[p]);
    // Fixed-point across the required pools: each pool pushes t to its own
    // earliest feasible slot until every pool agrees.  t only grows and is
    // bounded by the last booked instant (all profiles drop to 0 there), so
    // the loop terminates.
    for (bool settled = false; !settled;) {
      settled = true;
      for (const auto& [r, units] : demand[i]) {
        const std::int64_t slot = profiles[r].find_slot(
            t, act.duration, units, input.capacities[r]);
        if (slot != t) {
          t = slot;
          settled = false;
          break;
        }
      }
    }

    out.start[i] = t;
    out.finish[i] = t + act.duration;
    out.makespan = std::max(out.makespan, out.finish[i]);
    for (const auto& [r, units] : demand[i])
      profiles[r].add(t, out.finish[i], units);
    ++placed;
    for (std::uint32_t s : succs[i])
      if (--indeg[s] == 0) eligible.emplace(key(s), s);
  }
  if (placed != n) return util::invalid("leveling: precedence cycle");

  return out;
}

}  // namespace herc::sched
