#include "core/whatif.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/cpm.hpp"
#include "core/cpm_solver.hpp"

namespace herc::sched {

namespace {

/// Dense CPM view of one plan.
struct PlanNetwork {
  std::vector<CpmActivity> acts;
  std::vector<ScheduleNodeId> nodes;
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::int64_t anchor = 0;
};

enum class NetworkMode {
  kPinned,  ///< releases pin every activity at its current projection —
            ///< right for delay analysis (nothing may move earlier)
  kFree,    ///< releases only encode hard constraints (actuals, "now") —
            ///< right for crash analysis (shortening may pull work earlier)
};

PlanNetwork build_network(const ScheduleSpace& space, ScheduleRunId plan_id,
                          NetworkMode mode) {
  PlanNetwork net;
  const ScheduleRun& plan = space.plan(plan_id);
  net.anchor = plan.anchor.minutes_since_epoch();
  auto rel = [&](cal::WorkInstant t) {
    return std::max<std::int64_t>(0, t.minutes_since_epoch() - net.anchor);
  };

  // "Now" proxy for kFree: the earliest instant any incomplete activity is
  // currently projected to start (the tracker maintains planned_start >= now).
  std::int64_t now_rel = 0;
  bool any_incomplete = false;
  for (ScheduleNodeId nid : plan.nodes) {
    const ScheduleNode& n = space.node(nid);
    if (n.completed) continue;
    now_rel = any_incomplete ? std::min(now_rel, rel(n.planned_start))
                             : rel(n.planned_start);
    any_incomplete = true;
  }

  for (ScheduleNodeId nid : plan.nodes) {
    const ScheduleNode& n = space.node(nid);
    net.index[nid.value()] = net.nodes.size();
    net.nodes.push_back(nid);
    CpmActivity act;
    if (n.completed && n.actual_finish) {
      std::int64_t start = n.actual_start ? rel(*n.actual_start) : rel(*n.actual_finish);
      act.release = start;
      act.duration = rel(*n.actual_finish) - start;
    } else {
      act.duration = (n.planned_finish - n.planned_start).count_minutes();
      if (n.actual_start) {
        act.release = rel(*n.actual_start);
      } else {
        act.release = mode == NetworkMode::kPinned ? rel(n.planned_start) : now_rel;
      }
    }
    net.acts.push_back(std::move(act));
  }
  for (const auto& dep : plan.deps)
    net.acts[net.index.at(dep.to.value())].preds.push_back(
        net.index.at(dep.from.value()));
  return net;
}

}  // namespace

util::Result<SlipImpact> simulate_delay(const ScheduleSpace& space, ScheduleRunId plan,
                                        const std::string& activity,
                                        cal::WorkDuration delay) {
  if (delay.count_minutes() < 0) return util::invalid("simulate_delay: negative delay");
  auto nid = space.node_in_plan(plan, activity);
  if (!nid)
    return util::not_found("simulate_delay: plan has no activity '" + activity + "'");
  if (space.node(*nid).completed)
    return util::conflict("simulate_delay: '" + activity +
                          "' is complete; its dates are history");

  PlanNetwork net = build_network(space, plan, NetworkMode::kPinned);
  auto solver = CpmSolver::compile(net.acts);
  if (!solver.ok()) return solver.error();
  CpmResult base;
  solver.value().solve(base);

  std::size_t target = net.index.at(nid->value());
  solver.value().set_duration(target,
                              net.acts[target].duration + delay.count_minutes());
  CpmResult delayed;
  solver.value().solve(delayed);

  SlipImpact impact;
  impact.activity = activity;
  impact.delay = delay;
  impact.old_finish = cal::WorkInstant(net.anchor + base.makespan);
  impact.new_finish = cal::WorkInstant(net.anchor + delayed.makespan);
  impact.project_slip = impact.new_finish - impact.old_finish;
  impact.absorbed = impact.project_slip.count_minutes() == 0;
  for (std::size_t i = 0; i < net.nodes.size(); ++i) {
    if (i == target) continue;
    if (delayed.early_start[i] != base.early_start[i])
      impact.shifted_activities.push_back(space.node(net.nodes[i]).activity);
  }
  return impact;
}

util::Result<CrashPlan> crash_to_deadline(const ScheduleSpace& space,
                                          ScheduleRunId plan, cal::WorkInstant deadline,
                                          cal::WorkDuration floor) {
  if (floor.count_minutes() < 1)
    return util::invalid("crash_to_deadline: floor must be at least a minute");

  PlanNetwork net = build_network(space, plan, NetworkMode::kFree);
  const std::int64_t deadline_rel =
      deadline.minutes_since_epoch() - net.anchor;

  // One compiled network for the whole greedy search: each round is a
  // durations-only incremental re-solve (up to 10k of them).
  auto solver = CpmSolver::compile(net.acts).take();  // plan deps are acyclic
  CpmResult solved;

  CrashPlan result;
  result.deadline = deadline;
  solver.solve(solved);
  result.projected_finish = cal::WorkInstant(net.anchor + solved.makespan);
  result.shortfall = result.projected_finish - deadline;
  if (result.shortfall.count_minutes() <= 0) return result;  // already met

  // Accumulate reductions per activity index.
  std::unordered_map<std::size_t, std::int64_t> cut;
  std::vector<std::int64_t> original(net.acts.size());
  for (std::size_t i = 0; i < net.acts.size(); ++i) original[i] = net.acts[i].duration;

  // Greedy: each round, shorten the longest critical incomplete activity.
  for (int rounds = 0; rounds < 10000; ++rounds) {
    solver.solve(solved);
    std::int64_t over = solved.makespan - deadline_rel;
    if (over <= 0) break;

    std::size_t best = net.acts.size();
    std::int64_t best_len = floor.count_minutes();
    for (std::size_t i = 0; i < net.acts.size(); ++i) {
      if (space.node(net.nodes[i]).completed) continue;
      if (!solved.critical[i]) continue;
      if (solver.duration(i) > best_len) {
        best_len = solver.duration(i);
        best = i;
      }
    }
    if (best == net.acts.size()) {
      result.feasible = false;  // everything critical is already at the floor
      break;
    }
    std::int64_t reducible = solver.duration(best) - floor.count_minutes();
    std::int64_t take = std::min(reducible, over);
    solver.set_duration(best, solver.duration(best) - take);
    cut[best] += take;
  }

  for (const auto& [i, minutes] : cut) {
    result.steps.push_back(CrashStep{space.node(net.nodes[i]).activity,
                                     cal::WorkDuration::minutes(original[i]),
                                     cal::WorkDuration::minutes(minutes)});
  }
  std::sort(result.steps.begin(), result.steps.end(),
            [](const CrashStep& a, const CrashStep& b) {
              return a.reduction.count_minutes() > b.reduction.count_minutes();
            });
  return result;
}

std::vector<ActivityDrag> plan_drag(const ScheduleSpace& space, ScheduleRunId plan) {
  PlanNetwork net = build_network(space, plan, NetworkMode::kFree);
  auto drags = compute_drag(net.acts).value();  // plan deps are acyclic
  std::vector<ActivityDrag> out;
  for (std::size_t i = 0; i < net.nodes.size(); ++i) {
    const ScheduleNode& n = space.node(net.nodes[i]);
    if (n.completed) continue;  // history has no drag
    out.push_back(ActivityDrag{n.activity, cal::WorkDuration::minutes(drags[i])});
  }
  std::sort(out.begin(), out.end(), [](const ActivityDrag& a, const ActivityDrag& b) {
    return a.drag.count_minutes() > b.drag.count_minutes();
  });
  return out;
}

std::vector<DeadlineSlack> deadline_slack(const ScheduleSpace& space,
                                          ScheduleRunId plan,
                                          cal::WorkInstant deadline) {
  PlanNetwork net = build_network(space, plan, NetworkMode::kPinned);
  auto solved = compute_cpm(net.acts).value();
  std::int64_t margin =
      deadline.minutes_since_epoch() - (net.anchor + solved.makespan);
  std::vector<DeadlineSlack> out;
  for (std::size_t i = 0; i < net.nodes.size(); ++i) {
    const ScheduleNode& n = space.node(net.nodes[i]);
    if (n.completed) continue;
    out.push_back(DeadlineSlack{
        n.activity, cal::WorkDuration::minutes(solved.total_slack[i] + margin)});
  }
  return out;
}

}  // namespace herc::sched
