#pragma once
// What-if analysis over a schedule plan.
//
// The paper positions integrated schedule data as the basis for "tracking,
// predicting, and optimizing design schedules"; this module adds the two
// standard predictive questions a project manager asks of a network plan:
//
//   1. What happens to the completion date if activity X slips by D?
//      (impact analysis — slack absorbs the slip or the project moves)
//   2. We have a deadline; which activities must be shortened, and by how
//      much, for the projection to meet it?  (crash analysis — classic CPM
//      crashing restricted to critical activities)
//
// Both are pure functions over the schedule space: they never mutate the
// plan (the tracker owns mutations).

#include <optional>
#include <string>
#include <vector>

#include "core/schedule_space.hpp"

namespace herc::sched {

/// Result of "what if `activity` takes `delay` longer than projected?".
struct SlipImpact {
  std::string activity;
  cal::WorkDuration delay;
  cal::WorkInstant old_finish;     ///< projected completion before
  cal::WorkInstant new_finish;     ///< projected completion after
  cal::WorkDuration project_slip;  ///< new - old (0 if slack absorbs it)
  bool absorbed = false;           ///< true if slack fully absorbed the delay
  /// Activities whose projected start moves, in plan order.
  std::vector<std::string> shifted_activities;
};

/// Impact of delaying one incomplete activity.  kNotFound for an unknown
/// activity, kConflict if the activity is already complete (its dates are
/// history), kInvalid for a negative delay.
[[nodiscard]] util::Result<SlipImpact> simulate_delay(const ScheduleSpace& space,
                                                      ScheduleRunId plan,
                                                      const std::string& activity,
                                                      cal::WorkDuration delay);

/// One crash recommendation: shorten this activity by `reduction`.
struct CrashStep {
  std::string activity;
  cal::WorkDuration current;    ///< projected duration now
  cal::WorkDuration reduction;  ///< how much to cut
};

/// Result of "can we meet `deadline`?".
struct CrashPlan {
  cal::WorkInstant deadline;
  cal::WorkInstant projected_finish;  ///< before crashing
  cal::WorkDuration shortfall;        ///< projected - deadline (<= 0: already met)
  bool feasible = true;  ///< false if even crashing everything to `floor` misses
  std::vector<CrashStep> steps;       ///< empty when already met
};

/// Greedy CPM crash: repeatedly shorten the longest-duration critical
/// incomplete activity (never below `floor`) until the projection meets the
/// deadline or nothing can be shortened.  Completed activities are fixed.
[[nodiscard]] util::Result<CrashPlan> crash_to_deadline(
    const ScheduleSpace& space, ScheduleRunId plan, cal::WorkInstant deadline,
    cal::WorkDuration floor = cal::WorkDuration::hours(1));

/// Deadline slack of every incomplete activity against a project deadline:
/// how much each may slip before the projection misses `deadline`.
/// (Activities off the critical path get their CPM slack plus the project's
/// margin.)
struct DeadlineSlack {
  std::string activity;
  cal::WorkDuration slack;  ///< negative = already jeopardising the deadline
};

[[nodiscard]] std::vector<DeadlineSlack> deadline_slack(const ScheduleSpace& space,
                                                        ScheduleRunId plan,
                                                        cal::WorkInstant deadline);

/// Critical-path drag of each incomplete activity: how much the projected
/// completion improves if that activity took no time at all.  The ranking
/// tells the manager where optimisation effort actually buys schedule
/// (non-critical activities always have zero drag).  Sorted by drag,
/// largest first; zero-drag activities included.
struct ActivityDrag {
  std::string activity;
  cal::WorkDuration drag;
};

[[nodiscard]] std::vector<ActivityDrag> plan_drag(const ScheduleSpace& space,
                                                  ScheduleRunId plan);

}  // namespace herc::sched
