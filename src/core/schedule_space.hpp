#pragma once
// Level 3 of the four-level architecture, *schedule space*.
//
// "The design schedule objects added to the Hercules representation mirror
//  the actual flow data objects.  A Run in the actual flow space corresponds
//  to a ScheduleRun in the schedule flow space.  ScheduleNodes correspond to
//  Entity instances and are connected using ScheduleDependencies."
//                                                       — paper, Sec. IV
//
// A ScheduleRun is one *plan* (one simulation of the flow's execution); a
// ScheduleNode is the planned counterpart of an activity's output entity
// instance; links connect a schedule node to the entity instance that the
// designer declares to be the activity's final result.  Plans carry a
// derived_from pointer, giving the plan-evolution metadata the paper's
// second query class inspects.
//
// Snapshot semantics match meta::Database: the (default) copy constructor
// takes an O(tables + containers) epoch snapshot — every table is a
// util::CowVec sharing its buffer with the source.  The tracker's in-place
// node/plan rewrites go through plan_mut/node_mut, which unshare lazily.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "metadata/database.hpp"
#include "util/cow.hpp"
#include "util/ids.hpp"
#include "util/interner.hpp"
#include "util/result.hpp"

namespace herc::sched {

using util::LinkId;
using util::ScheduleNodeId;
using util::ScheduleRunId;

/// Planned counterpart of one activity execution.
struct ScheduleNode {
  ScheduleNodeId id;
  ScheduleRunId plan;            ///< owning ScheduleRun
  std::string activity;
  util::SymbolId activity_sym;   ///< interned by ScheduleSpace::create_node
  schema::RuleId rule;
  int version = 1;               ///< version within this activity's container

  // --- plan (written by the Planner / updated by the Tracker) -------------
  cal::WorkDuration est_duration;
  cal::WorkInstant planned_start;    ///< current plan (slips move this)
  cal::WorkInstant planned_finish;
  cal::WorkInstant baseline_start;   ///< as first planned; never moves
  cal::WorkInstant baseline_finish;
  std::vector<util::ResourceId> resources;  ///< who is assigned

  // --- CPM annotations -----------------------------------------------------
  cal::WorkDuration total_slack;
  cal::WorkDuration free_slack;
  bool critical = false;

  // --- actuals (written by the Tracker) ------------------------------------
  std::optional<cal::WorkInstant> actual_start;   ///< set by the first run
  std::optional<cal::WorkInstant> actual_finish;  ///< set when linked
  bool completed = false;
  bool deleted = false;  ///< hidden by the browser; kept for id stability

  [[nodiscard]] std::string str() const;
};

/// Precedence edge between two schedule nodes of the same plan.
struct ScheduleDep {
  ScheduleNodeId from;
  ScheduleNodeId to;
};

enum class PlanStatus { kActive, kSuperseded };

/// One plan: the Level-3 record of one simulated execution of a task tree.
struct ScheduleRun {
  ScheduleRunId id;
  std::string name;                 ///< e.g. "adder plan"
  cal::WorkInstant created_at;
  cal::WorkInstant anchor;          ///< earliest start for any activity of the plan
  std::optional<cal::WorkInstant> deadline;  ///< committed completion date, if any
  ScheduleRunId derived_from;       ///< previous plan version (invalid if first)
  PlanStatus status = PlanStatus::kActive;
  std::vector<ScheduleNodeId> nodes;  ///< in planning (post) order
  std::vector<ScheduleDep> deps;

  [[nodiscard]] std::string str() const;
};

/// Link declaring an entity instance to be a scheduled activity's final
/// design data ("created when the designer determines that the execution of
/// an activity is completed").
struct Link {
  LinkId id;
  ScheduleNodeId schedule_node;
  meta::EntityInstanceId entity_instance;
  cal::WorkInstant linked_at;
};

/// Container for all schedule-space objects of one database.
class ScheduleSpace {
 public:
  // --- plans ---------------------------------------------------------------
  ScheduleRunId create_plan(const std::string& name, cal::WorkInstant at,
                            ScheduleRunId derived_from = ScheduleRunId::invalid());
  [[nodiscard]] const ScheduleRun& plan(ScheduleRunId id) const;
  /// Mutable plan access.  Conservatively bumps version() / plans_version()
  /// — callers (planner, tracker, recovery) use it precisely to mutate.
  [[nodiscard]] ScheduleRun& plan_mut(ScheduleRunId id);
  [[nodiscard]] const util::CowVec<ScheduleRun>& plans() const { return plans_; }

  /// Most recently created plan, if any.
  [[nodiscard]] std::optional<ScheduleRunId> active_plan() const;

  /// Plan ancestry, newest first (the plan-evolution query).
  [[nodiscard]] std::vector<ScheduleRunId> lineage(ScheduleRunId id) const;

  // --- nodes ---------------------------------------------------------------
  ScheduleNodeId create_node(ScheduleRunId plan, const std::string& activity,
                             schema::RuleId rule);
  [[nodiscard]] const ScheduleNode& node(ScheduleNodeId id) const;
  /// Mutable node access; bumps version() / nodes_version() like plan_mut.
  [[nodiscard]] ScheduleNode& node_mut(ScheduleNodeId id);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  void add_dep(ScheduleRunId plan, ScheduleNodeId from, ScheduleNodeId to);

  /// Schedule-instance container of one activity, across plans, in creation
  /// order (SC1, SC2, ... in the paper's Fig. 5).  Reference is stable until
  /// the next create_node of the same activity.
  [[nodiscard]] const util::CowVec<ScheduleNodeId>& container(
      const std::string& activity) const;

  /// Node for `activity` in a given plan, if the plan covers it.
  [[nodiscard]] std::optional<ScheduleNodeId> node_in_plan(
      ScheduleRunId plan, const std::string& activity) const;

  // --- links ---------------------------------------------------------------
  /// Records a completion link.  kConflict if the node is already linked.
  util::Result<LinkId> add_link(ScheduleNodeId node, meta::EntityInstanceId instance,
                                cal::WorkInstant at);
  [[nodiscard]] const util::CowVec<Link>& links() const { return links_; }
  [[nodiscard]] std::optional<LinkId> link_of(ScheduleNodeId node) const;

  /// Multi-line dump of the schedule-space containers (Figs. 5-7, schedule
  /// side).  Shows per-activity schedule instances and any links.
  [[nodiscard]] std::string dump_containers(const meta::Database& db) const;

  // --- fast-path support ---------------------------------------------------
  /// The schedule space's interning pool (activity names).
  [[nodiscard]] const util::SymbolPool& symbols() const { return symbols_; }

  /// Monotonic mutation counter.  Bumped by every mutating entry point,
  /// including plan_mut/node_mut (the tracker and planner mutate through
  /// those).  Coarse dirtiness check; the query cache validates on the
  /// per-table versions below.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Per-table mutation counters (see meta::Database for the contract):
  /// plans_version covers plan fields + node/dep membership lists,
  /// nodes_version covers node fields and the per-activity containers,
  /// links_version covers completion links.
  [[nodiscard]] std::uint64_t plans_version() const { return plans_version_; }
  [[nodiscard]] std::uint64_t nodes_version() const { return nodes_version_; }
  [[nodiscard]] std::uint64_t links_version() const { return links_version_; }

 private:
  util::CowVec<ScheduleRun> plans_;   // index = id - 1
  util::CowVec<ScheduleNode> nodes_;  // index = id - 1
  util::CowVec<Link> links_;          // index = id - 1
  std::unordered_map<util::SymbolId, util::CowVec<ScheduleNodeId>> containers_;
  util::SymbolPool symbols_;
  std::uint64_t version_ = 0;
  std::uint64_t plans_version_ = 0;
  std::uint64_t nodes_version_ = 0;
  std::uint64_t links_version_ = 0;
};

}  // namespace herc::sched
