#pragma once
// Monte Carlo schedule-risk analysis.
//
// The paper motivates keeping schedule data in the flow manager with
// "previous schedule data can be used to predict the duration of future
// projects".  A point estimate hides risk; this module samples activity
// durations (from measured run history when available, otherwise from the
// estimate with a configurable spread), solves CPM per sample, and reports
// the completion-date distribution plus each activity's *criticality index*
// (the fraction of scenarios in which it is critical) — the standard PERT
// generalisation of the critical path.
//
// Deterministic: every sample draws from its own RNG stream derived from
// (seed, sample index), and all accumulation is integral, so the report is
// bit-identical for a given seed regardless of RiskOptions::threads.

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule_space.hpp"
#include "metadata/database.hpp"
#include "obs/event_bus.hpp"

namespace herc::sched {

struct RiskOptions {
  int samples = 1000;
  std::uint64_t seed = 1;
  /// Spread applied when an activity has fewer than 2 measured durations:
  /// duration ~ uniform[est*(1-spread), est*(1+spread)].
  double default_spread = 0.3;
  /// Worker blocks the samples are sharded across (clamped to
  /// [1, samples]), scheduled on the shared sched::WorkerPool — no thread
  /// is ever spawned per call.  Each block owns a copy of the compiled
  /// solver and simulates its samples in batched lanes; every sample draws
  /// from its own seed-derived RNG stream, so the report is bit-identical
  /// for any thread count and any lane width.
  int threads = 1;
  /// Optional observability: receives one cpm.solver stats event per call.
  obs::EventBus* bus = nullptr;
};

struct ActivityRisk {
  std::string activity;
  double criticality = 0;          ///< fraction of samples on the critical path
  cal::WorkDuration mean_duration; ///< mean sampled duration
};

struct RiskReport {
  int samples = 0;
  cal::WorkInstant deterministic_finish;  ///< current CPM projection
  cal::WorkInstant mean_finish;
  cal::WorkInstant p50_finish;
  cal::WorkInstant p90_finish;
  ///< probability the plan meets its own deterministic projection
  double on_time_probability = 0;
  std::vector<ActivityRisk> activities;   ///< plan order

  /// Text summary table.
  [[nodiscard]] std::string render(const cal::WorkCalendar& calendar) const;
};

/// Runs the simulation over the incomplete activities of `plan`.  Completed
/// activities are fixed at their actuals.  Sampling per activity:
///   - >= 2 completed runs of the activity in `db`: bootstrap (sample the
///     observed durations uniformly with replacement);
///   - otherwise: uniform around the current estimate with default_spread.
/// kInvalid if the plan has no activities or samples < 1.
[[nodiscard]] util::Result<RiskReport> analyze_risk(const ScheduleSpace& space,
                                                    const meta::Database& db,
                                                    ScheduleRunId plan,
                                                    const RiskOptions& options = {});

}  // namespace herc::sched
