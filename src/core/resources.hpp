#pragma once
// Resource-constrained scheduling (serial leveling).
//
// The paper lists "optimize the resources associated with future projects"
// as a benefit of keeping schedule data in the flow manager; schedule
// instances carry "the resources needed".  This module implements the
// classic serial schedule-generation scheme: activities are placed in CPM
// early-start priority order at the earliest time where every required
// resource has spare capacity, never violating precedence.
//
// Like cpm.hpp this is independent of the schedule-space object model so it
// can be benchmarked standalone; the Planner adapts plans to/from it.

#include <cstdint>
#include <vector>

#include "core/cpm.hpp"
#include "util/result.hpp"

namespace herc::sched {

struct LevelingInput {
  std::vector<CpmActivity> activities;
  /// requirements[i] = indices of resources activity i occupies (1 unit each
  /// for its whole duration).  May be empty (no constraint).
  std::vector<std::vector<std::size_t>> requirements;
  /// capacities[r] = units of resource r available concurrently (>= 1).
  std::vector<int> capacities;
  /// blocked[r] = half-open [start, finish) windows when resource r is fully
  /// unavailable (vacations).  Optional; if non-empty it must have one entry
  /// per resource.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> blocked;
};

struct LevelingResult {
  std::vector<std::int64_t> start;   ///< leveled start per activity
  std::vector<std::int64_t> finish;  ///< start + duration
  std::int64_t makespan = 0;
};

/// Serial schedule-generation scheme.  Fails (kInvalid) on a precedence
/// cycle, an unknown resource index, or a non-positive capacity.
///
/// Guarantees: precedence respected; per-resource concurrent usage never
/// exceeds capacity; every start >= the activity's release and CPM early
/// start; result is deterministic (ties broken by activity index).
[[nodiscard]] util::Result<LevelingResult> level_serial(const LevelingInput& input);

/// Priority rule for the RCPSP serial schedule-generation scheme: which
/// eligible activity is placed next.  All three are computed from one CPM
/// solve of the unconstrained network — the classic heuristics from the
/// RCPSP literature (mega-project scheduling is resource-constrained;
/// priority-rule SGS is the standard scalable heuristic family for it).
enum class PriorityRule {
  kLst,       ///< smallest CPM late start first
  kLft,       ///< smallest CPM late finish first (usually the strongest)
  kMinSlack,  ///< smallest total slack first (most critical first)
};
[[nodiscard]] const char* priority_rule_name(PriorityRule rule);

struct SgsOptions {
  PriorityRule rule = PriorityRule::kLft;
};

/// Resource-constrained serial SGS over the same LevelingInput (resource
/// pools, 1 unit per requirement, calendar time-off as blocked windows).
/// Repeatedly places the highest-priority *eligible* activity (all
/// predecessors placed) at the earliest time every required resource has
/// spare capacity for its whole duration.
///
/// Differences from level_serial: the placement order follows the chosen
/// priority rule instead of CPM early start, and the resource timelines are
/// event-indexed usage profiles instead of O(bookings) scans — the
/// placement loop is O(n log n + conflict events), which is what lets
/// resource pools constrain six-figure activity networks.
///
/// Guarantees: precedence respected; per-resource concurrent usage never
/// exceeds capacity at any instant; every start >= the activity's release;
/// makespan >= the CPM (resource-unconstrained) lower bound; deterministic
/// (priority ties broken by activity index).  Same error conditions as
/// level_serial.
[[nodiscard]] util::Result<LevelingResult> sgs_schedule(
    const LevelingInput& input, const SgsOptions& options = {});

}  // namespace herc::sched
