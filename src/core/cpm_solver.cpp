#include "core/cpm_solver.hpp"

#include <algorithm>
#include <limits>

#include "util/topo.hpp"

namespace herc::sched {

util::Result<CpmSolver> CpmSolver::compile(
    const std::vector<CpmActivity>& activities) {
  const std::size_t n = activities.size();
  if (n > std::numeric_limits<std::uint32_t>::max())
    return util::invalid("CPM: network too large for the CSR kernel");

  CpmSolver s;
  s.n_ = n;
  s.durations_.resize(n);
  s.releases_.resize(n);

  std::size_t edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const CpmActivity& a = activities[i];
    if (a.duration < 0)
      return util::invalid("CPM: activity " + std::to_string(i) +
                           " has negative duration");
    if (a.release < 0)
      return util::invalid("CPM: activity " + std::to_string(i) +
                           " has negative release time");
    for (std::size_t p : a.preds) {
      if (p >= n)
        return util::invalid("CPM: activity " + std::to_string(i) +
                             " references unknown predecessor " + std::to_string(p));
    }
    s.durations_[i] = a.duration;
    s.releases_[i] = a.release;
    edges += a.preds.size();
  }
  if (edges > std::numeric_limits<std::uint32_t>::max())
    return util::invalid("CPM: network too large for the CSR kernel");

  // Predecessors: flat copy in declaration order (only max'ed over, order
  // free).  Successors: counting sort — filling in ascending activity order
  // leaves every successor list sorted, which the critical-path walk relies
  // on.
  s.pred_off_.assign(n + 1, 0);
  s.succ_off_.assign(n + 1, 0);
  s.pred_.resize(edges);
  s.succ_.resize(edges);
  for (std::size_t i = 0; i < n; ++i) {
    s.pred_off_[i + 1] =
        s.pred_off_[i] + static_cast<std::uint32_t>(activities[i].preds.size());
    for (std::size_t p : activities[i].preds) ++s.succ_off_[p + 1];
  }
  for (std::size_t v = 0; v < n; ++v) s.succ_off_[v + 1] += s.succ_off_[v];
  std::vector<std::uint32_t> cursor(s.succ_off_.begin(), s.succ_off_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t at = s.pred_off_[i];
    for (std::size_t p : activities[i].preds) {
      s.pred_[at++] = static_cast<std::uint32_t>(p);
      s.succ_[cursor[p]++] = static_cast<std::uint32_t>(i);
    }
  }

  // FIFO Kahn over the CSR arrays.  Any valid topological order yields the
  // same CPM values (the passes are pure relaxations), so no priority queue
  // is needed.
  s.order_.reserve(n);
  std::vector<std::uint32_t> indeg(n);
  for (std::size_t v = 0; v < n; ++v) {
    indeg[v] = s.pred_off_[v + 1] - s.pred_off_[v];
    if (indeg[v] == 0) s.order_.push_back(static_cast<std::uint32_t>(v));
  }
  for (std::size_t head = 0; head < s.order_.size(); ++head) {
    std::uint32_t v = s.order_[head];
    for (std::uint32_t e = s.succ_off_[v]; e < s.succ_off_[v + 1]; ++e)
      if (--indeg[s.succ_[e]] == 0) s.order_.push_back(s.succ_[e]);
  }
  if (s.order_.size() != n) {
    // Rare path: rebuild the adjacency form only to name the cycle.
    util::Digraph g(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t p : activities[i].preds) g.add_edge(p, i);
    std::string msg = "CPM: precedence cycle:";
    for (std::size_t v : util::find_cycle(g)) msg += " " + std::to_string(v);
    return util::invalid(msg);
  }

  s.stats_.compiles = 1;
  return s;
}

void CpmSolver::solve(CpmResult& out) {
  count_solve();
  const std::size_t n = n_;
  // Every element of every buffer is written unconditionally below, so a
  // size fixup is all the preparation needed — no prefill pass.  On reuse
  // with an unchanged network size these resizes are no-ops, which is what
  // makes the re-solve path allocation-free.
  out.early_start.resize(n);
  out.early_finish.resize(n);
  out.late_start.resize(n);
  out.late_finish.resize(n);
  out.total_slack.resize(n);
  out.free_slack.resize(n);
  out.critical.resize(n);
  out.makespan = 0;

  // Forward pass: ES = max(release, max pred EF).
  for (std::uint32_t v : order_) {
    std::int64_t es = releases_[v];
    for (std::uint32_t e = pred_off_[v]; e < pred_off_[v + 1]; ++e)
      es = std::max(es, out.early_finish[pred_[e]]);
    out.early_start[v] = es;
    out.early_finish[v] = es + durations_[v];
    out.makespan = std::max(out.makespan, out.early_finish[v]);
  }

  // Backward pass: LF = min succ LS; sinks anchor at the makespan.  Slack
  // and criticality fall out of the same successor scan (free slack needs
  // min succ ES, fetched alongside LS), so one traversal covers all of it.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    std::uint32_t v = *it;
    std::int64_t lf = out.makespan;
    std::int64_t min_succ_es = out.makespan;
    for (std::uint32_t e = succ_off_[v]; e < succ_off_[v + 1]; ++e) {
      std::uint32_t s = succ_[e];
      lf = std::min(lf, out.late_start[s]);
      min_succ_es = std::min(min_succ_es, out.early_start[s]);
    }
    const std::int64_t ls = lf - durations_[v];
    out.late_finish[v] = lf;
    out.late_start[v] = ls;
    out.total_slack[v] = ls - out.early_start[v];
    out.free_slack[v] = min_succ_es - out.early_finish[v];
    out.critical[v] = ls == out.early_start[v];
  }

  // One critical path: walk forward from a critical source, always stepping
  // to the smallest-index critical successor whose ES equals our EF.  CSR
  // successor lists are pre-sorted, so each step is a plain scan.
  out.critical_path.clear();
  if (n > 0) {
    std::size_t cur = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (out.critical[v] && pred_off_[v] == pred_off_[v + 1]) {
        cur = v;
        break;
      }
    }
    // A release time can make every source non-critical only if it pushes
    // some other chain later; criticality then starts at a released activity
    // with no critical predecessor feeding it directly.
    if (cur == n) {
      for (std::size_t v = 0; v < n; ++v) {
        if (!out.critical[v]) continue;
        bool has_critical_pred = false;
        for (std::uint32_t e = pred_off_[v]; e < pred_off_[v + 1]; ++e) {
          std::uint32_t p = pred_[e];
          if (out.critical[p] && out.early_finish[p] == out.early_start[v])
            has_critical_pred = true;
        }
        if (!has_critical_pred) {
          cur = v;
          break;
        }
      }
    }
    while (cur != n) {
      out.critical_path.push_back(cur);
      std::size_t next = n;
      for (std::uint32_t e = succ_off_[cur]; e < succ_off_[cur + 1]; ++e) {
        std::uint32_t s = succ_[e];
        if (out.critical[s] && out.early_start[s] == out.early_finish[cur]) {
          next = s;
          break;
        }
      }
      cur = next;
    }
  }
}

std::int64_t CpmSolver::solve_makespan() {
  count_solve();
  scratch_ef_.resize(n_);
  std::int64_t makespan = 0;
  for (std::uint32_t v : order_) {
    std::int64_t es = releases_[v];
    for (std::uint32_t e = pred_off_[v]; e < pred_off_[v + 1]; ++e)
      es = std::max(es, scratch_ef_[pred_[e]]);
    scratch_ef_[v] = es + durations_[v];
    makespan = std::max(makespan, scratch_ef_[v]);
  }
  return makespan;
}

}  // namespace herc::sched
