#include "core/cpm_solver.hpp"

#include <algorithm>
#include <limits>

#include "core/worker_pool.hpp"
#include "util/topo.hpp"

namespace herc::sched {

util::Result<CpmSolver> CpmSolver::compile(
    const std::vector<CpmActivity>& activities) {
  const std::size_t n = activities.size();
  if (n > std::numeric_limits<std::uint32_t>::max())
    return util::invalid("CPM: network too large for the CSR kernel");

  CpmSolver s;
  s.n_ = n;
  s.durations_.resize(n);
  s.releases_.resize(n);

  // One fused pass validates, copies the value arrays, and counts both CSR
  // sides: the per-activity pred vectors live in scattered heap blocks, so
  // every traversal of them is cache-hostile — this is the dominant cost of
  // a one-shot compile, and it happens exactly twice (count here, fill
  // below), not three times.
  s.pred_off_.assign(n + 1, 0);
  s.succ_off_.assign(n + 1, 0);
  std::size_t edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const CpmActivity& a = activities[i];
    if (a.duration < 0)
      return util::invalid("CPM: activity " + std::to_string(i) +
                           " has negative duration");
    if (a.release < 0)
      return util::invalid("CPM: activity " + std::to_string(i) +
                           " has negative release time");
    for (std::size_t p : a.preds) {
      if (p >= n)
        return util::invalid("CPM: activity " + std::to_string(i) +
                             " references unknown predecessor " + std::to_string(p));
      ++s.succ_off_[p + 1];
    }
    s.durations_[i] = a.duration;
    s.releases_[i] = a.release;
    edges += a.preds.size();
    // Only read back after the overflow check below.
    s.pred_off_[i + 1] = static_cast<std::uint32_t>(edges);
  }
  if (edges > std::numeric_limits<std::uint32_t>::max())
    return util::invalid("CPM: network too large for the CSR kernel");

  // Predecessors: flat copy (finalize sorts each block ascending).
  // Successors: counting sort — filling in ascending activity order leaves
  // every successor list sorted, which the critical-path walk relies on.
  s.pred_.resize(edges);
  s.succ_.resize(edges);
  for (std::size_t v = 0; v < n; ++v) s.succ_off_[v + 1] += s.succ_off_[v];
  std::vector<std::uint32_t> cursor(s.succ_off_.begin(), s.succ_off_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t at = s.pred_off_[i];
    for (std::size_t p : activities[i].preds) {
      s.pred_[at++] = static_cast<std::uint32_t>(p);
      s.succ_[cursor[p]++] = static_cast<std::uint32_t>(i);
    }
  }

  return finalize(std::move(s));
}

util::Result<CpmSolver> CpmSolver::compile_stream(
    std::size_t n, const std::function<void(const ActivitySink&)>& stream) {
  if (n > std::numeric_limits<std::uint32_t>::max())
    return util::invalid("CPM: network too large for the CSR kernel");

  CpmSolver s;
  s.n_ = n;
  s.durations_.resize(n);
  s.releases_.resize(n);
  s.pred_off_.assign(n + 1, 0);
  s.succ_off_.assign(n + 1, 0);

  // Pass 1: validate values, count edges per endpoint.
  std::size_t idx = 0;
  std::uint64_t edges = 0;
  std::string err;
  ActivitySink count_sink = [&](std::int64_t duration, std::int64_t release,
                                const std::uint32_t* preds, std::size_t n_preds) {
    const std::size_t i = idx++;
    if (!err.empty() || i >= n) return;
    if (duration < 0) {
      err = "CPM: activity " + std::to_string(i) + " has negative duration";
      return;
    }
    if (release < 0) {
      err = "CPM: activity " + std::to_string(i) + " has negative release time";
      return;
    }
    s.durations_[i] = duration;
    s.releases_[i] = release;
    for (std::size_t k = 0; k < n_preds; ++k) {
      if (preds[k] >= n) {
        err = "CPM: activity " + std::to_string(i) +
              " references unknown predecessor " + std::to_string(preds[k]);
        return;
      }
      ++s.succ_off_[preds[k] + 1];
    }
    s.pred_off_[i + 1] = static_cast<std::uint32_t>(n_preds);
    edges += n_preds;
  };
  stream(count_sink);
  if (!err.empty()) return util::invalid(err);
  if (idx != n)
    return util::invalid("CPM: stream emitted " + std::to_string(idx) +
                         " activities, expected " + std::to_string(n));
  if (edges > std::numeric_limits<std::uint32_t>::max())
    return util::invalid("CPM: network too large for the CSR kernel");

  for (std::size_t v = 0; v < n; ++v) {
    s.pred_off_[v + 1] += s.pred_off_[v];
    s.succ_off_[v + 1] += s.succ_off_[v];
  }

  // Pass 2: fill the CSR arrays from a second, identical streaming.
  s.pred_.resize(edges);
  s.succ_.resize(edges);
  std::vector<std::uint32_t> pcursor(s.pred_off_.begin(), s.pred_off_.end() - 1);
  std::vector<std::uint32_t> scursor(s.succ_off_.begin(), s.succ_off_.end() - 1);
  idx = 0;
  ActivitySink fill_sink = [&](std::int64_t, std::int64_t,
                               const std::uint32_t* preds, std::size_t n_preds) {
    const std::size_t i = idx++;
    if (!err.empty() || i >= n) return;
    if (s.pred_off_[i] + n_preds != s.pred_off_[i + 1]) {
      err = "CPM: stream is not deterministic (activity " + std::to_string(i) +
            " changed predecessor count between passes)";
      return;
    }
    for (std::size_t k = 0; k < n_preds; ++k) {
      s.pred_[pcursor[i]++] = preds[k];
      s.succ_[scursor[preds[k]]++] = static_cast<std::uint32_t>(i);
    }
  };
  stream(fill_sink);
  if (!err.empty()) return util::invalid(err);
  if (idx != n)
    return util::invalid("CPM: stream is not deterministic (emitted " +
                         std::to_string(idx) + " then " + std::to_string(n) +
                         " activities)");

  return finalize(std::move(s));
}

util::Result<CpmSolver> CpmSolver::finalize(CpmSolver s) {
  const std::size_t n = s.n_;

  // Sort each predecessor block ascending.  Predecessors are only max'ed
  // over, so the order is free — and the sorted scan walks early-finish
  // slots monotonically, which is measurably kinder to the cache on random
  // shapes (the BM_CpmRandomDag outlier).
  for (std::size_t v = 0; v < n; ++v) {
    std::uint32_t* lo = s.pred_.data() + s.pred_off_[v];
    std::uint32_t* hi = s.pred_.data() + s.pred_off_[v + 1];
    if (hi - lo <= 16) {
      // Insertion sort: blocks are almost always tiny (and often already
      // ascending), where std::sort's dispatch overhead dominates.
      for (std::uint32_t* p = lo + 1; p < hi; ++p)
        for (std::uint32_t* q = p; q > lo && q[-1] > q[0]; --q)
          std::swap(q[-1], q[0]);
    } else {
      std::sort(lo, hi);
    }
  }

  // Levels.  Forward-indexed networks (every predecessor index below the
  // activity's own — what every generator and the planner's creation-order
  // networks produce) are cycle-free by construction and level-computable
  // in one index-order pass, skipping Kahn's random-access queue entirely.
  // Blocks are sorted, so "largest pred < v" is one comparison per block.
  bool forward_indexed = true;
  for (std::size_t v = 0; v < n && forward_indexed; ++v) {
    const std::uint32_t lo = s.pred_off_[v], hi = s.pred_off_[v + 1];
    if (hi > lo && s.pred_[hi - 1] >= v) forward_indexed = false;
  }

  std::vector<std::uint32_t> level(n, 0);
  if (forward_indexed) {
    for (std::size_t v = 0; v < n; ++v)
      for (std::uint32_t e = s.pred_off_[v]; e < s.pred_off_[v + 1]; ++e)
        level[v] = std::max(level[v], level[s.pred_[e]] + 1);
  } else {
    // FIFO Kahn over the CSR arrays; levels fall out of the relaxation.
    std::vector<std::uint32_t> queue;
    queue.reserve(n);
    std::vector<std::uint32_t> indeg(n);
    for (std::size_t v = 0; v < n; ++v) {
      indeg[v] = s.pred_off_[v + 1] - s.pred_off_[v];
      if (indeg[v] == 0) queue.push_back(static_cast<std::uint32_t>(v));
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      std::uint32_t v = queue[head];
      for (std::uint32_t e = s.succ_off_[v]; e < s.succ_off_[v + 1]; ++e) {
        std::uint32_t t = s.succ_[e];
        level[t] = std::max(level[t], level[v] + 1);
        if (--indeg[t] == 0) queue.push_back(t);
      }
    }
    if (queue.size() != n) {
      // Rare path: rebuild the adjacency form only to name the cycle.
      util::Digraph g(n);
      for (std::size_t i = 0; i < n; ++i)
        for (std::uint32_t e = s.pred_off_[i]; e < s.pred_off_[i + 1]; ++e)
          g.add_edge(s.pred_[e], i);
      std::string msg = "CPM: precedence cycle:";
      for (std::size_t v : util::find_cycle(g)) msg += " " + std::to_string(v);
      return util::invalid(msg);
    }
  }

  // Level-grouped topological order: counting sort by level, ascending
  // activity index within each level (stable over the v-ascending fill).
  std::size_t depth = 0;
  for (std::size_t v = 0; v < n; ++v)
    depth = std::max<std::size_t>(depth, level[v] + 1);
  s.level_off_.assign(depth + 1, 0);
  for (std::size_t v = 0; v < n; ++v) ++s.level_off_[level[v] + 1];
  for (std::size_t l = 0; l < depth; ++l) s.level_off_[l + 1] += s.level_off_[l];
  s.order_.resize(n);
  std::vector<std::uint32_t> at(s.level_off_.begin(), s.level_off_.end() - 1);
  for (std::size_t v = 0; v < n; ++v)
    s.order_[at[level[v]]++] = static_cast<std::uint32_t>(v);

  s.stats_.compiles = 1;
  return s;
}

void CpmSolver::solve(CpmResult& out, const SolveOptions& options) {
  count_solve();
  const std::size_t n = n_;
  // Every element of every buffer is written unconditionally below, so a
  // size fixup is all the preparation needed — no prefill pass.  On reuse
  // with an unchanged network size these resizes are no-ops, which is what
  // makes the re-solve path allocation-free.
  out.early_start.resize(n);
  out.early_finish.resize(n);
  out.late_start.resize(n);
  out.late_finish.resize(n);
  out.total_slack.resize(n);
  out.free_slack.resize(n);
  out.critical.resize(n);
  out.makespan = 0;

  const bool parallel = options.pool != nullptr && options.pool->threads() > 1 &&
                        n >= options.serial_threshold && n > 0;
  if (!parallel) {
    // Forward pass: ES = max(release, max pred EF).
    for (std::uint32_t v : order_) {
      std::int64_t es = releases_[v];
      for (std::uint32_t e = pred_off_[v]; e < pred_off_[v + 1]; ++e)
        es = std::max(es, out.early_finish[pred_[e]]);
      out.early_start[v] = es;
      out.early_finish[v] = es + durations_[v];
      out.makespan = std::max(out.makespan, out.early_finish[v]);
    }

    // Backward pass: LF = min succ LS; sinks anchor at the makespan.  Slack
    // and criticality fall out of the same successor scan (free slack needs
    // min succ ES, fetched alongside LS), so one traversal covers all of it.
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      std::uint32_t v = *it;
      std::int64_t lf = out.makespan;
      std::int64_t min_succ_es = out.makespan;
      for (std::uint32_t e = succ_off_[v]; e < succ_off_[v + 1]; ++e) {
        std::uint32_t t = succ_[e];
        lf = std::min(lf, out.late_start[t]);
        min_succ_es = std::min(min_succ_es, out.early_start[t]);
      }
      const std::int64_t ls = lf - durations_[v];
      out.late_finish[v] = lf;
      out.late_start[v] = ls;
      out.total_slack[v] = ls - out.early_start[v];
      out.free_slack[v] = min_succ_es - out.early_finish[v];
      out.critical[v] = ls == out.early_start[v];
    }
  } else {
    ++stats_.parallel_solves;
    WorkerPool& pool = *options.pool;
    const std::size_t chunk = std::max<std::size_t>(options.chunk, 1);
    const std::size_t depth = levels();

    // Level-parallel forward pass.  Every predecessor of a level-L activity
    // is in a level < L and already final, so chunks of one level write
    // disjoint slots and read only frozen data.  The makespan folds
    // per-chunk maxima in ascending chunk order — a fixed reduction order,
    // independent of which thread ran which chunk.
    std::int64_t makespan = 0;
    for (std::size_t l = 0; l < depth; ++l) {
      const std::size_t lo = level_off_[l], hi = level_off_[l + 1];
      const std::size_t width = hi - lo;
      auto run_span = [&](std::size_t b, std::size_t e) {
        std::int64_t local = 0;
        for (std::size_t k = b; k < e; ++k) {
          const std::uint32_t v = order_[k];
          std::int64_t es = releases_[v];
          for (std::uint32_t ed = pred_off_[v]; ed < pred_off_[v + 1]; ++ed)
            es = std::max(es, out.early_finish[pred_[ed]]);
          out.early_start[v] = es;
          out.early_finish[v] = es + durations_[v];
          local = std::max(local, out.early_finish[v]);
        }
        return local;
      };
      if (width <= chunk) {
        makespan = std::max(makespan, run_span(lo, hi));
      } else {
        const std::size_t chunks = (width + chunk - 1) / chunk;
        chunk_max_.assign(chunks, 0);
        pool.run(static_cast<int>(chunks), [&](int c) {
          const std::size_t b = lo + static_cast<std::size_t>(c) * chunk;
          chunk_max_[static_cast<std::size_t>(c)] =
              run_span(b, std::min(hi, b + chunk));
        });
        for (std::size_t c = 0; c < chunks; ++c)
          makespan = std::max(makespan, chunk_max_[c]);
      }
    }
    out.makespan = makespan;

    // Level-parallel backward pass, highest level first: every successor is
    // in a later (already finalized) level.
    for (std::size_t l = depth; l-- > 0;) {
      const std::size_t lo = level_off_[l], hi = level_off_[l + 1];
      const std::size_t width = hi - lo;
      auto run_span = [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k) {
          const std::uint32_t v = order_[k];
          std::int64_t lf = makespan;
          std::int64_t min_succ_es = makespan;
          for (std::uint32_t ed = succ_off_[v]; ed < succ_off_[v + 1]; ++ed) {
            const std::uint32_t t = succ_[ed];
            lf = std::min(lf, out.late_start[t]);
            min_succ_es = std::min(min_succ_es, out.early_start[t]);
          }
          const std::int64_t ls = lf - durations_[v];
          out.late_finish[v] = lf;
          out.late_start[v] = ls;
          out.total_slack[v] = ls - out.early_start[v];
          out.free_slack[v] = min_succ_es - out.early_finish[v];
          out.critical[v] = ls == out.early_start[v];
        }
      };
      if (width <= chunk) {
        run_span(lo, hi);
      } else {
        const std::size_t chunks = (width + chunk - 1) / chunk;
        pool.run(static_cast<int>(chunks), [&](int c) {
          const std::size_t b = lo + static_cast<std::size_t>(c) * chunk;
          run_span(b, std::min(hi, b + chunk));
        });
      }
    }
  }

  // One critical path: walk forward from a critical source, always stepping
  // to the smallest-index critical successor whose ES equals our EF.  CSR
  // successor lists are pre-sorted, so each step is a plain scan.
  out.critical_path.clear();
  if (n > 0) {
    std::size_t cur = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (out.critical[v] && pred_off_[v] == pred_off_[v + 1]) {
        cur = v;
        break;
      }
    }
    // A release time can make every source non-critical only if it pushes
    // some other chain later; criticality then starts at a released activity
    // with no critical predecessor feeding it directly.
    if (cur == n) {
      for (std::size_t v = 0; v < n; ++v) {
        if (!out.critical[v]) continue;
        bool has_critical_pred = false;
        for (std::uint32_t e = pred_off_[v]; e < pred_off_[v + 1]; ++e) {
          std::uint32_t p = pred_[e];
          if (out.critical[p] && out.early_finish[p] == out.early_start[v])
            has_critical_pred = true;
        }
        if (!has_critical_pred) {
          cur = v;
          break;
        }
      }
    }
    while (cur != n) {
      out.critical_path.push_back(cur);
      std::size_t next = n;
      for (std::uint32_t e = succ_off_[cur]; e < succ_off_[cur + 1]; ++e) {
        std::uint32_t t = succ_[e];
        if (out.critical[t] && out.early_start[t] == out.early_finish[cur]) {
          next = t;
          break;
        }
      }
      cur = next;
    }
  }
}

std::int64_t CpmSolver::solve_makespan(const SolveOptions& options) {
  count_solve();
  scratch_ef_.resize(n_);
  const bool parallel = options.pool != nullptr && options.pool->threads() > 1 &&
                        n_ >= options.serial_threshold && n_ > 0;
  if (!parallel) {
    std::int64_t makespan = 0;
    for (std::uint32_t v : order_) {
      std::int64_t es = releases_[v];
      for (std::uint32_t e = pred_off_[v]; e < pred_off_[v + 1]; ++e)
        es = std::max(es, scratch_ef_[pred_[e]]);
      scratch_ef_[v] = es + durations_[v];
      makespan = std::max(makespan, scratch_ef_[v]);
    }
    return makespan;
  }

  ++stats_.parallel_solves;
  WorkerPool& pool = *options.pool;
  const std::size_t chunk = std::max<std::size_t>(options.chunk, 1);
  const std::size_t depth = levels();
  std::int64_t makespan = 0;
  for (std::size_t l = 0; l < depth; ++l) {
    const std::size_t lo = level_off_[l], hi = level_off_[l + 1];
    const std::size_t width = hi - lo;
    auto run_span = [&](std::size_t b, std::size_t e) {
      std::int64_t local = 0;
      for (std::size_t k = b; k < e; ++k) {
        const std::uint32_t v = order_[k];
        std::int64_t es = releases_[v];
        for (std::uint32_t ed = pred_off_[v]; ed < pred_off_[v + 1]; ++ed)
          es = std::max(es, scratch_ef_[pred_[ed]]);
        scratch_ef_[v] = es + durations_[v];
        local = std::max(local, scratch_ef_[v]);
      }
      return local;
    };
    if (width <= chunk) {
      makespan = std::max(makespan, run_span(lo, hi));
    } else {
      const std::size_t chunks = (width + chunk - 1) / chunk;
      chunk_max_.assign(chunks, 0);
      pool.run(static_cast<int>(chunks), [&](int c) {
        const std::size_t b = lo + static_cast<std::size_t>(c) * chunk;
        chunk_max_[static_cast<std::size_t>(c)] =
            run_span(b, std::min(hi, b + chunk));
      });
      for (std::size_t c = 0; c < chunks; ++c)
        makespan = std::max(makespan, chunk_max_[c]);
    }
  }
  return makespan;
}

void CpmSolver::solve_batch(const std::int64_t* durations, std::size_t lanes,
                            std::int64_t* makespans, std::uint8_t* critical) {
  if (lanes == 0) return;
  count_batch(lanes);
  const std::size_t n = n_;
  batch_es_.resize(n * lanes);
  batch_ef_.resize(n * lanes);
  batch_ls_.resize(n * lanes);

  // Forward: per activity, all lanes advance together.  The lane loops are
  // contiguous int64 arithmetic with no cross-lane dependencies, so the
  // compiler can vectorize them; per lane the operations are exactly the
  // serial forward pass, so every value is bit-identical to a per-sample
  // solve with that lane's durations.
  for (std::size_t l = 0; l < lanes; ++l) makespans[l] = 0;
  for (std::uint32_t v : order_) {
    const std::size_t base = static_cast<std::size_t>(v) * lanes;
    std::int64_t* es = batch_es_.data() + base;
    std::int64_t* ef = batch_ef_.data() + base;
    const std::int64_t release = releases_[v];
    for (std::size_t l = 0; l < lanes; ++l) es[l] = release;
    for (std::uint32_t e = pred_off_[v]; e < pred_off_[v + 1]; ++e) {
      const std::int64_t* pef =
          batch_ef_.data() + static_cast<std::size_t>(pred_[e]) * lanes;
      for (std::size_t l = 0; l < lanes; ++l) es[l] = std::max(es[l], pef[l]);
    }
    const std::int64_t* dur = durations + base;
    for (std::size_t l = 0; l < lanes; ++l) ef[l] = es[l] + dur[l];
    for (std::size_t l = 0; l < lanes; ++l)
      makespans[l] = std::max(makespans[l], ef[l]);
  }

  // Backward: only LS is needed — criticality is LS == ES.  Sinks anchor at
  // their lane's makespan.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const std::uint32_t v = *it;
    const std::size_t base = static_cast<std::size_t>(v) * lanes;
    std::int64_t* ls = batch_ls_.data() + base;
    for (std::size_t l = 0; l < lanes; ++l) ls[l] = makespans[l];
    for (std::uint32_t e = succ_off_[v]; e < succ_off_[v + 1]; ++e) {
      const std::int64_t* sls =
          batch_ls_.data() + static_cast<std::size_t>(succ_[e]) * lanes;
      for (std::size_t l = 0; l < lanes; ++l) ls[l] = std::min(ls[l], sls[l]);
    }
    const std::int64_t* dur = durations + base;
    const std::int64_t* es = batch_es_.data() + base;
    std::uint8_t* crit = critical + base;
    for (std::size_t l = 0; l < lanes; ++l) ls[l] -= dur[l];
    for (std::size_t l = 0; l < lanes; ++l)
      crit[l] = ls[l] == es[l] ? 1 : 0;
  }
}

}  // namespace herc::sched
