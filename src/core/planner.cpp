#include "core/planner.hpp"

#include <unordered_map>

#include "core/cpm_solver.hpp"
#include "core/resources.hpp"

namespace herc::sched {

util::Result<ScheduleRunId> Planner::plan(const flow::TaskTree& tree,
                                          const PlanRequest& request_in) {
  obs::ScopedTimer timer(bus_, "plan", "plan");
  PlanRequest request = request_in;
  // Inter-plan sequencing: start no earlier than every predecessor's
  // projected finish.
  for (ScheduleRunId pred : request.predecessors) {
    if (!pred.valid() || pred.value() > space_->plans().size())
      return util::not_found("plan: unknown predecessor plan " + pred.str());
    for (ScheduleNodeId nid : space_->plan(pred).nodes) {
      const ScheduleNode& n = space_->node(nid);
      cal::WorkInstant finish = n.actual_finish ? *n.actual_finish : n.planned_finish;
      if (finish > request.anchor) request.anchor = finish;
    }
  }

  // Validate resource assignments up front.
  for (const auto& [activity, resources] : request.assignments) {
    if (!tree.schema().find_rule_by_activity(activity))
      return util::not_found("plan: assignment for unknown activity '" + activity + "'");
    for (util::ResourceId r : resources)
      if (!r.valid() || r.value() > db_->resources().size())
        return util::not_found("plan: unknown resource " + r.str() +
                               " assigned to '" + activity + "'");
  }

  ScheduleRunId plan_id =
      space_->create_plan(request.name, request.anchor, request.derived_from);
  space_->plan_mut(plan_id).anchor = request.anchor;
  space_->plan_mut(plan_id).deadline = request.deadline;

  // Simulated execution: the same post-order traversal the Executor makes,
  // creating one schedule instance per activity.
  auto order = tree.activities_post_order();
  std::unordered_map<std::uint64_t, ScheduleNodeId> node_for_tree_node;
  std::vector<ScheduleNodeId> created;
  created.reserve(order.size());

  for (flow::TaskNodeId tid : order) {
    const auto& tree_node = tree.node(tid);
    const std::string& activity = tree.activity_name(tid);
    ScheduleNodeId sid = space_->create_node(plan_id, activity, tree_node.rule);
    node_for_tree_node[tid.value()] = sid;
    created.push_back(sid);

    ScheduleNode& node = space_->node_mut(sid);
    node.est_duration = estimator_->estimate(*db_, activity, request.strategy);
    if (auto it = request.assignments.find(activity); it != request.assignments.end())
      node.resources = it->second;

    // Schedule dependencies mirror the tree's data flow: each child activity
    // must finish before this one starts.
    for (flow::TaskNodeId child : tree_node.children) {
      if (tree.node(child).kind == flow::NodeKind::kActivity)
        space_->add_dep(plan_id, node_for_tree_node.at(child.value()), sid);
    }
  }

  // Solve the network.  The creation loop above allocated this plan's node
  // ids consecutively, so `created` order IS the dense index: a node maps to
  // (id - first id) with no per-plan hash map.
  const std::uint64_t first_id = created.empty() ? 0 : created.front().value();
  std::vector<CpmActivity> acts(created.size());
  for (std::size_t i = 0; i < created.size(); ++i) {
    acts[i].duration = space_->node(created[i]).est_duration.count_minutes();
    acts[i].release = 0;  // anchor handled by offsetting at the end
  }
  for (const auto& dep : space_->plan(plan_id).deps)
    acts[dep.to.value() - first_id].preds.push_back(
        static_cast<std::size_t>(dep.from.value() - first_id));

  CpmResult solved;
  {
    obs::ScopedTimer cpm_timer(bus_, "cpm", "plan");
    auto solver = CpmSolver::compile(acts);
    if (!solver.ok()) return solver.error();
    solver.value().solve(solved);
    publish_solver_stats(bus_, "plan", solver.value().take_stats());
  }

  std::vector<std::int64_t> start(created.size()), finish(created.size());
  for (std::size_t i = 0; i < created.size(); ++i) {
    start[i] = solved.early_start[i];
    finish[i] = solved.early_finish[i];
  }

  if (request.level_resources) {
    LevelingInput lvl;
    lvl.activities = acts;
    lvl.requirements.resize(created.size());
    lvl.capacities.reserve(db_->resources().size());
    for (const auto& r : db_->resources()) lvl.capacities.push_back(r.capacity);
    // Time-off windows, shifted to plan-relative minutes.  Activities are
    // non-preemptible: leveled work never spans a vacation of an assigned
    // resource.
    lvl.blocked.resize(db_->resources().size());
    const std::int64_t anchor_min = request.anchor.minutes_since_epoch();
    for (std::size_t r = 0; r < db_->resources().size(); ++r) {
      for (auto [from, to] : db_->resources()[r].time_off) {
        std::int64_t s = from.minutes_since_epoch() - anchor_min;
        std::int64_t e = to.minutes_since_epoch() - anchor_min;
        if (e <= 0) continue;  // entirely before the plan
        lvl.blocked[r].emplace_back(std::max<std::int64_t>(0, s), e);
      }
    }
    for (std::size_t i = 0; i < created.size(); ++i)
      for (util::ResourceId r : space_->node(created[i]).resources)
        lvl.requirements[i].push_back(r.value() - 1);
    auto leveled = request.leveling_rule
                       ? sgs_schedule(lvl, {.rule = *request.leveling_rule})
                       : level_serial(lvl);
    if (!leveled.ok()) return leveled.error();
    start = leveled.value().start;
    finish = leveled.value().finish;
  }

  for (std::size_t i = 0; i < created.size(); ++i) {
    ScheduleNode& node = space_->node_mut(created[i]);
    node.planned_start = request.anchor + cal::WorkDuration::minutes(start[i]);
    node.planned_finish = request.anchor + cal::WorkDuration::minutes(finish[i]);
    node.baseline_start = node.planned_start;
    node.baseline_finish = node.planned_finish;
    node.total_slack = cal::WorkDuration::minutes(solved.total_slack[i]);
    node.free_slack = cal::WorkDuration::minutes(solved.free_slack[i]);
    node.critical = solved.critical[i];
  }

  if (obs::on(bus_)) {
    for (ScheduleNodeId sid : created) {
      const ScheduleNode& node = space_->node(sid);
      obs::Event e;
      e.kind = obs::EventKind::kActivityPlanned;
      e.name = node.activity;
      e.category = "plan";
      e.id = plan_id.value();
      e.work_start = node.planned_start;
      e.work_finish = node.planned_finish;
      e.args = {{"plan", request.name},
                {"node", std::to_string(sid.value())},
                {"critical", node.critical ? "true" : "false"}};
      bus_->publish(std::move(e));
    }
    obs::Event e;
    e.kind = obs::EventKind::kSchedulePlanned;
    e.name = request.name;
    e.category = "plan";
    e.id = plan_id.value();
    e.work_start = request.anchor;
    e.args = {{"nodes", std::to_string(created.size())}};
    if (request.derived_from.valid())
      e.args.emplace_back("derived_from", request.derived_from.str());
    bus_->publish(std::move(e));
  }

  return plan_id;
}

util::Result<ScheduleRunId> Planner::replan(const flow::TaskTree& tree,
                                            ScheduleRunId previous, PlanRequest request) {
  request.derived_from = previous;
  if (request.name == "plan") request.name = space_->plan(previous).name;
  return plan(tree, request);
}

}  // namespace herc::sched
