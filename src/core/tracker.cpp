#include "core/tracker.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/cpm.hpp"

namespace herc::sched {

ScheduleTracker::ScheduleTracker(ScheduleSpace& space, meta::Database& db)
    : space_(&space), db_(&db) {
  db_->add_observer(this);
}

ScheduleTracker::~ScheduleTracker() { db_->remove_observer(this); }

void ScheduleTracker::watch_plan(ScheduleRunId plan) { plan_ = plan; }

void ScheduleTracker::on_run_recorded(const meta::Run& run) {
  if (!plan_) return;
  auto nid = space_->node_in_plan(*plan_, run.activity);
  if (!nid) return;
  ScheduleNode& node = space_->node_mut(*nid);
  // "Once a data instance for the particular task is created, the actual
  // start date for the task is set."
  if (!node.actual_start) node.actual_start = run.started_at;
  project(run.finished_at);
}

util::Status ScheduleTracker::link_completion(const std::string& activity,
                                              meta::EntityInstanceId instance,
                                              cal::WorkInstant linked_at) {
  if (!plan_) return util::invalid("link_completion: no plan is being watched");
  auto nid = space_->node_in_plan(*plan_, activity);
  if (!nid)
    return util::not_found("link_completion: activity '" + activity +
                           "' is not in the watched plan");
  const meta::EntityInstance& e = db_->instance(instance);

  auto linked = space_->add_link(*nid, instance, linked_at);
  if (!linked.ok()) return linked.error();

  ScheduleNode& node = space_->node_mut(*nid);
  node.completed = true;
  // Actuals come from the producing run's metadata; an imported instance
  // (no run) falls back to its creation time.
  if (e.produced_by.valid()) {
    const meta::Run& run = db_->run(e.produced_by);
    if (!node.actual_start) node.actual_start = run.started_at;
    node.actual_finish = run.finished_at;
  } else {
    if (!node.actual_start) node.actual_start = e.created_at;
    node.actual_finish = e.created_at;
  }
  if (obs::on(bus_)) {
    obs::Event ev;
    ev.kind = obs::EventKind::kActivityLinked;
    ev.name = activity;
    ev.category = "track";
    ev.id = nid->value();
    ev.work_start = linked_at;
    ev.args = {{"instance", instance.str()}, {"plan", plan_->str()}};
    bus_->publish(std::move(ev));
  }
  project(linked_at);
  return util::Status::ok_status();
}

void ScheduleTracker::project(cal::WorkInstant now) {
  if (!plan_) return;
  const std::int64_t t0 = obs::on(bus_) ? obs::EventBus::wall_now_ns() : 0;
  const ScheduleRun& plan = space_->plan(*plan_);
  const auto& node_ids = plan.nodes;
  if (node_ids.empty()) return;

  std::unordered_map<std::uint64_t, std::size_t> index;
  for (std::size_t i = 0; i < node_ids.size(); ++i) index[node_ids[i].value()] = i;

  const std::int64_t anchor = plan.anchor.minutes_since_epoch();
  const std::int64_t now_rel = std::max<std::int64_t>(0, now.minutes_since_epoch() - anchor);

  std::vector<CpmActivity> acts(node_ids.size());
  for (std::size_t i = 0; i < node_ids.size(); ++i) {
    const ScheduleNode& n = space_->node(node_ids[i]);
    auto rel = [&](cal::WorkInstant t) {
      return std::max<std::int64_t>(0, t.minutes_since_epoch() - anchor);
    };
    if (n.completed && n.actual_finish) {
      // Fixed history: pin exactly at the actuals.
      std::int64_t start = n.actual_start ? rel(*n.actual_start) : rel(*n.actual_finish);
      acts[i].release = start;
      acts[i].duration = rel(*n.actual_finish) - start;
    } else if (n.actual_start) {
      // In progress: started when it started; cannot finish before `now`,
      // and still needs its estimated duration if that projects later.
      std::int64_t start = rel(*n.actual_start);
      std::int64_t projected_finish =
          std::max(start + n.est_duration.count_minutes(), now_rel);
      acts[i].release = start;
      acts[i].duration = projected_finish - start;
    } else {
      // Not started: full estimate, not before now.
      acts[i].release = now_rel;
      acts[i].duration = n.est_duration.count_minutes();
    }
  }
  for (const auto& dep : plan.deps)
    acts[index.at(dep.to.value())].preds.push_back(index.at(dep.from.value()));

  auto cpm = compute_cpm(acts);
  if (!cpm.ok()) return;  // plan deps came from a tree: cycles are impossible
  const CpmResult& solved = cpm.value();

  std::size_t moved = 0;
  for (std::size_t i = 0; i < node_ids.size(); ++i) {
    ScheduleNode& n = space_->node_mut(node_ids[i]);
    if (n.completed) continue;  // planned dates of history stay as planned
    cal::WorkInstant new_start =
        plan.anchor + cal::WorkDuration::minutes(solved.early_start[i]);
    if (new_start != n.planned_start) ++moved;
    n.planned_start = new_start;
    n.planned_finish = plan.anchor + cal::WorkDuration::minutes(solved.early_finish[i]);
    n.total_slack = cal::WorkDuration::minutes(solved.total_slack[i]);
    n.free_slack = cal::WorkDuration::minutes(solved.free_slack[i]);
    n.critical = solved.critical[i];
  }

  if (obs::on(bus_)) {
    obs::Event ev;
    ev.kind = obs::EventKind::kSlipPropagated;
    ev.name = plan.name;
    ev.category = "track";
    ev.id = plan_->value();
    ev.work_start = now;
    if (t0 != 0) ev.duration_ns = obs::EventBus::wall_now_ns() - t0;
    ev.args = {{"nodes_moved", std::to_string(moved)}};
    bus_->publish(std::move(ev));
  }
}

}  // namespace herc::sched
