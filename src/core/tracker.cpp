#include "core/tracker.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/cpm.hpp"

namespace herc::sched {

ScheduleTracker::ScheduleTracker(ScheduleSpace& space, meta::Database& db)
    : space_(&space), db_(&db) {
  db_->add_observer(this);
}

ScheduleTracker::~ScheduleTracker() { db_->remove_observer(this); }

void ScheduleTracker::watch_plan(ScheduleRunId plan) { plan_ = plan; }

void ScheduleTracker::on_run_recorded(const meta::Run& run) {
  if (!plan_) return;
  auto nid = space_->node_in_plan(*plan_, run.activity);
  if (!nid) return;
  ScheduleNode& node = space_->node_mut(*nid);
  // "Once a data instance for the particular task is created, the actual
  // start date for the task is set."
  if (!node.actual_start) node.actual_start = run.started_at;
  project(run.finished_at);
}

util::Status ScheduleTracker::link_completion(const std::string& activity,
                                              meta::EntityInstanceId instance,
                                              cal::WorkInstant linked_at) {
  if (!plan_) return util::invalid("link_completion: no plan is being watched");
  auto nid = space_->node_in_plan(*plan_, activity);
  if (!nid)
    return util::not_found("link_completion: activity '" + activity +
                           "' is not in the watched plan");
  const meta::EntityInstance& e = db_->instance(instance);

  auto linked = space_->add_link(*nid, instance, linked_at);
  if (!linked.ok()) return linked.error();

  ScheduleNode& node = space_->node_mut(*nid);
  node.completed = true;
  // Actuals come from the producing run's metadata; an imported instance
  // (no run) falls back to its creation time.
  if (e.produced_by.valid()) {
    const meta::Run& run = db_->run(e.produced_by);
    if (!node.actual_start) node.actual_start = run.started_at;
    node.actual_finish = run.finished_at;
  } else {
    if (!node.actual_start) node.actual_start = e.created_at;
    node.actual_finish = e.created_at;
  }
  if (obs::on(bus_)) {
    obs::Event ev;
    ev.kind = obs::EventKind::kActivityLinked;
    ev.name = activity;
    ev.category = "track";
    ev.id = nid->value();
    ev.work_start = linked_at;
    ev.args = {{"instance", instance.str()}, {"plan", plan_->str()}};
    bus_->publish(std::move(ev));
  }
  project(linked_at);
  return util::Status::ok_status();
}

void ScheduleTracker::project(cal::WorkInstant now) {
  if (!plan_) return;
  const std::int64_t t0 = obs::on(bus_) ? obs::EventBus::wall_now_ns() : 0;
  const ScheduleRun& plan = space_->plan(*plan_);
  const auto& node_ids = plan.nodes;
  if (node_ids.empty()) return;

  const std::int64_t anchor = plan.anchor.minutes_since_epoch();
  const std::int64_t now_rel = std::max<std::int64_t>(0, now.minutes_since_epoch() - anchor);

  // Release/duration of node i under the projection rules.
  auto value_of = [&](std::size_t i) -> std::pair<std::int64_t, std::int64_t> {
    const ScheduleNode& n = space_->node(node_ids[i]);
    auto rel = [&](cal::WorkInstant t) {
      return std::max<std::int64_t>(0, t.minutes_since_epoch() - anchor);
    };
    if (n.completed && n.actual_finish) {
      // Fixed history: pin exactly at the actuals.
      std::int64_t start = n.actual_start ? rel(*n.actual_start) : rel(*n.actual_finish);
      return {start, rel(*n.actual_finish) - start};
    }
    if (n.actual_start) {
      // In progress: started when it started; cannot finish before `now`,
      // and still needs its estimated duration if that projects later.
      std::int64_t start = rel(*n.actual_start);
      std::int64_t projected_finish =
          std::max(start + n.est_duration.count_minutes(), now_rel);
      return {start, projected_finish - start};
    }
    // Not started: full estimate, not before now.
    return {now_rel, n.est_duration.count_minutes()};
  };

  // The plan's node/dep lists are append-only, so count equality means the
  // cached compiled network is still this network.
  const bool reuse = cache_ && cache_->plan == *plan_ &&
                     cache_->nodes == node_ids.size() &&
                     cache_->deps == plan.deps.size();
  if (!reuse) {
    PlanSolverCache fresh;
    fresh.plan = *plan_;
    fresh.nodes = node_ids.size();
    fresh.deps = plan.deps.size();
    for (std::size_t i = 0; i < node_ids.size(); ++i)
      fresh.index[node_ids[i].value()] = i;
    std::vector<CpmActivity> acts(node_ids.size());
    for (std::size_t i = 0; i < node_ids.size(); ++i)
      std::tie(acts[i].release, acts[i].duration) = value_of(i);
    for (const auto& dep : plan.deps)
      acts[fresh.index.at(dep.to.value())].preds.push_back(
          fresh.index.at(dep.from.value()));
    auto compiled = CpmSolver::compile(acts);
    if (!compiled.ok()) {
      // Plan deps come from a tree, so this "cannot happen" — but a silent
      // return would leave stale projections with no trace.  Surface it.
      cache_.reset();
      if (obs::on(bus_)) {
        obs::Event ev;
        ev.kind = obs::EventKind::kSlipPropagated;
        ev.name = plan.name;
        ev.category = "track";
        ev.id = plan_->value();
        ev.work_start = now;
        ev.failed = true;
        ev.args = {{"error", compiled.error().message}};
        bus_->publish(std::move(ev));
      }
      return;
    }
    cache_.emplace(std::move(fresh));
    cache_->solver = std::move(compiled.value());
  } else {
    // Structure unchanged: durations/releases-only incremental re-solve.
    for (std::size_t i = 0; i < node_ids.size(); ++i) {
      auto [release, duration] = value_of(i);
      cache_->solver.set_release(i, release);
      cache_->solver.set_duration(i, duration);
    }
  }
  cache_->solver.solve(cache_->result);
  const CpmResult& solved = cache_->result;

  std::size_t moved = 0;
  for (std::size_t i = 0; i < node_ids.size(); ++i) {
    ScheduleNode& n = space_->node_mut(node_ids[i]);
    if (n.completed) continue;  // planned dates of history stay as planned
    cal::WorkInstant new_start =
        plan.anchor + cal::WorkDuration::minutes(solved.early_start[i]);
    if (new_start != n.planned_start) ++moved;
    n.planned_start = new_start;
    n.planned_finish = plan.anchor + cal::WorkDuration::minutes(solved.early_finish[i]);
    n.total_slack = cal::WorkDuration::minutes(solved.total_slack[i]);
    n.free_slack = cal::WorkDuration::minutes(solved.free_slack[i]);
    n.critical = solved.critical[i];
  }

  if (obs::on(bus_)) {
    obs::Event ev;
    ev.kind = obs::EventKind::kSlipPropagated;
    ev.name = plan.name;
    ev.category = "track";
    ev.id = plan_->value();
    ev.work_start = now;
    if (t0 != 0) ev.duration_ns = obs::EventBus::wall_now_ns() - t0;
    ev.args = {{"nodes_moved", std::to_string(moved)}};
    bus_->publish(std::move(ev));
    publish_solver_stats(bus_, "track", cache_->solver.take_stats());
  }
}

}  // namespace herc::sched
