#pragma once
// Tracking actual flow execution against a schedule plan.
//
// "Mechanisms were also created in Hercules to automatically update actual
//  schedule information as the process flow is executed.  For example, once
//  a data instance for the particular task is created, the actual start date
//  for the task is set.  Then when the task is completed ... the user can
//  link the final version of the task data to a schedule instance.  If any
//  slip in the schedule occurs, the schedule plan updates automatically to
//  reflect the new schedule." — paper, Sec. IV.C
//
// The tracker subscribes to the execution-space database: the first run of
// an activity stamps the watched plan's actual start; a completion *link*
// (designer's decision) stamps the actual finish; after every event the
// planned dates of incomplete activities are re-projected with CPM, using
// actual finishes of completed predecessors as releases — the automatic
// slip propagation.

#include <optional>
#include <string>
#include <unordered_map>

#include "core/cpm_solver.hpp"
#include "core/schedule_space.hpp"
#include "metadata/database.hpp"
#include "obs/event_bus.hpp"

namespace herc::sched {

class ScheduleTracker : public meta::DatabaseObserver {
 public:
  /// Subscribes to `db`; unsubscribes on destruction.
  ScheduleTracker(ScheduleSpace& space, meta::Database& db);
  ~ScheduleTracker() override;

  ScheduleTracker(const ScheduleTracker&) = delete;
  ScheduleTracker& operator=(const ScheduleTracker&) = delete;

  /// Observability: activity_linked and slip_propagated events go here.
  /// Null (the default) disables publication.
  void set_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Selects the plan that execution is tracked against.  Runs of activities
  /// not in this plan are ignored.
  void watch_plan(ScheduleRunId plan);
  [[nodiscard]] std::optional<ScheduleRunId> watched_plan() const { return plan_; }

  /// Designer declares `instance` to be the final design data of `activity`:
  /// creates the Level-3 link, stamps the actual finish from the producing
  /// run, marks the schedule node complete, and re-projects the plan.
  util::Status link_completion(const std::string& activity,
                               meta::EntityInstanceId instance,
                               cal::WorkInstant linked_at);

  /// Re-projects planned dates of incomplete activities in the watched plan:
  ///   - completed nodes are fixed at their actuals;
  ///   - started nodes keep their actual start and may stretch to cover the
  ///     latest observed run finish;
  ///   - unstarted nodes may not start before `now` or before their
  ///     (re-projected) predecessors finish.
  /// Baselines never move; variance is read against them (herc::track).
  void project(cal::WorkInstant now);

  // --- DatabaseObserver -----------------------------------------------------
  void on_run_recorded(const meta::Run& run) override;

 private:
  /// Compiled network of the watched plan, kept across projections.  The
  /// plan's node and dep lists are append-only, so the cache is valid while
  /// the (plan id, node count, dep count) triple is unchanged; a recorded
  /// run then costs a durations/releases-only re-solve — no graph rebuild,
  /// no toposort, no per-call index map, no allocation.
  struct PlanSolverCache {
    ScheduleRunId plan;
    std::size_t nodes = 0;
    std::size_t deps = 0;
    std::unordered_map<std::uint64_t, std::size_t> index;  ///< node id -> dense
    CpmSolver solver;
    CpmResult result;  ///< reused solve buffer
  };

  ScheduleSpace* space_;
  meta::Database* db_;
  std::optional<ScheduleRunId> plan_;
  obs::EventBus* bus_ = nullptr;
  std::optional<PlanSolverCache> cache_;
};

}  // namespace herc::sched
