#include "core/cpm.hpp"

#include "core/cpm_solver.hpp"

namespace herc::sched {

util::Result<CpmResult> compute_cpm(const std::vector<CpmActivity>& activities) {
  auto solver = CpmSolver::compile(activities);
  if (!solver.ok()) return solver.error();
  CpmResult r;
  solver.value().solve(r);
  return r;
}

util::Result<std::vector<std::int64_t>> compute_drag(
    const std::vector<CpmActivity>& activities) {
  auto solver = CpmSolver::compile(activities);
  if (!solver.ok()) return solver.error();
  CpmResult base;
  solver.value().solve(base);
  std::vector<std::int64_t> drag(activities.size(), 0);
  // One compiled network, N duration-swap re-solves: zeroing a duration
  // cannot introduce a cycle, and only the makespan is needed per probe.
  for (std::size_t i = 0; i < activities.size(); ++i) {
    if (!base.critical[i] || activities[i].duration == 0) continue;
    solver.value().set_duration(i, 0);
    drag[i] = base.makespan - solver.value().solve_makespan();
    solver.value().set_duration(i, activities[i].duration);
  }
  return drag;
}

}  // namespace herc::sched
