#include "core/cpm.hpp"

#include <algorithm>
#include <limits>

#include "util/topo.hpp"

namespace herc::sched {

util::Result<CpmResult> compute_cpm(const std::vector<CpmActivity>& activities) {
  const std::size_t n = activities.size();

  util::Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CpmActivity& a = activities[i];
    if (a.duration < 0)
      return util::invalid("CPM: activity " + std::to_string(i) +
                           " has negative duration");
    if (a.release < 0)
      return util::invalid("CPM: activity " + std::to_string(i) +
                           " has negative release time");
    for (std::size_t p : a.preds) {
      if (p >= n)
        return util::invalid("CPM: activity " + std::to_string(i) +
                             " references unknown predecessor " + std::to_string(p));
      g.add_edge(p, i);
    }
  }

  auto order = util::topo_sort(g);
  if (!order) {
    auto cycle = util::find_cycle(g);
    std::string msg = "CPM: precedence cycle:";
    for (std::size_t v : cycle) msg += " " + std::to_string(v);
    return util::invalid(msg);
  }

  CpmResult r;
  r.early_start.assign(n, 0);
  r.early_finish.assign(n, 0);

  // Forward pass: ES = max(release, max pred EF).
  for (std::size_t v : *order) {
    std::int64_t es = activities[v].release;
    for (std::size_t p : activities[v].preds)
      es = std::max(es, r.early_finish[p]);
    r.early_start[v] = es;
    r.early_finish[v] = es + activities[v].duration;
    r.makespan = std::max(r.makespan, r.early_finish[v]);
  }

  // Backward pass: LF = min succ LS; sinks anchor at the makespan.
  r.late_finish.assign(n, r.makespan);
  r.late_start.assign(n, 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    std::size_t v = *it;
    std::int64_t lf = r.makespan;
    for (std::size_t s : g.succs(v)) lf = std::min(lf, r.late_start[s]);
    r.late_finish[v] = lf;
    r.late_start[v] = lf - activities[v].duration;
  }

  r.total_slack.assign(n, 0);
  r.free_slack.assign(n, 0);
  r.critical.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    r.total_slack[v] = r.late_start[v] - r.early_start[v];
    std::int64_t min_succ_es = r.makespan;
    for (std::size_t s : g.succs(v)) min_succ_es = std::min(min_succ_es, r.early_start[s]);
    r.free_slack[v] = min_succ_es - r.early_finish[v];
    r.critical[v] = r.total_slack[v] == 0;
  }

  // One critical path: walk forward from a critical source, always stepping
  // to a critical successor whose ES equals our EF (ties: smallest index,
  // matching topo_sort's determinism).
  if (n > 0) {
    std::size_t cur = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (r.critical[v] && activities[v].preds.empty()) {
        cur = v;
        break;
      }
    }
    // A release time can make every source non-critical only if it pushes
    // some other chain later; there is always a critical source unless all
    // criticality starts at a released activity.
    if (cur == n) {
      for (std::size_t v = 0; v < n; ++v) {
        if (r.critical[v]) {
          bool has_critical_pred = false;
          for (std::size_t p : activities[v].preds)
            if (r.critical[p] && r.early_finish[p] == r.early_start[v])
              has_critical_pred = true;
          if (!has_critical_pred) {
            cur = v;
            break;
          }
        }
      }
    }
    while (cur != n) {
      r.critical_path.push_back(cur);
      std::size_t next = n;
      std::vector<std::size_t> succs = g.succs(cur);
      std::sort(succs.begin(), succs.end());
      for (std::size_t s : succs) {
        if (r.critical[s] && r.early_start[s] == r.early_finish[cur]) {
          next = s;
          break;
        }
      }
      cur = next;
    }
  }

  return r;
}

util::Result<std::vector<std::int64_t>> compute_drag(
    const std::vector<CpmActivity>& activities) {
  auto base = compute_cpm(activities);
  if (!base.ok()) return base.error();
  std::vector<std::int64_t> drag(activities.size(), 0);
  std::vector<CpmActivity> probe = activities;
  for (std::size_t i = 0; i < activities.size(); ++i) {
    if (!base.value().critical[i] || activities[i].duration == 0) continue;
    std::int64_t saved = probe[i].duration;
    probe[i].duration = 0;
    // Same graph, still acyclic: cannot fail.
    drag[i] = base.value().makespan - compute_cpm(probe).value().makespan;
    probe[i].duration = saved;
  }
  return drag;
}

}  // namespace herc::sched
