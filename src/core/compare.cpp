#include "core/compare.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace herc::sched {

util::Result<PlanComparison> compare_plans(const ScheduleSpace& space,
                                           ScheduleRunId old_plan,
                                           ScheduleRunId new_plan) {
  if (old_plan == new_plan)
    return util::invalid("compare: the two plans are the same plan");
  const ScheduleRun& a = space.plan(old_plan);
  const ScheduleRun& b = space.plan(new_plan);
  if (a.nodes.empty() || b.nodes.empty())
    return util::invalid("compare: a plan has no activities");

  PlanComparison cmp;
  cmp.old_plan = old_plan;
  cmp.new_plan = new_plan;

  auto finish_of = [&](const ScheduleRun& p) {
    cal::WorkInstant f;
    for (ScheduleNodeId nid : p.nodes) {
      const ScheduleNode& n = space.node(nid);
      f = std::max(f, n.actual_finish ? *n.actual_finish : n.planned_finish);
    }
    return f;
  };
  cmp.completion_delta = finish_of(b) - finish_of(a);

  // Old-plan order, annotated with the new plan's values when present.
  for (ScheduleNodeId nid : a.nodes) {
    const ScheduleNode& na = space.node(nid);
    ActivityDelta d;
    d.activity = na.activity;
    d.in_a = true;
    if (auto nb_id = space.node_in_plan(new_plan, na.activity)) {
      const ScheduleNode& nb = space.node(*nb_id);
      d.in_b = true;
      d.est_delta = nb.est_duration - na.est_duration;
      d.start_delta = nb.planned_start - na.planned_start;
      d.finish_delta = nb.planned_finish - na.planned_finish;
    }
    cmp.activities.push_back(std::move(d));
  }
  // Additions: in b only.
  for (ScheduleNodeId nid : b.nodes) {
    const ScheduleNode& nb = space.node(nid);
    if (space.node_in_plan(old_plan, nb.activity)) continue;
    ActivityDelta d;
    d.activity = nb.activity;
    d.in_b = true;
    cmp.activities.push_back(std::move(d));
  }
  return cmp;
}

std::string PlanComparison::render(const cal::WorkCalendar& calendar) const {
  using util::pad_right;
  const std::int64_t mpd = calendar.minutes_per_day();
  auto delta = [&](const std::optional<cal::WorkDuration>& d) -> std::string {
    if (!d) return "-";
    if (d->count_minutes() == 0) return "=";
    return (d->count_minutes() > 0 ? "+" : "") + d->str(mpd);
  };

  std::string out = "Plan comparison: " + old_plan.str() + " -> " + new_plan.str() + "\n";
  out += pad_right("activity", 16) + pad_right("scope", 10) +
         pad_right("est", 12) + pad_right("start", 12) + "finish\n";
  out += util::repeat('-', 60) + "\n";
  for (const auto& d : activities) {
    out += pad_right(d.activity, 16);
    out += pad_right(d.in_a && d.in_b ? "both" : (d.in_b ? "ADDED" : "DROPPED"), 10);
    out += pad_right(delta(d.est_delta), 12);
    out += pad_right(delta(d.start_delta), 12);
    out += delta(d.finish_delta) + "\n";
  }
  out += util::repeat('-', 60) + "\n";
  out += "projected completion: ";
  out += completion_delta.count_minutes() == 0
             ? "unchanged"
             : (completion_delta.count_minutes() > 0 ? "+" : "") +
                   completion_delta.str(mpd);
  out += "\n";
  return out;
}

}  // namespace herc::sched
