#pragma once
// Plan-generation comparison.
//
// The paper's schedule-metadata queries show *which* plans a plan evolved
// from; this answers the follow-up question — *what changed*: per-activity
// estimate and date deltas between two plan generations, activities added or
// dropped (scope change), and the bottom-line completion shift.

#include <optional>
#include <string>
#include <vector>

#include "core/schedule_space.hpp"

namespace herc::sched {

/// One activity's change between plan `a` (old) and plan `b` (new).
struct ActivityDelta {
  std::string activity;
  bool in_a = false;
  bool in_b = false;
  /// Deltas (b - a), present only when the activity is in both plans.
  std::optional<cal::WorkDuration> est_delta;
  std::optional<cal::WorkDuration> start_delta;   ///< planned start shift
  std::optional<cal::WorkDuration> finish_delta;  ///< planned finish shift
};

struct PlanComparison {
  ScheduleRunId old_plan;
  ScheduleRunId new_plan;
  /// Union of activities, old-plan order first, then additions in new-plan
  /// order.
  std::vector<ActivityDelta> activities;
  cal::WorkDuration completion_delta;  ///< new projected finish - old; + = later

  [[nodiscard]] std::string render(const cal::WorkCalendar& calendar) const;
};

/// Compares two plans (typically adjacent generations from lineage()).
/// kInvalid when given the same plan twice or an empty plan.
[[nodiscard]] util::Result<PlanComparison> compare_plans(const ScheduleSpace& space,
                                                         ScheduleRunId old_plan,
                                                         ScheduleRunId new_plan);

}  // namespace herc::sched
