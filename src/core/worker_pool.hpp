#pragma once
// Reusable worker pool for data-parallel scheduling kernels.
//
// PR 2's analyze_risk spawned a fresh std::thread per worker on every call;
// at server rates that is thousands of thread creations per second, and the
// level-parallel CPM passes need sub-millisecond fork/join, which thread
// spawn latency (tens of microseconds each) would dominate.  WorkerPool
// keeps its threads parked on a condition variable between regions.
//
// The only primitive is run(tasks, fn): execute fn(0..tasks-1), each task
// exactly once, across the pool *and the calling thread*, returning when
// all tasks finished.  Tasks are claimed from a shared atomic counter, so
// which thread runs which task is nondeterministic — determinism is the
// caller's contract: tasks must write results only at task-indexed slots
// (disjoint per task) and any reduction must happen on the caller's thread
// in task-index order after run() returns.  Every kernel in this repo
// (level-chunked CPM passes, Monte Carlo sample blocks) follows that rule,
// which is how results stay bit-identical at any thread count.
//
// run() is serialized internally (concurrent callers queue on a mutex) and
// must not be re-entered from inside a task.  Tasks must not throw.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace herc::sched {

class WorkerPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane).
  /// Clamped to >= 1; a 1-thread pool runs everything inline.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total parallel lanes, counting the calling thread.
  [[nodiscard]] int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, tasks) across the workers plus the
  /// calling thread; returns once all have finished.  Safe to call from
  /// multiple threads (calls serialize); NOT re-entrant from inside a task.
  void run(int tasks, const std::function<void(int)>& fn);

  /// Process-wide pool sized to the hardware, for callers without their
  /// own: risk analysis, benches, the fuzz harness.  Constructed on first
  /// use, never destroyed (workers park when idle).
  static WorkerPool& shared();

 private:
  void worker_loop();

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex run_mutex_;  ///< serializes concurrent run() callers

  // One "region" per run() call.  Workers wake on generation_ changing,
  // claim task indices from next_, and count completions into done_.
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for a new generation
  std::condition_variable done_cv_;   ///< caller waits for done_ == tasks_
  std::uint64_t generation_ = 0;
  int tasks_ = 0;
  const std::function<void(int)>* fn_ = nullptr;
  std::atomic<int> next_{0};
  int done_ = 0;
  bool stop_ = false;
};

}  // namespace herc::sched
