#include "core/worker_pool.hpp"

#include <algorithm>

namespace herc::sched {

WorkerPool::WorkerPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int t = 0; t < threads_ - 1; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::run(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  if (threads_ == 1 || tasks == 1) {
    for (int i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> serialize(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    tasks_ = tasks;
    done_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is a lane too: claim tasks until the counter runs dry.
  int claimed = 0;
  for (;;) {
    int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= tasks) break;
    fn(i);
    ++claimed;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_ += claimed;
  done_cv_.wait(lock, [&] { return done_ == tasks_; });
  fn_ = nullptr;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      tasks = tasks_;
    }
    int claimed = 0;
    for (;;) {
      int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks) break;
      (*fn)(i);
      ++claimed;
    }
    if (claimed > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ += claimed;
      if (done_ == tasks_) done_cv_.notify_one();
    }
  }
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool* pool = new WorkerPool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return *pool;
}

}  // namespace herc::sched
