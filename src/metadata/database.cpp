#include "metadata/database.hpp"

#include <algorithm>
#include <stdexcept>

namespace herc::meta {

std::string EntityInstance::str() const {
  return type_name + ":" + name + " v" + std::to_string(version) + " " + id.str();
}

const char* run_status_name(RunStatus s) {
  return s == RunStatus::kCompleted ? "completed" : "failed";
}

std::string Run::str() const {
  return "run " + id.str() + " [" + activity + "] tool=" + tool_binding + " by " +
         (designer.empty() ? "?" : designer) + " (" + run_status_name(status) + ")";
}

Database::Database(const schema::TaskSchema& schema) : schema_(&schema) {
  // Initialize one (empty) container per Level-1 type, as Hercules does when
  // parsing the task schema into the task database.
  for (const auto& t : schema.types()) containers_[t.name];
}

Database::Database(const Database& other)
    : schema_(other.schema_),
      instances_(other.instances_),
      runs_(other.runs_),
      resources_(other.resources_),
      containers_(other.containers_),
      version_counters_(other.version_counters_),
      // observers_ deliberately empty: a snapshot never notifies anyone.
      symbols_(other.symbols_),
      runs_by_activity_(other.runs_by_activity_),
      runs_by_designer_(other.runs_by_designer_),
      runs_by_tool_(other.runs_by_tool_),
      runs_by_status_(other.runs_by_status_),
      instances_by_name_(other.instances_by_name_),
      version_(other.version_),
      instances_version_(other.instances_version_),
      runs_version_(other.runs_version_),
      resources_version_(other.resources_version_) {}

void Database::remove_observer(DatabaseObserver* obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), obs),
                   observers_.end());
}

ResourceId Database::add_resource(const std::string& name, const std::string& kind,
                                  int capacity) {
  ++version_;
  ++resources_version_;
  Resource r;
  r.id = ResourceId{resources_.size() + 1};
  r.name = name;
  r.kind = kind;
  r.capacity = capacity;
  resources_.push_back(std::move(r));
  return resources_.back().id;
}

util::Status Database::add_time_off(ResourceId id, cal::WorkInstant from,
                                    cal::WorkInstant to) {
  if (!id.valid() || id.value() > resources_.size())
    return util::not_found("add_time_off: unknown resource " + id.str());
  if (to <= from) return util::invalid("add_time_off: window is empty or reversed");
  auto& windows = resources_.mutate(id.value() - 1).time_off;
  windows.emplace_back(from, to);
  std::sort(windows.begin(), windows.end());
  ++version_;
  ++resources_version_;
  return util::Status::ok_status();
}

std::optional<ResourceId> Database::find_resource(const std::string& name) const {
  for (const auto& r : resources_)
    if (r.name == name) return r.id;
  return std::nullopt;
}

const Resource& Database::resource(ResourceId id) const {
  if (!id.valid() || id.value() > resources_.size())
    throw std::out_of_range("Database::resource: unknown id " + id.str());
  return resources_[id.value() - 1];
}

util::Result<EntityInstanceId> Database::create_instance(const std::string& type_name,
                                                         const std::string& name,
                                                         RunId produced_by,
                                                         util::DataObjectId data,
                                                         cal::WorkInstant at) {
  auto type = schema_->find_type(type_name);
  if (!type) return util::not_found("create_instance: unknown type '" + type_name + "'");
  if (schema_->type(*type).kind != schema::EntityKind::kData)
    return util::invalid("create_instance: '" + type_name + "' is a tool type");

  EntityInstance e;
  e.id = EntityInstanceId{instances_.size() + 1};
  e.type = *type;
  e.type_name = type_name;
  e.name = name;
  e.version = ++version_counters_[type_name + "|" + name];
  e.produced_by = produced_by;
  e.data = data;
  e.created_at = at;
  e.type_sym = symbols_.intern(type_name);
  e.name_sym = symbols_.intern(name);
  containers_[type_name].push_back(e.id);
  instances_by_name_[e.name_sym].push_back(e.id);
  instances_.push_back(e);
  ++version_;
  ++instances_version_;
  notify_instance(instances_.back());
  return instances_.back().id;
}

const EntityInstance& Database::instance(EntityInstanceId id) const {
  if (!id.valid() || id.value() > instances_.size())
    throw std::out_of_range("Database::instance: unknown id " + id.str());
  return instances_[id.value() - 1];
}

namespace {
const util::CowVec<EntityInstanceId>& empty_instances() {
  static const util::CowVec<EntityInstanceId> kEmpty;
  return kEmpty;
}
const util::CowVec<RunId>& empty_runs() {
  static const util::CowVec<RunId> kEmpty;
  return kEmpty;
}
}  // namespace

const util::CowVec<EntityInstanceId>& Database::container(
    const std::string& type_name) const {
  auto it = containers_.find(type_name);
  return it == containers_.end() ? empty_instances() : it->second;
}

const util::CowVec<EntityInstanceId>& Database::instances_named(
    const std::string& name) const {
  util::SymbolId sym = symbols_.find(name);
  if (!sym.valid()) return empty_instances();
  auto it = instances_by_name_.find(sym);
  return it == instances_by_name_.end() ? empty_instances() : it->second;
}

std::optional<RunId> Database::producing_run(EntityInstanceId id) const {
  if (!id.valid() || id.value() > instances_.size()) return std::nullopt;
  const EntityInstance& e = instances_[id.value() - 1];
  if (!e.produced_by.valid()) return std::nullopt;
  return e.produced_by;
}

std::optional<EntityInstanceId> Database::latest_in_container(
    const std::string& type_name) const {
  auto it = containers_.find(type_name);
  if (it == containers_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<EntityInstanceId> Database::latest_named(const std::string& type_name,
                                                       const std::string& name) const {
  auto it = containers_.find(type_name);
  if (it == containers_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit)
    if (instance(*rit).name == name) return *rit;
  return std::nullopt;
}

std::vector<EntityInstanceId> Database::dependencies_of(EntityInstanceId id) const {
  const EntityInstance& e = instance(id);
  if (!e.produced_by.valid()) return {};
  return run(e.produced_by).inputs;
}

util::Result<RunId> Database::record_run(Run r) {
  if (r.activity.empty()) return util::invalid("record_run: empty activity");
  if (r.status == RunStatus::kCompleted) {
    if (!r.output.valid())
      return util::invalid("record_run: completed run must have an output instance");
    if (r.output.value() > instances_.size())
      return util::not_found("record_run: output instance " + r.output.str() +
                             " does not exist");
  }
  for (EntityInstanceId in : r.inputs)
    if (!in.valid() || in.value() > instances_.size())
      return util::not_found("record_run: input instance " + in.str() +
                             " does not exist");
  if (r.finished_at < r.started_at)
    return util::invalid("record_run: finish precedes start");

  r.id = RunId{runs_.size() + 1};
  r.activity_sym = symbols_.intern(r.activity);
  r.tool_sym = symbols_.intern(r.tool_binding);
  r.designer_sym = symbols_.intern(r.designer);
  runs_by_activity_[r.activity_sym].push_back(r.id);
  runs_by_designer_[r.designer_sym].push_back(r.id);
  runs_by_tool_[r.tool_sym].push_back(r.id);
  runs_by_status_[static_cast<std::size_t>(r.status)].push_back(r.id);

  // Back-link: the output instance's producer is this run.  create_instance
  // may have been called with an invalid RunId when the run id was not yet
  // known; patch it now.  This is the one in-place rewrite of the instance
  // table, so it (alone among run mutations) bumps instances_version.
  if (r.output.valid() &&
      !instances_[r.output.value() - 1].produced_by.valid()) {
    instances_.mutate(r.output.value() - 1).produced_by = r.id;
    ++instances_version_;
  }

  runs_.push_back(std::move(r));
  ++version_;
  ++runs_version_;
  notify_run(runs_.back());
  return runs_.back().id;
}

const Run& Database::run(RunId id) const {
  if (!id.valid() || id.value() > runs_.size())
    throw std::out_of_range("Database::run: unknown id " + id.str());
  return runs_[id.value() - 1];
}

const util::CowVec<RunId>& Database::runs_of_activity(const std::string& activity) const {
  util::SymbolId sym = symbols_.find(activity);
  if (!sym.valid()) return empty_runs();
  auto it = runs_by_activity_.find(sym);
  return it == runs_by_activity_.end() ? empty_runs() : it->second;
}

const util::CowVec<RunId>& Database::runs_of_designer(const std::string& designer) const {
  util::SymbolId sym = symbols_.find(designer);
  if (!sym.valid()) return empty_runs();
  auto it = runs_by_designer_.find(sym);
  return it == runs_by_designer_.end() ? empty_runs() : it->second;
}

const util::CowVec<RunId>& Database::runs_of_tool(const std::string& tool) const {
  util::SymbolId sym = symbols_.find(tool);
  if (!sym.valid()) return empty_runs();
  auto it = runs_by_tool_.find(sym);
  return it == runs_by_tool_.end() ? empty_runs() : it->second;
}

const util::CowVec<RunId>& Database::runs_with_status(RunStatus status) const {
  return runs_by_status_[static_cast<std::size_t>(status)];
}

std::optional<RunId> Database::last_completed_run(const std::string& activity) const {
  const auto& ids = runs_of_activity(activity);
  for (auto rit = ids.rbegin(); rit != ids.rend(); ++rit)
    if (run(*rit).status == RunStatus::kCompleted) return *rit;
  return std::nullopt;
}

std::string Database::dump_containers() const {
  std::string out = "Execution space (" + std::to_string(instances_.size()) +
                    " instances, " + std::to_string(runs_.size()) + " runs)\n";
  for (const auto& t : schema_->types()) {
    if (t.kind != schema::EntityKind::kData) continue;
    out += "  [" + t.name + "]";
    auto it = containers_.find(t.name);
    if (it == containers_.end() || it->second.empty()) {
      out += " (empty)\n";
      continue;
    }
    out += "\n";
    for (EntityInstanceId id : it->second) {
      const EntityInstance& e = instance(id);
      out += "    o " + e.str();
      if (e.produced_by.valid()) out += "  <- " + run(e.produced_by).str();
      out += "\n";
    }
  }
  return out;
}

void Database::notify_instance(const EntityInstance& e) {
  for (auto* obs : observers_) obs->on_instance_created(e);
}

void Database::notify_run(const Run& r) {
  for (auto* obs : observers_) obs->on_run_recorded(r);
}

}  // namespace herc::meta
