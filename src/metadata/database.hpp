#pragma once
// Level 3 of the four-level architecture, execution space: the metadata
// created by actually running a flow.
//
// Mirroring the Hercules representation (paper Fig. 2/3):
//   - an *entity container* per Level-1 entity type, holding
//   - *entity instances* (metadata about one version of design data, with a
//     link down to the Level-4 data object), created by
//   - *runs* (one tool invocation: activity, tool binding, input instances,
//     output instance, actual start/finish, designer).
//
// Instance-level dependencies are derived from runs (an instance depends on
// the inputs of the run that produced it).
//
// The database publishes mutation events; the schedule tracker (herc::sched)
// subscribes to implement the paper's "schedule plan updates automatically
// as the design flow is executed".
//
// Snapshot semantics: the copy constructor takes an O(tables + index keys)
// epoch snapshot — every table and index posting list is a util::CowVec
// sharing its buffer with the source, and the symbol pool shares its lookup
// map.  The copy is a fully functional read-only Database (observers are
// not carried over); the writer unshares lazily on the rare in-place
// rewrite.  Readers of a snapshot race with nothing.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "schema/schema.hpp"
#include "util/cow.hpp"
#include "util/ids.hpp"
#include "util/interner.hpp"
#include "util/result.hpp"

namespace herc::meta {

using util::EntityInstanceId;
using util::ResourceId;
using util::RunId;

/// Metadata for one version of a piece of design data.
struct EntityInstance {
  EntityInstanceId id;
  schema::EntityTypeId type;
  std::string type_name;   ///< denormalized for dumps/queries
  std::string name;        ///< design-data name, e.g. "adder.netlist"
  int version = 1;         ///< version within (type, name)
  RunId produced_by;       ///< invalid for imported primary inputs
  util::DataObjectId data; ///< Level-4 link; may be invalid for imports
  cal::WorkInstant created_at;

  // Interned copies of type_name / name, filled by Database::create_instance
  // (invalid on a hand-built instance that never went through the database).
  util::SymbolId type_sym;
  util::SymbolId name_sym;

  [[nodiscard]] std::string str() const;
};

enum class RunStatus { kCompleted, kFailed };

[[nodiscard]] const char* run_status_name(RunStatus s);

/// One execution of an activity (a tool invocation).
struct Run {
  RunId id;
  std::string activity;
  schema::RuleId rule;
  std::string tool_binding;  ///< bound tool instance, e.g. "spice3f5@server1"
  std::string designer;      ///< who ran it
  std::vector<EntityInstanceId> inputs;
  EntityInstanceId output;   ///< invalid if the run failed
  cal::WorkInstant started_at;
  cal::WorkInstant finished_at;
  RunStatus status = RunStatus::kCompleted;

  // Interned copies of activity / tool_binding / designer, filled by
  // Database::record_run.
  util::SymbolId activity_sym;
  util::SymbolId tool_sym;
  util::SymbolId designer_sym;

  [[nodiscard]] std::string str() const;
};

/// A person, machine or license that can perform activities.  Shared by the
/// execution space (who ran it) and the schedule space (who is assigned).
struct Resource {
  ResourceId id;
  std::string name;
  std::string kind = "person";  ///< "person" | "machine" | "license"
  int capacity = 1;             ///< concurrent activities it can serve
  /// Half-open [from, to) windows when the resource is unavailable
  /// (vacations, maintenance).  Resource-leveled planning schedules around
  /// them.  Kept sorted by start.
  std::vector<std::pair<cal::WorkInstant, cal::WorkInstant>> time_off;
};

/// Observer for database mutations.
struct DatabaseObserver {
  virtual ~DatabaseObserver() = default;
  virtual void on_instance_created(const EntityInstance&) {}
  virtual void on_run_recorded(const Run&) {}
};

/// The execution-space metadata database.
class Database {
 public:
  /// The database is initialized from a task schema: one (initially empty)
  /// entity container per Level-1 type, exactly as Hercules parses the task
  /// schema into containers.
  explicit Database(const schema::TaskSchema& schema);

  /// Epoch snapshot: O(1) per table/posting list (see file comment).  The
  /// copy observes nothing (observers_ stays empty) and is intended to be
  /// read-only; the schema must outlive it.
  Database(const Database& other);
  Database& operator=(const Database&) = delete;

  [[nodiscard]] const schema::TaskSchema& schema() const { return *schema_; }

  // --- observers ---------------------------------------------------------
  /// Observer must outlive the database or be removed first.
  void add_observer(DatabaseObserver* obs) { observers_.push_back(obs); }
  void remove_observer(DatabaseObserver* obs);

  // --- resources ---------------------------------------------------------
  ResourceId add_resource(const std::string& name, const std::string& kind = "person",
                          int capacity = 1);
  /// Registers an unavailability window [from, to); kInvalid if to <= from
  /// or the id is unknown.
  util::Status add_time_off(ResourceId id, cal::WorkInstant from, cal::WorkInstant to);
  [[nodiscard]] std::optional<ResourceId> find_resource(const std::string& name) const;
  [[nodiscard]] const Resource& resource(ResourceId id) const;
  [[nodiscard]] const util::CowVec<Resource>& resources() const { return resources_; }

  // --- instances ---------------------------------------------------------
  /// Creates an instance in the container of `type_name`.  `produced_by` may
  /// be invalid for imported primary-input data.
  util::Result<EntityInstanceId> create_instance(const std::string& type_name,
                                                 const std::string& name,
                                                 RunId produced_by,
                                                 util::DataObjectId data,
                                                 cal::WorkInstant at);

  [[nodiscard]] const EntityInstance& instance(EntityInstanceId id) const;
  [[nodiscard]] std::size_t instance_count() const { return instances_.size(); }
  [[nodiscard]] const util::CowVec<EntityInstance>& instances() const {
    return instances_;
  }

  /// Contents of one entity container, in creation order.  The reference is
  /// stable until the next create_instance for the same type.
  [[nodiscard]] const util::CowVec<EntityInstanceId>& container(
      const std::string& type_name) const;

  /// Instances carrying a given design-data name, across types, in creation
  /// order (secondary index; same reference-stability rule as container()).
  [[nodiscard]] const util::CowVec<EntityInstanceId>& instances_named(
      const std::string& name) const;

  /// The run that produced `id`; nullopt for imports or unknown ids (reads
  /// the produced_by back-link, patched by record_run).
  [[nodiscard]] std::optional<RunId> producing_run(EntityInstanceId id) const;

  /// Latest instance in a container, if any.
  [[nodiscard]] std::optional<EntityInstanceId> latest_in_container(
      const std::string& type_name) const;

  /// Latest instance of a given (type, design-data name), if any.
  [[nodiscard]] std::optional<EntityInstanceId> latest_named(
      const std::string& type_name, const std::string& name) const;

  /// Instances this instance directly depends on (inputs of its producing
  /// run); empty for imports.
  [[nodiscard]] std::vector<EntityInstanceId> dependencies_of(
      EntityInstanceId id) const;

  // --- runs ---------------------------------------------------------------
  /// Records a completed or failed run.  On success the caller must have
  /// created the output instance first and pass it here.
  util::Result<RunId> record_run(Run run);

  [[nodiscard]] const Run& run(RunId id) const;
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  [[nodiscard]] const util::CowVec<Run>& runs() const { return runs_; }

  /// All runs of an activity in execution order.  Returns a reference into
  /// the maintained index (empty static for unknown activities); stable until
  /// the next record_run of the same activity.
  [[nodiscard]] const util::CowVec<RunId>& runs_of_activity(
      const std::string& activity) const;

  /// All runs by one designer / one tool binding / one status, in execution
  /// order (maintained secondary indexes, same stability rule).
  [[nodiscard]] const util::CowVec<RunId>& runs_of_designer(
      const std::string& designer) const;
  [[nodiscard]] const util::CowVec<RunId>& runs_of_tool(const std::string& tool) const;
  [[nodiscard]] const util::CowVec<RunId>& runs_with_status(RunStatus status) const;

  /// Last completed run of an activity, if any.
  [[nodiscard]] std::optional<RunId> last_completed_run(
      const std::string& activity) const;

  /// Multi-line dump of all containers (Figs. 5-7 reproduction, execution
  /// space).  Empty containers are listed too — they are part of the figure.
  [[nodiscard]] std::string dump_containers() const;

  // --- fast-path support ---------------------------------------------------
  /// The execution space's interning pool (activity, type, designer, tool,
  /// design-data names).  Query compilation probes it with find().
  [[nodiscard]] const util::SymbolPool& symbols() const { return symbols_; }

  /// Monotonic mutation counter: bumped by every create_instance /
  /// record_run / add_resource / add_time_off.  Coarse dirtiness check
  /// (snapshot publication); the query cache validates on the fine-grained
  /// per-table versions below.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Per-table mutation counters: a counter moves only when its table (or
  /// an index derived from it) can have changed, so a run append does not
  /// invalidate cached instance-only query results.  instances_version also
  /// covers the container/name indexes and the produced_by back-link patch
  /// record_run applies to its output instance.
  [[nodiscard]] std::uint64_t instances_version() const { return instances_version_; }
  [[nodiscard]] std::uint64_t runs_version() const { return runs_version_; }
  [[nodiscard]] std::uint64_t resources_version() const { return resources_version_; }

 private:
  void notify_instance(const EntityInstance& e);
  void notify_run(const Run& r);

  const schema::TaskSchema* schema_;
  util::CowVec<EntityInstance> instances_;  // index = id - 1
  util::CowVec<Run> runs_;                  // index = id - 1
  util::CowVec<Resource> resources_;        // index = id - 1
  std::unordered_map<std::string, util::CowVec<EntityInstanceId>> containers_;
  std::unordered_map<std::string, int> version_counters_;  // key: type|name
  std::vector<DatabaseObserver*> observers_;

  // Interning pool + secondary indexes, maintained by create_instance /
  // record_run (and therefore rebuilt for free when recovery replays
  // mutations through those entry points).  Keyed by SymbolId so lookups
  // hash one integer.
  util::SymbolPool symbols_;
  std::unordered_map<util::SymbolId, util::CowVec<RunId>> runs_by_activity_;
  std::unordered_map<util::SymbolId, util::CowVec<RunId>> runs_by_designer_;
  std::unordered_map<util::SymbolId, util::CowVec<RunId>> runs_by_tool_;
  std::array<util::CowVec<RunId>, 2> runs_by_status_;  // index = RunStatus
  std::unordered_map<util::SymbolId, util::CowVec<EntityInstanceId>> instances_by_name_;
  std::uint64_t version_ = 0;
  std::uint64_t instances_version_ = 0;
  std::uint64_t runs_version_ = 0;
  std::uint64_t resources_version_ = 0;
};

}  // namespace herc::meta
