#pragma once
// Work calendars: the mapping between *work time* (the space schedules are
// computed in) and civil time (the space people read).
//
// A WorkInstant counts work minutes elapsed since the calendar's epoch; a
// WorkDuration is a span of work minutes.  Schedule arithmetic (CPM passes,
// slack, slip propagation) is plain integer arithmetic on these.  The
// calendar converts instants to civil timestamps for display, skipping
// non-workdays and holidays, exactly like the calendars in MacProject /
// Microsoft Project that the paper cites.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "calendar/date.hpp"
#include "util/result.hpp"

namespace herc::cal {

/// Span of work minutes.  Value type; supports natural arithmetic.
class WorkDuration {
 public:
  constexpr WorkDuration() = default;
  constexpr explicit WorkDuration(std::int64_t minutes) : minutes_(minutes) {}

  [[nodiscard]] static constexpr WorkDuration minutes(std::int64_t m) {
    return WorkDuration(m);
  }
  [[nodiscard]] static constexpr WorkDuration hours(std::int64_t h) {
    return WorkDuration(h * 60);
  }

  [[nodiscard]] constexpr std::int64_t count_minutes() const { return minutes_; }
  [[nodiscard]] constexpr double count_hours() const { return minutes_ / 60.0; }

  friend constexpr WorkDuration operator+(WorkDuration a, WorkDuration b) {
    return WorkDuration(a.minutes_ + b.minutes_);
  }
  friend constexpr WorkDuration operator-(WorkDuration a, WorkDuration b) {
    return WorkDuration(a.minutes_ - b.minutes_);
  }
  friend constexpr WorkDuration operator*(WorkDuration a, std::int64_t k) {
    return WorkDuration(a.minutes_ * k);
  }
  WorkDuration& operator+=(WorkDuration b) {
    minutes_ += b.minutes_;
    return *this;
  }
  friend constexpr auto operator<=>(WorkDuration a, WorkDuration b) = default;

  /// Renders e.g. "3d 4h", "2h 30m", "0m" given minutes-per-workday context.
  [[nodiscard]] std::string str(std::int64_t minutes_per_day = 480) const;

 private:
  std::int64_t minutes_ = 0;
};

/// Point in work time: work minutes since the calendar epoch.  Instants from
/// different calendars are not comparable (not enforced by the type; keep one
/// calendar per project as the WorkflowManager does).
class WorkInstant {
 public:
  constexpr WorkInstant() = default;
  constexpr explicit WorkInstant(std::int64_t m) : minutes_(m) {}

  [[nodiscard]] constexpr std::int64_t minutes_since_epoch() const { return minutes_; }

  friend constexpr WorkInstant operator+(WorkInstant t, WorkDuration d) {
    return WorkInstant(t.minutes_ + d.count_minutes());
  }
  friend constexpr WorkInstant operator-(WorkInstant t, WorkDuration d) {
    return WorkInstant(t.minutes_ - d.count_minutes());
  }
  friend constexpr WorkDuration operator-(WorkInstant b, WorkInstant a) {
    return WorkDuration(b.minutes_ - a.minutes_);
  }
  friend constexpr auto operator<=>(WorkInstant a, WorkInstant b) = default;

 private:
  std::int64_t minutes_ = 0;
};

/// A work instant resolved to civil time.
struct CivilTime {
  Date date;          ///< the workday the instant falls on
  int minute_of_day;  ///< minutes after the workday start (0 .. minutes/day)

  /// "YYYY-MM-DD hh:mm" using the calendar's day-start hour.
  [[nodiscard]] std::string str(int day_start_minute) const;
};

/// Calendar configuration + conversion.  Immutable after construction except
/// for holiday registration.
class WorkCalendar {
 public:
  struct Config {
    Date epoch;                          ///< project reference date
    std::int64_t minutes_per_day = 480;  ///< 8-hour workday
    int day_start_minute = 9 * 60;       ///< workday starts 09:00 civil
    /// Workweek: true = working.  Index by ISO weekday (Mon=0).
    bool workweek[7] = {true, true, true, true, true, false, false};
  };

  WorkCalendar() : WorkCalendar(Config{}) {}
  explicit WorkCalendar(Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::int64_t minutes_per_day() const { return cfg_.minutes_per_day; }

  /// Marks a date as a non-working holiday.  Adding a holiday invalidates no
  /// WorkInstant values (they are counts of *work* minutes), only their civil
  /// rendering; the WorkflowManager re-renders rather than re-plans.
  void add_holiday(Date d) { holidays_.insert(d); }
  [[nodiscard]] bool is_holiday(Date d) const { return holidays_.count(d) > 0; }
  [[nodiscard]] const std::set<Date>& holidays() const { return holidays_; }

  [[nodiscard]] bool is_workday(Date d) const;

  /// First workday on or after `d`.
  [[nodiscard]] Date next_workday(Date d) const;

  /// The n-th workday at or after the epoch (n = 0 is the first).
  [[nodiscard]] Date nth_workday(std::int64_t n) const;

  /// Number of whole workdays in [epoch, d) — the inverse of nth_workday.
  [[nodiscard]] std::int64_t workdays_until(Date d) const;

  /// Converts a work instant to civil time.  Instants before the epoch clamp
  /// to the epoch's workday start.
  [[nodiscard]] CivilTime to_civil(WorkInstant t) const;

  /// Work instant for the *start* of the first workday on or after `d`.
  [[nodiscard]] WorkInstant at_start_of(Date d) const;

  /// Formats an instant as "YYYY-MM-DD hh:mm".
  [[nodiscard]] std::string format(WorkInstant t) const;

  /// Formats an instant's date only.
  [[nodiscard]] std::string format_date(WorkInstant t) const;

  /// Parses durations like "3d", "4h", "90m", "1d 4h" (d = one workday).
  [[nodiscard]] util::Result<WorkDuration> parse_duration(std::string_view text) const;

 private:
  Config cfg_;
  std::set<Date> holidays_;
  int working_days_per_week_;
};

}  // namespace herc::cal
