#include "calendar/work_calendar.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/strings.hpp"

namespace herc::cal {

std::string WorkDuration::str(std::int64_t minutes_per_day) const {
  std::int64_t m = minutes_;
  std::string sign;
  if (m < 0) {
    sign = "-";
    m = -m;
  }
  std::int64_t days = m / minutes_per_day;
  m %= minutes_per_day;
  std::int64_t hours = m / 60;
  std::int64_t mins = m % 60;
  std::string out = sign;
  if (days) out += std::to_string(days) + "d ";
  if (hours) out += std::to_string(hours) + "h ";
  if (mins || out.empty() || out == "-") out += std::to_string(mins) + "m ";
  out.pop_back();  // trailing space
  return out;
}

std::string CivilTime::str(int day_start_minute) const {
  int total = day_start_minute + minute_of_day;
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d:%02d", total / 60, total % 60);
  return date.str() + " " + buf;
}

WorkCalendar::WorkCalendar(Config cfg) : cfg_(cfg) {
  if (cfg_.minutes_per_day <= 0)
    throw std::invalid_argument("WorkCalendar: minutes_per_day must be positive");
  working_days_per_week_ = 0;
  for (bool w : cfg_.workweek)
    if (w) ++working_days_per_week_;
  if (working_days_per_week_ == 0)
    throw std::invalid_argument("WorkCalendar: workweek has no working days");
}

bool WorkCalendar::is_workday(Date d) const {
  return cfg_.workweek[static_cast<int>(d.weekday())] && !is_holiday(d);
}

Date WorkCalendar::next_workday(Date d) const {
  while (!is_workday(d)) d = d.plus_days(1);
  return d;
}

Date WorkCalendar::nth_workday(std::int64_t n) const {
  if (n < 0) throw std::logic_error("nth_workday: negative index");
  // Skip whole weeks first, then walk the remainder day by day.  Holidays
  // break the week-skipping shortcut, so only use it while no holidays can
  // fall in the skipped range.
  Date d = cfg_.epoch;
  if (holidays_.empty() || (!holidays_.empty() && *holidays_.begin() > d)) {
    Date limit = holidays_.empty() ? Date::from_days(d.days() + (n / working_days_per_week_ + 2) * 7)
                                   : *holidays_.begin();
    while (n >= working_days_per_week_ && d.plus_days(7) <= limit) {
      d = d.plus_days(7);
      n -= working_days_per_week_;
    }
  }
  while (true) {
    if (is_workday(d)) {
      if (n == 0) return d;
      --n;
    }
    d = d.plus_days(1);
  }
}

std::int64_t WorkCalendar::workdays_until(Date d) const {
  if (d <= cfg_.epoch) return 0;
  std::int64_t n = 0;
  for (Date x = cfg_.epoch; x < d; x = x.plus_days(1))
    if (is_workday(x)) ++n;
  return n;
}

CivilTime WorkCalendar::to_civil(WorkInstant t) const {
  std::int64_t m = t.minutes_since_epoch();
  if (m < 0) m = 0;
  std::int64_t day_idx = m / cfg_.minutes_per_day;
  auto minute = static_cast<int>(m % cfg_.minutes_per_day);
  return CivilTime{nth_workday(day_idx), minute};
}

WorkInstant WorkCalendar::at_start_of(Date d) const {
  Date w = next_workday(d < cfg_.epoch ? cfg_.epoch : d);
  return WorkInstant(workdays_until(w) * cfg_.minutes_per_day);
}

std::string WorkCalendar::format(WorkInstant t) const {
  return to_civil(t).str(cfg_.day_start_minute);
}

std::string WorkCalendar::format_date(WorkInstant t) const {
  return to_civil(t).date.str();
}

util::Result<WorkDuration> WorkCalendar::parse_duration(std::string_view text) const {
  auto tokens = util::split_ws(text);
  if (tokens.empty()) return util::parse_error("empty duration");
  std::int64_t total = 0;
  for (const auto& tok : tokens) {
    if (tok.size() < 2) return util::parse_error("bad duration token '" + tok + "'");
    char unit = tok.back();
    std::string digits = tok.substr(0, tok.size() - 1);
    for (char c : digits)
      if (c < '0' || c > '9')
        return util::parse_error("bad duration token '" + tok + "'");
    std::int64_t n = std::stoll(digits);
    switch (unit) {
      case 'd': total += n * cfg_.minutes_per_day; break;
      case 'h': total += n * 60; break;
      case 'm': total += n; break;
      default: return util::parse_error("unknown duration unit '" + tok + "'");
    }
  }
  return WorkDuration::minutes(total);
}

}  // namespace herc::cal
