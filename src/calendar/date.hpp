#pragma once
// Civil dates with proleptic-Gregorian day-number arithmetic.
//
// Schedules are computed in *work minutes* (see work_calendar.hpp); civil
// dates only appear at the edges: project start dates, holidays, and
// rendering.  Day-number conversion uses the classic Howard Hinnant
// days-from-civil algorithm.

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace herc::cal {

/// Day of week; numbering matches ISO (Monday = 0 .. Sunday = 6).
enum class Weekday : int {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

[[nodiscard]] const char* weekday_name(Weekday d);

/// A civil calendar date.  Invariant: represents a real date (validated on
/// construction from components; construction from a serial day is total).
class Date {
 public:
  /// 1970-01-01; used as the day-number origin.
  Date() : days_(0) {}

  /// From components; throws std::invalid_argument on an impossible date
  /// (components are almost always literals or parsed + validated).
  Date(int year, int month, int day);

  /// From a serial day number (days since 1970-01-01, may be negative).
  [[nodiscard]] static Date from_days(std::int64_t days);

  /// Parses "YYYY-MM-DD".
  [[nodiscard]] static util::Result<Date> parse(std::string_view text);

  [[nodiscard]] std::int64_t days() const { return days_; }

  [[nodiscard]] int year() const;
  [[nodiscard]] int month() const;
  [[nodiscard]] int day() const;
  [[nodiscard]] Weekday weekday() const;

  [[nodiscard]] Date plus_days(std::int64_t n) const { return from_days(days_ + n); }

  /// Renders "YYYY-MM-DD".
  [[nodiscard]] std::string str() const;

  friend auto operator<=>(Date a, Date b) { return a.days_ <=> b.days_; }
  friend bool operator==(Date a, Date b) { return a.days_ == b.days_; }

  /// Signed whole days b - a.
  friend std::int64_t operator-(Date b, Date a) { return b.days_ - a.days_; }

 private:
  explicit Date(std::int64_t days) : days_(days) {}
  std::int64_t days_;  // days since 1970-01-01
};

}  // namespace herc::cal

template <>
struct std::hash<herc::cal::Date> {
  std::size_t operator()(herc::cal::Date d) const noexcept {
    return std::hash<std::int64_t>{}(d.days());
  }
};
