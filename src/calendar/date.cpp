#include "calendar/date.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/strings.hpp"

namespace herc::cal {

namespace {

// Hinnant: days since 1970-01-01 from civil (y, m, d).
std::int64_t days_from_civil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Hinnant: civil (y, m, d) from days since 1970-01-01.
void civil_from_days(std::int64_t z, int& y, unsigned& m, unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  y = static_cast<int>(yoe) + static_cast<int>(era) * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  d = doy - (153 * mp + 2) / 5 + 1;                                       // [1, 31]
  m = mp + (mp < 10 ? 3 : -9);                                            // [1, 12]
  y += m <= 2;
}

bool is_leap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int days_in_month(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return m == 2 && is_leap(y) ? 29 : kDays[m - 1];
}

}  // namespace

const char* weekday_name(Weekday d) {
  static const char* kNames[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return kNames[static_cast<int>(d)];
}

Date::Date(int year, int month, int day) {
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month)) {
    throw std::invalid_argument("Date: impossible date " + std::to_string(year) + "-" +
                                std::to_string(month) + "-" + std::to_string(day));
  }
  days_ = days_from_civil(year, static_cast<unsigned>(month), static_cast<unsigned>(day));
}

Date Date::from_days(std::int64_t days) { return Date(days); }

util::Result<Date> Date::parse(std::string_view text) {
  auto parts = util::split(text, '-');
  if (parts.size() != 3) return util::parse_error("date must be YYYY-MM-DD: '" +
                                                  std::string(text) + "'");
  int vals[3];
  for (int i = 0; i < 3; ++i) {
    if (parts[i].empty()) return util::parse_error("empty date component");
    for (char c : parts[i])
      if (c < '0' || c > '9') return util::parse_error("non-digit in date: '" +
                                                       std::string(text) + "'");
    vals[i] = std::stoi(parts[i]);
  }
  if (vals[1] < 1 || vals[1] > 12 || vals[2] < 1 ||
      vals[2] > days_in_month(vals[0], vals[1])) {
    return util::parse_error("impossible date '" + std::string(text) + "'");
  }
  return Date(vals[0], vals[1], vals[2]);
}

int Date::year() const {
  int y;
  unsigned m, d;
  civil_from_days(days_, y, m, d);
  return y;
}

int Date::month() const {
  int y;
  unsigned m, d;
  civil_from_days(days_, y, m, d);
  return static_cast<int>(m);
}

int Date::day() const {
  int y;
  unsigned m, d;
  civil_from_days(days_, y, m, d);
  return static_cast<int>(d);
}

Weekday Date::weekday() const {
  // 1970-01-01 was a Thursday (ISO index 3).
  std::int64_t w = (days_ + 3) % 7;
  if (w < 0) w += 7;
  return static_cast<Weekday>(w);
}

std::string Date::str() const {
  int y;
  unsigned m, d;
  civil_from_days(days_, y, m, d);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", y, m, d);
  return buf;
}

}  // namespace herc::cal
