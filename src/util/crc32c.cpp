#include "util/crc32c.hpp"

#include <array>

namespace herc::util {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

void crc32c_to_hex(std::uint32_t crc, char out[8]) {
  static const char* digits = "0123456789abcdef";
  for (int i = 7; i >= 0; --i) {
    out[i] = digits[crc & 0xFu];
    crc >>= 4;
  }
}

std::uint32_t crc32c_from_hex(std::string_view hex8, bool* ok) {
  *ok = hex8.size() == 8;
  std::uint32_t crc = 0;
  if (!*ok) return 0;
  for (char c : hex8) {
    crc <<= 4;
    if (c >= '0' && c <= '9') {
      crc |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      crc |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      *ok = false;
      return 0;
    }
  }
  return crc;
}

}  // namespace herc::util
