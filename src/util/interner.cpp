#include "util/interner.hpp"

#include <stdexcept>

namespace herc::util {

SymbolId SymbolPool::intern(std::string_view s) {
  auto it = index_->find(s);
  if (it != index_->end()) return it->second;
  // Unshare before inserting: snapshots probing the old map must never see
  // a rehash in flight.  use_count()==1 (no live snapshot) inserts in place.
  if (index_.use_count() > 1) index_ = std::make_shared<Map>(*index_);
  strings_.push_back(std::string(s));
  SymbolId id{strings_.size()};
  index_->emplace(std::string(s), id);
  return id;
}

SymbolId SymbolPool::find(std::string_view s) const {
  auto it = index_->find(s);
  return it == index_->end() ? SymbolId::invalid() : it->second;
}

const std::string& SymbolPool::str(SymbolId id) const {
  if (!id.valid() || id.value() > strings_.size())
    throw std::out_of_range("SymbolPool::str: unknown symbol " + id.str());
  return strings_[id.value() - 1];
}

}  // namespace herc::util
