#include "util/interner.hpp"

#include <stdexcept>

namespace herc::util {

SymbolId SymbolPool::intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  SymbolId id{strings_.size()};
  index_.emplace(strings_.back(), id);
  return id;
}

SymbolId SymbolPool::find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? SymbolId::invalid() : it->second;
}

const std::string& SymbolPool::str(SymbolId id) const {
  if (!id.valid() || id.value() > strings_.size())
    throw std::out_of_range("SymbolPool::str: unknown symbol " + id.str());
  return strings_[id.value() - 1];
}

}  // namespace herc::util
