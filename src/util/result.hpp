#pragma once
// Result<T> / Status: lightweight expected-style error propagation for
// *anticipated* failures (parse errors, unbound task leaves, unknown names in
// queries).  Programmer errors (violated preconditions) throw
// std::logic_error instead; callers are not expected to recover from those.

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace herc::util {

/// Error payload: a category plus a human-readable message.
struct Error {
  enum class Code {
    kParse,        ///< malformed DSL / query / JSON input
    kNotFound,     ///< named object does not exist
    kInvalid,      ///< semantically invalid request (e.g. cyclic schema)
    kUnbound,      ///< task tree leaf has no bound instance
    kConflict,     ///< operation conflicts with database state
    kUnsupported,  ///< feature not available in this configuration
    kIoError,      ///< storage failure (EIO/ENOSPC/short write); retryable
    kOverloaded,   ///< server shed the request under load; retryable
  };

  Code code = Code::kInvalid;
  std::string message;

  [[nodiscard]] std::string str() const {
    return std::string(code_name(code)) + ": " + message;
  }

  /// Transient conditions a client should retry (after backoff) rather than
  /// treat as a hard failure: the request itself was well-formed, the system
  /// just could not serve it right now.
  [[nodiscard]] bool retryable() const {
    return code == Code::kIoError || code == Code::kOverloaded;
  }

  [[nodiscard]] static const char* code_name(Code c) {
    switch (c) {
      case Code::kParse: return "parse error";
      case Code::kNotFound: return "not found";
      case Code::kInvalid: return "invalid";
      case Code::kUnbound: return "unbound";
      case Code::kConflict: return "conflict";
      case Code::kUnsupported: return "unsupported";
      case Code::kIoError: return "io error";
      case Code::kOverloaded: return "overloaded";
    }
    return "unknown";
  }
};

/// Result of an operation returning a T on success.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : error_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Access the value; throws if this Result holds an error.  Use only after
  /// checking ok(), or in tests/examples where failure is a bug.
  [[nodiscard]] const T& value() const& {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    require_ok();
    return std::move(*value_);
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on success value");
    return *error_;
  }

 private:
  void require_ok() const {
    if (!ok()) throw std::runtime_error("Result::value() on error: " + error_->str());
  }

  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT

  [[nodiscard]] static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() on OK status");
    return *error_;
  }

  /// Throws std::runtime_error if not OK.  For tests and examples.
  void expect(const std::string& context) const {
    if (!ok()) throw std::runtime_error(context + ": " + error_->str());
  }

 private:
  std::optional<Error> error_;
};

// Convenience factories.
inline Error parse_error(std::string msg) {
  return Error{Error::Code::kParse, std::move(msg)};
}
inline Error not_found(std::string msg) {
  return Error{Error::Code::kNotFound, std::move(msg)};
}
inline Error invalid(std::string msg) {
  return Error{Error::Code::kInvalid, std::move(msg)};
}
inline Error unbound(std::string msg) {
  return Error{Error::Code::kUnbound, std::move(msg)};
}
inline Error conflict(std::string msg) {
  return Error{Error::Code::kConflict, std::move(msg)};
}
inline Error unsupported(std::string msg) {
  return Error{Error::Code::kUnsupported, std::move(msg)};
}
inline Error io_error(std::string msg) {
  return Error{Error::Code::kIoError, std::move(msg)};
}
inline Error overloaded(std::string msg) {
  return Error{Error::Code::kOverloaded, std::move(msg)};
}

}  // namespace herc::util
