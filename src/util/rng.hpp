#pragma once
// Deterministic pseudo-random numbers for workload generators and the
// predictor ablation benches.  splitmix64 core: tiny, fast, reproducible
// across platforms (std::mt19937 would also be portable but is heavier than
// these call sites need).

#include <cstdint>

namespace herc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 raw bits.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Approximately normal via sum of 12 uniforms (Irwin–Hall), good enough
  /// for noisy-duration synthesis.
  double normal(double mean, double stddev) {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += uniform();
    return mean + (s - 6.0) * stddev;
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace herc::util
