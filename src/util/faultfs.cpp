#include "util/faultfs.hpp"

#include <algorithm>

namespace herc::util {

namespace {

/// splitmix64 finalizer; the same stateless mixing exec::FaultInjector uses,
/// so fault sweeps in both layers share one reproducibility story.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double roll(std::uint64_t seed, std::uint64_t k) {
  std::uint64_t h = mix(seed + 0x9E3779B97F4A7C15ull * (k + 1));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

bool contains_index(const std::vector<std::uint64_t>& v, std::uint64_t k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

std::atomic<FaultFs*> g_installed{nullptr};

}  // namespace

const char* fs_op_name(FsOp op) {
  switch (op) {
    case FsOp::kOpen: return "open";
    case FsOp::kWrite: return "write";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kDirFsync: return "dirfsync";
  }
  return "unknown";
}

FaultFs::FaultFs(std::uint64_t seed, FsFaultPlan plan)
    : seed_(seed), plan_(std::move(plan)) {}

FaultFs::Decision FaultFs::decide(FsOp op, const std::string& path,
                                  std::size_t bytes) {
  (void)op;
  if (!plan_.path_filter.empty() &&
      path.find(plan_.path_filter) == std::string::npos)
    return {};
  const std::uint64_t k = ops_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Dead processes perform no IO: after the latched crash every matching
  // operation fails (the caller translates this into an IO error; nothing
  // reaches the kernel).
  if (crashed_.load(std::memory_order_acquire)) return {Action::kEio, 0};

  Decision d;
  if (plan_.crash_at != 0 && k == plan_.crash_at) {
    d.action = Action::kCrash;
  } else if (contains_index(plan_.torn_write_on, k)) {
    d.action = bytes > 0 ? Action::kTorn : Action::kCrash;
  } else if (contains_index(plan_.short_write_on, k)) {
    d.action = bytes > 0 ? Action::kShort : Action::kEnospc;
  } else if (contains_index(plan_.enospc_on, k)) {
    d.action = Action::kEnospc;
  } else if (contains_index(plan_.eio_on, k)) {
    d.action = Action::kEio;
  } else if (plan_.fail_prob > 0.0 && roll(seed_, k) < plan_.fail_prob) {
    d.action = Action::kEio;
  }
  if (d.action == Action::kNone) return d;

  injected_.fetch_add(1, std::memory_order_relaxed);
  if (d.action == Action::kShort || d.action == Action::kTorn) {
    // Land a hash-placed strict prefix (possibly zero bytes): the sweep then
    // exercises tears at varying positions, including "nothing landed".
    d.prefix_bytes = bytes > 1 ? static_cast<std::size_t>(
                                     roll(seed_ ^ 0xD1B54A32D192ED03ull, k) *
                                     static_cast<double>(bytes))
                               : 0;
    d.prefix_bytes = std::min(d.prefix_bytes, bytes - 1);
  }
  if (d.action == Action::kTorn || d.action == Action::kCrash)
    crashed_.store(true, std::memory_order_release);
  return d;
}

FaultFs* FaultFs::install(FaultFs* fs) { return g_installed.exchange(fs); }

FaultFs* FaultFs::installed() {
  return g_installed.load(std::memory_order_acquire);
}

}  // namespace herc::util
