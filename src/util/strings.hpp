#pragma once
// Small string helpers shared by the DSL/query/JSON parsers and the text
// renderers.  Kept deliberately minimal; nothing here allocates more than the
// obvious result strings.

#include <string>
#include <string_view>
#include <vector>

namespace herc::util {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on any ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (locale independent).
[[nodiscard]] std::string to_lower(std::string_view s);

/// True for a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
[[nodiscard]] bool is_identifier(std::string_view s);

/// Left-pads / right-pads with spaces to at least `width` columns.
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Repeats a single character.
[[nodiscard]] std::string repeat(char c, std::size_t n);

/// Escapes a string for inclusion in JSON output (adds quotes).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Formats a double with up to `digits` fractional digits, trimming zeros.
[[nodiscard]] std::string format_double(double v, int digits = 3);

}  // namespace herc::util
