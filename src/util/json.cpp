#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace herc::util {

Json& JsonObject::set(const std::string& key, Json value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  entries_.emplace_back(key, std::move(value));
  return entries_.back().second;
}

bool JsonObject::contains(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return true;
  return false;
}

const Json& JsonObject::at(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return v;
  throw std::out_of_range("JsonObject::at: missing key '" + key + "'");
}

Json& JsonObject::at(const std::string& key) {
  for (auto& [k, v] : entries_)
    if (k == key) return v;
  throw std::out_of_range("JsonObject::at: missing key '" + key + "'");
}

namespace {

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(as_int());
  } else if (is_double()) {
    double d = std::get<double>(v_);
    if (std::isfinite(d)) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (is_string()) {
    out += json_quote(as_string());
  } else if (is_array()) {
    const auto& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      a[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& o = as_object();
    if (o.size() == 0) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : o) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      out += json_quote(k);
      out += indent < 0 ? ":" : ": ";
      v.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

// Nesting bound: recursive descent must not turn attacker-deep documents
// into stack overflows.
constexpr int kMaxDepth = 200;

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<Json> run() {
    skip_ws();
    auto v = value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after JSON value");
    return v;
  }

 private:
  Result<Json> fail(const std::string& msg) {
    return parse_error("JSON at offset " + std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  bool consume(char c) {
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> value() {
    if (eof()) return fail("unexpected end of input");
    if (depth_ > kMaxDepth) return fail("nesting deeper than 200 levels");
    char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        auto s = string();
        if (!s.ok()) return s.error();
        return Json(std::move(s).take());
      }
      case 't':
        if (consume_word("true")) return Json(true);
        return fail("bad literal");
      case 'f':
        if (consume_word("false")) return Json(false);
        return fail("bad literal");
      case 'n':
        if (consume_word("null")) return Json(nullptr);
        return fail("bad literal");
      default: return number();
    }
  }

  Result<Json> number() {
    std::size_t start = pos_;
    if (consume('-')) {}
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool is_floating = false;
    if (consume('.')) {
      is_floating = true;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_floating = true;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    std::string tok(s_.substr(start, pos_ - start));
    if (tok.empty() || tok == "-") return fail("malformed number");
    if (is_floating) {
      char* end = nullptr;
      double d = std::strtod(tok.c_str(), &end);
      if (end != tok.c_str() + tok.size()) return fail("malformed number");
      return Json(d);
    }
    char* end = nullptr;
    long long i = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size()) return fail("malformed number");
    return Json(static_cast<std::int64_t>(i));
  }

  Result<std::string> string() {
    if (!consume('"')) return parse_error("expected string");
    std::string out;
    while (true) {
      if (eof()) return parse_error("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return parse_error("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return parse_error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return parse_error("bad \\u escape");
            }
            // We only emit \u for control characters, so only decode BMP
            // ASCII-range points; encode others as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return parse_error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Result<Json> array() {
    consume('[');
    ++depth_;
    struct Guard {
      int& d;
      ~Guard() { --d; }
    } guard{depth_};
    JsonArray a;
    skip_ws();
    if (consume(']')) return Json(std::move(a));
    while (true) {
      skip_ws();
      auto v = value();
      if (!v.ok()) return v;
      a.push_back(std::move(v).take());
      skip_ws();
      if (consume(']')) return Json(std::move(a));
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Result<Json> object() {
    consume('{');
    ++depth_;
    struct Guard {
      int& d;
      ~Guard() { --d; }
    } guard{depth_};
    JsonObject o;
    skip_ws();
    if (consume('}')) return Json(std::move(o));
    while (true) {
      skip_ws();
      auto k = string();
      if (!k.ok()) return k.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      auto v = value();
      if (!v.ok()) return v;
      o.set(std::move(k).take(), std::move(v).take());
      skip_ws();
      if (consume('}')) return Json(std::move(o));
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace herc::util
