#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/faultfs.hpp"

namespace herc::util {

namespace {

/// Consults the installed FaultFs (if any) at one IO point.  Returns the
/// no-op decision when injection is off.
FaultFs::Decision fault_decision(FsOp op, const std::string& path,
                                 std::size_t bytes = 0) {
  if (FaultFs* fs = FaultFs::installed()) return fs->decide(op, path, bytes);
  return {};
}

/// The injected-error spelling mirrors strerror so callers and logs treat
/// injected and real faults identically.
Error injected_error(FaultFs::Action action, const char* what,
                     const std::string& path) {
  const char* cause = action == FaultFs::Action::kEnospc ||
                              action == FaultFs::Action::kShort
                          ? "No space left on device"
                          : "Input/output error";
  return io_error(std::string(what) + " '" + path + "' failed: " + cause +
                  " (injected)");
}

}  // namespace

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("cannot open file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return invalid("cannot write file '" + path + "'");
  out << content;
  out.flush();
  if (!out) return io_error("short write to file '" + path + "'");
  return Status::ok_status();
}

Status sync_parent_dir(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  auto fault = fault_decision(FsOp::kDirFsync, path);
  if (fault.action != FaultFs::Action::kNone)
    return injected_error(fault.action, "fsync of directory", dir);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return io_error("cannot open directory '" + dir + "' for fsync");
  // Some filesystems refuse fsync on directories (EINVAL); that is the best
  // the platform offers, not an application error.
  int rc = ::fsync(fd);
  int saved_errno = errno;
  ::close(fd);
  if (rc != 0 && saved_errno != EINVAL)
    return io_error("fsync of directory '" + dir + "' failed: " +
                    std::string(std::strerror(saved_errno)));
  return Status::ok_status();
}

Status write_file_atomic(const std::string& path, std::string_view content,
                         bool durable) {
  const std::string tmp = path + ".tmp";
  {
    // Scoped so the descriptor is closed (AppendFile::~AppendFile) before
    // the rename — and, on any failure, before the tmp file is unlinked.
    AppendFile out;
    auto st = out.open_trunc(tmp);
    if (!st.ok()) return st;
    st = out.append(content);
    if (!st.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return st;
    }
    if (durable) {
      st = out.sync();
      if (!st.ok()) {
        out.close();
        std::remove(tmp.c_str());
        return st;
      }
    }
  }
  auto fault = fault_decision(FsOp::kRename, path);
  if (fault.action != FaultFs::Action::kNone) {
    std::remove(tmp.c_str());
    return injected_error(fault.action, "rename over", path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_error("cannot replace '" + path + "' (rename failed: " +
                    std::string(std::strerror(errno)) + ")");
  }
  if (durable) return sync_parent_dir(path);
  return Status::ok_status();
}

Status AppendFile::open_trunc(const std::string& path) {
  close();
  auto fault = fault_decision(FsOp::kOpen, path);
  if (fault.action != FaultFs::Action::kNone)
    return injected_error(fault.action, "open of", path);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) return invalid("cannot write file '" + path + "'");
  path_ = path;
  return Status::ok_status();
}

void AppendFile::close() {
  if (fd_ >= 0) {
    // EINTR after close() leaves the fd state unspecified on POSIX; Linux
    // always releases it, so retrying close() would race a reused
    // descriptor.  Close once and ignore the (unreportable) result.
    ::close(fd_);
  }
  fd_ = -1;
}

Status AppendFile::append(std::string_view data) {
  if (fd_ < 0) return invalid("append to closed file '" + path_ + "'");
  auto fault = fault_decision(FsOp::kWrite, path_, data.size());
  switch (fault.action) {
    case FaultFs::Action::kNone:
      break;
    case FaultFs::Action::kShort:
    case FaultFs::Action::kTorn: {
      // Land the prefix for real — the on-disk state after a disk-full short
      // write or a mid-write process death — then report the failure.
      std::string_view prefix = data.substr(0, fault.prefix_bytes);
      const char* p = prefix.data();
      std::size_t left = prefix.size();
      while (left > 0) {
        ssize_t n = ::write(fd_, p, left);
        if (n <= 0) break;  // best effort; the op fails either way
        p += n;
        left -= static_cast<std::size_t>(n);
      }
      return injected_error(fault.action, "write to", path_);
    }
    default:
      return injected_error(fault.action, "write to", path_);
  }
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("write to '" + path_ + "' failed: " +
                      std::string(std::strerror(errno)));
    }
    if (n == 0) return io_error("short write to '" + path_ + "'");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

Status AppendFile::sync() {
  if (fd_ < 0) return invalid("sync of closed file '" + path_ + "'");
  auto fault = fault_decision(FsOp::kFsync, path_);
  if (fault.action != FaultFs::Action::kNone)
    return injected_error(fault.action, "fsync of", path_);
  if (::fsync(fd_) != 0)
    return io_error("fsync of '" + path_ + "' failed: " +
                    std::string(std::strerror(errno)));
  return Status::ok_status();
}

}  // namespace herc::util
