#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace herc::util {

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("cannot open file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return invalid("cannot write file '" + path + "'");
  out << content;
  out.flush();
  if (!out) return invalid("short write to file '" + path + "'");
  return Status::ok_status();
}

Status sync_parent_dir(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return invalid("cannot open directory '" + dir + "' for fsync");
  // Some filesystems refuse fsync on directories (EINVAL); that is the best
  // the platform offers, not an application error.
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && errno != EINVAL)
    return invalid("fsync of directory '" + dir + "' failed: " +
                   std::string(std::strerror(errno)));
  return Status::ok_status();
}

Status write_file_atomic(const std::string& path, std::string_view content,
                         bool durable) {
  const std::string tmp = path + ".tmp";
  {
    AppendFile out;
    auto st = out.open_trunc(tmp);
    if (!st.ok()) return st;
    st = out.append(content);
    if (!st.ok()) {
      std::remove(tmp.c_str());
      return st;
    }
    if (durable) {
      st = out.sync();
      if (!st.ok()) {
        std::remove(tmp.c_str());
        return st;
      }
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return invalid("cannot replace '" + path + "' (rename failed)");
  }
  if (durable) return sync_parent_dir(path);
  return Status::ok_status();
}

Status AppendFile::open_trunc(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) return invalid("cannot write file '" + path + "'");
  path_ = path;
  return Status::ok_status();
}

void AppendFile::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status AppendFile::append(std::string_view data) {
  if (fd_ < 0) return invalid("append to closed file '" + path_ + "'");
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return invalid("write to '" + path_ + "' failed: " +
                     std::string(std::strerror(errno)));
    }
    if (n == 0) return invalid("short write to '" + path_ + "'");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

Status AppendFile::sync() {
  if (fd_ < 0) return invalid("sync of closed file '" + path_ + "'");
  if (::fsync(fd_) != 0)
    return invalid("fsync of '" + path_ + "' failed: " +
                   std::string(std::strerror(errno)));
  return Status::ok_status();
}

}  // namespace herc::util
