#include "util/fsio.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace herc::util {

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("cannot open file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return invalid("cannot write file '" + path + "'");
  out << content;
  out.flush();
  if (!out) return invalid("short write to file '" + path + "'");
  return Status::ok_status();
}

Status write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return invalid("cannot write temp file '" + tmp + "'");
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return invalid("short write to temp file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return invalid("cannot replace '" + path + "' (rename failed)");
  }
  return Status::ok_status();
}

}  // namespace herc::util
