#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace herc::util {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string repeat(char c, std::size_t n) { return std::string(n, c); }

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace herc::util
