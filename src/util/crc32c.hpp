#pragma once
// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum the
// storage layer stamps on journal records and snapshot footers.  Chosen over
// plain CRC-32 for its better error-detection properties on short records
// (it is what ext4, iSCSI and LevelDB use for the same job).  Software
// slice-by-4 table implementation: no hardware dependency, ~1 GB/s, far
// faster than the journal's own serialization cost.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace herc::util {

/// CRC-32C of `data`, optionally chaining a previous crc (pass the previous
/// return value to extend a running checksum across buffers).
[[nodiscard]] std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0);

/// Fixed-width lowercase hex (8 digits) of a CRC — the on-disk spelling.
[[nodiscard]] std::uint32_t crc32c_from_hex(std::string_view hex8, bool* ok);
void crc32c_to_hex(std::uint32_t crc, char out[8]);

}  // namespace herc::util
