#pragma once
// Strong identifier types used across the herc libraries.
//
// Every object stored in the metadata database (entity instances, runs,
// schedule instances, links, data objects) carries a small integer id wrapped
// in a distinct type so that, e.g., a RunId cannot be passed where a
// ScheduleNodeId is expected.  Ids are allocated densely per database by
// IdAllocator and are stable for the lifetime of the database (including
// across save/load).

#include <cstdint>
#include <functional>
#include <string>

namespace herc::util {

/// CRTP-free strong integer id.  `Tag` only disambiguates the type.
template <class Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  /// Sentinel "no object" id; default construction yields it.
  [[nodiscard]] static constexpr Id invalid() { return Id{}; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  /// Renders e.g. "#42" or "#-" for the invalid id.
  [[nodiscard]] std::string str() const {
    return valid() ? "#" + std::to_string(value_) : "#-";
  }

 private:
  underlying_type value_ = 0;  // 0 is reserved for "invalid"
};

/// Allocates densely increasing ids starting at 1.
template <class Tag>
class IdAllocator {
 public:
  [[nodiscard]] Id<Tag> next() { return Id<Tag>{++last_}; }

  /// Ensures future ids do not collide with `id` (used when loading a
  /// persisted database).
  void reserve_at_least(Id<Tag> id) {
    if (id.value() > last_) last_ = id.value();
  }

  [[nodiscard]] typename Id<Tag>::underlying_type last() const { return last_; }

 private:
  typename Id<Tag>::underlying_type last_ = 0;
};

// Tag types.  The ids themselves live here so that all layers agree on them.
struct EntityTypeTag {};
struct RuleTag {};
struct TaskNodeTag {};
struct EntityInstanceTag {};
struct RunTag {};
struct ScheduleRunTag {};
struct ScheduleNodeTag {};
struct LinkTag {};
struct DataObjectTag {};
struct ResourceTag {};

using EntityTypeId = Id<EntityTypeTag>;
using RuleId = Id<RuleTag>;
using TaskNodeId = Id<TaskNodeTag>;
using EntityInstanceId = Id<EntityInstanceTag>;
using RunId = Id<RunTag>;
using ScheduleRunId = Id<ScheduleRunTag>;
using ScheduleNodeId = Id<ScheduleNodeTag>;
using LinkId = Id<LinkTag>;
using DataObjectId = Id<DataObjectTag>;
using ResourceId = Id<ResourceTag>;

}  // namespace herc::util

// Hash support so ids can key unordered containers.
template <class Tag>
struct std::hash<herc::util::Id<Tag>> {
  std::size_t operator()(herc::util::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
