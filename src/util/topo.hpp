#pragma once
// Topological ordering over a dense graph of vertices 0..n-1.
//
// Used by: schema validation (construction-rule graph must be acyclic), the
// CPM scheduler (forward/backward passes run in topological order), the
// planner, and the Petri-net adapter's conversion check.

#include <cstddef>
#include <optional>
#include <vector>

namespace herc::util {

/// Adjacency-list digraph over vertices 0..size-1.
class Digraph {
 public:
  explicit Digraph(std::size_t n) : succs_(n), preds_(n) {}

  [[nodiscard]] std::size_t size() const { return succs_.size(); }

  /// Adds the edge from -> to.  Parallel edges are allowed and harmless.
  void add_edge(std::size_t from, std::size_t to);

  [[nodiscard]] const std::vector<std::size_t>& succs(std::size_t v) const {
    return succs_[v];
  }
  [[nodiscard]] const std::vector<std::size_t>& preds(std::size_t v) const {
    return preds_[v];
  }

  [[nodiscard]] std::size_t edge_count() const { return edges_; }

 private:
  std::vector<std::vector<std::size_t>> succs_;
  std::vector<std::vector<std::size_t>> preds_;
  std::size_t edges_ = 0;
};

/// Kahn's algorithm.  Returns a vertex ordering in which every edge goes
/// forward, or std::nullopt if the graph has a cycle.  Deterministic: among
/// ready vertices the smallest index is emitted first.
[[nodiscard]] std::optional<std::vector<std::size_t>> topo_sort(const Digraph& g);

/// Vertices of one cycle if the graph is cyclic (in cycle order), else empty.
/// Useful for error messages pointing at the offending rules.
[[nodiscard]] std::vector<std::size_t> find_cycle(const Digraph& g);

/// Longest path length (in edges) ending at each vertex; the DAG's height.
/// Precondition: g is acyclic (checked; throws std::logic_error on a cycle).
[[nodiscard]] std::vector<std::size_t> longest_path_to(const Digraph& g);

}  // namespace herc::util
