#pragma once
// Minimal JSON document model with a writer and a strict parser.
//
// Used only for persistence (saving/loading the Hercules database) and for
// machine-readable experiment output, so it favours simplicity and
// deterministic output (object keys keep insertion order) over speed.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace herc::util {

class Json;
using JsonArray = std::vector<Json>;

/// Object preserving key insertion order (so that save→load→save is a
/// byte-identical fixed point).
class JsonObject {
 public:
  /// Inserts or overwrites; new keys go to the back.
  Json& set(const std::string& key, Json value);

  [[nodiscard]] bool contains(const std::string& key) const;
  /// Throws std::out_of_range if missing.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] Json& at(const std::string& key);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Json>> entries_;
};

/// A JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so ids survive round trips.
class Json {
 public:
  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}            // NOLINT
  Json(bool b) : v_(b) {}                          // NOLINT
  Json(std::int64_t i) : v_(i) {}                  // NOLINT
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Json(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {}  // NOLINT
  Json(double d) : v_(d) {}                        // NOLINT
  Json(std::string s) : v_(std::move(s)) {}        // NOLINT
  Json(const char* s) : v_(std::string(s)) {}      // NOLINT
  Json(JsonArray a) : v_(std::move(a)) {}          // NOLINT
  Json(JsonObject o) : v_(std::move(o)) {}         // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  // Accessors throw std::bad_variant_access on type mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_double() const {
    return is_int() ? static_cast<double>(as_int()) : std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(v_); }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(v_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(v_); }
  [[nodiscard]] JsonObject& as_object() { return std::get<JsonObject>(v_); }

  /// Serializes; indent < 0 yields compact one-line output.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Strict parser; rejects trailing garbage.
  [[nodiscard]] static Result<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray,
               JsonObject>
      v_;
};

}  // namespace herc::util
