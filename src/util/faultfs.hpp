#pragma once
// Deterministic storage-fault injection for the fsio layer.
//
// The execution layer already has exec::FaultInjector for *tool* failures;
// FaultFs is its sibling for the *disk*.  Every IO point in util/fsio
// (open, write, fsync, rename, directory fsync) consults the installed
// FaultFs before touching the kernel, so a test can make the Nth IO
// operation of a workload return EIO, report ENOSPC, land only a prefix of
// its bytes (short write), tear mid-write and "kill the process", or model
// an outright crash at that IO point — and a sweep over N probes every
// storage state a real crash could leave behind.
//
// Determinism follows the exec::FaultInjector recipe: probabilistic faults
// are a pure hash of (seed, op index) — no RNG stream state — and exact
// fault indices count matching IO operations in issue order.  A
// single-threaded driver therefore gets bit-identical fault sequences for a
// given seed; under concurrent load the op index still sweeps every IO
// point even though which logical request owns an index may vary.
//
// Crash model: a torn write or crash point latches `crashed()`.  From then
// on every matching IO operation fails without touching the kernel —
// exactly a dead process: the bytes already on disk are all recovery gets.
//
// Installation is process-global (the production code paths must not pay an
// argument-threading tax for a test-only shim): ScopedFaultFs installs on
// construction and uninstalls on destruction.  decide() is thread-safe.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace herc::util {

/// The IO points fsio exposes to injection.
enum class FsOp { kOpen, kWrite, kFsync, kRename, kDirFsync };

[[nodiscard]] const char* fs_op_name(FsOp op);

/// A reproducible storage-fault scenario.  Indices are 1-based positions in
/// the sequence of IO operations whose path contains `path_filter`.
struct FsFaultPlan {
  double fail_prob = 0.0;                    ///< per-op injected EIO probability
  std::vector<std::uint64_t> eio_on;         ///< indices that fail with EIO
  std::vector<std::uint64_t> enospc_on;      ///< indices that fail with ENOSPC
  std::vector<std::uint64_t> short_write_on; ///< indices landing a byte prefix
  std::vector<std::uint64_t> torn_write_on;  ///< prefix lands, then crash
  std::uint64_t crash_at = 0;                ///< crash AT this IO point; 0 = off
  /// Only operations whose path contains this substring are counted and
  /// faulted; empty = every operation.  Tests scope injection to their own
  /// temp directory so unrelated IO (other tests, the fuzzer's scratch
  /// files) neither consumes indices nor fails.
  std::string path_filter;

  [[nodiscard]] bool empty() const {
    return fail_prob == 0.0 && eio_on.empty() && enospc_on.empty() &&
           short_write_on.empty() && torn_write_on.empty() && crash_at == 0;
  }
};

class FaultFs {
 public:
  FaultFs(std::uint64_t seed, FsFaultPlan plan);

  enum class Action {
    kNone,    ///< perform the operation normally
    kEio,     ///< fail with EIO, nothing reaches the kernel
    kEnospc,  ///< fail with ENOSPC, nothing reaches the kernel
    kShort,   ///< write only a prefix of the bytes, then report ENOSPC
    kTorn,    ///< write only a prefix, then latch crashed (process death)
    kCrash,   ///< latch crashed before the operation (nothing reaches disk)
  };
  struct Decision {
    Action action = Action::kNone;
    /// For kShort / kTorn: how many of the requested bytes to actually
    /// write.  Derived from the op-index hash so sweeps vary the tear point.
    std::size_t prefix_bytes = 0;
  };

  /// Consulted by fsio at each IO point.  Thread-safe; increments the op
  /// counter only for paths matching the plan's filter.  `bytes` is the
  /// write size (0 for non-write ops), used to place short/torn prefixes.
  [[nodiscard]] Decision decide(FsOp op, const std::string& path,
                                std::size_t bytes);

  /// True once a torn write or crash point fired; all later matching IO
  /// fails (the process is "dead").
  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Matching IO operations seen so far.  A clean pass over a workload
  /// (empty plan) measures the sweep range for crash_at / *_on indices.
  [[nodiscard]] std::uint64_t ops() const {
    return ops_.load(std::memory_order_relaxed);
  }

  /// Faults injected so far (diagnostics; crash latching counts once).
  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FsFaultPlan& plan() const { return plan_; }

  /// Process-global installation point read by fsio.  Pass nullptr to
  /// uninstall.  Returns the previous value.
  static FaultFs* install(FaultFs* fs);
  [[nodiscard]] static FaultFs* installed();

 private:
  const std::uint64_t seed_;
  const FsFaultPlan plan_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<bool> crashed_{false};
};

/// RAII installer: the shim is active for the scope's lifetime.
class ScopedFaultFs {
 public:
  ScopedFaultFs(std::uint64_t seed, FsFaultPlan plan) : fs_(seed, std::move(plan)) {
    previous_ = FaultFs::install(&fs_);
  }
  ~ScopedFaultFs() { FaultFs::install(previous_); }
  ScopedFaultFs(const ScopedFaultFs&) = delete;
  ScopedFaultFs& operator=(const ScopedFaultFs&) = delete;

  [[nodiscard]] FaultFs& fs() { return fs_; }

 private:
  FaultFs fs_;
  FaultFs* previous_ = nullptr;
};

}  // namespace herc::util
