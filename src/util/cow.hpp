#pragma once
// Copy-on-write vector: the storage primitive behind epoch snapshots.
//
// The Level-3 tables (instances, runs, schedule nodes, secondary-index
// postings) are append-mostly: mutators push new rows constantly, rewrite
// old rows rarely (the tracker re-projecting node dates, record_run patching
// a produced_by back-link).  CowVec exploits that shape to make a snapshot
// of a whole table an O(1) pointer copy:
//
//   - The element buffer lives in a shared_ptr'd std::vector.  Copying a
//     CowVec copies the pointer and freezes the source at its current size
//     (the `frozen_` watermark) — from then on, elements below the watermark
//     are potentially visible to snapshot readers and immutable in place.
//   - push_back appends into spare capacity of the current buffer (elements
//     at index >= every snapshot's size are invisible to readers, so writing
//     them is race-free); when capacity runs out the writer clones into a
//     larger buffer instead of letting std::vector reallocate, so a reader's
//     cached data pointer can never dangle.  Old buffers die with the last
//     snapshot that references them — that IS epoch reclamation.
//   - mutate(i) below the watermark unshares first: if snapshots still hold
//     the buffer it clones (one memcpy per table per published epoch, only
//     when an old row is actually rewritten); if the writer is the only
//     owner again it just resets the watermark.
//
// Thread-safety contract: all mutations and all copies happen on the writer
// (one thread at a time — the shard's write lane).  Readers use only the
// const interface of *their own copy*, which touches the immutable prefix
// through a cached data pointer and never the shared std::vector object
// itself.  `frozen_` is atomic only so that concurrently copying one
// snapshot from two threads (which marks the source frozen) stays defined.
//
// With no copies ever taken, frozen_ stays 0 and CowVec behaves like a
// plain vector with manual growth — zero overhead on the single-threaded
// path.

#include <atomic>
#include <cstddef>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

namespace herc::util {

template <typename T>
class CowVec {
 public:
  using value_type = T;
  using const_iterator = const T*;
  using const_reverse_iterator = std::reverse_iterator<const T*>;

  CowVec() = default;

  /// Snapshot copy: O(1).  Shares the buffer and freezes the source — the
  /// source's writer will unshare before rewriting any element this copy
  /// can see.
  CowVec(const CowVec& other)
      : buf_(other.buf_),
        data_(other.data_),
        size_(other.size_),
        frozen_(other.size_) {
    if (buf_) other.frozen_.store(other.size_, std::memory_order_relaxed);
  }

  CowVec& operator=(const CowVec& other) {
    if (this != &other) {
      CowVec tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }

  CowVec(CowVec&& other) noexcept
      : buf_(std::move(other.buf_)),
        data_(other.data_),
        size_(other.size_),
        frozen_(other.frozen_.load(std::memory_order_relaxed)) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.frozen_.store(0, std::memory_order_relaxed);
  }

  CowVec& operator=(CowVec&& other) noexcept {
    if (this != &other) {
      buf_ = std::move(other.buf_);
      data_ = other.data_;
      size_ = other.size_;
      frozen_.store(other.frozen_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      other.data_ = nullptr;
      other.size_ = 0;
      other.frozen_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  // --- const interface (the only part snapshot readers may touch) ----------
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }
  [[nodiscard]] const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  [[nodiscard]] const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  // --- writer interface ----------------------------------------------------
  void push_back(T value) {
    reserve_for_append();
    buf_->push_back(std::move(value));
    data_ = buf_->data();
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    reserve_for_append();
    buf_->emplace_back(std::forward<Args>(args)...);
    data_ = buf_->data();
    ++size_;
    return buf_->back();
  }

  /// Mutable element access; unshares the buffer first when snapshots may
  /// see index `i`.  The returned reference is invalidated by the next
  /// copy/push_back/mutate, like a vector reference by reallocation.
  [[nodiscard]] T& mutate(std::size_t i) {
    if (i < frozen_.load(std::memory_order_relaxed)) unshare();
    return buf_->data()[i];
  }

  [[nodiscard]] T& mutable_back() { return mutate(size_ - 1); }

 private:
  /// Guarantees one element of spare, private-to-the-writer capacity.
  /// Cloning (never reallocating a shared buffer) keeps every snapshot's
  /// data pointer valid for its lifetime.
  void reserve_for_append() {
    if (!buf_) {
      buf_ = std::make_shared<std::vector<T>>();
      buf_->reserve(8);
      return;
    }
    if (buf_->size() < buf_->capacity()) return;
    auto grown = std::make_shared<std::vector<T>>();
    grown->reserve(buf_->capacity() * 2);
    grown->assign(buf_->begin(), buf_->end());
    buf_ = std::move(grown);
    data_ = buf_->data();
    frozen_.store(0, std::memory_order_relaxed);  // the new buffer is private
  }

  void unshare() {
    // use_count()==1 means every snapshot that froze us has been reclaimed;
    // readers only ever drop references, so a stale count errs toward an
    // unnecessary clone, never toward mutating shared memory.
    if (buf_.use_count() > 1) {
      auto clone = std::make_shared<std::vector<T>>();
      clone->reserve(buf_->capacity());
      clone->assign(buf_->begin(), buf_->end());
      buf_ = std::move(clone);
      data_ = buf_->data();
    }
    frozen_.store(0, std::memory_order_relaxed);
  }

  std::shared_ptr<std::vector<T>> buf_;
  T* data_ = nullptr;       ///< cached buf_->data(); readers use only this
  std::size_t size_ = 0;    ///< logical size; <= buf_->size() never, == always
  /// Elements below this index may be visible to a live snapshot.  Mutable +
  /// atomic: copying marks the (const) source frozen.
  mutable std::atomic<std::size_t> frozen_{0};
};

}  // namespace herc::util
