#pragma once
// Small file I/O helpers shared by the CLI and the persistence layer.
//
// write_file_atomic is the load-bearing one: project snapshots must never be
// half-written.  It writes to a sibling temp file and renames it over the
// target, so a crash (or a full disk) mid-save leaves any existing file
// untouched — either the old snapshot survives intact or the new one is
// complete.
//
// Durability levels: by default writes only reach the OS page cache (an
// application crash cannot lose them, a machine crash can).  Passing
// `durable = true` additionally fsyncs the data — and, for the atomic
// variant, the containing directory after the rename — so the write survives
// power loss once the call returns.  The server's group-committed journal
// and shutdown snapshots use the durable mode; the single-user CLI defaults
// to the cheap one.

#include <string>

#include "util/result.hpp"

namespace herc::util {

/// Reads a whole file; kNotFound if it cannot be opened.
[[nodiscard]] Result<std::string> read_file(const std::string& path);

/// Plain truncating write (journals append elsewhere; this is for scratch
/// output where atomicity does not matter).
[[nodiscard]] Status write_file(const std::string& path, std::string_view content);

/// Crash-safe replace: writes `content` to `path + ".tmp"`, flushes, then
/// renames over `path`.  On any failure the original file is left exactly as
/// it was and the temp file is removed (best effort).  With `durable` the
/// temp file is fsynced before the rename and the parent directory after it,
/// so the replacement itself survives power loss.
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       std::string_view content,
                                       bool durable = false);

/// fsyncs the directory containing `path` (durable rename requires the
/// directory entry to reach disk too).  Best effort on filesystems that
/// reject directory fsync.
[[nodiscard]] Status sync_parent_dir(const std::string& path);

/// An append-only file handle over a POSIX descriptor: the journal's I/O
/// primitive.  Unbuffered — append() issues the write immediately — with an
/// explicit sync() for fsync-backed durability.  Not thread-safe; callers
/// (RunJournal directly, or the server's GroupCommitter) serialize access.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile() { close(); }
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating or truncating) `path` for appending.
  [[nodiscard]] Status open_trunc(const std::string& path);
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  void close();

  /// Writes all of `data`; fails on short writes (disk full) or I/O errors.
  [[nodiscard]] Status append(std::string_view data);

  /// fsync: blocks until everything appended so far is on stable storage.
  [[nodiscard]] Status sync();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace herc::util
