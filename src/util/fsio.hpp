#pragma once
// Small file I/O helpers shared by the CLI and the persistence layer.
//
// write_file_atomic is the load-bearing one: project snapshots must never be
// half-written.  It writes to a sibling temp file and renames it over the
// target, so a crash (or a full disk) mid-save leaves any existing file
// untouched — either the old snapshot survives intact or the new one is
// complete.

#include <string>

#include "util/result.hpp"

namespace herc::util {

/// Reads a whole file; kNotFound if it cannot be opened.
[[nodiscard]] Result<std::string> read_file(const std::string& path);

/// Plain truncating write (journals append elsewhere; this is for scratch
/// output where atomicity does not matter).
[[nodiscard]] Status write_file(const std::string& path, std::string_view content);

/// Crash-safe replace: writes `content` to `path + ".tmp"`, flushes, then
/// renames over `path`.  On any failure the original file is left exactly as
/// it was and the temp file is removed (best effort).
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       std::string_view content);

}  // namespace herc::util
