#include "util/topo.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace herc::util {

void Digraph::add_edge(std::size_t from, std::size_t to) {
  succs_.at(from).push_back(to);
  preds_.at(to).push_back(from);
  ++edges_;
}

std::optional<std::vector<std::size_t>> topo_sort(const Digraph& g) {
  std::vector<std::size_t> indeg(g.size(), 0);
  for (std::size_t v = 0; v < g.size(); ++v)
    for (std::size_t s : g.succs(v)) ++indeg[s];

  // min-heap for determinism
  std::priority_queue<std::size_t, std::vector<std::size_t>, std::greater<>> ready;
  for (std::size_t v = 0; v < g.size(); ++v)
    if (indeg[v] == 0) ready.push(v);

  std::vector<std::size_t> order;
  order.reserve(g.size());
  while (!ready.empty()) {
    std::size_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (std::size_t s : g.succs(v))
      if (--indeg[s] == 0) ready.push(s);
  }
  if (order.size() != g.size()) return std::nullopt;
  return order;
}

std::vector<std::size_t> find_cycle(const Digraph& g) {
  enum class Mark { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(g.size(), Mark::kWhite);
  std::vector<std::size_t> parent(g.size(), g.size());

  // Iterative DFS; when we meet a grey vertex we walk parents back to it.
  for (std::size_t root = 0; root < g.size(); ++root) {
    if (mark[root] != Mark::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (vertex, next succ idx)
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < g.succs(v).size()) {
        std::size_t s = g.succs(v)[i++];
        if (mark[s] == Mark::kWhite) {
          mark[s] = Mark::kGrey;
          parent[s] = v;
          stack.emplace_back(s, 0);
        } else if (mark[s] == Mark::kGrey) {
          // Found a back edge v -> s: collect s .. v.
          std::vector<std::size_t> cycle{s};
          for (std::size_t w = v; w != s; w = parent[w]) cycle.push_back(w);
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
      } else {
        mark[v] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

std::vector<std::size_t> longest_path_to(const Digraph& g) {
  auto order = topo_sort(g);
  if (!order) throw std::logic_error("longest_path_to: graph has a cycle");
  std::vector<std::size_t> dist(g.size(), 0);
  for (std::size_t v : *order)
    for (std::size_t s : g.succs(v)) dist[s] = std::max(dist[s], dist[v] + 1);
  return dist;
}

}  // namespace herc::util
