#pragma once
// String interning for the metadata spaces.
//
// The Level-3 databases store the same short strings over and over: activity
// names, type names, designers, tool bindings.  A SymbolPool maps each
// distinct string to a dense SymbolId (1-based, 0 invalid, same convention as
// every other util::Id) so hot paths — secondary-index keys, compiled query
// predicates — compare and hash one integer instead of re-hashing the string
// per row.  The pool is append-only: ids are stable for the lifetime of the
// owning database, and interning the same string twice returns the same id.
//
// Copying a pool is an O(1) snapshot (the epoch-snapshot machinery copies it
// with the rest of the database): the string table is a CowVec and the
// lookup map is shared; intern() clones the map before inserting whenever a
// snapshot still shares it, so a reader's find() races with nothing.  The
// distinct-string population plateaus quickly in practice, making the clone
// a warmup cost.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/cow.hpp"
#include "util/ids.hpp"

namespace herc::util {

struct SymbolTag {};
using SymbolId = Id<SymbolTag>;

class SymbolPool {
 public:
  SymbolPool() : index_(std::make_shared<Map>()) {}

  /// Returns the id of `s`, interning it first if unseen.
  SymbolId intern(std::string_view s);

  /// Id of `s` if already interned; invalid() otherwise.  Never mutates, so
  /// a query engine can probe literals against a const database.
  [[nodiscard]] SymbolId find(std::string_view s) const;

  /// The interned string.  Throws on an id this pool never issued.
  [[nodiscard]] const std::string& str(SymbolId id) const;

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  using Map = std::unordered_map<std::string, SymbolId, Hash, Eq>;

  CowVec<std::string> strings_;  // index = id - 1
  std::shared_ptr<Map> index_;   // never null; cloned before insert if shared
};

}  // namespace herc::util
