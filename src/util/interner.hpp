#pragma once
// String interning for the metadata spaces.
//
// The Level-3 databases store the same short strings over and over: activity
// names, type names, designers, tool bindings.  A SymbolPool maps each
// distinct string to a dense SymbolId (1-based, 0 invalid, same convention as
// every other util::Id) so hot paths — secondary-index keys, compiled query
// predicates — compare and hash one integer instead of re-hashing the string
// per row.  The pool is append-only: ids are stable for the lifetime of the
// owning database, and interning the same string twice returns the same id.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"

namespace herc::util {

struct SymbolTag {};
using SymbolId = Id<SymbolTag>;

class SymbolPool {
 public:
  /// Returns the id of `s`, interning it first if unseen.
  SymbolId intern(std::string_view s);

  /// Id of `s` if already interned; invalid() otherwise.  Never mutates, so
  /// a query engine can probe literals against a const database.
  [[nodiscard]] SymbolId find(std::string_view s) const;

  /// The interned string.  Throws on an id this pool never issued.
  [[nodiscard]] const std::string& str(SymbolId id) const;

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::vector<std::string> strings_;  // index = id - 1
  std::unordered_map<std::string, SymbolId, Hash, Eq> index_;
};

}  // namespace herc::util
