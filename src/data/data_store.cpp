#include "data/data_store.hpp"

#include <cstdio>
#include <stdexcept>

namespace herc::data {

std::uint64_t content_hash(std::string_view content) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : content) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string DataObject::str() const {
  char hash_buf[8];
  std::snprintf(hash_buf, sizeof hash_buf, "%04x",
                static_cast<unsigned>(content_hash >> 48));
  return name + " v" + std::to_string(version) + " (" + id.str() + ", " + hash_buf +
         "..)";
}

DataObjectId DataStore::create(const std::string& name, const std::string& type_name,
                               std::string content, cal::WorkInstant at) {
  DataObject obj;
  obj.id = ids_.next();
  obj.name = name;
  obj.type_name = type_name;
  obj.content_hash = content_hash(content);
  obj.content = std::move(content);
  obj.created_at = at;
  auto& versions = by_name_[name];
  obj.version = static_cast<int>(versions.size()) + 1;
  versions.push_back(obj.id);
  objects_.push_back(std::move(obj));
  return objects_.back().id;
}

bool DataStore::contains(DataObjectId id) const {
  return id.valid() && id.value() <= objects_.size();
}

const DataObject& DataStore::get(DataObjectId id) const {
  if (!contains(id)) throw std::out_of_range("DataStore::get: unknown id " + id.str());
  return objects_[id.value() - 1];
}

std::optional<DataObjectId> DataStore::latest(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::vector<DataObjectId> DataStore::of_type(const std::string& type_name) const {
  std::vector<DataObjectId> out;
  for (const auto& obj : objects_)
    if (obj.type_name == type_name) out.push_back(obj.id);
  return out;
}

util::Status DataStore::restore(DataObject obj) {
  if (!obj.id.valid()) return util::invalid("restore: invalid data object id");
  if (obj.id.value() != objects_.size() + 1) {
    return util::conflict("restore: data objects must be restored in id order, got " +
                          obj.id.str());
  }
  by_name_[obj.name].push_back(obj.id);
  ids_.reserve_at_least(obj.id);
  objects_.push_back(std::move(obj));
  return util::Status::ok_status();
}

}  // namespace herc::data
