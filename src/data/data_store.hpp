#pragma once
// Level 4 of the four-level architecture: the actual design data produced by
// flow execution.
//
// In the paper this level holds the real CAD files (netlists, stimuli,
// simulation results) managed by the Odyssey framework.  Here it is a
// versioned, content-hashed in-memory object store; the simulated tools in
// herc::exec write synthetic design data into it and Level-3 entity
// instances point at the objects by id.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"

namespace herc::data {

using util::DataObjectId;

/// One immutable version of a piece of design data.
struct DataObject {
  DataObjectId id;
  std::string name;        ///< e.g. "adder.netlist"
  std::string type_name;   ///< Level-1 entity type that classifies it
  int version = 1;         ///< per-(name) version counter
  std::string content;     ///< the synthetic design data itself
  std::uint64_t content_hash = 0;
  cal::WorkInstant created_at;

  /// "adder.netlist v2 (#7, 1f3a..)" — used in database dumps.
  [[nodiscard]] std::string str() const;
};

/// FNV-1a 64-bit; stable across platforms so persisted hashes round-trip.
[[nodiscard]] std::uint64_t content_hash(std::string_view content);

/// Append-only store of DataObjects.  Objects are immutable once created;
/// "modifying" design data means creating the next version.
class DataStore {
 public:
  /// Creates the next version of `name` with the given content.
  DataObjectId create(const std::string& name, const std::string& type_name,
                      std::string content, cal::WorkInstant at);

  [[nodiscard]] bool contains(DataObjectId id) const;
  /// Throws std::out_of_range on an unknown id (ids come from our own DB).
  [[nodiscard]] const DataObject& get(DataObjectId id) const;

  /// Latest version of `name`, if any.
  [[nodiscard]] std::optional<DataObjectId> latest(const std::string& name) const;

  /// All objects of a given entity type, in creation order.
  [[nodiscard]] std::vector<DataObjectId> of_type(const std::string& type_name) const;

  /// All objects in creation order.
  [[nodiscard]] const std::vector<DataObject>& all() const { return objects_; }

  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  /// Re-inserts a persisted object verbatim (load path).  Rejects duplicate
  /// ids.
  util::Status restore(DataObject obj);

 private:
  std::vector<DataObject> objects_;  // index = id - 1
  std::unordered_map<std::string, std::vector<DataObjectId>> by_name_;
  util::IdAllocator<util::DataObjectTag> ids_;
};

}  // namespace herc::data
