#include "exec/executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace herc::exec {

util::Result<ExecutionResult> Executor::execute(const flow::TaskTree& tree,
                                                const std::string& designer) {
  obs::ScopedTimer timer(bus_, "execute", "exec");
  auto bound = tree.fully_bound();
  if (!bound.ok()) return bound.error();

  produced_.assign(tree.nodes().size() + 1, meta::EntityInstanceId::invalid());

  ExecutionResult result;
  for (flow::TaskNodeId act : tree.activities_post_order()) {
    auto one = run_one(tree, act, designer, /*resolve_from_db=*/false);
    if (!one.ok()) return one.error();
    result.runs.push_back(one.value());
    if (!one.value().success) {
      result.success = false;
      return result;  // designer must fix and re-run (iteration)
    }
    produced_[act.value()] = one.value().output;
  }
  result.final_output = produced_[tree.root().value()];
  return result;
}

util::Result<ActivityRunResult> Executor::execute_activity(const flow::TaskTree& tree,
                                                           flow::TaskNodeId activity,
                                                           const std::string& designer) {
  const flow::TaskNode& n = tree.node(activity);
  if (n.kind != flow::NodeKind::kActivity)
    return util::invalid("execute_activity: node " + activity.str() + " is a leaf");
  obs::ScopedTimer timer(bus_, "iterate", "exec");
  produced_.assign(tree.nodes().size() + 1, meta::EntityInstanceId::invalid());
  return run_one(tree, activity, designer, /*resolve_from_db=*/true);
}

util::Result<ExecutionResult> Executor::execute_concurrent(
    const flow::TaskTree& tree, const std::string& designer,
    const DispatchOptions& options) {
  obs::ScopedTimer timer(bus_, "dispatch", "exec");
  auto bound = tree.fully_bound();
  if (!bound.ok()) return bound.error();
  const auto& schema = tree.schema();
  for (const auto& [activity, resources] : options.assignments) {
    if (!schema.find_rule_by_activity(activity))
      return util::not_found("dispatch: assignment for unknown activity '" + activity +
                             "'");
    for (meta::ResourceId r : resources)
      if (!r.valid() || r.value() > db_->resources().size())
        return util::not_found("dispatch: unknown resource " + r.str());
  }

  produced_.assign(tree.nodes().size() + 1, meta::EntityInstanceId::invalid());

  // Per-resource booked intervals (same serial-dispatch rule as leveling).
  struct Interval {
    std::int64_t start, finish;
  };
  std::vector<std::vector<Interval>> booked(db_->resources().size());
  auto usage_at = [&](std::size_t r, std::int64_t t) {
    int n = 0;
    for (const auto& iv : booked[r])
      if (iv.start <= t && t < iv.finish) ++n;
    return n;
  };

  std::vector<std::int64_t> node_finish(tree.nodes().size() + 1, 0);
  const std::int64_t base = clock_->now().minutes_since_epoch();
  std::int64_t makespan_abs = base;

  ExecutionResult result;
  for (flow::TaskNodeId act : tree.activities_post_order()) {
    const flow::TaskNode& node = tree.node(act);
    const auto& rule = schema.rule(node.rule);
    const std::string& output_type = schema.type(node.type).name;

    // Inputs: imports materialize at `base`; activity children at their
    // dispatch finish.
    std::vector<meta::EntityInstanceId> inputs;
    std::string tool_binding;
    std::int64_t ready = base;
    for (flow::TaskNodeId child_id : node.children) {
      const flow::TaskNode& child = tree.node(child_id);
      if (child.kind == flow::NodeKind::kToolLeaf) {
        tool_binding = child.binding;
      } else if (child.kind == flow::NodeKind::kDataLeaf) {
        inputs.push_back(import_input(schema.type(child.type).name, child.binding));
      } else {
        inputs.push_back(produced_[child_id.value()]);
        ready = std::max(ready, node_finish[child_id.value()]);
      }
    }

    ToolInvocation inv;
    inv.activity = rule.activity;
    inv.output_type = output_type;
    inv.attempt = static_cast<int>(db_->runs_of_activity(rule.activity).size()) + 1;
    for (meta::EntityInstanceId in : inputs) {
      const auto& e = db_->instance(in);
      inv.input_names.push_back(e.name + " v" + std::to_string(e.version));
      inv.input_contents.push_back(e.data.valid() ? store_->get(e.data).content : "");
    }
    auto outcome = tools_->invoke(tool_binding, schema.type(rule.tool).name, inv);
    if (!outcome.ok()) return outcome.error();
    const ToolOutcome& oc = outcome.value();
    const std::int64_t duration = oc.duration.count_minutes();

    // Earliest feasible start: `ready`, or a booked-interval end after it on
    // a required resource (capacity only frees up there).
    std::vector<std::size_t> required;
    if (auto it = options.assignments.find(rule.activity);
        it != options.assignments.end())
      for (meta::ResourceId r : it->second) required.push_back(r.value() - 1);

    std::int64_t start = ready;
    {
      std::vector<std::int64_t> candidates{ready};
      for (std::size_t r : required)
        for (const auto& iv : booked[r])
          if (iv.finish > ready) candidates.push_back(iv.finish);
      std::sort(candidates.begin(), candidates.end());
      for (std::int64_t t : candidates) {
        bool feasible = true;
        for (std::size_t r : required) {
          int cap = db_->resources()[r].capacity;
          if (usage_at(r, t) >= cap) feasible = false;
          for (const auto& iv : booked[r])
            if (iv.start > t && iv.start < t + duration && usage_at(r, iv.start) >= cap)
              feasible = false;
          if (!feasible) break;
        }
        if (feasible) {
          start = t;
          break;
        }
      }
    }
    const std::int64_t finish = start + duration;
    for (std::size_t r : required) booked[r].push_back({start, finish});

    meta::Run run;
    run.activity = rule.activity;
    run.rule = rule.id;
    run.tool_binding = tool_binding;
    run.designer = designer;
    run.inputs = inputs;
    run.started_at = cal::WorkInstant(start);
    run.finished_at = cal::WorkInstant(finish);

    ActivityRunResult one;
    if (oc.success) {
      auto data_id = store_->create(output_type, output_type, oc.content,
                                    cal::WorkInstant(finish));
      auto inst = db_->create_instance(output_type, output_type, meta::RunId::invalid(),
                                       data_id, cal::WorkInstant(finish));
      if (!inst.ok()) return inst.error();
      run.output = inst.value();
      run.status = meta::RunStatus::kCompleted;
      one.output = inst.value();
      one.success = true;
    } else {
      run.status = meta::RunStatus::kFailed;
      one.success = false;
    }
    auto run_id = db_->record_run(std::move(run));
    if (!run_id.ok()) return run_id.error();
    one.run = run_id.value();
    publish_run(db_->run(one.run));
    result.runs.push_back(one);

    if (!one.success) {
      result.success = false;
      clock_->advance_to(cal::WorkInstant(std::max(makespan_abs, finish)));
      return result;
    }
    produced_[act.value()] = one.output;
    node_finish[act.value()] = finish;
    makespan_abs = std::max(makespan_abs, finish);
  }

  result.final_output = produced_[tree.root().value()];
  clock_->advance_to(cal::WorkInstant(makespan_abs));
  return result;
}

meta::EntityInstanceId Executor::import_input(const std::string& type_name,
                                              const std::string& data_name) {
  if (auto existing = db_->latest_named(type_name, data_name)) return *existing;
  // First use of an external input: synthesize its Level-4 data and register
  // a Level-3 instance with no producing run (an import).
  std::string content = "# imported " + type_name + " '" + data_name + "'\n";
  auto data_id = store_->create(data_name, type_name, std::move(content), clock_->now());
  auto inst = db_->create_instance(type_name, data_name, meta::RunId::invalid(), data_id,
                                   clock_->now());
  // create_instance only fails on unknown/tool types; the tree guarantees a
  // valid data type here.
  return inst.value();
}

util::Result<ActivityRunResult> Executor::run_one(const flow::TaskTree& tree,
                                                  flow::TaskNodeId activity,
                                                  const std::string& designer,
                                                  bool resolve_from_db) {
  const flow::TaskNode& node = tree.node(activity);
  const auto& schema = tree.schema();
  const auto& rule = schema.rule(node.rule);
  const std::string& output_type = schema.type(node.type).name;

  // Gather input instances from the node's children (tool leaf is last).
  std::vector<meta::EntityInstanceId> inputs;
  std::string tool_binding;
  for (flow::TaskNodeId child_id : node.children) {
    const flow::TaskNode& child = tree.node(child_id);
    switch (child.kind) {
      case flow::NodeKind::kToolLeaf:
        tool_binding = child.binding;
        break;
      case flow::NodeKind::kDataLeaf: {
        if (child.binding.empty())
          return util::unbound("data leaf '" + schema.type(child.type).name +
                               "' is unbound");
        inputs.push_back(import_input(schema.type(child.type).name, child.binding));
        break;
      }
      case flow::NodeKind::kActivity: {
        meta::EntityInstanceId inst = produced_[child_id.value()];
        if (!inst.valid() && resolve_from_db) {
          const std::string& child_type = schema.type(child.type).name;
          auto latest = db_->latest_in_container(child_type);
          if (!latest)
            return util::conflict("iteration of '" + rule.activity + "': input type '" +
                                  child_type + "' has no instance yet; run '" +
                                  tree.activity_name(child_id) + "' first");
          inst = *latest;
        }
        if (!inst.valid())
          return util::conflict("internal: child activity '" +
                                tree.activity_name(child_id) + "' produced no output");
        inputs.push_back(inst);
        break;
      }
    }
  }
  if (tool_binding.empty())
    return util::unbound("activity '" + rule.activity + "' has no bound tool");

  // Build the invocation from the inputs' Level-4 content.
  ToolInvocation inv;
  inv.activity = rule.activity;
  inv.output_type = output_type;
  inv.attempt = static_cast<int>(db_->runs_of_activity(rule.activity).size()) + 1;
  for (meta::EntityInstanceId in : inputs) {
    const auto& e = db_->instance(in);
    inv.input_names.push_back(e.name + " v" + std::to_string(e.version));
    inv.input_contents.push_back(e.data.valid() ? store_->get(e.data).content : "");
  }

  if (obs::on(bus_)) {
    obs::Event e;
    e.kind = obs::EventKind::kRunStarted;
    e.name = rule.activity;
    e.category = "exec";
    e.work_start = clock_->now();
    e.args = {{"designer", designer}, {"tool", tool_binding}};
    bus_->publish(std::move(e));
  }

  auto outcome = tools_->invoke(tool_binding, schema.type(rule.tool).name, inv);
  if (!outcome.ok()) return outcome.error();
  const ToolOutcome& oc = outcome.value();

  cal::WorkInstant started = clock_->now();
  clock_->advance(oc.duration);
  cal::WorkInstant finished = clock_->now();

  meta::Run run;
  run.activity = rule.activity;
  run.rule = rule.id;
  run.tool_binding = tool_binding;
  run.designer = designer;
  run.inputs = inputs;
  run.started_at = started;
  run.finished_at = finished;

  ActivityRunResult result;
  if (oc.success) {
    auto data_id = store_->create(output_type, output_type, oc.content, finished);
    auto inst = db_->create_instance(output_type, output_type, meta::RunId::invalid(),
                                     data_id, finished);
    if (!inst.ok()) return inst.error();
    run.output = inst.value();
    run.status = meta::RunStatus::kCompleted;
    result.output = inst.value();
    result.success = true;
  } else {
    run.status = meta::RunStatus::kFailed;
    result.success = false;
  }

  auto run_id = db_->record_run(std::move(run));
  if (!run_id.ok()) return run_id.error();
  result.run = run_id.value();
  publish_run(db_->run(result.run));
  return result;
}

void Executor::publish_run(const meta::Run& run) {
  if (!obs::on(bus_)) return;
  obs::Event e;
  e.kind = obs::EventKind::kRunFinished;
  e.name = run.activity;
  e.category = "exec";
  e.id = run.id.value();
  e.work_start = run.started_at;
  e.work_finish = run.finished_at;
  e.failed = run.status == meta::RunStatus::kFailed;
  e.args = {{"designer", run.designer}, {"tool", run.tool_binding}};
  bus_->publish(std::move(e));
}

}  // namespace herc::exec
