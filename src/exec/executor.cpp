#include "exec/executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace herc::exec {

namespace {

/// Publishes the per-call fault counters on scope exit, so they reach the
/// bus on every return path (including error returns).
struct FaultStatsGuard {
  explicit FaultStatsGuard(Executor& executor) : e_(&executor) {}
  ~FaultStatsGuard() { e_->publish_fault_stats(); }
  FaultStatsGuard(const FaultStatsGuard&) = delete;
  FaultStatsGuard& operator=(const FaultStatsGuard&) = delete;
  Executor* e_;
};

}  // namespace

int Executor::attempts_allowed(const std::string& tool_binding) const {
  if (options_.on_failure == FailurePolicy::kAbort) return 1;  // seed behavior
  return std::max(1, options_.policy_for(tool_binding).max_attempts);
}

util::Result<ActivityRunResult> Executor::run_with_retry(
    const flow::TaskTree& tree, flow::TaskNodeId activity,
    const std::string& designer, bool resolve_from_db,
    std::vector<ActivityRunResult>& all_attempts) {
  std::string binding;
  for (flow::TaskNodeId cid : tree.node(activity).children)
    if (tree.node(cid).kind == flow::NodeKind::kToolLeaf)
      binding = tree.node(cid).binding;
  const int max_attempts = attempts_allowed(binding);
  const RetryPolicy& policy = options_.policy_for(binding);

  for (int attempt = 1;; ++attempt) {
    auto one = run_one(tree, activity, designer, resolve_from_db, attempt);
    if (!one.ok()) return one;  // structural error (unbound, conflict): not retryable
    all_attempts.push_back(one.value());
    if (one.value().timed_out) ++timeouts_;
    if (one.value().success || attempt >= max_attempts) return one;
    // Re-attempt after the policy's work-time backoff (think time while the
    // designer or the farm recovers the tool).
    clock_->advance(policy.backoff);
    ++retries_;
  }
}

util::Result<ExecutionResult> Executor::execute(const flow::TaskTree& tree,
                                                const std::string& designer) {
  obs::ScopedTimer timer(bus_, "execute", "exec");
  retries_ = timeouts_ = degraded_ = 0;
  FaultStatsGuard stats(*this);
  auto bound = tree.fully_bound();
  if (!bound.ok()) return bound.error();

  produced_.assign(tree.nodes().size() + 1, meta::EntityInstanceId::invalid());
  // kOk until a run fails (kFailed) or an ancestor of a failure is reached
  // (kSkipped, kContinueIndependent only).
  enum class NodeState : char { kOk, kFailed, kSkipped };
  std::vector<NodeState> state(tree.nodes().size() + 1, NodeState::kOk);
  const bool degrade = options_.on_failure == FailurePolicy::kContinueIndependent;

  ExecutionResult result;
  for (flow::TaskNodeId act : tree.activities_post_order()) {
    if (degrade) {
      bool input_lost = false;
      for (flow::TaskNodeId cid : tree.node(act).children) {
        if (tree.node(cid).kind != flow::NodeKind::kActivity) continue;
        if (state[cid.value()] != NodeState::kOk) input_lost = true;
      }
      if (input_lost) {
        state[act.value()] = NodeState::kSkipped;
        result.skipped.push_back(tree.activity_name(act));
        result.success = false;
        ++degraded_;
        continue;
      }
    }
    auto one = run_with_retry(tree, act, designer, /*resolve_from_db=*/false,
                              result.runs);
    if (!one.ok()) return one.error();
    if (!one.value().success) {
      result.success = false;
      if (!degrade) return result;  // designer must fix and re-run (iteration)
      state[act.value()] = NodeState::kFailed;
      continue;
    }
    produced_[act.value()] = one.value().output;
  }
  result.final_output = produced_[tree.root().value()];
  return result;
}

util::Result<ActivityRunResult> Executor::execute_activity(const flow::TaskTree& tree,
                                                           flow::TaskNodeId activity,
                                                           const std::string& designer) {
  const flow::TaskNode& n = tree.node(activity);
  if (n.kind != flow::NodeKind::kActivity)
    return util::invalid("execute_activity: node " + activity.str() + " is a leaf");
  obs::ScopedTimer timer(bus_, "iterate", "exec");
  retries_ = timeouts_ = degraded_ = 0;
  FaultStatsGuard stats(*this);
  produced_.assign(tree.nodes().size() + 1, meta::EntityInstanceId::invalid());
  std::vector<ActivityRunResult> attempts;
  return run_with_retry(tree, activity, designer, /*resolve_from_db=*/true, attempts);
}

util::Result<ExecutionResult> Executor::execute_concurrent(
    const flow::TaskTree& tree, const std::string& designer,
    const DispatchOptions& options) {
  obs::ScopedTimer timer(bus_, "dispatch", "exec");
  retries_ = timeouts_ = degraded_ = 0;
  FaultStatsGuard stats(*this);
  auto bound = tree.fully_bound();
  if (!bound.ok()) return bound.error();
  const auto& schema = tree.schema();
  for (const auto& [activity, resources] : options.assignments) {
    if (!schema.find_rule_by_activity(activity))
      return util::not_found("dispatch: assignment for unknown activity '" + activity +
                             "'");
    for (meta::ResourceId r : resources)
      if (!r.valid() || r.value() > db_->resources().size())
        return util::not_found("dispatch: unknown resource " + r.str());
  }

  produced_.assign(tree.nodes().size() + 1, meta::EntityInstanceId::invalid());
  enum class NodeState : char { kOk, kFailed, kSkipped };
  std::vector<NodeState> state(tree.nodes().size() + 1, NodeState::kOk);
  const bool degrade = options_.on_failure == FailurePolicy::kContinueIndependent;

  // Per-resource booked intervals (same serial-dispatch rule as leveling).
  // A failed run's booking still ends at its recorded finish, so resources
  // held by a failed activity are released for everything dispatched later.
  struct Interval {
    std::int64_t start, finish;
  };
  std::vector<std::vector<Interval>> booked(db_->resources().size());
  auto usage_at = [&](std::size_t r, std::int64_t t) {
    int n = 0;
    for (const auto& iv : booked[r])
      if (iv.start <= t && t < iv.finish) ++n;
    return n;
  };

  std::vector<std::int64_t> node_finish(tree.nodes().size() + 1, 0);
  const std::int64_t base = clock_->now().minutes_since_epoch();
  std::int64_t makespan_abs = base;

  ExecutionResult result;
  for (flow::TaskNodeId act : tree.activities_post_order()) {
    const flow::TaskNode& node = tree.node(act);
    const auto& rule = schema.rule(node.rule);
    const std::string& output_type = schema.type(node.type).name;

    // Decide skip BEFORE importing (like the serial sweep): a skipped
    // activity must leave no trace in the execution space — an import
    // created here would belong to no run, so no journal line would ever
    // cover it and snapshot+journal recovery could not reproduce the state.
    bool input_lost = false;
    for (flow::TaskNodeId child_id : node.children) {
      const flow::TaskNode& child = tree.node(child_id);
      if (child.kind == flow::NodeKind::kActivity &&
          state[child_id.value()] != NodeState::kOk)
        input_lost = true;
    }
    if (input_lost) {  // degrade mode only: failures stop the sweep otherwise
      state[act.value()] = NodeState::kSkipped;
      result.skipped.push_back(rule.activity);
      result.success = false;
      ++degraded_;
      continue;
    }

    // Inputs: imports materialize at `base`; activity children at their
    // dispatch finish.
    std::vector<meta::EntityInstanceId> inputs;
    std::string tool_binding;
    std::int64_t ready = base;
    for (flow::TaskNodeId child_id : node.children) {
      const flow::TaskNode& child = tree.node(child_id);
      if (child.kind == flow::NodeKind::kToolLeaf) {
        tool_binding = child.binding;
      } else if (child.kind == flow::NodeKind::kDataLeaf) {
        inputs.push_back(import_input(schema.type(child.type).name, child.binding));
      } else {
        inputs.push_back(produced_[child_id.value()]);
        ready = std::max(ready, node_finish[child_id.value()]);
      }
    }

    const RetryPolicy& policy = options_.policy_for(tool_binding);
    const int max_attempts = attempts_allowed(tool_binding);

    // Resources this activity occupies while running (capacity bookings).
    std::vector<std::size_t> required;
    if (auto it = options.assignments.find(rule.activity);
        it != options.assignments.end())
      for (meta::ResourceId r : it->second) required.push_back(r.value() - 1);

    ActivityRunResult one;
    std::int64_t finish = ready;
    for (int attempt = 1;; ++attempt) {
      ToolInvocation inv;
      inv.activity = rule.activity;
      inv.output_type = output_type;
      inv.attempt = static_cast<int>(db_->runs_of_activity(rule.activity).size()) + 1;
      for (meta::EntityInstanceId in : inputs) {
        const auto& e = db_->instance(in);
        inv.input_names.push_back(e.name + " v" + std::to_string(e.version));
        inv.input_contents.push_back(e.data.valid() ? store_->get(e.data).content : "");
      }
      auto outcome = tools_->invoke(tool_binding, schema.type(rule.tool).name, inv);
      if (!outcome.ok()) return outcome.error();
      const ToolOutcome& oc = outcome.value();
      std::int64_t duration = oc.duration.count_minutes();
      bool timed_out = false;
      if (policy.timeout.count_minutes() > 0 &&
          duration > policy.timeout.count_minutes()) {
        duration = policy.timeout.count_minutes();  // killed at the budget
        timed_out = true;
      }

      // Earliest feasible start: `ready`, or a booked-interval end after it
      // on a required resource (capacity only frees up there).
      std::int64_t start = ready;
      {
        std::vector<std::int64_t> candidates{ready};
        for (std::size_t r : required)
          for (const auto& iv : booked[r])
            if (iv.finish > ready) candidates.push_back(iv.finish);
        std::sort(candidates.begin(), candidates.end());
        for (std::int64_t t : candidates) {
          bool feasible = true;
          for (std::size_t r : required) {
            int cap = db_->resources()[r].capacity;
            if (usage_at(r, t) >= cap) feasible = false;
            for (const auto& iv : booked[r])
              if (iv.start > t && iv.start < t + duration && usage_at(r, iv.start) >= cap)
                feasible = false;
            if (!feasible) break;
          }
          if (feasible) {
            start = t;
            break;
          }
        }
      }
      finish = start + duration;
      for (std::size_t r : required) booked[r].push_back({start, finish});

      meta::Run run;
      run.activity = rule.activity;
      run.rule = rule.id;
      run.tool_binding = tool_binding;
      run.designer = designer;
      run.inputs = inputs;
      run.started_at = cal::WorkInstant(start);
      run.finished_at = cal::WorkInstant(finish);

      one = ActivityRunResult{};
      one.attempt = attempt;
      one.timed_out = timed_out;
      const bool run_ok = oc.success && !timed_out;
      if (run_ok) {
        auto data_id = store_->create(output_type, output_type, oc.content,
                                      cal::WorkInstant(finish));
        auto inst = db_->create_instance(output_type, output_type, meta::RunId::invalid(),
                                         data_id, cal::WorkInstant(finish));
        if (!inst.ok()) return inst.error();
        run.output = inst.value();
        run.status = meta::RunStatus::kCompleted;
        one.output = inst.value();
        one.success = true;
      } else {
        run.status = meta::RunStatus::kFailed;
        one.success = false;
        if (timed_out) ++timeouts_;
      }
      auto run_id = db_->record_run(std::move(run));
      if (!run_id.ok()) return run_id.error();
      one.run = run_id.value();
      publish_run(db_->run(one.run), attempt, timed_out);
      result.runs.push_back(one);
      makespan_abs = std::max(makespan_abs, finish);

      if (one.success || attempt >= max_attempts) break;
      ready = finish + policy.backoff.count_minutes();
      ++retries_;
    }

    if (!one.success) {
      result.success = false;
      if (!degrade) {
        clock_->advance_to(cal::WorkInstant(makespan_abs));
        return result;
      }
      state[act.value()] = NodeState::kFailed;
      continue;
    }
    produced_[act.value()] = one.output;
    node_finish[act.value()] = finish;
  }

  result.final_output = produced_[tree.root().value()];
  clock_->advance_to(cal::WorkInstant(makespan_abs));
  return result;
}

meta::EntityInstanceId Executor::import_input(const std::string& type_name,
                                              const std::string& data_name) {
  if (auto existing = db_->latest_named(type_name, data_name)) return *existing;
  // First use of an external input: synthesize its Level-4 data and register
  // a Level-3 instance with no producing run (an import).
  std::string content = "# imported " + type_name + " '" + data_name + "'\n";
  auto data_id = store_->create(data_name, type_name, std::move(content), clock_->now());
  auto inst = db_->create_instance(type_name, data_name, meta::RunId::invalid(), data_id,
                                   clock_->now());
  // create_instance only fails on unknown/tool types; the tree guarantees a
  // valid data type here.
  return inst.value();
}

util::Result<ActivityRunResult> Executor::run_one(const flow::TaskTree& tree,
                                                  flow::TaskNodeId activity,
                                                  const std::string& designer,
                                                  bool resolve_from_db, int attempt) {
  const flow::TaskNode& node = tree.node(activity);
  const auto& schema = tree.schema();
  const auto& rule = schema.rule(node.rule);
  const std::string& output_type = schema.type(node.type).name;

  // Gather input instances from the node's children (tool leaf is last).
  std::vector<meta::EntityInstanceId> inputs;
  std::string tool_binding;
  for (flow::TaskNodeId child_id : node.children) {
    const flow::TaskNode& child = tree.node(child_id);
    switch (child.kind) {
      case flow::NodeKind::kToolLeaf:
        tool_binding = child.binding;
        break;
      case flow::NodeKind::kDataLeaf: {
        if (child.binding.empty())
          return util::unbound("data leaf '" + schema.type(child.type).name +
                               "' is unbound");
        inputs.push_back(import_input(schema.type(child.type).name, child.binding));
        break;
      }
      case flow::NodeKind::kActivity: {
        meta::EntityInstanceId inst = produced_[child_id.value()];
        if (!inst.valid() && resolve_from_db) {
          const std::string& child_type = schema.type(child.type).name;
          auto latest = db_->latest_in_container(child_type);
          if (!latest)
            return util::conflict("iteration of '" + rule.activity + "': input type '" +
                                  child_type + "' has no instance yet; run '" +
                                  tree.activity_name(child_id) + "' first");
          inst = *latest;
        }
        if (!inst.valid())
          return util::conflict("internal: child activity '" +
                                tree.activity_name(child_id) + "' produced no output");
        inputs.push_back(inst);
        break;
      }
    }
  }
  if (tool_binding.empty())
    return util::unbound("activity '" + rule.activity + "' has no bound tool");

  // Build the invocation from the inputs' Level-4 content.
  ToolInvocation inv;
  inv.activity = rule.activity;
  inv.output_type = output_type;
  inv.attempt = static_cast<int>(db_->runs_of_activity(rule.activity).size()) + 1;
  for (meta::EntityInstanceId in : inputs) {
    const auto& e = db_->instance(in);
    inv.input_names.push_back(e.name + " v" + std::to_string(e.version));
    inv.input_contents.push_back(e.data.valid() ? store_->get(e.data).content : "");
  }

  if (obs::on(bus_)) {
    obs::Event e;
    e.kind = obs::EventKind::kRunStarted;
    e.name = rule.activity;
    e.category = "exec";
    e.work_start = clock_->now();
    e.args = {{"designer", designer}, {"tool", tool_binding}};
    if (attempt > 1) e.args.emplace_back("attempt", std::to_string(attempt));
    bus_->publish(std::move(e));
  }

  auto outcome = tools_->invoke(tool_binding, schema.type(rule.tool).name, inv);
  if (!outcome.ok()) return outcome.error();
  const ToolOutcome& oc = outcome.value();

  // Timeout budget: a run whose simulated duration exceeds it is killed at
  // the budget — the designer gets a failed run after `timeout` work time,
  // not a success after however long the tool would have taken.
  const RetryPolicy& policy = options_.policy_for(tool_binding);
  cal::WorkDuration duration = oc.duration;
  bool timed_out = false;
  if (policy.timeout.count_minutes() > 0 && duration > policy.timeout) {
    duration = policy.timeout;
    timed_out = true;
  }

  cal::WorkInstant started = clock_->now();
  clock_->advance(duration);
  cal::WorkInstant finished = clock_->now();

  meta::Run run;
  run.activity = rule.activity;
  run.rule = rule.id;
  run.tool_binding = tool_binding;
  run.designer = designer;
  run.inputs = inputs;
  run.started_at = started;
  run.finished_at = finished;

  ActivityRunResult result;
  result.attempt = attempt;
  result.timed_out = timed_out;
  if (oc.success && !timed_out) {
    auto data_id = store_->create(output_type, output_type, oc.content, finished);
    auto inst = db_->create_instance(output_type, output_type, meta::RunId::invalid(),
                                     data_id, finished);
    if (!inst.ok()) return inst.error();
    run.output = inst.value();
    run.status = meta::RunStatus::kCompleted;
    result.output = inst.value();
    result.success = true;
  } else {
    run.status = meta::RunStatus::kFailed;
    result.success = false;
  }

  auto run_id = db_->record_run(std::move(run));
  if (!run_id.ok()) return run_id.error();
  result.run = run_id.value();
  publish_run(db_->run(result.run), attempt, timed_out);
  return result;
}

void Executor::publish_run(const meta::Run& run, int attempt, bool timed_out) {
  if (!obs::on(bus_)) return;
  obs::Event e;
  e.kind = obs::EventKind::kRunFinished;
  e.name = run.activity;
  e.category = "exec";
  e.id = run.id.value();
  e.work_start = run.started_at;
  e.work_finish = run.finished_at;
  e.failed = run.status == meta::RunStatus::kFailed;
  e.args = {{"designer", run.designer}, {"tool", run.tool_binding}};
  if (attempt > 1) e.args.emplace_back("attempt", std::to_string(attempt));
  if (timed_out) e.args.emplace_back("timed_out", "1");
  bus_->publish(std::move(e));
}

void Executor::publish_fault_stats() {
  if (retries_ == 0 && timeouts_ == 0 && degraded_ == 0) return;
  if (!obs::on(bus_)) return;
  // Counter-delta carrier, same idiom as cpm.solver: the MetricsRegistry
  // folds these into run_retries / run_timeouts / runs_degraded.
  obs::Event e;
  e.kind = obs::EventKind::kScope;
  e.name = "exec.faults";
  e.category = "exec";
  if (retries_ > 0) e.args.emplace_back("retries", std::to_string(retries_));
  if (timeouts_ > 0) e.args.emplace_back("timeouts", std::to_string(timeouts_));
  if (degraded_ > 0) e.args.emplace_back("degraded", std::to_string(degraded_));
  bus_->publish(std::move(e));
}

}  // namespace herc::exec
