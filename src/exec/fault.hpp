#pragma once
// Deterministic fault injection for the simulated tool layer.
//
// Robustness work needs failures that are *reproducible*: the same seed and
// FaultPlan must yield the same failure sequence on every run, on every
// platform, and regardless of how many threads the rest of the system uses.
// The injector therefore keeps no mutable stream state — the decision for
// the k-th invocation of a tool instance is a pure hash of
// (seed, instance name, k), so decisions never depend on the order in which
// other tools were invoked.
//
// Three fault shapes are supported per tool instance (plus a "*" wildcard
// entry that applies to every instance without its own entry):
//   - fail_prob:        an extra, injected failure probability,
//   - latency_factor:   multiplies the simulated run duration (slow tools
//                       exercise timeout policies),
//   - fail_on/crash_on: exact 1-based invocation indices that always fail /
//                       crash the process.
// A plan-wide crash_after_total kills the process when the total invocation
// count across all tools reaches N — the crash harness sweeps this to probe
// every point of an execution.
//
// "Crash" means InjectedCrash is thrown out of ToolRegistry::invoke.  Tests
// catch it at top level and abandon the manager, simulating process death:
// everything not yet journaled or snapshotted is lost (see
// hercules/journal.hpp for the recovery side).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace herc::exec {

/// Faults for one tool instance (or the "*" wildcard).
struct ToolFaults {
  double fail_prob = 0.0;       ///< injected failure probability per invocation
  double latency_factor = 1.0;  ///< multiplies the simulated duration
  std::vector<int> fail_on;     ///< 1-based invocation indices that always fail
  std::vector<int> crash_on;    ///< 1-based invocation indices that crash
};

/// A complete, reproducible fault scenario.
struct FaultPlan {
  /// Keyed by tool instance name; "*" applies to instances without an entry.
  std::unordered_map<std::string, ToolFaults> tools;
  /// Crash when the total invocation count (all tools) reaches N; 0 = off.
  std::uint64_t crash_after_total = 0;

  [[nodiscard]] bool empty() const { return tools.empty() && crash_after_total == 0; }
};

/// Serializes a plan so fuzz corpora and saved fault scenarios replay the
/// exact same failure sequence.  Tool entries are emitted in sorted key
/// order, so the output is deterministic for a given plan.
[[nodiscard]] util::Json fault_plan_to_json(const FaultPlan& plan);

/// Inverse of fault_plan_to_json.  kParse on a structural mismatch.
[[nodiscard]] util::Result<FaultPlan> fault_plan_from_json(const util::Json& json);

/// Thrown by ToolRegistry::invoke at an injected crash point.  Deliberately
/// NOT a util::Error: a crash must not be absorbed by normal Result-style
/// error handling — it unwinds to whoever simulates the process boundary.
class InjectedCrash : public std::runtime_error {
 public:
  InjectedCrash(std::string tool, std::uint64_t invocation)
      : std::runtime_error("injected crash at invocation " +
                           std::to_string(invocation) + " of tool '" + tool + "'"),
        tool_(std::move(tool)),
        invocation_(invocation) {}

  [[nodiscard]] const std::string& tool() const { return tool_; }
  [[nodiscard]] std::uint64_t invocation() const { return invocation_; }

 private:
  std::string tool_;
  std::uint64_t invocation_;
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultPlan plan)
      : seed_(seed), plan_(std::move(plan)) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// What happens to the k-th (1-based) invocation of `instance`, when the
  /// process-wide invocation count (including this one) is `total`.  Pure:
  /// calling it twice with the same arguments gives the same answer.
  struct Decision {
    bool fail = false;
    bool crash = false;
    double latency_factor = 1.0;
  };
  [[nodiscard]] Decision decide(const std::string& instance, std::uint64_t k,
                                std::uint64_t total) const;

 private:
  std::uint64_t seed_;
  FaultPlan plan_;
};

}  // namespace herc::exec
