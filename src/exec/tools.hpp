#pragma once
// Simulated CAD tools.
//
// The paper ran real Mentor/Odyssey tools; we substitute deterministic
// simulated tools (see DESIGN.md).  A ToolSpec registers one *tool instance*
// (e.g. "spice3f5@server1") of a Level-1 tool type, with a duration model
// (nominal run time, optional multiplicative noise) and an optional custom
// behaviour that synthesizes the output design data from the inputs.  All
// randomness comes from one seeded RNG in the registry, so whole experiments
// replay bit-identically.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "exec/fault.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace herc::exec {

/// What a tool sees when invoked.
struct ToolInvocation {
  std::string activity;                ///< construction-rule activity name
  std::string output_type;             ///< data type to produce
  std::vector<std::string> input_names;
  std::vector<std::string> input_contents;
  int attempt = 1;                     ///< 1-based iteration count of this activity
};

/// What a tool produces.
struct ToolOutcome {
  bool success = true;
  std::string content;       ///< synthetic design data (empty on failure)
  cal::WorkDuration duration;///< how long the run took, in work time
  std::string log;           ///< one-line tool log for the run record
  bool fault_injected = false;  ///< failure came from the FaultInjector
};

using ToolBehavior = std::function<std::string(const ToolInvocation&)>;

/// Registration record for one tool instance.
struct ToolSpec {
  std::string instance_name;  ///< unique binding name, e.g. "spice3f5@server1"
  std::string tool_type;      ///< Level-1 tool type it instantiates
  cal::WorkDuration nominal = cal::WorkDuration::hours(4);
  double noise_frac = 0.0;    ///< uniform +-fraction applied to nominal
  double fail_rate = 0.0;     ///< probability a run fails
  ToolBehavior behavior;      ///< optional; default synthesizes generic content
};

/// Registry of tool instances, keyed by instance name.
class ToolRegistry {
 public:
  explicit ToolRegistry(std::uint64_t seed = 1) : rng_(seed) {}

  /// Fails on duplicate instance names or empty fields.
  util::Status add(ToolSpec spec);

  [[nodiscard]] bool contains(const std::string& instance_name) const;
  [[nodiscard]] const ToolSpec& spec(const std::string& instance_name) const;

  /// All registered instances of a tool type.
  [[nodiscard]] std::vector<std::string> instances_of(const std::string& tool_type) const;

  /// Runs the simulated tool.  kNotFound if the binding is unknown;
  /// kInvalid if its type differs from `expected_tool_type`.  Throws
  /// InjectedCrash when the installed fault injector hits a crash point.
  [[nodiscard]] util::Result<ToolOutcome> invoke(const std::string& instance_name,
                                                 const std::string& expected_tool_type,
                                                 const ToolInvocation& inv);

  /// Installs (or clears, with nullptr) a fault injector consulted on every
  /// invoke.  Borrowed; the caller keeps it alive while installed.
  void set_fault_injector(const FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] const FaultInjector* fault_injector() const { return faults_; }

  /// 1-based count of invoke() calls that reached `instance_name` so far
  /// (the index the fault plan's fail_on/crash_on lists refer to).
  [[nodiscard]] std::uint64_t invocations(const std::string& instance_name) const;
  [[nodiscard]] std::uint64_t total_invocations() const { return total_invocations_; }

 private:
  std::unordered_map<std::string, ToolSpec> tools_;
  std::vector<std::string> order_;  // registration order for instances_of
  util::Rng rng_;
  const FaultInjector* faults_ = nullptr;
  std::unordered_map<std::string, std::uint64_t> invocation_counts_;
  std::uint64_t total_invocations_ = 0;
};

/// Default content synthesizer: a small readable artifact that mixes the
/// activity, output type and a hash of the inputs, so downstream content
/// changes whenever any upstream content changes (needed for the versioning
/// tests).
[[nodiscard]] std::string default_tool_content(const ToolInvocation& inv);

}  // namespace herc::exec
