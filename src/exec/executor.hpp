#pragma once
// Flow execution: the post-order traversal of a bound task tree that creates
// Level-3 entity instances and runs plus Level-4 data objects.
//
// "At each step in the execution, entity instances are created in the
//  Hercules database for each non-leaf node" — paper, Sec. IV.A.
//
// Execution happens on a virtual clock (SimClock) in work time; the executor
// advances the clock by each tool's simulated duration.  Designers can
// advance the clock manually between runs to model think time, which is how
// the examples inject schedule slips.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "data/data_store.hpp"
#include "exec/tools.hpp"
#include "flow/task_tree.hpp"
#include "metadata/database.hpp"
#include "obs/event_bus.hpp"

namespace herc::exec {

/// Virtual project clock in work time.
class SimClock {
 public:
  [[nodiscard]] cal::WorkInstant now() const { return now_; }

  void advance(cal::WorkDuration d) {
    if (d.count_minutes() < 0) throw std::logic_error("SimClock: negative advance");
    now_ = now_ + d;
  }

  /// Moves the clock forward to `t`; never backwards.
  void advance_to(cal::WorkInstant t) {
    if (t > now_) now_ = t;
  }

 private:
  cal::WorkInstant now_;
};

/// Result of executing one activity.
struct ActivityRunResult {
  meta::RunId run;
  meta::EntityInstanceId output;  ///< invalid if the run failed
  bool success = true;
};

/// Result of executing a whole task tree.
struct ExecutionResult {
  std::vector<ActivityRunResult> runs;     ///< in execution (post) order
  meta::EntityInstanceId final_output;     ///< instance of the root's type
  bool success = true;                     ///< false if any run failed
};

class Executor {
 public:
  /// All dependencies are borrowed; the WorkflowManager owns them.  `bus`
  /// (optional) receives run_started / run_finished events and wall-clock
  /// scopes; a null or subscriber-less bus costs one atomic load per event.
  Executor(meta::Database& db, data::DataStore& store, ToolRegistry& tools,
           SimClock& clock, obs::EventBus* bus = nullptr)
      : db_(&db), store_(&store), tools_(&tools), clock_(&clock), bus_(bus) {}

  /// Executes the whole bound tree in post-order.  Stops at the first failed
  /// run (the paper's designers fix and re-run).  kUnbound if leaves are
  /// missing bindings.
  [[nodiscard]] util::Result<ExecutionResult> execute(const flow::TaskTree& tree,
                                                      const std::string& designer);

  /// Executes a single activity node of the tree (an *iteration*: "a given
  /// activity may need to be run several times before the design goals are
  /// achieved").  Inputs resolve to the latest instances in the database;
  /// kConflict if an input has no instance yet (upstream never ran).
  [[nodiscard]] util::Result<ActivityRunResult> execute_activity(
      const flow::TaskTree& tree, flow::TaskNodeId activity,
      const std::string& designer);

  /// Concurrent-dispatch options: which resources each activity occupies
  /// while it runs (capacities come from the database's resource registry).
  struct DispatchOptions {
    std::unordered_map<std::string, std::vector<meta::ResourceId>> assignments;
  };

  /// Executes the whole tree the way a team would: independent activities
  /// run in OVERLAPPING work time, each starting as soon as its inputs exist
  /// and its assigned resources are free (same serial-dispatch rule as
  /// resource leveling; activities are non-preemptible).  Recorded run
  /// timestamps overlap accordingly and the clock advances to the dispatch
  /// makespan.  Activities with no assignment entry are only input-limited.
  /// Tool failures abort the remaining dispatch (partial result returned
  /// with success = false).
  [[nodiscard]] util::Result<ExecutionResult> execute_concurrent(
      const flow::TaskTree& tree, const std::string& designer,
      const DispatchOptions& options = {});

 private:
  /// Ensures a primary-input binding has an entity instance, importing one
  /// (plus a synthetic Level-4 object) on first use.
  meta::EntityInstanceId import_input(const std::string& type_name,
                                      const std::string& data_name);

  util::Result<ActivityRunResult> run_one(const flow::TaskTree& tree,
                                          flow::TaskNodeId activity,
                                          const std::string& designer,
                                          bool resolve_from_db);

  /// Publishes a kRunFinished event for a freshly recorded run.
  void publish_run(const meta::Run& run);

  meta::Database* db_;
  data::DataStore* store_;
  ToolRegistry* tools_;
  SimClock* clock_;
  obs::EventBus* bus_ = nullptr;
  // Within one execute() call, maps activity nodes to the instances they
  // produced, so parents consume exactly their children's outputs.
  std::vector<meta::EntityInstanceId> produced_;
};

}  // namespace herc::exec
