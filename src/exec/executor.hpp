#pragma once
// Flow execution: the post-order traversal of a bound task tree that creates
// Level-3 entity instances and runs plus Level-4 data objects.
//
// "At each step in the execution, entity instances are created in the
//  Hercules database for each non-leaf node" — paper, Sec. IV.A.
//
// Execution happens on a virtual clock (SimClock) in work time; the executor
// advances the clock by each tool's simulated duration.  Designers can
// advance the clock manually between runs to model think time, which is how
// the examples inject schedule slips.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "data/data_store.hpp"
#include "exec/tools.hpp"
#include "flow/task_tree.hpp"
#include "metadata/database.hpp"
#include "obs/event_bus.hpp"

namespace herc::exec {

/// Virtual project clock in work time.
class SimClock {
 public:
  [[nodiscard]] cal::WorkInstant now() const { return now_; }

  void advance(cal::WorkDuration d) {
    if (d.count_minutes() < 0) throw std::logic_error("SimClock: negative advance");
    now_ = now_ + d;
  }

  /// Moves the clock forward to `t`; never backwards.
  void advance_to(cal::WorkInstant t) {
    if (t > now_) now_ = t;
  }

 private:
  cal::WorkInstant now_;
};

/// Result of executing one activity (one recorded attempt).
struct ActivityRunResult {
  meta::RunId run;
  meta::EntityInstanceId output;  ///< invalid if the run failed
  bool success = true;
  int attempt = 1;          ///< 1-based attempt index within one retry loop
  bool timed_out = false;   ///< failed because it exceeded the timeout budget
};

/// Result of executing a whole task tree.
struct ExecutionResult {
  std::vector<ActivityRunResult> runs;  ///< every attempt, in execution order
  /// Instance of the root's type; explicitly the invalid sentinel whenever
  /// execution did not reach a successful root run (a real instance id is
  /// never 0, so `final_output.valid()` is the reliable check).
  meta::EntityInstanceId final_output = meta::EntityInstanceId::invalid();
  bool success = true;  ///< false if any run failed or was skipped
  /// Activities never attempted because an input's producer failed
  /// (FailurePolicy::kContinueIndependent only), in post order.
  std::vector<std::string> skipped;
};

/// How often and how long one activity run may be retried.
struct RetryPolicy {
  int max_attempts = 1;       ///< total attempts per activity; >= 1
  cal::WorkDuration backoff;  ///< work-time pause inserted before each retry
  /// Per-attempt work-time budget; a run whose simulated duration exceeds it
  /// is killed at the budget and recorded as a failed (timed-out) run.
  /// Zero means unlimited.
  cal::WorkDuration timeout;
};

/// What `execute` / `execute_concurrent` do when an activity run fails.
enum class FailurePolicy {
  kAbort,                ///< stop at the first failure, no retries (seed behavior)
  kRetryThenAbort,       ///< apply the retry policy, then stop if still failing
  kContinueIndependent,  ///< retry, then skip the failure's ancestors but keep
                         ///< dispatching independent subtrees (degraded result)
};

/// Per-execution failure semantics.  Defaults reproduce the seed behavior
/// exactly: one attempt, no timeout, abort on first failure.
struct ExecutionOptions {
  FailurePolicy on_failure = FailurePolicy::kAbort;
  RetryPolicy retry;  ///< applies to every tool without an override
  /// Per-tool-instance overrides, keyed by binding name.
  std::unordered_map<std::string, RetryPolicy> tool_retry;

  [[nodiscard]] const RetryPolicy& policy_for(const std::string& tool_binding) const {
    auto it = tool_retry.find(tool_binding);
    return it == tool_retry.end() ? retry : it->second;
  }
};

class Executor {
 public:
  /// All dependencies are borrowed; the WorkflowManager owns them.  `bus`
  /// (optional) receives run_started / run_finished events and wall-clock
  /// scopes; a null or subscriber-less bus costs one atomic load per event.
  Executor(meta::Database& db, data::DataStore& store, ToolRegistry& tools,
           SimClock& clock, obs::EventBus* bus = nullptr, ExecutionOptions options = {})
      : db_(&db), store_(&store), tools_(&tools), clock_(&clock), bus_(bus),
        options_(std::move(options)) {}

  [[nodiscard]] const ExecutionOptions& options() const { return options_; }
  void set_options(ExecutionOptions options) { options_ = std::move(options); }

  /// Executes the whole bound tree in post-order.  With the default options
  /// it stops at the first failed run (the paper's designers fix and
  /// re-run); see FailurePolicy for retrying and graceful degradation.
  /// Every attempt is recorded as its own Level-3 run.  kUnbound if leaves
  /// are missing bindings.
  [[nodiscard]] util::Result<ExecutionResult> execute(const flow::TaskTree& tree,
                                                      const std::string& designer);

  /// Executes a single activity node of the tree (an *iteration*: "a given
  /// activity may need to be run several times before the design goals are
  /// achieved").  Inputs resolve to the latest instances in the database;
  /// kConflict if an input has no instance yet (upstream never ran).
  [[nodiscard]] util::Result<ActivityRunResult> execute_activity(
      const flow::TaskTree& tree, flow::TaskNodeId activity,
      const std::string& designer);

  /// Concurrent-dispatch options: which resources each activity occupies
  /// while it runs (capacities come from the database's resource registry).
  struct DispatchOptions {
    std::unordered_map<std::string, std::vector<meta::ResourceId>> assignments;
  };

  /// Executes the whole tree the way a team would: independent activities
  /// run in OVERLAPPING work time, each starting as soon as its inputs exist
  /// and its assigned resources are free (same serial-dispatch rule as
  /// resource leveling; activities are non-preemptible).  Recorded run
  /// timestamps overlap accordingly and the clock advances to the dispatch
  /// makespan.  Activities with no assignment entry are only input-limited.
  /// Under the default kAbort policy, tool failures abort the remaining
  /// dispatch (partial result returned with success = false); under
  /// kContinueIndependent the failed activity's ancestor chain is skipped
  /// and independent subtrees keep dispatching.  A failed activity's
  /// resources are released at its recorded finish.
  [[nodiscard]] util::Result<ExecutionResult> execute_concurrent(
      const flow::TaskTree& tree, const std::string& designer,
      const DispatchOptions& options = {});

  /// Publishes the fault-counter deltas accumulated by the current execute
  /// call as one "exec.faults" kScope event (no-op when all are zero).
  /// Called automatically on exit from execute / execute_concurrent.
  void publish_fault_stats();

 private:
  /// Ensures a primary-input binding has an entity instance, importing one
  /// (plus a synthetic Level-4 object) on first use.
  meta::EntityInstanceId import_input(const std::string& type_name,
                                      const std::string& data_name);

  util::Result<ActivityRunResult> run_one(const flow::TaskTree& tree,
                                          flow::TaskNodeId activity,
                                          const std::string& designer,
                                          bool resolve_from_db, int attempt);

  /// run_one with the activity's retry policy applied: re-attempts failed
  /// runs (each attempt is its own recorded run, appended to `all_attempts`)
  /// with the policy's work-time backoff between attempts.
  util::Result<ActivityRunResult> run_with_retry(
      const flow::TaskTree& tree, flow::TaskNodeId activity,
      const std::string& designer, bool resolve_from_db,
      std::vector<ActivityRunResult>& all_attempts);

  /// True when the policy allows more than one attempt (kAbort never does).
  [[nodiscard]] int attempts_allowed(const std::string& tool_binding) const;

  /// Publishes a kRunFinished event for a freshly recorded run.
  void publish_run(const meta::Run& run, int attempt, bool timed_out);

  meta::Database* db_;
  data::DataStore* store_;
  ToolRegistry* tools_;
  SimClock* clock_;
  obs::EventBus* bus_ = nullptr;
  ExecutionOptions options_;
  // Within one execute() call, maps activity nodes to the instances they
  // produced, so parents consume exactly their children's outputs.
  std::vector<meta::EntityInstanceId> produced_;
  // Per-call fault counters, published as one exec.faults event.
  std::uint64_t retries_ = 0, timeouts_ = 0, degraded_ = 0;
};

}  // namespace herc::exec
