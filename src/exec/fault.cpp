#include "exec/fault.hpp"

#include <algorithm>

namespace herc::exec {

namespace {

/// splitmix64 finalizer; same mixing as util::Rng but stateless.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// FNV-1a over the instance name, so decisions are per-tool streams.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Uniform double in [0, 1) from (seed, instance, k) — the whole injector's
/// randomness, with no stream position to get out of sync.
double roll(std::uint64_t seed, const std::string& instance, std::uint64_t k) {
  std::uint64_t h = mix(seed + 0x9E3779B97F4A7C15ull * (k + 1) + fnv1a(instance));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

bool contains_index(const std::vector<int>& v, std::uint64_t k) {
  return std::find(v.begin(), v.end(), static_cast<int>(k)) != v.end();
}

}  // namespace

util::Json fault_plan_to_json(const FaultPlan& plan) {
  util::JsonObject doc;
  doc.set("crash_after_total", static_cast<std::int64_t>(plan.crash_after_total));
  std::vector<std::string> names;
  names.reserve(plan.tools.size());
  for (const auto& [name, faults] : plan.tools) names.push_back(name);
  std::sort(names.begin(), names.end());
  util::JsonObject tools;
  for (const auto& name : names) {
    const ToolFaults& f = plan.tools.at(name);
    util::JsonObject entry;
    entry.set("fail_prob", f.fail_prob);
    entry.set("latency_factor", f.latency_factor);
    util::JsonArray fail_on, crash_on;
    for (int k : f.fail_on) fail_on.emplace_back(k);
    for (int k : f.crash_on) crash_on.emplace_back(k);
    entry.set("fail_on", std::move(fail_on));
    entry.set("crash_on", std::move(crash_on));
    tools.set(name, std::move(entry));
  }
  doc.set("tools", std::move(tools));
  return doc;
}

util::Result<FaultPlan> fault_plan_from_json(const util::Json& json) {
  if (!json.is_object()) return util::parse_error("fault plan: not an object");
  const auto& doc = json.as_object();
  FaultPlan plan;
  if (doc.contains("crash_after_total")) {
    auto n = doc.at("crash_after_total").as_int();
    if (n < 0) return util::parse_error("fault plan: negative crash_after_total");
    plan.crash_after_total = static_cast<std::uint64_t>(n);
  }
  if (doc.contains("tools")) {
    if (!doc.at("tools").is_object())
      return util::parse_error("fault plan: tools is not an object");
    for (const auto& [name, value] : doc.at("tools").as_object()) {
      if (!value.is_object())
        return util::parse_error("fault plan: tool entry '" + name + "'");
      const auto& entry = value.as_object();
      ToolFaults f;
      if (entry.contains("fail_prob")) f.fail_prob = entry.at("fail_prob").as_double();
      if (entry.contains("latency_factor"))
        f.latency_factor = entry.at("latency_factor").as_double();
      if (entry.contains("fail_on"))
        for (const auto& k : entry.at("fail_on").as_array())
          f.fail_on.push_back(static_cast<int>(k.as_int()));
      if (entry.contains("crash_on"))
        for (const auto& k : entry.at("crash_on").as_array())
          f.crash_on.push_back(static_cast<int>(k.as_int()));
      plan.tools[name] = std::move(f);
    }
  }
  return plan;
}

FaultInjector::Decision FaultInjector::decide(const std::string& instance,
                                              std::uint64_t k,
                                              std::uint64_t total) const {
  Decision d;
  if (plan_.crash_after_total > 0 && total >= plan_.crash_after_total) d.crash = true;

  auto it = plan_.tools.find(instance);
  if (it == plan_.tools.end()) it = plan_.tools.find("*");
  if (it != plan_.tools.end()) {
    const ToolFaults& f = it->second;
    d.latency_factor = f.latency_factor;
    if (contains_index(f.crash_on, k)) d.crash = true;
    if (contains_index(f.fail_on, k)) d.fail = true;
    else if (f.fail_prob > 0 && roll(seed_, instance, k) < f.fail_prob) d.fail = true;
  }
  return d;
}

}  // namespace herc::exec
