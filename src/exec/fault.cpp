#include "exec/fault.hpp"

#include <algorithm>

namespace herc::exec {

namespace {

/// splitmix64 finalizer; same mixing as util::Rng but stateless.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// FNV-1a over the instance name, so decisions are per-tool streams.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Uniform double in [0, 1) from (seed, instance, k) — the whole injector's
/// randomness, with no stream position to get out of sync.
double roll(std::uint64_t seed, const std::string& instance, std::uint64_t k) {
  std::uint64_t h = mix(seed + 0x9E3779B97F4A7C15ull * (k + 1) + fnv1a(instance));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

bool contains_index(const std::vector<int>& v, std::uint64_t k) {
  return std::find(v.begin(), v.end(), static_cast<int>(k)) != v.end();
}

}  // namespace

FaultInjector::Decision FaultInjector::decide(const std::string& instance,
                                              std::uint64_t k,
                                              std::uint64_t total) const {
  Decision d;
  if (plan_.crash_after_total > 0 && total >= plan_.crash_after_total) d.crash = true;

  auto it = plan_.tools.find(instance);
  if (it == plan_.tools.end()) it = plan_.tools.find("*");
  if (it != plan_.tools.end()) {
    const ToolFaults& f = it->second;
    d.latency_factor = f.latency_factor;
    if (contains_index(f.crash_on, k)) d.crash = true;
    if (contains_index(f.fail_on, k)) d.fail = true;
    else if (f.fail_prob > 0 && roll(seed_, instance, k) < f.fail_prob) d.fail = true;
  }
  return d;
}

}  // namespace herc::exec
