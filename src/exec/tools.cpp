#include "exec/tools.hpp"

#include <cstdio>

#include "data/data_store.hpp"

namespace herc::exec {

util::Status ToolRegistry::add(ToolSpec spec) {
  if (spec.instance_name.empty()) return util::invalid("tool instance name is empty");
  if (spec.tool_type.empty()) return util::invalid("tool type is empty");
  if (spec.nominal.count_minutes() <= 0)
    return util::invalid("tool '" + spec.instance_name +
                         "': nominal duration must be positive");
  if (tools_.count(spec.instance_name))
    return util::conflict("duplicate tool instance '" + spec.instance_name + "'");
  order_.push_back(spec.instance_name);
  tools_.emplace(spec.instance_name, std::move(spec));
  return util::Status::ok_status();
}

bool ToolRegistry::contains(const std::string& instance_name) const {
  return tools_.count(instance_name) > 0;
}

const ToolSpec& ToolRegistry::spec(const std::string& instance_name) const {
  return tools_.at(instance_name);
}

std::vector<std::string> ToolRegistry::instances_of(const std::string& tool_type) const {
  std::vector<std::string> out;
  for (const auto& name : order_)
    if (tools_.at(name).tool_type == tool_type) out.push_back(name);
  return out;
}

std::uint64_t ToolRegistry::invocations(const std::string& instance_name) const {
  auto it = invocation_counts_.find(instance_name);
  return it == invocation_counts_.end() ? 0 : it->second;
}

util::Result<ToolOutcome> ToolRegistry::invoke(const std::string& instance_name,
                                               const std::string& expected_tool_type,
                                               const ToolInvocation& inv) {
  auto it = tools_.find(instance_name);
  if (it == tools_.end())
    return util::not_found("unknown tool instance '" + instance_name + "'");
  const ToolSpec& spec = it->second;
  if (spec.tool_type != expected_tool_type)
    return util::invalid("tool '" + instance_name + "' is a " + spec.tool_type +
                         ", activity '" + inv.activity + "' needs a " +
                         expected_tool_type);

  // Only validated invocations count: the fault plan's 1-based indices refer
  // to runs that actually reached the tool.
  const std::uint64_t k = ++invocation_counts_[instance_name];
  const std::uint64_t total = ++total_invocations_;
  FaultInjector::Decision fault;
  if (faults_) fault = faults_->decide(instance_name, k, total);
  if (fault.crash) throw InjectedCrash(instance_name, k);

  ToolOutcome out;
  double factor = 1.0;
  if (spec.noise_frac > 0)
    factor += rng_.uniform(-spec.noise_frac, spec.noise_frac);
  factor *= fault.latency_factor;
  auto minutes =
      static_cast<std::int64_t>(static_cast<double>(spec.nominal.count_minutes()) * factor);
  if (minutes < 1) minutes = 1;
  out.duration = cal::WorkDuration::minutes(minutes);

  if (fault.fail) {
    out.success = false;
    out.fault_injected = true;
    out.log = instance_name + ": FAULT INJECTED during " + inv.activity +
              " (invocation " + std::to_string(k) + ")";
    return out;
  }
  if (spec.fail_rate > 0 && rng_.chance(spec.fail_rate)) {
    out.success = false;
    out.log = instance_name + ": FAILED during " + inv.activity;
    return out;
  }

  out.content = spec.behavior ? spec.behavior(inv) : default_tool_content(inv);
  out.log = instance_name + ": produced " + inv.output_type + " (" +
            std::to_string(out.content.size()) + " bytes)";
  return out;
}

std::string default_tool_content(const ToolInvocation& inv) {
  std::uint64_t h = 0;
  for (const auto& c : inv.input_contents) h ^= data::content_hash(c);
  char hash_buf[24];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(h));
  std::string out = "# " + inv.output_type + " produced by activity " + inv.activity +
                    " (attempt " + std::to_string(inv.attempt) + ")\n";
  out += "# derived-from-hash: " + std::string(hash_buf) + "\n";
  for (const auto& name : inv.input_names) out += "# input: " + name + "\n";
  out += "payload " + inv.output_type + " " + std::string(hash_buf) + " attempt " +
         std::to_string(inv.attempt) + "\n";
  return out;
}

}  // namespace herc::exec
