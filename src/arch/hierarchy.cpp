#include "arch/hierarchy.hpp"

#include <stdexcept>

#include "util/json.hpp"

namespace herc::arch {

DesignHierarchy::DesignHierarchy(std::string root_name) {
  components_.push_back(Component{std::move(root_name), std::nullopt, {}, {}});
}

util::Result<ComponentId> DesignHierarchy::add_component(ComponentId parent,
                                                         const std::string& name) {
  if (parent >= components_.size())
    return util::not_found("hierarchy: no component " + std::to_string(parent));
  if (name.empty()) return util::invalid("hierarchy: empty component name");
  if (find(name))
    return util::conflict("hierarchy: duplicate component name '" + name + "'");
  if (!components_[parent].task.empty())
    return util::conflict("hierarchy: component '" + components_[parent].name +
                          "' is bound to task '" + components_[parent].task +
                          "' and cannot have children");
  ComponentId id = components_.size();
  components_.push_back(Component{name, parent, {}, {}});
  components_[parent].children.push_back(id);
  return id;
}

util::Status DesignHierarchy::assign_task(ComponentId component,
                                          const std::string& task_name) {
  if (component >= components_.size())
    return util::not_found("hierarchy: no component " + std::to_string(component));
  Component& c = components_[component];
  if (!c.children.empty())
    return util::conflict("hierarchy: '" + c.name +
                          "' has subcomponents; only leaves carry tasks");
  if (!c.task.empty())
    return util::conflict("hierarchy: '" + c.name + "' already bound to task '" +
                          c.task + "'");
  if (task_name.empty()) return util::invalid("hierarchy: empty task name");
  c.task = task_name;
  return util::Status::ok_status();
}

const std::string& DesignHierarchy::name(ComponentId id) const {
  return components_.at(id).name;
}

const std::vector<ComponentId>& DesignHierarchy::children(ComponentId id) const {
  return components_.at(id).children;
}

std::optional<ComponentId> DesignHierarchy::parent(ComponentId id) const {
  return components_.at(id).parent;
}

const std::string& DesignHierarchy::task(ComponentId id) const {
  return components_.at(id).task;
}

std::optional<ComponentId> DesignHierarchy::find(const std::string& name) const {
  for (ComponentId i = 0; i < components_.size(); ++i)
    if (components_[i].name == name) return i;
  return std::nullopt;
}

std::vector<ComponentId> DesignHierarchy::preorder() const {
  std::vector<ComponentId> out;
  std::vector<ComponentId> stack{root()};
  while (!stack.empty()) {
    ComponentId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const auto& kids = components_[id].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::vector<ComponentId> DesignHierarchy::bound_leaves() const {
  std::vector<ComponentId> out;
  for (ComponentId id : preorder())
    if (!components_[id].task.empty()) out.push_back(id);
  return out;
}

namespace {

util::Json component_to_json(const DesignHierarchy& h, ComponentId id) {
  util::JsonObject o;
  o.set("name", h.name(id));
  if (!h.task(id).empty()) o.set("task", h.task(id));
  if (!h.children(id).empty()) {
    util::JsonArray kids;
    for (ComponentId child : h.children(id))
      kids.push_back(component_to_json(h, child));
    o.set("children", std::move(kids));
  }
  return util::Json(std::move(o));
}

util::Status load_component(DesignHierarchy& h, ComponentId parent,
                            const util::Json& node) {
  if (!node.is_object()) return util::parse_error("hierarchy: component not an object");
  const auto& o = node.as_object();
  if (!o.contains("name")) return util::parse_error("hierarchy: component lacks name");
  auto id = h.add_component(parent, o.at("name").as_string());
  if (!id.ok()) return id.error();
  if (o.contains("task")) {
    auto st = h.assign_task(id.value(), o.at("task").as_string());
    if (!st.ok()) return st;
  }
  if (o.contains("children")) {
    for (const auto& child : o.at("children").as_array()) {
      auto st = load_component(h, id.value(), child);
      if (!st.ok()) return st;
    }
  }
  return util::Status::ok_status();
}

}  // namespace

std::string DesignHierarchy::to_json() const {
  return component_to_json(*this, root()).dump(2) + "\n";
}

util::Result<DesignHierarchy> DesignHierarchy::from_json(std::string_view text) {
  auto parsed = util::Json::parse(text);
  if (!parsed.ok()) return parsed.error();
  const util::Json& root_json = parsed.value();
  if (!root_json.is_object() || !root_json.as_object().contains("name"))
    return util::parse_error("hierarchy: root must be an object with a name");
  try {
    const auto& o = root_json.as_object();
    DesignHierarchy h(o.at("name").as_string());
    if (o.contains("task")) {
      auto st = h.assign_task(h.root(), o.at("task").as_string());
      if (!st.ok()) return st.error();
    }
    if (o.contains("children")) {
      for (const auto& child : o.at("children").as_array()) {
        auto st = load_component(h, h.root(), child);
        if (!st.ok()) return st.error();
      }
    }
    return h;
  } catch (const std::bad_variant_access&) {
    return util::parse_error("hierarchy: field has wrong JSON type");
  }
}

}  // namespace herc::arch
