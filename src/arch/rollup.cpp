#include "arch/rollup.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace herc::arch {

util::Result<ArchSchedule> ArchSchedule::compute(
    const DesignHierarchy& hierarchy, const hercules::WorkflowManager& manager) {
  if (hierarchy.bound_leaves().empty())
    return util::invalid("arch: hierarchy has no component bound to a task");

  ArchSchedule result;
  result.hierarchy_ = &hierarchy;
  auto order = hierarchy.preorder();
  result.row_index_.assign(hierarchy.size(), 0);

  // Depth via parent lookups (pre-order guarantees parents precede children).
  std::vector<int> depth(hierarchy.size(), 0);
  for (ComponentId id : order)
    if (auto p = hierarchy.parent(id)) depth[id] = depth[*p] + 1;

  // Build rows pre-order; fill leaves, then aggregate bottom-up (post-order
  // = reverse pre-order works for aggregation since children follow parents).
  for (ComponentId id : order) {
    ComponentStatus row;
    row.component = id;
    row.name = hierarchy.name(id);
    row.depth = depth[id];
    row.task = hierarchy.task(id);
    result.row_index_[id] = result.rows_.size();
    result.rows_.push_back(std::move(row));
  }

  const auto& space = manager.schedule_space();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    ComponentId id = *it;
    ComponentStatus& row = result.rows_[result.row_index_[id]];

    if (!row.task.empty()) {
      auto plan_id = manager.plan_of(row.task);
      if (!plan_id)
        return util::conflict("arch: task '" + row.task + "' of component '" +
                              row.name + "' has no plan");
      const auto& plan = space.plan(*plan_id);
      bool first = true;
      for (sched::ScheduleNodeId nid : plan.nodes) {
        const auto& n = space.node(nid);
        cal::WorkInstant start = n.actual_start.value_or(n.planned_start);
        cal::WorkInstant finish =
            n.actual_finish ? *n.actual_finish : n.planned_finish;
        if (first) {
          row.baseline_start = n.baseline_start;
          row.baseline_finish = n.baseline_finish;
          row.projected_start = start;
          row.projected_finish = finish;
          first = false;
        } else {
          row.baseline_start = std::min(row.baseline_start, n.baseline_start);
          row.baseline_finish = std::max(row.baseline_finish, n.baseline_finish);
          row.projected_start = std::min(row.projected_start, start);
          row.projected_finish = std::max(row.projected_finish, finish);
        }
        ++row.total_activities;
        double budget = static_cast<double>(n.est_duration.count_minutes());
        row.planned_minutes += budget;
        if (n.completed) {
          ++row.completed_activities;
          row.earned_minutes += budget;
        }
      }
      if (first)
        return util::conflict("arch: plan of task '" + row.task + "' is empty");
      row.bound = true;
    } else if (!hierarchy.children(id).empty()) {
      bool first = true;
      for (ComponentId child : hierarchy.children(id)) {
        const ComponentStatus& c = result.rows_[result.row_index_[child]];
        if (!c.bound) continue;  // unbound subtree contributes nothing
        if (first) {
          row.baseline_start = c.baseline_start;
          row.baseline_finish = c.baseline_finish;
          row.projected_start = c.projected_start;
          row.projected_finish = c.projected_finish;
          first = false;
        } else {
          row.baseline_start = std::min(row.baseline_start, c.baseline_start);
          row.baseline_finish = std::max(row.baseline_finish, c.baseline_finish);
          row.projected_start = std::min(row.projected_start, c.projected_start);
          row.projected_finish = std::max(row.projected_finish, c.projected_finish);
        }
        row.total_activities += c.total_activities;
        row.completed_activities += c.completed_activities;
        row.planned_minutes += c.planned_minutes;
        row.earned_minutes += c.earned_minutes;
      }
      row.bound = !first;
    }
    row.slip = row.projected_finish - row.baseline_finish;
  }

  // Mark, for each internal component, the child that drives its finish.
  for (ComponentId id : order) {
    const ComponentStatus& row = result.rows_[result.row_index_[id]];
    if (!row.bound || hierarchy.children(id).empty()) continue;
    ComponentId driver = id;
    bool found = false;
    for (ComponentId child : hierarchy.children(id)) {
      const ComponentStatus& c = result.rows_[result.row_index_[child]];
      if (!c.bound) continue;
      if (!found || c.projected_finish >
                        result.rows_[result.row_index_[driver]].projected_finish) {
        driver = child;
        found = true;
      }
    }
    if (found) result.rows_[result.row_index_[driver]].drives_parent = true;
  }

  return result;
}

const ComponentStatus& ArchSchedule::row_of(ComponentId id) const {
  return rows_.at(row_index_.at(id));
}

std::vector<ComponentId> ArchSchedule::critical_chain() const {
  std::vector<ComponentId> chain;
  ComponentId cur = hierarchy_->root();
  chain.push_back(cur);
  while (!hierarchy_->children(cur).empty()) {
    ComponentId next = cur;
    bool found = false;
    for (ComponentId child : hierarchy_->children(cur)) {
      const ComponentStatus& c = row_of(child);
      if (c.bound && c.drives_parent) {
        next = child;
        found = true;
        break;
      }
    }
    if (!found) break;
    chain.push_back(next);
    cur = next;
  }
  return chain;
}

std::string ArchSchedule::render(const cal::WorkCalendar& calendar) const {
  using util::pad_right;
  std::string out = "Architectural schedule roll-up\n";
  out += pad_right("component", 28) + pad_right("baseline finish", 17) +
         pad_right("projected finish", 18) + pad_right("slip", 10) +
         pad_right("done", 8) + "drives\n";
  out += util::repeat('-', 84) + "\n";
  const std::int64_t mpd = calendar.minutes_per_day();
  for (const auto& row : rows_) {
    std::string label(static_cast<std::size_t>(row.depth) * 2, ' ');
    label += row.name;
    if (!row.task.empty()) label += " [" + row.task + "]";
    out += pad_right(label, 28);
    if (!row.bound) {
      out += "(no plan below)\n";
      continue;
    }
    out += pad_right(calendar.format_date(row.baseline_finish), 17);
    out += pad_right(calendar.format_date(row.projected_finish), 18);
    out += pad_right(row.slip.count_minutes() == 0 ? "-" : row.slip.str(mpd), 10);
    out += pad_right(std::to_string(row.completed_activities) + "/" +
                         std::to_string(row.total_activities),
                     8);
    out += row.drives_parent ? "*" : "";
    out += "\n";
  }
  out += util::repeat('-', 84) + "\n";
  out += "critical chain:";
  for (ComponentId id : critical_chain()) out += " " + hierarchy_->name(id);
  out += "\n";
  return out;
}

}  // namespace herc::arch
