#pragma once
// Architectural decomposition for schedules.
//
// "Future work will focus on developing a schedule model that considers the
//  architectural decomposition as well as the task flow, along the lines of
//  the model described in [Jacome & Director, ICCAD'94].  This will allow
//  greater precision in tracking, predicting, and optimizing design
//  schedules." — paper, Sec. V
//
// This module implements that extension: a design hierarchy (chip ->
// subsystems -> blocks) whose leaf components are bound to workflow tasks.
// Each leaf's schedule comes from its task's plan in the ordinary schedule
// space; internal components roll their children up, giving the project
// manager block-level and system-level dates, completion percentages and
// slips without leaving the flow manager.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace herc::arch {

using ComponentId = std::size_t;

/// The product decomposition tree.  Components are created top-down; leaf
/// components may be bound to a workflow task name.
class DesignHierarchy {
 public:
  explicit DesignHierarchy(std::string root_name);

  [[nodiscard]] ComponentId root() const { return 0; }

  /// Adds a child component.  kNotFound on a bad parent, kConflict on a
  /// duplicate name anywhere in the hierarchy (names are global handles) or
  /// if the parent is already bound to a task (task-bound components are
  /// leaves).
  util::Result<ComponentId> add_component(ComponentId parent, const std::string& name);

  /// Binds a LEAF component to a workflow task.  kConflict if the component
  /// has children or is already bound.
  util::Status assign_task(ComponentId component, const std::string& task_name);

  [[nodiscard]] std::size_t size() const { return components_.size(); }
  [[nodiscard]] const std::string& name(ComponentId id) const;
  [[nodiscard]] const std::vector<ComponentId>& children(ComponentId id) const;
  [[nodiscard]] std::optional<ComponentId> parent(ComponentId id) const;
  /// Bound task name; empty if unbound.
  [[nodiscard]] const std::string& task(ComponentId id) const;
  [[nodiscard]] std::optional<ComponentId> find(const std::string& name) const;

  /// Depth-first pre-order over the whole hierarchy (root first).
  [[nodiscard]] std::vector<ComponentId> preorder() const;

  /// Leaves bound to tasks, in pre-order.
  [[nodiscard]] std::vector<ComponentId> bound_leaves() const;

  /// JSON persistence (hierarchies live beside the workflow database; the
  /// format is a nested component tree).  to_json -> from_json -> to_json is
  /// a fixed point.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static util::Result<DesignHierarchy> from_json(std::string_view text);

 private:
  struct Component {
    std::string name;
    std::optional<ComponentId> parent;
    std::vector<ComponentId> children;
    std::string task;
  };
  std::vector<Component> components_;
};

}  // namespace herc::arch
