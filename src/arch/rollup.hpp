#pragma once
// Hierarchical schedule roll-up over a design decomposition.
//
// Each bound leaf reads dates and completion from its task's plan in the
// schedule space; internal components aggregate their children.  The result
// is a WBS-style view: per-component start/finish (baseline and projection),
// completion fraction (earned planned-minutes), slip, and the chain of
// components that determines the project finish (the architectural critical
// path).

#include <optional>
#include <string>
#include <vector>

#include "arch/hierarchy.hpp"
#include "hercules/workflow_manager.hpp"

namespace herc::arch {

/// Roll-up row for one component, in hierarchy pre-order.
struct ComponentStatus {
  ComponentId component = 0;
  std::string name;
  int depth = 0;            ///< root = 0; used for indentation
  bool bound = false;       ///< leaf with a planned task below it
  std::string task;         ///< leaf task name (empty for internal nodes)

  cal::WorkInstant baseline_start;
  cal::WorkInstant baseline_finish;
  cal::WorkInstant projected_start;   ///< actuals override projections
  cal::WorkInstant projected_finish;
  cal::WorkDuration slip;             ///< projected - baseline finish

  int total_activities = 0;
  int completed_activities = 0;
  double planned_minutes = 0;   ///< sum of activity estimates below
  double earned_minutes = 0;    ///< estimates of completed activities
  /// earned / planned (1.0 when everything below is complete).
  [[nodiscard]] double fraction_complete() const {
    return planned_minutes > 0 ? earned_minutes / planned_minutes : 0.0;
  }
  /// True if this component's finish determines its parent's finish.
  bool drives_parent = false;
};

/// The computed roll-up.
class ArchSchedule {
 public:
  /// Computes the roll-up.  Every bound leaf's task must exist in the
  /// manager and have a plan (kConflict otherwise); a hierarchy with no
  /// bound leaf is kInvalid.
  [[nodiscard]] static util::Result<ArchSchedule> compute(
      const DesignHierarchy& hierarchy, const hercules::WorkflowManager& manager);

  /// Rows in hierarchy pre-order (root first).
  [[nodiscard]] const std::vector<ComponentStatus>& rows() const { return rows_; }

  [[nodiscard]] const ComponentStatus& row_of(ComponentId id) const;

  /// Root-to-leaf chain of components driving the project finish.
  [[nodiscard]] std::vector<ComponentId> critical_chain() const;

  /// WBS-style text table.
  [[nodiscard]] std::string render(const cal::WorkCalendar& calendar) const;

 private:
  std::vector<ComponentStatus> rows_;                  // pre-order
  std::vector<std::size_t> row_index_;                 // component -> row
  const DesignHierarchy* hierarchy_ = nullptr;
};

}  // namespace herc::arch
