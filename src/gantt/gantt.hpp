#pragma once
// Gantt chart rendering.
//
// "A Gantt Chart displays the schedule information as a series of tasks and
//  displays graphically both the planned schedule and the accomplished
//  schedule." — paper, Sec. IV.B
//
// The paper's Motif UI becomes a text chart (see DESIGN.md substitutions):
// one row per activity, a shared time axis in workdays, with the baseline
// plan, the current projection and the accomplished (actual) schedule drawn
// as distinct bar glyphs:
//
//   .  baseline plan          =  current projection (incomplete work)
//   #  accomplished (actual)  |  the as-of ("today") line
//
// Both pieces of the paper's schedule information are drawn: the proposed
// schedule comes from the schedule instance's parameters, the actual from
// the entity instance linked to it.

#include <string>

#include "calendar/work_calendar.hpp"
#include "core/schedule_space.hpp"
#include "metadata/database.hpp"

namespace herc::gantt {

struct GanttOptions {
  int chart_width = 60;       ///< columns available for the bar area
  bool show_baseline = true;  ///< draw the baseline row under each activity
  bool show_legend = true;
};

/// Renders the Gantt chart of one plan as of `as_of`.
[[nodiscard]] std::string render_gantt(const sched::ScheduleSpace& space,
                                       const cal::WorkCalendar& calendar,
                                       sched::ScheduleRunId plan,
                                       cal::WorkInstant as_of,
                                       const GanttOptions& options = {});

/// Portfolio view: several plans stacked on ONE shared time axis, so the
/// project manager sees "a portion of the overall schedule" across tasks or
/// chips at once.  Plans render in the given order with a section header
/// each; duplicate ids are rejected (kInvalid), as is an empty list.
[[nodiscard]] util::Result<std::string> render_portfolio_gantt(
    const sched::ScheduleSpace& space, const cal::WorkCalendar& calendar,
    const std::vector<sched::ScheduleRunId>& plans, cal::WorkInstant as_of,
    const GanttOptions& options = {});

/// Detail card for a single schedule instance ("viewing individual schedule
/// plans" in the paper's UI feature list).
[[nodiscard]] std::string render_schedule_card(const sched::ScheduleSpace& space,
                                               const meta::Database& db,
                                               const cal::WorkCalendar& calendar,
                                               sched::ScheduleNodeId node);

}  // namespace herc::gantt
