#pragma once
// Schedule-instance browser.
//
// "A schedule instance browser was developed to browse the schedule
//  instances located in the Hercules database ... the user can select,
//  delete, or display schedule instances." — paper, Sec. IV.C
//
// This is the text stand-in for that UI pane: a small stateful cursor over
// the schedule-space containers supporting exactly the paper's three
// operations (select / delete / display) plus listing.

#include <optional>
#include <string>

#include "calendar/work_calendar.hpp"
#include "core/schedule_space.hpp"
#include "metadata/database.hpp"

namespace herc::gantt {

class ScheduleBrowser {
 public:
  ScheduleBrowser(sched::ScheduleSpace& space, const meta::Database& db,
                  const cal::WorkCalendar& calendar)
      : space_(&space), db_(&db), calendar_(&calendar) {}

  /// Lists all (non-deleted) schedule instances grouped by activity
  /// container; the selected one is marked with '>'.
  [[nodiscard]] std::string list() const;

  /// Selects an instance for display/delete.  kNotFound on a bad id,
  /// kConflict if it was deleted.
  util::Status select(sched::ScheduleNodeId id);

  [[nodiscard]] std::optional<sched::ScheduleNodeId> selected() const {
    return selected_;
  }

  /// Detail card of the selected instance; kInvalid if nothing is selected.
  [[nodiscard]] util::Result<std::string> display() const;

  /// Marks the selected instance deleted (it disappears from listings; ids
  /// stay stable) and clears the selection.  kInvalid if nothing selected,
  /// kConflict if the instance is linked to design data (completed work
  /// cannot be deleted out of the schedule history).
  util::Status delete_selected();

 private:
  sched::ScheduleSpace* space_;
  const meta::Database* db_;
  const cal::WorkCalendar* calendar_;
  std::optional<sched::ScheduleNodeId> selected_;
};

}  // namespace herc::gantt
