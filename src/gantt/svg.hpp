#pragma once
// SVG rendering of Gantt charts.
//
// The ASCII chart (gantt.hpp) is the terminal view; this produces a
// standalone SVG document with the same information — baseline, projection
// and accomplished bars per activity, a today line, workday grid, and a
// legend — suitable for reports or a browser.  The output is deterministic
// for a given database state (tested as a fixed point).

#include <string>

#include "calendar/work_calendar.hpp"
#include "core/schedule_space.hpp"

namespace herc::gantt {

struct SvgOptions {
  int chart_width = 720;   ///< pixels for the bar area
  int row_height = 22;     ///< pixels per activity row
  int label_width = 150;   ///< pixels for activity names
  bool show_grid = true;   ///< vertical lines at workday boundaries
  bool show_legend = true;
};

/// Renders one plan to a complete <svg> document.
[[nodiscard]] std::string render_gantt_svg(const sched::ScheduleSpace& space,
                                           const cal::WorkCalendar& calendar,
                                           sched::ScheduleRunId plan,
                                           cal::WorkInstant as_of,
                                           const SvgOptions& options = {});

}  // namespace herc::gantt
